"""BENCH — the flight recorder must cost <5% on the serve hot path.

The acceptance contract of live serve telemetry: wiring a
:class:`~repro.serve.flight.FlightRecorder` (ring-buffer recording on
every admission and reply, one store flush at service stop) into the
throughput campaign of ``bench_serve_throughput`` may cost at most
``OVERHEAD_BUDGET`` of its throughput.  The rounds interleave the two
configurations so slow machine drift hits both equally, and each takes
its best round before comparing.

Fidelity is asserted before the timing means anything: the recorded
row count must equal the requests sent (nothing dropped), the flushed
store must hold exactly those rows, and the *answers* must be
bit-identical with and without the recorder — observability that
changes the observed system is a bug, not an overhead.
"""

import asyncio
import pathlib
import tempfile

from _emit import emit, record
from repro.obs.store import TelemetryStore
from repro.serve.flight import FlightRecorder
from repro.serve.loadgen import LoadSpec, build_schedule, run_open_loop
from repro.serve.service import PredictionService, ServeConfig

#: the throughput campaign, scaled to keep 2 x ROUNDS runs fast
SPEC = LoadSpec(
    clients=32,
    requests_per_client=8,
    seed=2,
    sweep_fraction=1.0,
    max_servers=32,
)
#: admission wide enough that nothing sheds (throughput mode)
WIDE_OPEN = dict(max_queue_depth=10**6, rate=1e9, burst=10**6)
ROUNDS = 5
#: allowed relative throughput loss with the recorder on
OVERHEAD_BUDGET = 0.05


def run_campaign(store_dir):
    """One seeded campaign; recorder on iff ``store_dir`` is given."""
    schedule = build_schedule(SPEC)

    async def go():
        flight = None
        if store_dir is not None:
            flight = FlightRecorder(store=TelemetryStore(store_dir))
        config = ServeConfig(max_batch=256, **WIDE_OPEN)
        async with PredictionService(config, flight=flight) as service:
            report = await run_open_loop(service.submit, schedule)
        return report, service

    return asyncio.run(go())


def run_interleaved(root):
    """Best-of-ROUNDS for both configurations, interleaved."""
    plain_best = None
    flight_best = None
    for i in range(ROUNDS):
        plain, _ = run_campaign(None)
        if plain_best is None or plain.throughput > plain_best.throughput:
            plain_best = plain
        report, service = run_campaign(root / f"round-{i}")
        if flight_best is None or report.throughput > flight_best[0].throughput:
            flight_best = (report, service)
    return plain_best, flight_best


def render(plain, flight, overhead) -> str:
    lines = [
        f"BENCH_serve_flight) {SPEC.clients} clients x "
        f"{SPEC.requests_per_client} sweep requests (seed {SPEC.seed}), "
        f"best of {ROUNDS}, interleaved",
        "",
        f"  recorder off: {plain.throughput:8.0f} req/s   "
        f"wall {plain.wall * 1e3:7.1f} ms",
        f"  recorder on:  {flight.throughput:8.0f} req/s   "
        f"wall {flight.wall * 1e3:7.1f} ms   (ring + flush at stop)",
        f"  overhead: {100 * overhead:+.1f}% "
        f"(budget < {100 * OVERHEAD_BUDGET:.0f}%), "
        "responses bit-identical with and without",
    ]
    return "\n".join(lines)


def test_bench_serve_flight_overhead(artifact):
    with tempfile.TemporaryDirectory() as tmp:
        plain, (flight_report, service) = run_interleaved(pathlib.Path(tmp))

        # fidelity first: every request recorded, every row flushed
        recorder = service.flight
        assert len(recorder) == flight_report.sent
        assert recorder.dropped == 0
        assert recorder.pending == 0  # stop() flushed the ring
        assert recorder.store.rows("serve") == flight_report.sent
        # observability must not change the answers
        assert plain.canonical_responses() == flight_report.canonical_responses()
        for report in (plain, flight_report):
            assert report.ok == report.sent == len(report.responses)

    overhead = (plain.throughput - flight_report.throughput) / plain.throughput

    artifact("BENCH_serve_flight", render(plain, flight_report, overhead))
    emit(
        "BENCH_serve_flight",
        [
            record("recorder-off", "throughput", plain.throughput, "req/s"),
            record(
                "recorder-on", "throughput", flight_report.throughput, "req/s"
            ),
            record("recorder", "overhead", overhead, "ratio"),
        ],
    )

    assert overhead < OVERHEAD_BUDGET, (
        f"flight recorder costs {100 * overhead:.1f}% throughput "
        f"(budget < {100 * OVERHEAD_BUDGET:.0f}%)"
    )
