"""BENCH_serve_latency — paced-load latency quantiles of the service.

Where the throughput benchmark slams the service with everything at
once, this one replays the seeded schedule *paced* — the load
generator sleeps until each request's virtual arrival — so per-request
wall latency is meaningful.  Reported quantiles come from two clocks:
the client side (submit to response, including event-loop travel) and
the service side (admit to reply, the span the obs layer also traces).

At nominal load the batcher's linger window dominates the tail: a
request waits at most ``max_linger`` (2 ms default) for batchmates
plus sub-millisecond compute, so p99 staying within a few linger
windows is the "service is healthy" signal the CI smoke job also
checks.
"""

import asyncio

import numpy as np

from _emit import emit, record
from repro.serve.loadgen import LoadSpec, build_schedule, run_open_loop
from repro.serve.service import PredictionService, ServeConfig

#: nominal load: 32 clients, mixed points and paper-range sweeps
SPEC = LoadSpec(
    clients=32,
    requests_per_client=10,
    seed=7,
    sweep_fraction=0.25,
    max_servers=7,
)
#: p99 budget (seconds) on the client-side clock at nominal load; the
#: default 2 ms linger window plus compute and loop travel fits well
#: under this even on a busy CI host
P99_BUDGET = 0.25


def run_paced():
    schedule = build_schedule(SPEC)

    async def go():
        config = ServeConfig(max_queue_depth=10**6, rate=1e9, burst=10**6)
        async with PredictionService(config) as service:
            report = await run_open_loop(service.submit, schedule, pace=True)
            return report, service.latency_quantiles(), service.report()

    return asyncio.run(go())


def quantiles(latencies) -> dict:
    ordered = np.sort(np.asarray(latencies))
    return {
        "p50": float(np.quantile(ordered, 0.50)),
        "p95": float(np.quantile(ordered, 0.95)),
        "p99": float(np.quantile(ordered, 0.99)),
    }


def render(report, client_q, server_q, service_report) -> str:
    lines = [
        f"BENCH_serve_latency) paced replay: {SPEC.clients} clients x "
        f"{SPEC.requests_per_client} requests (seed {SPEC.seed}, "
        f"{SPEC.sweep_fraction:.0%} sweeps), {report.ok} served in "
        f"{report.wall:.2f} s",
        "",
        "              p50        p95        p99",
        "  client  "
        + "".join(f"{client_q[k] * 1e3:8.2f}ms " for k in ("p50", "p95", "p99")),
        "  service "
        + "".join(f"{server_q[k] * 1e3:8.2f}ms " for k in ("p50", "p95", "p99")),
        "",
        f"  mean batch occupancy {service_report['mean_occupancy']:.1f}, "
        f"p99 budget {P99_BUDGET * 1e3:.0f} ms, zero shed at nominal load",
    ]
    return "\n".join(lines)


def test_bench_serve_latency(benchmark, artifact):
    report, server_q, service_report = benchmark.pedantic(
        run_paced, rounds=1, iterations=1
    )
    client_q = quantiles(report.latencies)
    artifact(
        "BENCH_serve_latency",
        render(report, client_q, server_q, service_report),
    )
    emit(
        "BENCH_serve_latency",
        [record("client", metric, client_q[metric], "s")
         for metric in ("p50", "p95", "p99")]
        + [record("service", metric, server_q[metric], "s")
           for metric in ("p50", "p95", "p99")]
        + [record("paced", "throughput", report.throughput, "req/s")],
    )

    # nominal load: everything served, nothing shed or stuck
    assert report.ok == report.sent == len(report.responses)
    # quantiles are ordered and the tail stays within budget
    assert client_q["p50"] <= client_q["p95"] <= client_q["p99"]
    assert server_q["p50"] <= server_q["p95"] <= server_q["p99"]
    assert client_q["p99"] < P99_BUDGET
    # the service-side clock starts at admit, so it can only be tighter
    assert server_q["p99"] <= client_q["p99"] + 0.01
