"""ABL6 — the J90 vectorization study the paper declined to run.

Section 2.6 notes the PC cache study has a J90 analogue — turning
vectorization off and on — but skips it ("it would be stupid to turn it
off").  With a simulated machine nothing is stupid: this ablation shows
(a) the Hockney rate-vs-vector-length curve of the J90 CPU over the
vector lengths Opal's loops actually present, and (b) what the full
platform comparison would look like if the J90 could not vectorize —
quantifying how much of the J90's standing is its vector pipelines.
"""

from _emit import emit, record
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.core.prediction import predict_series
from repro.opal.complexes import MEDIUM
from repro.platforms import CRAY_J90, FAST_COPS
from repro.platforms.vector import J90_VECTOR

SERVERS = tuple(range(1, 8))


def build():
    curve = {
        n: J90_VECTOR.rate(n) / 1e6 for n in (8, 32, 128, 512, 2048, 8192)
    }
    app = ApplicationParams(molecule=MEDIUM, steps=10, cutoff=None)
    base = ModelPlatformParams.from_spec(CRAY_J90)
    scalar_factor = J90_VECTOR.rate(1000.0) / J90_VECTOR.scalar_rate
    scenarios = {
        "J90 vectorized": predict_series(base, app, SERVERS),
        "J90 scalar (vectorization off)": predict_series(
            base.scaled_compute(scalar_factor).with_(name="j90-scalar"),
            app,
            SERVERS,
        ),
        "fast CoPs (for scale)": predict_series(
            ModelPlatformParams.from_spec(FAST_COPS), app, SERVERS
        ),
    }
    return curve, scenarios, scalar_factor


def render(curve, scenarios, scalar_factor) -> str:
    lines = [
        "ABL6) J90 vectorization on/off (the study Section 2.6 declined)",
        "",
        "Hockney rate vs vector length (r_inf = "
        f"{J90_VECTOR.r_inf/1e6:.1f} MFlop/s, n_1/2 = {J90_VECTOR.n_half:.0f}):",
    ]
    for n, r in curve.items():
        lines.append(f"  n={n:5d}: {r:6.1f} MFlop/s")
    lines.append(
        f"  scalar issue rate: {J90_VECTOR.scalar_rate/1e6:.1f} MFlop/s "
        f"(vector speedup at Opal lengths: {scalar_factor:.1f}x)"
    )
    lines.append(
        f"  vectorizing pays off beyond ~{J90_VECTOR.break_even_length():.0f} elements"
    )
    lines.append("")
    lines.append("medium complex, no cutoff, predicted times [s]:")
    for label, s in scenarios.items():
        lines.append(
            f"  {label:<32s}" + "".join(f"{t:9.1f}" for t in s.times)
        )
    return "\n".join(lines)


def test_bench_ablation_vectorization(benchmark, artifact):
    curve, scenarios, scalar_factor = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    artifact("ABL6_vectorization", render(curve, scenarios, scalar_factor))
    emit(
        "ABL6_vectorization",
        [record(f"n={n}", "hockney_rate", r, "MFlop/s")
         for n, r in curve.items()]
        + [record(label, "time_at_1", s.times[0], "s")
           for label, s in scenarios.items()]
        + [record("opal-lengths", "vector_speedup", scalar_factor, "ratio")],
    )

    # Hockney curve is monotone and saturates
    rates = list(curve.values())
    assert all(a < b for a, b in zip(rates, rates[1:]))
    assert rates[-1] < J90_VECTOR.r_inf / 1e6
    # Opal's long loops run near the asymptote
    assert J90_VECTOR.rate(2000) > 0.95 * J90_VECTOR.r_inf
    # without vectors the J90 loses to every PC: its compute-bound time
    # is ~7x worse, worse even than the slow CoPs CPU
    vec = scenarios["J90 vectorized"]
    scal = scenarios["J90 scalar (vectorization off)"]
    pc = scenarios["fast CoPs (for scale)"]
    assert scal.times[0] > 6 * vec.times[0]
    assert scal.times[0] > 4 * pc.times[0]
