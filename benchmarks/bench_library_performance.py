"""PERF — host-side performance of the library's hot paths.

Unlike the FIG/TAB/ABL/EXT benchmarks (which regenerate paper artifacts
and use pytest-benchmark only as a harness), these measure the *library
itself* on the host machine: model evaluation throughput, workload
splitting, pair-list construction, force evaluation and raw
discrete-event throughput.  They guard against performance regressions
in the code paths every experiment leans on.
"""

import numpy as np

from _emit import emit, record
from repro.core.model import OpalPerformanceModel
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.netsim import Cluster, Node, SwitchedFabric, constant_rate
from repro.opal.complexes import MEDIUM, ComplexSpec
from repro.opal.distribution import PairDistribution
from repro.opal.forcefield import total_energy
from repro.opal.pairlist import PairListBuilder
from repro.opal.parallel import run_parallel_opal
from repro.opal.system import build_system
from repro.platforms import CRAY_J90


def test_perf_model_evaluation(benchmark):
    """Full breakdown evaluation should run at >10k configs/second."""
    model = OpalPerformanceModel(ModelPlatformParams.from_spec(CRAY_J90))
    apps = [
        ApplicationParams(molecule=MEDIUM, steps=10, servers=p, cutoff=c)
        for p in range(1, 8)
        for c in (None, 10.0)
    ]

    def evaluate():
        return sum(model.predict_total(a) for a in apps)

    result = benchmark(evaluate)
    assert result > 0
    emit(
        "PERF_model_evaluation",
        [record("breakdown-evaluation", "configs_per_second",
                len(apps) / benchmark.stats.stats.mean, "configs/s")],
    )


def test_perf_pair_distribution(benchmark):
    """Dealing ~9.2M pairs into blocks must stay in the millisecond range."""
    dist = PairDistribution(servers=7, seed=0)

    shares = benchmark(dist.shares, 9_195_616)
    assert shares.sum() == 9_195_616
    emit(
        "PERF_pair_distribution",
        [record("deal-9.2M-pairs", "wall_time",
                benchmark.stats.stats.mean, "s")],
    )


def test_perf_pairlist_build(benchmark):
    """Cell-list construction for a 1000-center system."""
    spec = ComplexSpec("perf", protein_atoms=200, waters=800, density=0.04)
    system = build_system(spec, seed=0)
    builder = PairListBuilder(cutoff=9.0, method="cells")

    pairs = benchmark(builder.build, system.coords)
    assert len(pairs) > 0
    emit(
        "PERF_pairlist_build",
        [record("cell-list-1000-centers", "wall_time",
                benchmark.stats.stats.mean, "s")],
    )


def test_perf_force_evaluation(benchmark):
    """One full force+energy evaluation over ~40k pairs."""
    spec = ComplexSpec("perf", protein_atoms=100, waters=400, density=0.04)
    system = build_system(spec, seed=0)
    pairs = PairListBuilder(cutoff=9.0).build(system.coords)

    def evaluate():
        report, grad = total_energy(system, pairs)
        return report.total

    total = benchmark(evaluate)
    assert np.isfinite(total)
    emit(
        "PERF_force_evaluation",
        [record("force-energy-40k-pairs", "wall_time",
                benchmark.stats.stats.mean, "s")],
    )


def test_perf_des_event_throughput(benchmark):
    """The event engine should push >100k message events per second."""

    def run_ping_pong():
        cluster = Cluster(
            lambda e: SwitchedFabric(e, latency=1e-6, bandwidth=1e9),
            seed=0,
            trace=False,
        )
        n0 = cluster.add_node(Node(cluster.engine, 0, constant_rate(1e9)))
        n1 = cluster.add_node(Node(cluster.engine, 1, constant_rate(1e9)))

        from repro.netsim import Recv, Send

        def ponger(ctx):
            """Echo everything back."""
            for _ in range(2000):
                msg = yield Recv(tag=1)
                yield Send(msg.source, nbytes=64, tag=2)

        def pinger(ctx, peer):
            """Drive 2000 round trips."""
            for _ in range(2000):
                yield Send(peer, nbytes=64, tag=1)
                yield Recv(source=peer, tag=2)

        pong = cluster.spawn("pong", n1, ponger)
        cluster.spawn("ping", n0, pinger, pong.tid)
        cluster.run()
        return cluster.engine.events_executed

    events = benchmark(run_ping_pong)
    assert events > 8000
    emit(
        "PERF_des_event_throughput",
        [record("ping-pong", "event_rate",
                events / benchmark.stats.stats.mean, "events/s")],
    )


def test_perf_full_simulated_run(benchmark):
    """A complete medium-complex run (the Fig 1 unit of work)."""
    app = ApplicationParams(molecule=MEDIUM, steps=10, servers=7, cutoff=10.0)

    result = benchmark(run_parallel_opal, app, CRAY_J90)
    assert result.wall_time > 0
    emit(
        "PERF_full_simulated_run",
        [record("fig1-unit-of-work", "host_wall_time",
                benchmark.stats.stats.mean, "s"),
         record("fig1-unit-of-work", "virtual_wall_time",
                result.wall_time, "s")],
    )
