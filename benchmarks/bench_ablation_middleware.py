"""ABL3 — how much of the J90's poor scaling is middleware? (Sections 3.1/4.1)

The paper suspects "with the right configuration of PVM flags or at
least with a rewrite of the middleware to use MPI in true zero copy
mode, we could significantly improve the performance of Opal on the
J90".  The what-if machinery quantifies it: the stock J90 (3 MB/s
through PVM/Sciddle), the 7 MB/s the Sciddle authors measured for a
synthetic RPC, and a hypothetical zero-copy MPI at 10% of the crossbar's
2 GB/s with 100x lower message overhead.
"""

from _emit import emit, record
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.core.prediction import predict_series
from repro.opal.complexes import MEDIUM
from repro.platforms import CRAY_J90

SERVERS = tuple(range(1, 8))


def build():
    app = ApplicationParams(molecule=MEDIUM, steps=10, cutoff=10.0)
    base = ModelPlatformParams.from_spec(CRAY_J90)
    scenarios = {
        "stock PVM/Sciddle (3 MB/s)": base,
        "tuned Sciddle (7 MB/s)": base.with_(a1=7e6, name="j90-7MBs"),
        "zero-copy MPI (200 MB/s, 0.1 ms)": base.with_(
            a1=200e6, b1=1e-4, b5=1e-4, name="j90-mpi"
        ),
    }
    return {label: predict_series(mp, app, SERVERS) for label, mp in scenarios.items()}


def render(series) -> str:
    lines = [
        "ABL3) the J90's middleware tax (medium complex, 10 A cutoff)",
        f"{'scenario':<36s}" + "".join(f"{f'p={p}':>8s}" for p in SERVERS),
    ]
    for label, s in series.items():
        lines.append(
            f"{label:<36s}" + "".join(f"{t:8.2f}" for t in s.times)
        )
    lines.append("")
    for label, s in series.items():
        lines.append(
            f"  {label:<36s} saturation p={s.saturation}, "
            f"speedup(7)={s.speedups[-1]:.2f}"
        )
    return "\n".join(lines)


def test_bench_ablation_middleware(benchmark, artifact):
    series = benchmark.pedantic(build, rounds=1, iterations=1)
    artifact("ABL3_middleware_whatif", render(series))
    emit(
        "ABL3_middleware_whatif",
        [record(label, "best_time", s.best_time, "s")
         for label, s in series.items()]
        + [record(label, "saturation", s.saturation, "servers")
           for label, s in series.items()],
    )

    stock = series["stock PVM/Sciddle (3 MB/s)"]
    tuned = series["tuned Sciddle (7 MB/s)"]
    mpi = series["zero-copy MPI (200 MB/s, 0.1 ms)"]
    # the middleware, not the machine, causes the turnover
    assert stock.saturation <= 3
    assert tuned.saturation > stock.saturation
    assert mpi.saturation == 7
    assert mpi.speedups[-1] > 4.0
    assert mpi.best_time < stock.best_time / 2
