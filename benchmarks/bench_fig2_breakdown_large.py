"""FIG2 — measured execution-time breakdown, large complex (Figure 2).

Same four panels as Figure 1 but for the large molecule (n = 6289).
The paper's observation: execution times roughly double, the behaviour
of the components stays the same.
"""

from _emit import emit, record
from repro.analysis import PANEL_TITLES, breakdown_table, figure_breakdown
from repro.opal.complexes import LARGE, MEDIUM


def render(panels) -> str:
    blocks = []
    for key in "abcd":
        title = f"Figure 2{key}) large complex, {PANEL_TITLES[key]}"
        blocks.append(breakdown_table(panels[key], title=title))
        blocks.append("")
    return "\n".join(blocks)


def test_bench_fig2(benchmark, artifact):
    panels = benchmark.pedantic(
        lambda: figure_breakdown(LARGE), rounds=1, iterations=1
    )
    artifact("FIG2_breakdown_large", render(panels))

    medium = figure_breakdown(MEDIUM, servers=(1, 4, 7))
    # "the order of the measured execution time doubles when we increase
    # the problem size ... the behavior of the components remains the same"
    ratio = panels["a"][1].total / medium["a"][1].total
    emit(
        "FIG2_breakdown_large",
        [
            record(f"panel-a/p={p}", "total_time", panels["a"][p].total, "s")
            for p in (1, 4, 7)
        ]
        + [record("large-vs-medium", "time_ratio", ratio, "ratio")],
    )
    assert 1.8 < ratio < 2.6
    for p in (1, 4, 7):
        frac_large = panels["a"][p].fractions()
        frac_medium = medium["a"][p].fractions()
        assert abs(frac_large["par_comp"] - frac_medium["par_comp"]) < 0.15
