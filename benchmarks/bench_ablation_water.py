"""ABL1 — united-water model ablation (Section 2.1 optimization claims).

Quantifies the three claims the paper makes for treating water molecules
as single units centered on the oxygen: reduced server workload, smaller
pair lists, better accuracy at small cutoff radii — and verifies the
workload claim mechanically on the real physics engine.
"""

from _emit import emit, record
from repro.opal import ComplexSpec, OpalSerial, compare_water_models
from repro.opal.complexes import LARGE, MEDIUM
from repro.opal.water import dipole_truncation_error


def build():
    analytic = {
        spec.name: compare_water_models(spec, cutoff=10.0)
        for spec in (MEDIUM, LARGE)
    }
    # mechanical check on a real (small) system: count actual pair
    # evaluations under both water models
    small = ComplexSpec("abl", protein_atoms=30, waters=90, density=0.034)
    counts = {}
    for united in (True, False):
        drv = OpalSerial(small, cutoff=8.0, united_water=united, seed=3)
        drv.run_dynamics(steps=2, dt=0.0005, temperature=20.0)
        counts[united] = drv.stats().active_pairs_last
    return analytic, counts


def render(analytic, counts) -> str:
    lines = ["ABL1) united-water vs explicit three-site water"]
    for name, cmp_ in analytic.items():
        lines.append(
            f"  {name:>7s}: centers {cmp_.n_explicit} -> {cmp_.n_united}, "
            f"energy workload -{100*cmp_.workload_reduction:.0f}%, "
            f"update work -{100*cmp_.update_reduction:.0f}%"
        )
    lines.append("")
    lines.append(
        f"  physics engine, 120-center system at 8 A cutoff: "
        f"{counts[False]} active pairs (explicit) -> {counts[True]} (united)"
    )
    lines.append("")
    lines.append("  cutoff-accuracy proxy (lower = better):")
    for c in (6.0, 10.0, 20.0):
        u = dipole_truncation_error(c, united=True)
        e = dipole_truncation_error(c, united=False)
        lines.append(f"    c={c:4.0f} A: united {u:.5f}  explicit {e:.5f}")
    return "\n".join(lines)


def test_bench_ablation_water(benchmark, artifact):
    analytic, counts = benchmark.pedantic(build, rounds=1, iterations=1)
    artifact("ABL1_water_model", render(analytic, counts))
    emit(
        "ABL1_water_model",
        [record(name, "workload_reduction", cmp_.workload_reduction,
                "fraction")
         for name, cmp_ in analytic.items()]
        + [record(f"united={united}", "active_pairs", count, "pairs")
           for united, count in counts.items()],
    )

    for cmp_ in analytic.values():
        assert cmp_.workload_reduction > 0.5
        assert cmp_.update_reduction > 0.5
    assert counts[True] < counts[False]
    assert dipole_truncation_error(8.0, True) < dipole_truncation_error(8.0, False)
