"""FIG1 — measured execution-time breakdown, medium complex (Figure 1).

Regenerates the four panels of Figure 1: detailed breakdown of the wall
clock execution time for 10 iterations of an Opal simulation of the
medium molecule (n = 4289) on the simulated Cray J90, for 1..7 servers,
{no cutoff, 10 A} x {full update, partial update}.
"""

from _emit import emit, record
from repro.analysis import PANEL_TITLES, breakdown_chart, breakdown_table, figure_breakdown
from repro.opal.complexes import MEDIUM


def render(panels) -> str:
    blocks = []
    for key in "abcd":
        title = f"Figure 1{key}) medium complex, {PANEL_TITLES[key]}"
        blocks.append(breakdown_table(panels[key], title=title))
        blocks.append(breakdown_chart(panels[key], width=56))
        blocks.append("")
    return "\n".join(blocks)


def test_bench_fig1(benchmark, artifact):
    panels = benchmark.pedantic(
        lambda: figure_breakdown(MEDIUM), rounds=1, iterations=1
    )
    artifact("FIG1_breakdown_medium", render(panels))
    emit(
        "FIG1_breakdown_medium",
        [
            record(f"panel-{key}/p={p}", "total_time", panels[key][p].total, "s")
            for key in "abcd"
            for p in (1, 4, 7)
        ]
        + [
            record("panel-a/p=7", "comm_share",
                   panels["a"][7].comm / panels["a"][7].total, "fraction"),
        ],
    )

    # shape assertions (see DESIGN.md acceptance criteria)
    a, c = panels["a"], panels["c"]
    # no cutoff: parallel compute dominates and shrinks with p
    assert a[1].par_comp / a[1].total > 0.9
    assert a[7].par_comp < a[1].par_comp / 5
    # comm grows ~linearly with p but stays a minority share
    assert a[7].comm > 5 * a[1].comm
    assert a[7].comm / a[7].total < 0.5
    # cutoff: compute comparable to the other components at higher p
    assert c[7].par_comp / c[7].total < 0.5
    # even-p idle excess (the load-balancing anomaly)
    assert a[4].idle > a[3].idle and a[6].idle > a[5].idle
