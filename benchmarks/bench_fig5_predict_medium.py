"""FIG5 — predicted time and speedup, medium complex (Figure 5).

Uses the analytical model with each platform's Tables 1/2 key data to
predict 10-iteration execution times and relative speedups for 1..7
servers — panels a/b without cutoff, c/d with the effective 10 A cutoff.
"""

from _emit import emit, record
from repro.analysis import curve_table
from repro.analysis.figures import figure5
from repro.core.speedup import slows_down

SERVERS = tuple(range(1, 8))


def render(out) -> str:
    blocks = []
    for key, (tpanel, spanel) in (
        ("no_cutoff", ("5a) predicted execution time [s], no cutoff",
                       "5b) relative speedup, no cutoff")),
        ("cutoff", ("5c) predicted execution time [s], 10 A cutoff",
                    "5d) relative speedup, 10 A cutoff")),
    ):
        series = out[key]
        blocks.append(
            curve_table({n: s.times for n, s in series.items()}, SERVERS, tpanel)
        )
        blocks.append("")
        blocks.append(
            curve_table(
                {n: s.speedups for n, s in series.items()},
                SERVERS,
                spanel,
                value_format="9.2f",
            )
        )
        blocks.append("")
    return "\n".join(blocks)


def test_bench_fig5(benchmark, artifact):
    out = benchmark.pedantic(figure5, rounds=1, iterations=1)
    artifact("FIG5_predict_medium", render(out))
    emit(
        "FIG5_predict_medium",
        [record(f"{regime}/{name}", "best_time", s.best_time, "s")
         for regime, series in out.items() for name, s in series.items()]
        + [record(f"cutoff/{name}", "speedup_at_7", s.speedups[-1], "ratio")
           for name, s in out["cutoff"].items()],
    )

    nocut, cut = out["no_cutoff"], out["cutoff"]
    # 5a/5b: compute bound, good speedup for everyone, node speed decides
    for s in nocut.values():
        assert not slows_down(list(s.times))
    assert nocut["fast-cops"].best_time == min(s.best_time for s in nocut.values())
    # 5c/5d: J90 and slow CoPs turn over at ~3 servers, speedup < 1 at 7
    for name in ("j90", "slow-cops"):
        assert cut[name].saturation <= 3
        assert cut[name].speedups[-1] < 1.0
    # T3E catches up: best speedup; PCs keep the best absolute time
    sp7 = {n: s.speedups[-1] for n, s in cut.items()}
    assert max(sp7, key=sp7.get) == "t3e"
    assert cut["fast-cops"].times[-1] < cut["t3e"].times[-1]
    assert cut["smp-cops"].times[-1] < cut["j90"].times[-1]
