"""ABL8 — dedicated system vs timesharing (Section 2.3's protocol).

"The experiments always run on a dedicated system and therefore there
is no overhead on the measurements due to a timesharing environment."
This ablation shows what that sentence buys: the same Opal configuration
measured on a dedicated simulated J90 and on one where a background
workload steals CPU slices — wall times inflate and, worse, their
variance explodes, breaking the single-timing measurement protocol.
"""

import numpy as np

from _emit import emit, record
from repro.core.parameters import ApplicationParams
from repro.netsim import Compute, Timeout
from repro.opal.complexes import SMALL
from repro.opal.parallel import (
    _client_body,
    _server_body,
    make_opal_interface,
)
from repro.opal.parallel import run_parallel_opal
from repro.opal.workload import OpalWorkload
from repro.platforms import CRAY_J90


def background_load(ctx, busy, period, rounds, seed):
    """A timesharing competitor: coarse randomized bursts (competing
    batch jobs, the realistic hazard on a shared Cray).  The CPU model
    is non-preemptive FIFO, so Opal's compute phases queue behind
    whatever burst holds the processor when they arrive."""
    import numpy as np

    rng = np.random.default_rng(seed)
    for _ in range(rounds):
        yield Compute(seconds=busy * rng.uniform(0.5, 1.5))
        yield Timeout((period - busy) * rng.uniform(0.5, 1.5))


def run_with_background(app, duty_cycle, seed):
    """One Opal run with a background process on every server node."""
    from repro.hpm import PhaseAccountant
    from repro.pvm import PvmSystem
    from repro.sciddle import SyncDiscipline

    platform = CRAY_J90
    workload = OpalWorkload(app, seed=seed)
    cluster = platform.build_cluster(app.servers + 1, seed=seed)
    pvm = PvmSystem(cluster, barrier_cost=platform.sync_cost)
    iface = make_opal_interface()
    sync = SyncDiscipline("accounted", group="opal", count=app.servers + 1)
    clock = lambda: cluster.engine.now  # noqa: E731

    period = 0.13
    busy = duty_cycle * period
    if duty_cycle > 0:
        for i in range(app.servers):
            node = platform.place(cluster, i + 1)
            cluster.spawn(
                f"bg{i}", node, background_load, busy, period, 4000,
                seed * 100 + i,
            )

    server_accts, tids = [], []
    for i in range(app.servers):
        node = platform.place(cluster, i + 1)
        acct = PhaseAccountant(clock, node.hpm)
        server_accts.append(acct)
        proc = pvm.spawn(
            f"server{i}", node, _server_body, iface, sync, workload, i, acct
        )
        tids.append(proc.tid)
    client_node = platform.place(cluster, 0)
    client_acct = PhaseAccountant(clock, client_node.hpm)
    slot = {}
    pvm.spawn(
        "opal-client", client_node, _client_body, iface, sync, workload,
        tids, client_acct, slot,
    )
    # run until the client finishes; background processes then stop
    while "wall" not in slot and cluster.engine.pending():
        cluster.engine.run(until=cluster.engine.now + 10.0)
    return slot["wall"]


def build():
    app = ApplicationParams(molecule=SMALL, steps=5, servers=3, cutoff=None)
    dedicated = [run_parallel_opal(app, CRAY_J90, seed=s).wall_time for s in range(5)]
    shared = [run_with_background(app, duty_cycle=0.6, seed=s) for s in range(5)]
    return np.array(dedicated), np.array(shared)


def render(dedicated, shared) -> str:
    lines = [
        "ABL8) dedicated system vs ~60%-loaded timesharing (J90, 5 runs each)",
        f"  dedicated: mean {dedicated.mean():7.3f}s  "
        f"CV {100*dedicated.std()/dedicated.mean():5.2f}%",
        f"  shared:    mean {shared.mean():7.3f}s  "
        f"CV {100*shared.std()/shared.mean():5.2f}%  "
        f"(+{100*(shared.mean()/dedicated.mean()-1):.0f}% slower)",
        "",
        "  the single-timing protocol of Section 2.3 is only licensed on",
        "  the dedicated machine.",
    ]
    return "\n".join(lines)


def test_bench_ablation_timesharing(benchmark, artifact):
    dedicated, shared = benchmark.pedantic(build, rounds=1, iterations=1)
    artifact("ABL8_timesharing", render(dedicated, shared))
    emit(
        "ABL8_timesharing",
        [record("dedicated", "mean_wall_time", dedicated.mean(), "s"),
         record("shared", "mean_wall_time", shared.mean(), "s"),
         record("dedicated", "coefficient_of_variation",
                dedicated.std() / dedicated.mean(), "fraction"),
         record("shared", "coefficient_of_variation",
                shared.std() / shared.mean(), "fraction")],
    )

    # contention inflates the runtime materially
    assert shared.mean() > 1.15 * dedicated.mean()
    # and the dedicated system is (near) noise-free while shared varies
    ded_cv = dedicated.std() / dedicated.mean()
    shared_cv = shared.std() / shared.mean()
    assert ded_cv < 0.02
    assert shared_cv > 2 * ded_cv