"""BENCH_serve — batched vs sequential serving under the seeded loadgen.

The acceptance contract of the serving layer, measured end to end: at
64 concurrent clients the micro-batched service must deliver at least
3x the throughput of the same pipeline forced to ``max_batch=1``,
while answering bit for bit the same — between the two modes and
between repeated seeded runs.  A second campaign drives the service
into overload against a tight admission policy and checks that load
shedding is deterministic (same request ids shed on every replay) and
correctly accounted (client-side tallies equal the service's own
admission counters), with every request answered — no stuck futures.

The batched mode wins by coalescing: one dispatch groups requests by
compute cell, resolves each calibration once, and evaluates each
distinct (cell, servers) job once, so a 64-client burst of overlapping
sweeps collapses to a handful of model evaluations.  Sequential mode
pays full price per request through the identical code path, which is
what makes the bit-identity check meaningful.
"""

import asyncio

from _emit import emit, record
from repro.serve.loadgen import LoadSpec, build_schedule, run_open_loop
from repro.serve.service import PredictionService, ServeConfig

#: concurrent clients (the criterion requires >= 64)
CLIENTS = 64
#: sweep-heavy mix: where coalescing has real compute to deduplicate
SPEC = LoadSpec(
    clients=CLIENTS,
    requests_per_client=8,
    seed=2,
    sweep_fraction=1.0,
    max_servers=32,
)
#: overload mix: cheap point queries, arrival-stamped faster than the
#: buckets refill, against a deliberately tight admission policy
OVERLOAD_SPEC = LoadSpec(
    clients=CLIENTS, requests_per_client=8, seed=2, sweep_fraction=0.0
)
#: best-of-N wall-clock timing per mode (discounts scheduler hiccups)
ROUNDS = 3
#: required batched / sequential throughput ratio
MIN_RATIO = 3.0

#: admission wide enough that throughput runs never shed
WIDE_OPEN = dict(max_queue_depth=10**6, rate=1e9, burst=10**6)
#: tight policy: each client's bucket (burst 4, 40/s) cannot keep up
#: with its ~100/s stamped arrivals, so rate shedding must kick in
TIGHT = dict(max_queue_depth=10**6, rate=40.0, burst=4)


def run_campaign(max_batch, spec, admission):
    """One full campaign; returns (loadgen report, service report)."""
    schedule = build_schedule(spec)

    async def go():
        config = ServeConfig(max_batch=max_batch, **admission)
        async with PredictionService(config) as service:
            report = await run_open_loop(service.submit, schedule)
            return report, service.report()

    return asyncio.run(go())


def best_of(max_batch, spec, admission, rounds=ROUNDS):
    """The campaign with the highest throughput over ``rounds`` runs."""
    best = None
    for _ in range(rounds):
        report, service_report = run_campaign(max_batch, spec, admission)
        if best is None or report.throughput > best[0].throughput:
            best = (report, service_report)
    return best


def build():
    batched, batched_service = best_of(256, SPEC, WIDE_OPEN)
    repeat, _ = run_campaign(256, SPEC, WIDE_OPEN)
    sequential, _ = best_of(1, SPEC, WIDE_OPEN)
    overload_a, overload_service = run_campaign(256, OVERLOAD_SPEC, TIGHT)
    overload_b, _ = run_campaign(256, OVERLOAD_SPEC, TIGHT)
    return {
        "batched": batched,
        "batched_service": batched_service,
        "repeat": repeat,
        "sequential": sequential,
        "overload_a": overload_a,
        "overload_b": overload_b,
        "overload_service": overload_service,
    }


def render(runs) -> str:
    batched, sequential = runs["batched"], runs["sequential"]
    overload = runs["overload_a"]
    ratio = batched.throughput / sequential.throughput
    occupancy = runs["batched_service"]["mean_occupancy"]
    lines = [
        f"BENCH_serve) {CLIENTS} clients x {SPEC.requests_per_client} "
        f"sweep requests (seed {SPEC.seed}), best of {ROUNDS}",
        "",
        f"  batched (max_batch=256): {batched.throughput:8.0f} req/s   "
        f"wall {batched.wall * 1e3:7.1f} ms   "
        f"mean batch occupancy {occupancy:5.1f}",
        f"  sequential (max_batch=1): {sequential.throughput:7.0f} req/s   "
        f"wall {sequential.wall * 1e3:7.1f} ms",
        f"  speedup: {ratio:.2f}x (required >= {MIN_RATIO:.0f}x), "
        f"responses bit-identical across modes and repeats",
        "",
        f"  overload (rate {TIGHT['rate']:.0f}/s, burst {TIGHT['burst']}): "
        f"{overload.ok} served, {overload.shed_rate} shed by rate, "
        f"{overload.shed_queue} shed by queue — "
        "same ids shed on every replay",
    ]
    return "\n".join(lines)


def test_bench_serve_throughput(benchmark, artifact):
    runs = benchmark.pedantic(build, rounds=1, iterations=1)
    batched, sequential = runs["batched"], runs["sequential"]
    ratio = batched.throughput / sequential.throughput
    artifact("BENCH_serve", render(runs))
    overload = runs["overload_a"]
    emit(
        "BENCH_serve",
        [
            record("batched", "throughput", batched.throughput, "req/s"),
            record("sequential", "throughput", sequential.throughput, "req/s"),
            record("batched-vs-sequential", "speedup", ratio, "ratio"),
            record(
                "batched",
                "mean_batch_occupancy",
                runs["batched_service"]["mean_occupancy"],
                "requests",
            ),
            record("overload", "served", overload.ok, "requests"),
            record("overload", "shed_rate", overload.shed_rate, "requests"),
        ],
    )

    # every mode answers every request — nothing shed, nothing stuck
    for report in (batched, runs["repeat"], sequential):
        assert report.ok == report.sent == len(report.responses)
    # the headline criterion: >= 3x at 64 concurrent clients
    assert ratio >= MIN_RATIO, (
        f"batched serving is only {ratio:.2f}x sequential "
        f"(required >= {MIN_RATIO:.0f}x)"
    )
    # bit-identical responses: across modes and across seeded repeats
    oracle = batched.canonical_responses()
    assert oracle == sequential.canonical_responses()
    assert oracle == runs["repeat"].canonical_responses()

    # overload sheds, deterministically, with consistent accounting
    a, b = runs["overload_a"], runs["overload_b"]
    assert a.shed_rate > 0
    assert a.shed_ids() == b.shed_ids()
    assert a.canonical_responses() == b.canonical_responses()
    admission = runs["overload_service"]["admission"]
    assert admission["shed_rate"] == a.shed_rate
    assert admission["shed_queue"] == a.shed_queue
    assert admission["admitted"] == a.ok
    # no deadlocked/stuck requests: every envelope got a response
    assert a.sent == len(a.responses) == a.ok + a.shed_rate + a.shed_queue
