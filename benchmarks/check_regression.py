#!/usr/bin/env python
"""Compare fresh benchmark emissions against committed baselines.

The perf gate of this repository: every ``PERF_*`` benchmark emits a
schema-tagged JSON file into ``benchmarks/out/`` (see ``_emit.py``);
the blessed numbers live in ``benchmarks/baselines/``.  This script
pairs records by ``(name, metric)`` within each experiment and fails
when a metric regressed beyond the tolerance.

Direction is inferred from the record's units:

* units ending in ``/s`` (rates: ``events/s``, ``configs/s``) —
  **higher is better**; a regression is a *drop* beyond tolerance;
* everything else (``s`` wall times, byte counts) — **lower is
  better**; a regression is a *rise* beyond tolerance.

Modes:

* default / ``--strict`` — exit 1 on any regression (the local runbook
  mode, see docs/PERFORMANCE.md);
* ``--advisory`` — print the same report but always exit 0 except for
  structural errors (the shared-CI-runner mode, where machine noise
  must not fail the build).

Sources: fresh measurements come from ``benchmarks/out/*.json`` by
default.  With ``--store DIR`` they are read from the telemetry store's
``bench`` dataset instead (the dual-write target of ``_emit.py``),
falling back to the JSON file for any experiment the store has not
seen — so the gate keeps working mid-migration.

Structural problems — torn or schema-less JSON, a baseline with no
fresh measurement, mismatched records — always exit 2: a gate that
silently compares nothing is worse than no gate.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Dict, List, Tuple

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from _emit import OUT_DIR, load  # noqa: E402

BASELINE_DIR = pathlib.Path(__file__).parent / "baselines"

#: Allowed relative slowdown before a metric counts as regressed.
DEFAULT_TOLERANCE = 0.15


def higher_is_better(units: str) -> bool:
    """Rates are maximized, times/sizes are minimized."""
    return units.endswith("/s")


def index_records(payload: Dict) -> Dict[Tuple[str, str], Dict]:
    """Records of one emission, keyed by (name, metric)."""
    out: Dict[Tuple[str, str], Dict] = {}
    for row in payload["records"]:
        out[(str(row["name"]), str(row["metric"]))] = row
    return out


def store_payload(store_dir: pathlib.Path, experiment: str) -> Dict | None:
    """The latest dual-written emission of one experiment, or None.

    Rebuilds a ``repro-bench/1`` payload from the newest ``bench``
    segment whose meta names the experiment; None when the store does
    not exist or holds no such segment (callers fall back to the file).
    """
    try:
        from repro.obs.store import TelemetryStore
    except ImportError:
        return None
    if not (store_dir / "manifest.json").exists():
        return None
    store = TelemetryStore(store_dir)
    newest = None
    for entry in store.segments("bench"):
        if entry.get("meta", {}).get("experiment") == experiment:
            newest = entry
    if newest is None:
        return None
    columns = store.read_segment(newest["id"])
    records = [
        {
            "name": str(columns["name"][i]),
            "metric": str(columns["metric"][i]),
            "value": float(columns["value"][i]),
            "units": str(columns["units"][i]),
        }
        for i in range(int(newest["rows"]))
    ]
    return {"schema": "repro-bench/1", "experiment": experiment, "records": records}


def compare_experiment(
    baseline_path: pathlib.Path,
    out_dir: pathlib.Path,
    tolerance: float,
    store_dir: pathlib.Path | None = None,
) -> Tuple[List[str], List[str], List[str]]:
    """Returns (regressions, improvements/ok lines, structural errors)."""
    regressions: List[str] = []
    report: List[str] = []
    errors: List[str] = []

    experiment = baseline_path.stem
    current_path = out_dir / baseline_path.name
    try:
        base = load(baseline_path)
    except ValueError as exc:
        return [], [], [f"baseline unreadable: {exc}"]
    cur = store_payload(store_dir, experiment) if store_dir is not None else None
    if cur is None:
        if not current_path.exists():
            return [], [], [
                f"{experiment}: no fresh measurement at {current_path} "
                "(run the PERF benchmarks first)"
            ]
        try:
            cur = load(current_path)
        except ValueError as exc:
            return [], [], [f"measurement unreadable: {exc}"]

    base_rows = index_records(base)
    cur_rows = index_records(cur)
    for key, brow in sorted(base_rows.items()):
        crow = cur_rows.get(key)
        name, metric = key
        label = f"{experiment}:{name}:{metric}"
        if crow is None:
            errors.append(f"{label}: present in baseline but not measured")
            continue
        if str(crow["units"]) != str(brow["units"]):
            errors.append(
                f"{label}: units changed "
                f"({brow['units']!r} -> {crow['units']!r})"
            )
            continue
        bval = float(brow["value"])
        cval = float(crow["value"])
        units = str(brow["units"])
        if bval == 0:
            report.append(f"  ok       {label}: baseline is 0, skipped")
            continue
        if higher_is_better(units):
            change = (cval - bval) / bval  # positive = faster
        else:
            change = (bval - cval) / bval  # positive = faster
        pct = 100.0 * change
        detail = (
            f"{label}: {bval:.6g} -> {cval:.6g} {units} "
            f"({pct:+.1f}% {'better' if change >= 0 else 'worse'})"
        )
        if change < -tolerance:
            regressions.append(f"  REGRESSED {detail}")
        elif change > tolerance:
            report.append(f"  improved {detail} — consider refreshing baseline")
        else:
            report.append(f"  ok       {detail}")
    return regressions, report, errors


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to check (default: every committed baseline)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"allowed relative slowdown (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--baselines",
        type=pathlib.Path,
        default=BASELINE_DIR,
        help="directory of blessed emissions",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=OUT_DIR,
        help="directory of fresh emissions",
    )
    parser.add_argument(
        "--store",
        type=pathlib.Path,
        default=None,
        help="telemetry store to read fresh measurements from "
        "(falls back to --out files per experiment)",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--strict",
        action="store_true",
        help="fail on regressions (the default; flag kept for the runbook)",
    )
    mode.add_argument(
        "--advisory",
        action="store_true",
        help="report regressions but exit 0 (noisy shared runners)",
    )
    args = parser.parse_args(argv)

    if not args.baselines.is_dir():
        print(f"error: baseline directory {args.baselines} does not exist")
        return 2
    paths = sorted(args.baselines.glob("*.json"))
    if args.experiments:
        wanted = set(args.experiments)
        paths = [p for p in paths if p.stem in wanted]
        unknown = wanted - {p.stem for p in paths}
        if unknown:
            print(f"error: no baseline for {sorted(unknown)}")
            return 2
    if not paths:
        print("error: no baselines to check")
        return 2

    all_regressions: List[str] = []
    all_errors: List[str] = []
    for path in paths:
        regs, report, errs = compare_experiment(
            path, args.out, args.tolerance, store_dir=args.store
        )
        print(f"{path.stem}:")
        for line in report + regs + [f"  error    {e}" for e in errs]:
            print(line)
        all_regressions.extend(regs)
        all_errors.extend(errs)

    if all_errors:
        print(f"\n{len(all_errors)} structural error(s) — gate unusable")
        return 2
    if all_regressions:
        print(
            f"\n{len(all_regressions)} metric(s) regressed beyond "
            f"{100 * args.tolerance:.0f}% tolerance"
        )
        if args.advisory:
            print("advisory mode: not failing the build")
            return 0
        return 1
    print("\nperf gate: all metrics within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
