"""ABL4 — the even-server-count load imbalance, isolated and repaired.

The paper reports the anomaly as a discovery enabled by the integrated
instrumentation; this ablation runs the simulated Opal with the
reconstructed defective pair dealer and with a repaired (defect-free)
one, showing the idle-time signature appears only with the defect and
only at even server counts.
"""

from _emit import emit, record
from repro.core.parameters import ApplicationParams
from repro.opal.complexes import MEDIUM
from repro.opal.parallel import run_parallel_opal
from repro.platforms import CRAY_J90

SERVERS = (2, 3, 4, 5, 6, 7)


def build():
    app = ApplicationParams(molecule=MEDIUM, steps=5, cutoff=None)
    out = {}
    for label, defect in (("defective dealer", 0.1), ("repaired dealer", 0.0)):
        rows = []
        for p in SERVERS:
            r = run_parallel_opal(app.with_(servers=p), CRAY_J90, defect=defect)
            rows.append((p, r.breakdown.idle / r.breakdown.total, r.imbalance))
        out[label] = rows
    return out


def render(out) -> str:
    lines = ["ABL4) even-p load imbalance: idle fraction and max/mean work"]
    for label, rows in out.items():
        lines.append(f"  {label}:")
        for p, idle_frac, imb in rows:
            marker = "  <- even p" if p % 2 == 0 else ""
            lines.append(
                f"    p={p}: idle {100*idle_frac:5.1f}%  imbalance {imb:.3f}{marker}"
            )
    return "\n".join(lines)


def test_bench_ablation_imbalance(benchmark, artifact):
    out = benchmark.pedantic(build, rounds=1, iterations=1)
    artifact("ABL4_imbalance", render(out))
    emit(
        "ABL4_imbalance",
        [record(f"{label}/p={p}", "idle_fraction", idle_frac, "fraction")
         for label, rows in out.items() for p, idle_frac, _ in rows],
    )

    defective = {p: (idle, imb) for p, idle, imb in out["defective dealer"]}
    repaired = {p: (idle, imb) for p, idle, imb in out["repaired dealer"]}
    # signature: even p idle >> odd p idle, only with the defect
    for even, odd in ((4, 3), (6, 5)):
        assert defective[even][0] > 2 * defective[odd][0]
        assert repaired[even][0] < 2 * repaired[odd][0] + 0.02
    # the repair brings every imbalance near 1
    assert all(imb < 1.06 for _, imb in repaired.values())
