"""CHAOS — overhead of the resilient middleware and the cost of faults.

Measures the reduced design on the simulated J90 three ways: with the
plain Sciddle client, with the resilient client on a perfectly healthy
cluster (zero-fault: sequence numbers, health bookkeeping and deadline
arming, but no retries), and under an actual fault spec.  Contracts:
the zero-fault resilient runs reproduce the plain records bit for bit,
and their real-time overhead stays within budget.  On a quiet machine
the measured overhead is ~4%; the hard assert allows 10% so a noisy CI
neighbour cannot flake the job (each configuration is timed as the
minimum over ROUNDS interleaved passes, which discounts one-off
scheduler hiccups but not sustained load).
"""

import time

from _emit import emit, record
from repro.experiments import ExperimentRunner, reduced_design
from repro.netsim.faults import FaultSpec
from repro.platforms import CRAY_J90

#: switches to the resilient stub but injects nothing
ZERO_FAULT = FaultSpec(rpc_timeout=30.0)
CHAOS = FaultSpec.parse("drop=0.01,delay=0.02,delay_scale=0.05,timeout=10")

#: zero-fault resilience budget (fraction of plain runtime); ~4% quiet
OVERHEAD_BUDGET = 0.10
#: timing passes per configuration; min-of-N suppresses timer noise
ROUNDS = 3


def run_three_ways():
    design = reduced_design()
    configs = [
        ("plain client", ExperimentRunner(CRAY_J90)),
        ("resilient, zero faults", ExperimentRunner(CRAY_J90, faults=ZERO_FAULT)),
        ("resilient, drop=1% delay=2%", ExperimentRunner(CRAY_J90, faults=CHAOS)),
    ]
    timings = {label: float("inf") for label, _ in configs}
    records = {}
    # interleave the configurations so slow drift (thermal, background
    # load) hits all three equally instead of biasing the ratio
    for _ in range(ROUNDS):
        for label, runner in configs:
            t0 = time.perf_counter()
            records[label] = runner.run_design(design)
            timings[label] = min(timings[label], time.perf_counter() - t0)

    return (
        design,
        timings,
        records["plain client"],
        records["resilient, zero faults"],
        records["resilient, drop=1% delay=2%"],
    )


def render(design, timings, plain_records, chaos_records) -> str:
    overhead = timings["resilient, zero faults"] / timings["plain client"] - 1
    virtual_plain = sum(r.wall_stats.mean for r in plain_records)
    virtual_chaos = sum(r.wall_stats.mean for r in chaos_records)
    lines = [
        f"reduced design: {len(design)} cells on the simulated J90, "
        f"min of {ROUNDS} interleaved passes",
        "",
    ]
    for label, seconds in timings.items():
        lines.append(f"  {label:<30s} {seconds * 1e3:9.1f} ms")
    lines.extend(
        [
            "",
            f"zero-fault resilience overhead: {100 * overhead:+.1f}% real time "
            f"(budget {100 * OVERHEAD_BUDGET:.0f}%), simulated results bit-identical",
            f"virtual cost of the fault spec: {virtual_plain:.3f} s -> "
            f"{virtual_chaos:.3f} s summed over the design "
            f"({100 * (virtual_chaos / virtual_plain - 1):+.1f}%)",
        ]
    )
    return "\n".join(lines)


def test_bench_chaos_overhead(benchmark, artifact):
    design, timings, plain_records, resilient_records, chaos_records = (
        benchmark.pedantic(run_three_ways, rounds=1, iterations=1)
    )
    artifact(
        "CHAOS_overhead", render(design, timings, plain_records, chaos_records)
    )
    emit(
        "CHAOS_overhead",
        [record(label, "wall_time", seconds, "s")
         for label, seconds in timings.items()]
        + [record(
            "zero-fault", "resilience_overhead",
            timings["resilient, zero faults"] / timings["plain client"] - 1,
            "fraction",
        )],
    )

    # the resilient stub with faults disabled is a bit-exact drop-in
    for a, b in zip(plain_records, resilient_records):
        assert a.breakdown == b.breakdown
        assert a.wall_stats == b.wall_stats
    # faults cost virtual time, never correctness (a low-traffic cell
    # may dodge every 1% coin flip, but the design as a whole cannot)
    for a, b in zip(plain_records, chaos_records):
        assert b.wall_stats.mean >= a.wall_stats.mean
    assert sum(r.wall_stats.mean for r in chaos_records) > sum(
        r.wall_stats.mean for r in plain_records
    )
    overhead = timings["resilient, zero faults"] / timings["plain client"] - 1
    assert overhead < OVERHEAD_BUDGET, (
        f"zero-fault resilience overhead {100 * overhead:.1f}% exceeds "
        f"{100 * OVERHEAD_BUDGET:.0f}%"
    )
