"""PERF — declarative workload spec compilation throughput.

Every family-generic code path — campaign cell keying, serve query
parsing, loadgen schedule construction — goes through the same spec
pipeline: parse raw params against the family schema, canonicalize,
content-address (``spec_digest``) and lower to phase steps + closed-form
terms.  A slowdown here taxes every query of a family-mix serve
campaign, so the pipeline gets its own perf gate.

``PERF_workload_compile`` measures full pipeline passes per second
(min-of-``ROUNDS``, higher is better) over a mixed pool of collective
and hpl specs.  Correctness is asserted alongside the timing: digests
are stable across rounds, and each compile yields a non-empty program
whose terms carry positive communication volume.
"""

import time

from _emit import emit, record
from repro.workloads import get_family, spec_digest

#: (family, raw params) pool, mixed shapes of both shipped families
SPEC_POOL = [
    ("collective", {"pattern": "barrier"}),
    ("collective", {"pattern": "broadcast", "message_bytes": 65536}),
    ("collective", {"pattern": "allreduce", "message_bytes": 4096, "rounds": 8}),
    ("collective", {"pattern": "alltoall", "message_bytes": 16384, "fanout": 4}),
    ("hpl", {"matrix_n": 256, "block": 64}),
    ("hpl", {"matrix_n": 512, "block": 32}),
]
#: pipeline passes per timed round
PASSES = 300
ROUNDS = 3
SERVERS = 4


def compile_pass():
    """One full pipeline pass over the pool; returns digests and sizes."""
    digests = []
    steps_total = 0
    for family_name, raw in SPEC_POOL:
        family = get_family(family_name)
        spec = family.spec_from_params(dict(raw))
        digests.append(spec_digest(spec))
        steps = family.compile(spec, SERVERS)
        terms = family.terms(spec, SERVERS)
        assert steps and terms.comm_bytes > 0
        steps_total += len(steps)
    return digests, steps_total


def render(rate, steps_total) -> str:
    return "\n".join(
        [
            f"PERF_workload_compile) {len(SPEC_POOL)} specs x {PASSES} passes, "
            f"min of {ROUNDS}",
            "",
            f"  parse+digest+compile+terms: {rate:10.1f} passes/s "
            f"({steps_total} phase steps per pass)",
        ]
    )


def test_perf_workload_compile(artifact):
    reference, steps_total = compile_pass()
    times = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for _ in range(PASSES):
            digests, _ = compile_pass()
        times.append(time.perf_counter() - start)
        # content addressing is deterministic across rounds
        assert digests == reference

    rate = PASSES / min(times)
    artifact("PERF_workload_compile", render(rate, steps_total))
    emit(
        "PERF_workload_compile",
        [record("collective+hpl", "compile_throughput", rate, "passes/s")],
    )
