"""EXT2 — parallelization alternatives: RD vs SD vs FD.

Section 2.1 names three parallelization approaches for the non-bonded
computation — the replicated-data method Opal uses, space decomposition,
and Plimpton-Hendrickson force decomposition — without comparing them.
This extension compares their predicted totals on the paper's platforms
and answers the implicit question: was RD the right call for 1..7
servers, and when does it stop being one?
"""

import pytest

from _emit import emit, record
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.opal.complexes import MEDIUM
from repro.opal.decomposition import best_method, compare_decompositions
from repro.platforms import CRAY_J90, CRAY_T3E, FAST_COPS

SERVERS = (1, 2, 4, 7, 16, 32)


def build():
    app = ApplicationParams(molecule=MEDIUM, steps=10, cutoff=10.0)
    out = {}
    for spec in (CRAY_J90, CRAY_T3E, FAST_COPS):
        params = ModelPlatformParams.from_spec(spec)
        out[spec.name] = compare_decompositions(params, app, SERVERS)
    winners = {
        name: {
            p: best_method(
                ModelPlatformParams.from_spec(spec),
                app.with_(servers=p),
            )
            for p in SERVERS
        }
        for name, spec in (("j90", CRAY_J90), ("t3e", CRAY_T3E),
                           ("fast-cops", FAST_COPS))
    }
    return out, winners


def render(out, winners) -> str:
    lines = ["EXT2) replicated-data vs space vs force decomposition",
             "      (medium complex, 10 A cutoff, predicted totals [s])"]
    for name, methods in out.items():
        lines.append(f"  {name}:")
        header = f"    {'method':<8s}" + "".join(f"{f'p={p}':>9s}" for p in SERVERS)
        lines.append(header)
        for method, rows in methods.items():
            lines.append(
                f"    {method:<8s}" + "".join(f"{r.total:9.2f}" for r in rows)
            )
        lines.append(
            "    winner per p: "
            + "  ".join(f"p={p}:{winners[name][p]}" for p in SERVERS)
        )
    lines.append("")
    lines.append("reading: Opal's RD choice is defensible at the paper's 1-7")
    lines.append("servers on fast networks; on the J90's middleware and at")
    lines.append("larger scale, the scalable decompositions win decisively.")
    return "\n".join(lines)


def test_bench_ext_decomposition(benchmark, artifact):
    out, winners = benchmark.pedantic(build, rounds=1, iterations=1)
    artifact("EXT2_decomposition", render(out, winners))
    emit(
        "EXT2_decomposition",
        [record(f"{name}/{method}/p=7", "predicted_total",
                {p: r.total for p, r in zip(SERVERS, rows)}[7], "s")
         for name, methods in out.items()
         for method, rows in methods.items()],
    )

    # at p=1 the in-place methods (SD, FD) coincide; RD additionally pays
    # its client<->server coordinate traffic even with one server
    for methods in out.values():
        sd1 = methods["SD"][0].total
        fd1 = methods["FD"][0].total
        rd1 = methods["RD"][0].total
        assert sd1 == pytest.approx(fd1, rel=1e-9)
        assert rd1 == pytest.approx(sd1 + methods["RD"][0].t_comm, rel=1e-6)
    # on the T3E, RD stays within 2x of the best through p=7 (the paper's
    # regime) but loses at p=32
    t3e = out["t3e"]
    by_method = {m: {p: r.total for p, r in zip(SERVERS, rows)}
                 for m, rows in t3e.items()}
    best7 = min(by_method[m][7] for m in by_method)
    assert by_method["RD"][7] < 2 * best7
    assert winners["t3e"][32] in ("SD", "FD")
    # on the J90 the middleware kills RD early
    assert winners["j90"][7] in ("SD", "FD")
