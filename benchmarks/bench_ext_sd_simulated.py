"""EXT6 — space decomposition, simulated (closing the EXT2 loop).

EXT2 compared the parallelization alternatives *analytically*; this
benchmark runs an actual SPMD slab-decomposed Opal on the simulated
J90 next to the client/server replicated-data program, with identical
work totals: the middleware-bound RD structure turns over at ~3 servers
while the neighbour-exchange program keeps improving — Section 2.1's
alternatives made executable.
"""

from _emit import emit, record
from repro.core.parameters import ApplicationParams
from repro.opal.complexes import LARGE
from repro.opal.parallel import run_parallel_opal
from repro.opal.parallel_sd import run_parallel_opal_sd
from repro.platforms import CRAY_J90, FAST_COPS

SERVERS = (1, 2, 3, 4, 5)


def build():
    app = ApplicationParams(molecule=LARGE, steps=5, cutoff=10.0)
    out = {}
    for platform in (CRAY_J90, FAST_COPS):
        rd, sd = {}, {}
        for p in SERVERS:
            rd[p] = run_parallel_opal(app.with_(servers=p), platform)
            sd[p] = run_parallel_opal_sd(app.with_(servers=p), platform)
        out[platform.name] = (rd, sd)
    return out


def render(out) -> str:
    lines = [
        "EXT6) replicated-data vs space decomposition, both SIMULATED",
        "      (large complex, 10 A cutoff, 5 steps)",
    ]
    for name, (rd, sd) in out.items():
        lines.append(f"  {name}:")
        lines.append(
            "    p:      " + "".join(f"{p:>9d}" for p in SERVERS)
        )
        lines.append(
            "    RD wall:" + "".join(f"{rd[p].wall_time:9.3f}" for p in SERVERS)
        )
        lines.append(
            "    SD wall:" + "".join(f"{sd[p].wall_time:9.3f}" for p in SERVERS)
        )
        lines.append(
            "    RD comm:" + "".join(f"{rd[p].breakdown.comm:9.3f}" for p in SERVERS)
        )
        lines.append(
            "    SD comm:" + "".join(f"{sd[p].breakdown.comm:9.3f}" for p in SERVERS)
        )
    lines.append("")
    lines.append("  note fast-cops p=1: the large pair list (152 MB) spills out of")
    lines.append("  a 128 MB PC node -> the Section 2.6 out-of-core penalty appears")
    lines.append("  emergently; from p=2 the per-node share fits again.")
    lines.append("  on the J90 the RD communication grows linearly in p and the")
    lines.append("  run regresses; the slab program's neighbour traffic stays")
    lines.append("  nearly flat. (1-D slabs thinner than the cutoff would")
    lines.append("  degenerate; p stops at 5 for this box.)")
    return "\n".join(lines)


def test_bench_ext_sd_simulated(benchmark, artifact):
    out = benchmark.pedantic(build, rounds=1, iterations=1)
    artifact("EXT6_sd_simulated", render(out))
    emit(
        "EXT6_sd_simulated",
        [record(f"{name}/{method}/p={p}", "wall_time", runs[p].wall_time, "s")
         for name, (rd_runs, sd_runs) in out.items()
         for method, runs in (("RD", rd_runs), ("SD", sd_runs))
         for p in SERVERS],
    )

    rd, sd = out["j90"]
    # RD: linear comm growth and a turnover
    assert rd[5].breakdown.comm > 4.0 * rd[1].breakdown.comm
    assert rd[5].wall_time > rd[3].wall_time
    # SD: sublinear comm growth (interior-peer regime starts at p=3)
    # and monotone improvement through p=5
    assert sd[5].breakdown.comm < 1.6 * sd[3].breakdown.comm
    walls = [sd[p].wall_time for p in SERVERS]
    assert all(b < a for a, b in zip(walls, walls[1:]))
    # on the fast network both structures are fine at this scale
    rd_f, sd_f = out["fast-cops"]
    assert rd_f[5].wall_time < rd_f[1].wall_time
    assert sd_f[5].wall_time < sd_f[1].wall_time