"""EXT3 — the Cluster of J90s the Opal developers planned for.

Section 3.1: "our site was operating four Cray J90s interconnected by
HIPPI and the developers had certainly plans to use Parallel Opal on a
Cluster of J90 SMPs.  For such a platform, message passing is a must."
The paper never evaluates that machine; we do.  Two views:

* the flat analytical model (one a1/b1 for every message) — pessimistic
  at small p because it prices every message at the inter-box HIPPI rate;
* the simulator, which routes intra-box messages over the shared-memory
  PVM path (3 MB/s, the paper's measured in-box value) and inter-box
  messages over HIPPI network PVM — the locality structure a flat model
  cannot express.
"""

from _emit import emit, record
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.core.prediction import predict_series
from repro.opal.complexes import MEDIUM
from repro.opal.parallel import run_parallel_opal
from repro.platforms import CRAY_J90, CRAY_J90_CLUSTER

SERVERS = (1, 3, 7, 15, 23, 31)


def build():
    app = ApplicationParams(molecule=MEDIUM, steps=10, cutoff=None)
    flat_model = predict_series(
        ModelPlatformParams.from_spec(CRAY_J90_CLUSTER), app, SERVERS
    )
    simulated = {}
    for p in SERVERS:
        r = run_parallel_opal(app.with_(servers=p), CRAY_J90_CLUSTER)
        simulated[p] = r.wall_time
    single_j90 = predict_series(
        ModelPlatformParams.from_spec(CRAY_J90), app, (1, 3, 7)
    )
    return flat_model, simulated, single_j90


def render(flat_model, simulated, single_j90) -> str:
    lines = [
        "EXT3) Opal on a cluster of four 8-CPU J90s over HIPPI",
        f"  {'p':>3s} {'flat model [s]':>15s} {'simulated [s]':>14s}",
    ]
    for p, t in zip(SERVERS, flat_model.times):
        lines.append(f"  {p:3d} {t:15.2f} {simulated[p]:14.2f}")
    lines.append("")
    lines.append(
        f"  single J90 (paper): t(7) = {single_j90.times[-1]:.2f}s; "
        f"the cluster reaches t({SERVERS[-1]}) = {simulated[SERVERS[-1]]:.2f}s"
    )
    best_p = min(simulated, key=simulated.get)
    lines.append(
        f"  saturation near p={best_p} (about two boxes): past it the"
    )
    lines.append(
        "  client-serialized middleware traffic wins again.  31 slow-"
    )
    lines.append(
        "  middleware servers still cannot touch a 7-node fast CoPs"
    )
    lines.append("  cluster (see FIG5) — the paper's conclusion survives the")
    lines.append("  machine the developers actually planned for.")
    return "\n".join(lines)


def test_bench_ext_j90_cluster(benchmark, artifact):
    flat_model, simulated, single_j90 = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    artifact("EXT3_j90_cluster", render(flat_model, simulated, single_j90))
    emit(
        "EXT3_j90_cluster",
        [record(f"simulated/p={p}", "wall_time", t, "s")
         for p, t in simulated.items()]
        + [record(f"flat-model/p={p}", "wall_time", t, "s")
           for p, t in zip(SERVERS, flat_model.times)],
    )

    # the cluster scales past a single box for the compute-bound workload
    assert simulated[15] < simulated[7]
    # ...but the slow middleware caps it: saturation around two boxes,
    # then the client-serialized communication pulls it back up
    best_p = min(simulated, key=simulated.get)
    assert 7 < best_p < 31
    assert simulated[31] > simulated[best_p]
    # the cluster with 7 servers beats/matches the single J90's 7 servers
    # (same CPUs, in-box path equals the paper's measured middleware)
    assert simulated[7] <= single_j90.times[-1] * 1.10
