"""EXT1 — scaling beyond seven servers, and isoefficiency.

The paper stops at seven servers and predicts that "with a larger number
of processors we would probably encounter the same saturation point at
which adding processors would stop to increase performance".  This
extension runs the model out to 32 servers to locate those saturation
points, and computes each platform's isoefficiency function (problem
size required to hold 50% efficiency).
"""

from _emit import emit, record
from repro.core.isoefficiency import isoefficiency_curve
from repro.core.model import OpalPerformanceModel
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.core.prediction import predict_platforms
from repro.opal.complexes import LARGE, MEDIUM
from repro.platforms import ALL_PLATFORMS

SERVERS = (1, 2, 4, 7, 12, 20, 32)


def build():
    app_med = ApplicationParams(molecule=MEDIUM, steps=10, cutoff=10.0)
    app_large = ApplicationParams(molecule=LARGE, steps=10, cutoff=10.0)
    curves = {
        "medium": predict_platforms(ALL_PLATFORMS, app_med, SERVERS),
        "large": predict_platforms(ALL_PLATFORMS, app_large, SERVERS),
    }
    iso = {}
    for spec in ALL_PLATFORMS:
        model = OpalPerformanceModel(ModelPlatformParams.from_spec(spec))
        iso[spec.name] = isoefficiency_curve(
            model, app_med, servers=(4, 8, 16, 32), target=0.5
        )
    return curves, iso


def render(curves, iso) -> str:
    lines = ["EXT1) scaling to 32 servers (10 A cutoff)"]
    for label, series in curves.items():
        lines.append(f"  {label} complex — saturation points:")
        for name, s in series.items():
            lines.append(
                f"    {name:<10s} best {s.best_time:7.2f}s at p={s.saturation:2d}, "
                f"t(32)={s.times[-1]:7.2f}s"
            )
    lines.append("")
    lines.append("  isoefficiency (n for 50% efficiency, medium-base problem):")
    header = f"    {'platform':<12s}" + "".join(f"{f'p={p}':>10s}" for p in (4, 8, 16, 32))
    lines.append(header)
    for name, points in iso.items():
        cells = "".join(
            f"{(str(pt.n_required) if pt.n_required else '—'):>10s}"
            for pt in points
        )
        lines.append(f"    {name:<12s}{cells}")
    return "\n".join(lines)


def test_bench_ext_scaling(benchmark, artifact):
    curves, iso = benchmark.pedantic(build, rounds=1, iterations=1)
    artifact("EXT1_scaling", render(curves, iso))
    emit(
        "EXT1_scaling",
        [record(f"{label}/{name}", "saturation", s.saturation, "servers")
         for label, series in curves.items() for name, s in series.items()],
    )

    med = curves["medium"]
    # the predicted saturation exists for every platform by p=32
    for name, s in med.items():
        assert s.saturation <= 32
    # good-network platforms saturate much later than the J90
    assert med["t3e"].saturation > 3 * med["j90"].saturation
    # larger problems push every saturation point outwards
    for name in med:
        assert curves["large"][name].saturation >= med[name].saturation
    # isoefficiency: J90 needs (much) bigger problems than the T3E
    j90_16 = iso["j90"][2].n_required
    t3e_16 = iso["t3e"][2].n_required
    assert j90_16 is None or (t3e_16 is not None and t3e_16 < j90_16)
    # isoefficiency functions grow with p wherever defined
    for points in iso.values():
        sizes = [pt.n_required for pt in points if pt.n_required is not None]
        assert all(a < b for a, b in zip(sizes, sizes[1:]))
