"""FIG6 — predicted time and speedup, large complex (Figure 6).

Same panels as Figure 5 for the large molecule: the added computation
pushes the communication break-down point outwards and slightly improves
speedups.
"""

from _emit import emit, record
from repro.analysis import curve_table
from repro.analysis.figures import figure5, figure6

SERVERS = tuple(range(1, 8))


def render(out) -> str:
    blocks = []
    for key, (tpanel, spanel) in (
        ("no_cutoff", ("6a) predicted execution time [s], no cutoff",
                       "6b) relative speedup, no cutoff")),
        ("cutoff", ("6c) predicted execution time [s], 10 A cutoff",
                    "6d) relative speedup, 10 A cutoff")),
    ):
        series = out[key]
        blocks.append(
            curve_table({n: s.times for n, s in series.items()}, SERVERS, tpanel)
        )
        blocks.append("")
        blocks.append(
            curve_table(
                {n: s.speedups for n, s in series.items()},
                SERVERS,
                spanel,
                value_format="9.2f",
            )
        )
        blocks.append("")
    return "\n".join(blocks)


def test_bench_fig6(benchmark, artifact):
    out = benchmark.pedantic(figure6, rounds=1, iterations=1)
    artifact("FIG6_predict_large", render(out))
    emit(
        "FIG6_predict_large",
        [record(f"{regime}/{name}", "best_time", s.best_time, "s")
         for regime, series in out.items() for name, s in series.items()],
    )

    f5 = figure5()
    # behaviour "remains quite similar to the medium size problem"
    for name, s6 in out["no_cutoff"].items():
        s5 = f5["no_cutoff"][name]
        # 6b: slightly better speedups with more computation
        assert s6.speedups[-1] >= s5.speedups[-1] - 1e-9
        # absolute times larger
        assert s6.times[0] > s5.times[0]
    # 6d: "we do not have the extreme slow down seen in Chart 5d" — the
    # break-down point moves outwards on every platform
    for name in ("j90", "slow-cops"):
        assert out["cutoff"][name].saturation >= f5["cutoff"][name].saturation
        assert out["cutoff"][name].speedups[-1] > f5["cutoff"][name].speedups[-1]
