"""EXT5 — what interconnect does Opal need?

The conclusion states the cutoff optimization turns Opal into "a
communication critical application that requires a strong memory and
communication system for good parallelization".  This extension maps
the requirement: predicted t(7) for the medium/cutoff workload over a
bandwidth x latency grid (holding the fast-CoPs CPU fixed), the
break-even frontier against the J90, and the parameter elasticities
that say *which* knob matters in each corner.
"""

import numpy as np

from _emit import emit, record
from repro.analysis.sensitivity import sensitivity_report
from repro.core.model import OpalPerformanceModel
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.opal.complexes import MEDIUM
from repro.platforms import CRAY_J90, FAST_COPS

BANDWIDTHS_MB = (1, 3, 10, 30, 100)
LATENCIES = (10e-3, 1e-3, 100e-6, 15e-6)


def build():
    app = ApplicationParams(molecule=MEDIUM, steps=10, servers=7, cutoff=10.0)
    base = ModelPlatformParams.from_spec(FAST_COPS)
    grid = {}
    for bw in BANDWIDTHS_MB:
        for lat in LATENCIES:
            params = base.with_(a1=bw * 1e6, b1=lat, name=f"grid-{bw}-{lat:g}")
            grid[(bw, lat)] = OpalPerformanceModel(params).predict_total(app)
    j90_t7 = OpalPerformanceModel(
        ModelPlatformParams.from_spec(CRAY_J90)
    ).predict_total(app)
    corners = {
        "slow net (3 MB/s, 10 ms)": base.with_(a1=3e6, b1=10e-3, name="c1"),
        "fast net (100 MB/s, 15 us)": base.with_(a1=100e6, b1=15e-6, name="c2"),
    }
    sens = {
        label: sensitivity_report(params, app)
        for label, params in corners.items()
    }
    return grid, j90_t7, sens


def render(grid, j90_t7, sens) -> str:
    lines = [
        "EXT5) interconnect design space: predicted t(7) [s], medium/cutoff,",
        "      fast-CoPs CPUs with a swappable network",
        "",
        "  " + "bw / lat".rjust(10)
        + "".join(
            f"{(f'{lat*1e3:g}ms' if lat >= 1e-3 else f'{lat*1e6:g}us'):>9s}"
            for lat in LATENCIES
        ),
    ]
    for bw in BANDWIDTHS_MB:
        row = f"  {bw:>7d}MB"
        for lat in LATENCIES:
            t = grid[(bw, lat)]
            marker = "*" if t < j90_t7 else " "
            row += f"{t:8.2f}{marker}"
        lines.append(row)
    lines.append(f"  (* = beats the J90's predicted t(7) = {j90_t7:.2f}s)")
    lines.append("")
    for label, rep in sens.items():
        lines.append(
            f"  {label}: dominant parameter {rep.dominant()}, "
            f"comm share {rep.communication_share():.2f}"
        )
    return "\n".join(lines)


def test_bench_ext_network_design(benchmark, artifact):
    grid, j90_t7, sens = benchmark.pedantic(build, rounds=1, iterations=1)
    artifact("EXT5_network_design", render(grid, j90_t7, sens))
    emit(
        "EXT5_network_design",
        [record(f"bw={bw}MB/lat={lat:g}", "predicted_t7", t, "s")
         for (bw, lat), t in grid.items()]
        + [record("j90-reference", "predicted_t7", j90_t7, "s")],
    )

    # monotone in both knobs
    for lat in LATENCIES:
        col = [grid[(bw, lat)] for bw in BANDWIDTHS_MB]
        assert all(a >= b for a, b in zip(col, col[1:]))
    for bw in BANDWIDTHS_MB:
        row = [grid[(bw, lat)] for lat in LATENCIES]
        assert all(a >= b for a, b in zip(row, row[1:]))
    # Ethernet-class networking (3 MB/s, 10 ms) cannot beat the J90 even
    # with 400 MHz CPUs; Myrinet-class comfortably does
    assert grid[(3, 10e-3)] > j90_t7 * 0.9
    assert grid[(30, 15e-6)] < j90_t7 / 3
    # sensitivity flips from communication- to compute-dominated
    assert sens["slow net (3 MB/s, 10 ms)"].communication_share() > 0.6
    assert sens["fast net (100 MB/s, 15 us)"].compute_share() > 0.6