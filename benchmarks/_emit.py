"""Machine-readable benchmark output shared by every bench_*.py.

Each benchmark writes, alongside its human-readable ``out/<id>.txt``
artifact, an ``out/<id>.json`` holding a flat list of metric records:

    {"schema": "repro-bench/1",
     "experiment": "FIG1_breakdown_medium",
     "records": [{"name": "...", "metric": "...", "value": 1.23,
                  "units": "s"}, ...]}

so CI jobs and dashboards can consume results without screen-scraping
the rendered tables.  Keep records scalar: one (name, metric, value,
units) tuple per measured quantity.

Two robustness guarantees for downstream consumers (in particular
``benchmarks/check_regression.py``):

* **atomic writes** — the payload lands in a same-directory temp file
  first and is moved into place with ``os.replace``, so a reader can
  never observe a torn, half-written JSON file;
* **schema tagging** — every file carries ``"schema": "repro-bench/1"``;
  consumers reject files with a missing or different tag instead of
  silently comparing against stale or foreign data.

Every emission is also **dual-written** into the columnar telemetry
store (``repro.obs.store``) as a ``bench`` segment, so benchmark
history is queryable next to campaign and serve telemetry
(``python -m repro.obs query <store> bench --where
'experiment==PERF_store_ingest'``).  The store root defaults to
``out/telemetry``; override it with ``REPRO_BENCH_STORE=<dir>`` or set
the variable to an empty string to disable the dual write.  The JSON
file stays the source of truth: a store failure never fails a bench.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Dict, Iterable, Union

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Version tag stamped into (and required from) every emitted file.
SCHEMA = "repro-bench/1"

_FIELDS = ("name", "metric", "value", "units")


def record(
    name: str, metric: str, value: Union[int, float], units: str
) -> Dict[str, Union[str, float]]:
    """One measured quantity as a JSON-able dict."""
    return {
        "name": str(name),
        "metric": str(metric),
        "value": float(value),
        "units": str(units),
    }


def emit(
    experiment_id: str, records: Iterable[Dict[str, Union[str, float]]]
) -> pathlib.Path:
    """Write ``out/<experiment_id>.json`` atomically and return its path."""
    rows = list(records)
    if not rows:
        raise ValueError("a benchmark must emit at least one record")
    for row in rows:
        missing = [field for field in _FIELDS if field not in row]
        if missing:
            raise ValueError(f"record {row!r} is missing {missing}")
    payload = {"schema": SCHEMA, "experiment": experiment_id, "records": rows}
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{experiment_id}.json"
    # write-temp-then-rename: a crash mid-write leaves the previous file
    # intact, and no reader ever sees a partial payload
    fd, tmp_name = tempfile.mkstemp(
        dir=OUT_DIR, prefix=f".{experiment_id}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _dual_write(payload)
    return path


def _dual_write(payload: Dict) -> None:
    """Mirror one emission into the telemetry store (best effort)."""
    store_root = os.environ.get("REPRO_BENCH_STORE", str(OUT_DIR / "telemetry"))
    if not store_root:
        return
    try:
        from repro.obs.ingest import ingest_bench_payload
        from repro.obs.store import TelemetryStore

        ingest_bench_payload(
            TelemetryStore(store_root), payload, meta={"source": "emit"}
        )
    except Exception:
        # the JSON artifact is the source of truth; a store problem
        # (missing repro on sys.path, foreign manifest) must not fail
        # the benchmark that produced a perfectly good emission
        pass


def load(path: Union[str, pathlib.Path]) -> Dict:
    """Read one emitted file, validating its schema tag.

    Raises ``ValueError`` for unparseable (e.g. torn, pre-atomic-write)
    files and for payloads whose schema tag is missing or unexpected.
    """
    p = pathlib.Path(path)
    try:
        payload = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{p}: not valid JSON (torn or corrupt file?): {exc}")
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
        raise ValueError(
            f"{p}: missing or unexpected schema tag "
            f"{payload.get('schema') if isinstance(payload, dict) else None!r} "
            f"(expected {SCHEMA!r}); refusing to compare stale data"
        )
    for key in ("experiment", "records"):
        if key not in payload:
            raise ValueError(f"{p}: payload has no {key!r} field")
    return payload
