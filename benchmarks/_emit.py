"""Machine-readable benchmark output shared by every bench_*.py.

Each benchmark writes, alongside its human-readable ``out/<id>.txt``
artifact, an ``out/<id>.json`` holding a flat list of metric records:

    {"experiment": "FIG1_breakdown_medium",
     "records": [{"name": "...", "metric": "...", "value": 1.23,
                  "units": "s"}, ...]}

so CI jobs and dashboards can consume results without screen-scraping
the rendered tables.  Keep records scalar: one (name, metric, value,
units) tuple per measured quantity.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, Union

OUT_DIR = pathlib.Path(__file__).parent / "out"

_FIELDS = ("name", "metric", "value", "units")


def record(
    name: str, metric: str, value: Union[int, float], units: str
) -> Dict[str, Union[str, float]]:
    """One measured quantity as a JSON-able dict."""
    return {
        "name": str(name),
        "metric": str(metric),
        "value": float(value),
        "units": str(units),
    }


def emit(
    experiment_id: str, records: Iterable[Dict[str, Union[str, float]]]
) -> pathlib.Path:
    """Write ``out/<experiment_id>.json`` and return its path."""
    rows = list(records)
    if not rows:
        raise ValueError("a benchmark must emit at least one record")
    for row in rows:
        missing = [field for field in _FIELDS if field not in row]
        if missing:
            raise ValueError(f"record {row!r} is missing {missing}")
    payload = {"experiment": experiment_id, "records": rows}
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{experiment_id}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
