"""TAB2 — communication speed parameters (Table 2).

Runs the ping-pong microbenchmark on each simulated platform and fits
observed bandwidth (a1) and per-message latency (b1), regenerating the
observed columns of Table 2 next to the hardware peaks.
"""

import pytest

from _emit import emit, record
from repro.platforms import format_table2, table2

#: Paper values: (peak MB/s, observed MB/s, observed latency seconds).
PAPER = {
    "t3e": (350, 100, 12e-6),
    "j90": (2000, 3, 10e-3),
    "slow-cops": (10, 3, 10e-3),
    "smp-cops": (50, 15, 25e-6),
    "fast-cops": (125, 30, 15e-6),
}


def render(rows) -> str:
    lines = [
        "Table 2) communication speed parameters (ping-pong microbenchmark)",
        format_table2(rows),
        "",
        "the J90 anomaly: a >1 GB/s crossbar observed at 3 MB/s through "
        "PVM/Sciddle — the middleware, not the hardware, sets a1.",
    ]
    return "\n".join(lines)


def test_bench_table2(benchmark, artifact):
    rows = benchmark.pedantic(table2, rounds=1, iterations=1)
    artifact("TAB2_comm_speed", render(rows))
    emit(
        "TAB2_comm_speed",
        [record(r.platform, "observed_bandwidth", r.observed_mbps, "MB/s")
         for r in rows]
        + [record(r.platform, "message_latency", r.latency_s, "s")
           for r in rows],
    )

    by_name = {r.platform: r for r in rows}
    for name, (peak, observed, latency) in PAPER.items():
        row = by_name[name]
        assert row.peak_mbps == pytest.approx(peak)
        assert row.observed_mbps == pytest.approx(observed, rel=0.02)
        assert row.latency_s == pytest.approx(latency, rel=0.02)
    # ordering facts the prediction relies on
    assert by_name["t3e"].observed_mbps > by_name["fast-cops"].observed_mbps
    assert by_name["j90"].latency_s > 100 * by_name["smp-cops"].latency_s
