"""T26A — data-structure growth table (Section 2.6, first table).

Regenerates the space-complexity table for the large example (6289 mass
centers): pair list, atom coordinates, atom gradients, atom interaction
tables, energy values — and the per-server scaling the paper highlights.
"""

import pytest

from _emit import emit, record
from repro.core.space import SpaceModel
from repro.opal.complexes import LARGE, MEDIUM, SMALL


def build():
    return {spec.name: SpaceModel(spec) for spec in (SMALL, MEDIUM, LARGE)}


def render(models) -> str:
    lines = [
        "Section 2.6) data structure sizes [bytes]",
        f"{'structure':<24s}" + "".join(f"{n:>16s}" for n in models),
    ]
    keys = [
        "pair list",
        "atom coordinates",
        "atom gradients",
        "atom interactions",
        "energy values",
    ]
    tables = {n: m.table() for n, m in models.items()}
    for k in keys:
        lines.append(
            f"{k:<24s}" + "".join(f"{tables[n][k]:16,.0f}" for n in tables)
        )
    lines.append("")
    lines.append("per-server pair list share, large complex:")
    large = models["large"]
    for p in (1, 2, 4, 8):
        lines.append(
            f"  p={p}: {large.pair_list_per_server(p) / 1e6:8.1f} MByte"
        )
    return "\n".join(lines)


def test_bench_table_space(benchmark, artifact):
    models = benchmark.pedantic(build, rounds=1, iterations=1)
    artifact("T26A_space_table", render(models))
    emit(
        "T26A_space_table",
        [record(name, "pair_list_total", m.pair_list_total(), "bytes")
         for name, m in models.items()]
        + [record(f"large/p={p}", "pair_list_per_server",
                  models["large"].pair_list_per_server(p), "bytes")
           for p in (1, 2, 4, 8)],
    )

    large = models["large"]
    # the paper's printed example: pair list ~160 MB at 6290 centers
    assert large.pair_list_total() == pytest.approx(160e6, rel=0.10)
    # coordinates/gradients are linear in n (paper's order column typo)
    assert large.coordinates() == 24 * LARGE.n
    assert large.energy_values() == 16
    # the list scales down linearly with servers; global data does not
    assert large.pair_list_per_server(4) == large.pair_list_total() / 4
    ws_diff = large.server_working_set(1) - large.server_working_set(8)
    assert ws_diff == pytest.approx(large.pair_list_total() * 7 / 8, rel=1e-9)
