"""FIG4 — measured vs model-predicted wall-clock times (Figure 4).

Runs the reduced 7 * 2^(3-1) design on the simulated Cray J90, fits the
analytical model by least squares (Section 2.5) and reports per-case
measured/predicted differences — the data behind Figure 4a-d.  The
acceptance criterion is the paper's: "the overall fit of the model to
the measurement ... is excellent".
"""

import numpy as np

from _emit import emit, record
from repro.analysis import residuals_table
from repro.analysis.figures import figure4_calibration


def render(result, rows) -> str:
    lines = [
        "Figure 4) difference between measured and model-predicted times "
        "(J90, reduced design)",
        "",
        residuals_table(rows),
        "",
        "fitted platform parameters (least squares over the design):",
        f"  a1 = {result.params.a1 / 1e6:8.3f} MByte/s   "
        f"b1 = {result.params.b1 * 1e3:8.3f} ms",
        f"  a2 = {result.params.a2:.3e} s  a3 = {result.params.a3:.3e} s  "
        f"a4 = {result.params.a4:.3e} s",
        f"  b5 = {result.params.b5 * 1e3:8.3f} ms",
        "",
        "component fit quality (R^2): "
        + "  ".join(f"{k}={v:.4f}" for k, v in sorted(result.r2.items())),
        f"mean relative error over the design: "
        f"{100 * result.mean_relative_error():.2f}%",
    ]
    return "\n".join(lines)


def test_bench_fig4(benchmark, artifact):
    result, rows = benchmark.pedantic(
        figure4_calibration, rounds=1, iterations=1
    )
    artifact("FIG4_calibration", render(result, rows))
    emit(
        "FIG4_calibration",
        [record("reduced-design", "mean_relative_error",
                result.mean_relative_error(), "fraction")]
        + [record(f"component-{k}", "r_squared", v, "dimensionless")
           for k, v in sorted(result.r2.items())],
    )

    assert len(rows) == 28
    assert result.mean_relative_error() < 0.08
    assert all(v > 0.95 for v in result.r2.values())
    rel = np.array([abs(r["relative_error"]) for r in rows])
    assert np.median(rel) < 0.06
