"""T26B — working set vs computational rate (Section 2.6, second table).

Reruns the paper's memory-hierarchy probe: the dominant Opal loop
(comp_nbint) timed on the 200 MHz Pentium node at three working-set
sizes — in cache (50 KB), in core (8 MB), out of core (120 MB) — through
the simulated node's rate model, and checks the go/no-go consequence for
the paper's complexes.
"""

import pytest

from _emit import emit, record
from repro.core.space import SpaceModel
from repro.netsim import Compute
from repro.opal.complexes import LARGE
from repro.platforms import SLOW_COPS

WORKING_SETS = {"in cache": 50e3, "in core": 8e6, "out of core": 120e6}
PAPER_RATES = {"in cache": 35.0, "in core": 32.0, "out of core": 8.0}


def run_probe():
    """Time a fixed kernel slice at each working-set size on one node."""
    rates = {}
    for label, ws in WORKING_SETS.items():
        cluster = SLOW_COPS.build_cluster(1, trace=False)
        flops = 64e6  # a fixed comp_nbint slice

        def body(ctx):
            yield Compute(flops=flops, working_set=ws)

        cluster.spawn("probe", cluster.nodes[0], body)
        t = cluster.run()
        rates[label] = flops / t / 1e6
    return rates


def render(rates) -> str:
    lines = [
        "Section 2.6) working set vs computational rate "
        "(comp_nbint on Pentium 200)",
        f"{'regime':<14s} {'working set':>12s} {'MFlop/s':>9s} "
        f"{'paper':>7s} {'relative':>9s}",
    ]
    base = rates["in core"]
    for label, ws in WORKING_SETS.items():
        lines.append(
            f"{label:<14s} {ws/1e3:>10.0f}KB {rates[label]:9.1f} "
            f"{PAPER_RATES[label]:7.1f} {rates[label]/base:9.2f}"
        )
    model = SpaceModel(LARGE)
    lines.append("")
    lines.append(
        "consequence: large-complex server working sets on a 64 MB node:"
    )
    for p in (1, 2, 4):
        ws = model.server_working_set(p)
        regime = SLOW_COPS.memory.regime(ws)
        lines.append(f"  p={p}: {ws/1e6:7.1f} MB -> {regime}")
    return "\n".join(lines)


def test_bench_table_memhier(benchmark, artifact):
    rates = benchmark.pedantic(run_probe, rounds=1, iterations=1)
    artifact("T26B_memhier_table", render(rates))
    emit(
        "T26B_memhier_table",
        [record(label.replace(" ", "-"), "compute_rate", rate, "MFlop/s")
         for label, rate in rates.items()],
    )

    # the paper's 35 / 32 / 8 MFlop/s row
    for label, expected in PAPER_RATES.items():
        assert rates[label] == pytest.approx(expected, rel=0.03), label
    # "the performance breakdown for the out of core case is so drastic"
    assert rates["in core"] / rates["out of core"] == pytest.approx(4.0, rel=0.05)
    # blocking for cache would buy under 10%: "not beneficial"
    assert rates["in cache"] / rates["in core"] < 1.12
