"""FIG3 — the calibration parameter space (Figure 3).

Regenerates the design the calibration walks: three complexes x two
cutoffs x two update frequencies x seven server counts = the paper's 84
experiments, plus the published 7 * 2^(3-1) fraction, plus a sign-table
factor analysis showing which factors dominate the response (the paper's
"maximum information with the minimum number of experiments" argument).
"""

from _emit import emit, record
from repro.analysis.figures import figure3_parameter_space
from repro.core.model import OpalPerformanceModel
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.experiments import (
    Factor,
    full_factorial,
    reduced_design,
    sign_table_effects,
)
from repro.opal.complexes import LARGE, MEDIUM
from repro.platforms import CRAY_J90


def build():
    full = figure3_parameter_space()
    reduced = reduced_design()

    # factor analysis on predicted response over the 2^4 corner design
    factors = [
        Factor("servers", (1, 7)),
        Factor("molecule", (MEDIUM, LARGE)),
        Factor("cutoff", (10.0, None)),
        Factor("update_interval", (10, 1)),
    ]
    rows = full_factorial(factors)
    model = OpalPerformanceModel(ModelPlatformParams.from_spec(CRAY_J90))
    responses = [
        model.predict_total(
            ApplicationParams(
                molecule=r["molecule"],
                steps=10,
                servers=r["servers"],
                cutoff=r["cutoff"],
                update_interval=r["update_interval"],
            )
        )
        for r in rows
    ]
    effects = sign_table_effects(factors, rows, responses)
    return full, reduced, effects


def render(full, reduced, effects) -> str:
    lines = [
        "Figure 3) parameter space of the Opal calibration",
        f"  full factorial design: {len(full)} experiments "
        "(7 servers x 3 sizes x 2 cutoffs x 2 update frequencies)",
        f"  published reduced design: {len(reduced)} experiments (7 * 2^(3-1))",
        "",
        "  factor/interaction effects on predicted t_OPAL (J90):",
    ]
    for e in effects[:6]:
        lines.append(
            f"    {e.name:<28s} effect {e.effect:+9.3f} s   "
            f"variation {100 * e.variation_explained:5.1f}%"
        )
    lines.append("")
    lines.append("  first 8 cells of the full design:")
    for case in full[:8]:
        lines.append(f"    {case.label}")
    return "\n".join(lines)


def test_bench_fig3(benchmark, artifact):
    full, reduced, effects = benchmark.pedantic(build, rounds=1, iterations=1)
    artifact("FIG3_parameter_space", render(full, reduced, effects))
    emit(
        "FIG3_parameter_space",
        [record("full-factorial", "design_cells", len(full), "experiments"),
         record("reduced", "design_cells", len(reduced), "experiments")]
        + [record(e.name, "variation_explained", e.variation_explained,
                  "fraction")
           for e in effects[:6]],
    )

    assert len(full) == 84
    assert len(reduced) == 28
    # the cutoff factor dominates the response (quadratic vs linear work)
    assert effects[0].name in ("cutoff", "molecule", "cutoff*molecule", "molecule*cutoff")
