"""EXT4 — real physics through the middleware: one code path, two faces.

Runs genuine parallel molecular dynamics (coordinates, partial energies
and gradients in the RPC payloads) on the simulated platforms and shows
the central consistency property of this reproduction: the *physics* is
bit-identical across server counts and platforms (same trajectory, same
energies), while the *performance* differs exactly as the paper's
platform comparison predicts.
"""

import numpy as np

from _emit import emit, record
from repro.opal.complexes import ComplexSpec
from repro.opal.minimize import steepest_descent
from repro.opal.pairlist import VerletPairList
from repro.opal.parallel_physics import run_parallel_opal_physics
from repro.opal.system import build_system
from repro.platforms import CRAY_J90, FAST_COPS

STEPS, DT = 4, 0.0005


def build():
    spec = ComplexSpec("ext4", protein_atoms=20, waters=60, density=0.033)
    base = build_system(spec, seed=6)
    steepest_descent(base, VerletPairList(base, cutoff=None), max_steps=100)

    runs = {}
    for platform in (CRAY_J90, FAST_COPS):
        for p in (1, 2, 4):
            r = run_parallel_opal_physics(
                base.copy(), servers=p, platform=platform,
                steps=STEPS, dt=DT, cutoff=8.0,
            )
            runs[(platform.name, p)] = r
    return runs


def render(runs) -> str:
    lines = [
        "EXT4) real parallel MD over the simulated middleware",
        f"  {'platform':<10s} {'p':>2s} {'E_total(final)':>16s} "
        f"{'virtual wall [s]':>17s}",
    ]
    for (name, p), r in runs.items():
        lines.append(
            f"  {name:<10s} {p:2d} {r.records[-1].e_total:16.6f} "
            f"{r.wall_time:17.4f}"
        )
    lines.append("")
    lines.append("  identical energies everywhere; only the clock differs —")
    lines.append("  physics and performance share one client/server code path.")
    lines.append("  (the toy size sits below every isoefficiency curve, so the")
    lines.append("  latency-heavy J90 actually loses time to parallelism here)")
    return "\n".join(lines)


def test_bench_ext_physics_parallel(benchmark, artifact):
    runs = benchmark.pedantic(build, rounds=1, iterations=1)
    artifact("EXT4_physics_parallel", render(runs))
    emit(
        "EXT4_physics_parallel",
        [record(f"{name}/p={p}", "virtual_wall_time", r.wall_time, "s")
         for (name, p), r in runs.items()],
    )

    energies = [r.records[-1].e_total for r in runs.values()]
    # the physics is independent of p and platform
    assert np.allclose(energies, energies[0], rtol=1e-9)
    coords = [r.final_coords for r in runs.values()]
    for c in coords[1:]:
        assert np.allclose(c, coords[0], atol=1e-8)
    # the performance is not: fast CoPs beat the J90 at every p
    for p in (1, 2, 4):
        assert (
            runs[("fast-cops", p)].wall_time < runs[("j90", p)].wall_time
        )
    # an 80-center toy problem sits far below every isoefficiency curve:
    # parallelizing it HURTS on the latency-heavy J90 (consistent with
    # EXT1's isoefficiency analysis, not a bug)
    assert runs[("j90", 4)].wall_time > runs[("j90", 1)].wall_time
    assert (
        runs[("fast-cops", 4)].wall_time
        < 2.0 * runs[("fast-cops", 1)].wall_time
    )