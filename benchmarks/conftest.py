"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The
rendered artifact is printed (visible with ``pytest -s``) and written to
``benchmarks/out/<experiment>.txt`` so EXPERIMENTS.md can reference the
latest run.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def artifact():
    """Writer fixture: call with (experiment_id, text)."""

    def write(experiment_id: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"{experiment_id}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {experiment_id} =====")
        print(text)

    return write
