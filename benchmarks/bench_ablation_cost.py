"""ABL5 — cost effectiveness (the paper's "most cost effective platform").

The paper's stated goal includes finding the most *cost effective*
platform; its conclusion argues the clusters of PCs free the expensive
vector machines for work that needs them.  This ablation ranks the five
platforms by best predicted time x rough acquisition cost for both
workload regimes.
"""

from _emit import emit, record
from repro.core.parameters import ApplicationParams
from repro.core.prediction import cost_effectiveness, predict_platforms
from repro.opal.complexes import MEDIUM
from repro.platforms import ALL_PLATFORMS

COSTS = {p.name: p.approx_cost_kusd for p in ALL_PLATFORMS}


def build():
    out = {}
    for label, cutoff in (("no cutoff", None), ("10 A cutoff", 10.0)):
        app = ApplicationParams(molecule=MEDIUM, steps=10, cutoff=cutoff)
        series = predict_platforms(ALL_PLATFORMS, app, range(1, 8))
        out[label] = cost_effectiveness(series, COSTS)
    return out


def render(out) -> str:
    lines = [
        "ABL5) cost effectiveness: best predicted time x acquisition cost",
        "      (costs are our rough 1998 estimates, see platform catalog)",
    ]
    for label, rows in out.items():
        lines.append(f"  {label}:")
        for r in rows:
            lines.append(
                f"    {r.platform:<10s} best {r.best_time:7.2f}s x "
                f"{r.cost_kusd:6.0f}k$ = {r.time_cost_product:10.0f}"
            )
    return "\n".join(lines)


def test_bench_ablation_cost(benchmark, artifact):
    out = benchmark.pedantic(build, rounds=1, iterations=1)
    artifact("ABL5_cost_effectiveness", render(out))
    emit(
        "ABL5_cost_effectiveness",
        [record(f"{label}/{r.platform}", "time_cost_product",
                r.time_cost_product, "s*kUSD")
         for label, rows in out.items() for r in rows],
    )

    for rows in out.values():
        ranking = [r.platform for r in rows]
        # every cluster of PCs is more cost effective than both big irons
        for cops in ("slow-cops", "smp-cops", "fast-cops"):
            for iron in ("j90", "t3e"):
                assert ranking.index(cops) < ranking.index(iron)
