"""ABL7 — sampled rates vs counted rates (Section 3.2).

"Sampled computation rates are no substitute for the simple ratio of
operations counted divided by the cycles used."  We run an instrumented
Opal simulation, then measure its compute rate both ways: the exact
counter ratio, and a sampling profiler probing the execution trace at
several granularities and grid offsets.  Fine sampling converges;
realistic (coarse) sampling scatters by tens of percent and aliases
against the application's periodic phase structure — the paper's
distrust, quantified.
"""

import numpy as np

from _emit import emit, record
from repro.core.parameters import ApplicationParams
from repro.hpm.sampling import SamplingMonitor, counter_rate
from repro.opal.complexes import SMALL
from repro.opal.parallel import run_parallel_opal
from repro.platforms import CRAY_J90


def build():
    app = ApplicationParams(molecule=SMALL, steps=8, servers=3, cutoff=None)
    result = run_parallel_opal(app, CRAY_J90, keep_cluster=True)
    node = result.cluster.nodes[1]  # server0's node
    snap = node.hpm.snapshot()
    truth = counter_rate(snap.flops_counted, snap.busy_seconds)

    mon = SamplingMonitor(result.cluster.tracer, proc="server0")
    wall = result.wall_time
    estimates = {}
    for label, interval in (
        ("fine (1000 samples/s)", 0.001),
        ("medium (10 samples/s)", 0.1),
        ("coarse (2 samples/s)", 0.5),
    ):
        rates = []
        for phase in np.linspace(0.0, interval, 5, endpoint=False):
            est = mon.sample(interval=interval, phase=float(phase))
            rates.append(est.estimated_rate(snap.flops_counted, wall))
        rates = np.array(rates)
        estimates[label] = (float(rates.mean()), float(rates.std()))
    return truth, estimates


def render(truth, estimates) -> str:
    lines = [
        "ABL7) sampled vs counted compute rates (server0, J90 run)",
        f"  counter ratio (ground truth): {truth/1e6:8.2f} MFlop/s",
        "",
        f"  {'profiler':<24s} {'mean':>10s} {'spread':>9s} {'bias':>8s}",
    ]
    for label, (mean, std) in estimates.items():
        bias = (mean - truth) / truth
        lines.append(
            f"  {label:<24s} {mean/1e6:8.2f}M {std/1e6:7.2f}M {100*bias:+7.1f}%"
        )
    lines.append("")
    lines.append('  "no substitute for the simple ratio of operations counted')
    lines.append('   divided by the cycles used" — Section 3.2, confirmed.')
    return "\n".join(lines)


def test_bench_ablation_sampling(benchmark, artifact):
    truth, estimates = benchmark.pedantic(build, rounds=1, iterations=1)
    artifact("ABL7_sampling_vs_counting", render(truth, estimates))
    emit(
        "ABL7_sampling_vs_counting",
        [record("counter-ratio", "compute_rate", truth, "Flop/s")]
        + [record(label.split(" ")[0], "sampled_rate_mean", mean, "Flop/s")
           for label, (mean, _) in estimates.items()]
        + [record(label.split(" ")[0], "sampled_rate_spread", std, "Flop/s")
           for label, (_, std) in estimates.items()],
    )

    fine_mean, fine_std = estimates["fine (1000 samples/s)"]
    coarse_mean, coarse_std = estimates["coarse (2 samples/s)"]
    # fine sampling converges to the counter truth
    assert abs(fine_mean - truth) / truth < 0.02
    assert fine_std / truth < 0.02
    # coarse sampling is unstable across grid offsets and/or biased
    assert (coarse_std / truth > 0.05) or (abs(coarse_mean - truth) / truth > 0.05)