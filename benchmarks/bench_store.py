"""PERF — telemetry store ingest and query throughput.

The columnar store (``repro.obs.store``) is the single sink for every
telemetry producer in the repo — campaign cells, span rollups,
residuals, bench emissions, flight-recorded serve requests — so its
two hot paths get perf-gate coverage of their own:

* ``PERF_store_ingest`` — appending synthetic ``serve``-shaped
  segments (the widest shipped dataset: 6 float + 3 int columns),
  measured in rows/s over a fresh store per round;
* ``PERF_store_query`` — a filter + aggregate + group-by mix over a
  prebuilt store, measured in queries/s (each query re-scans the
  store from disk, which is the honest cost the CLI pays).

Both are min-of-``ROUNDS`` rates, higher is better.  The round-trip
contracts are asserted alongside the timing: two ingest rounds of the
same rows must produce bit-identical stores (``content_digest``), and
the timed aggregates must equal direct numpy reductions.
"""

import pathlib
import tempfile
import time

import numpy as np

from _emit import emit, record
from repro.obs.query import percentile, run_query
from repro.obs.store import TelemetryStore

#: rows per appended segment (one flight-recorder flush worth)
ROWS = 20_000
#: segments per ingest round
SEGMENTS = 8
#: timed queries per query round
QUERIES = 40
ROUNDS = 3


def synthetic_columns(rng, rows):
    """One serve-shaped segment of plausible per-request telemetry."""
    return {
        "t_admit": np.cumsum(rng.exponential(1e-4, rows)),
        "admit_us": rng.exponential(2.0, rows),
        "queue_us": rng.exponential(300.0, rows),
        "compute_us": rng.exponential(800.0, rows),
        "reply_us": rng.exponential(5.0, rows),
        "reply_s": rng.exponential(1.5e-3, rows),
        "depth": rng.integers(0, 512, rows),
        "status": rng.integers(0, 5, rows),
        "batch": rng.integers(1, 256, rows),
    }


def build_segments():
    """The identical row set every ingest round appends."""
    rng = np.random.default_rng(7)
    return [synthetic_columns(rng, ROWS) for _ in range(SEGMENTS)]


def ingest_round(root, segments):
    """Append every segment into a fresh store; returns (seconds, store)."""
    store = TelemetryStore(root)
    start = time.perf_counter()
    for columns in segments:
        store.append("serve", columns)
    return time.perf_counter() - start, store


def query_round(store):
    """The timed query mix; returns (seconds, last result set)."""
    start = time.perf_counter()
    for _ in range(QUERIES):
        flat = run_query(
            store,
            "serve",
            where="status==0 and depth<=256",
            agg="count(), mean(compute_us), p99(reply_s)",
        )
        grouped = run_query(store, "serve", agg="p50(queue_us)", by="status")
    return time.perf_counter() - start, (flat, grouped)


def render(ingest_rate, query_rate, total_rows) -> str:
    lines = [
        f"PERF_store) {SEGMENTS} segments x {ROWS} rows "
        f"({len(synthetic_columns(np.random.default_rng(0), 1))} columns), "
        f"min of {ROUNDS}",
        "",
        f"  ingest: {ingest_rate:12.0f} rows/s  "
        f"({total_rows} rows per round, fresh store each)",
        f"  query:  {query_rate:12.1f} queries/s  "
        f"(filter + 3 aggregates + group-by, {QUERIES} per round)",
    ]
    return "\n".join(lines)


def test_perf_store_ingest_and_query(artifact):
    segments = build_segments()
    total_rows = SEGMENTS * ROWS

    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        ingest_times = []
        digests = []
        store = None
        for i in range(ROUNDS):
            elapsed, store = ingest_round(root / f"round-{i}", segments)
            ingest_times.append(elapsed)
            digests.append(store.content_digest())

        # ingestion is deterministic: same rows, bit-identical store
        assert len(set(digests)) == 1
        assert store.rows("serve") == total_rows

        query_times = []
        for _ in range(ROUNDS):
            elapsed, (flat, grouped) = query_round(store)
            query_times.append(elapsed)

        # the timed aggregates must be the true ones, or the rate is
        # the throughput of a wrong answer
        table = store.scan("serve")
        mask = (table["status"] == 0) & (table["depth"] <= 256)
        assert flat.aggregates["count()"] == float(np.count_nonzero(mask))
        assert flat.aggregates["mean(compute_us)"] == float(
            np.mean(table["compute_us"][mask])
        )
        assert flat.aggregates["p99(reply_s)"] == percentile(
            table["reply_s"][mask], 0.99
        )
        assert len(grouped.groups) == 5  # one per status code

    ingest_rate = total_rows / min(ingest_times)
    query_rate = (2 * QUERIES) / min(query_times)

    artifact("PERF_store", render(ingest_rate, query_rate, total_rows))
    emit(
        "PERF_store_ingest",
        [record("synthetic-serve", "ingest_throughput", ingest_rate, "rows/s")],
    )
    emit(
        "PERF_store_query",
        [record("synthetic-serve", "query_throughput", query_rate, "queries/s")],
    )
