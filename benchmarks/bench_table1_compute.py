"""TAB1 — computation speed parameters (Table 1).

Runs the isolated Opal kernel microbenchmark (one no-cutoff non-bonded
energy evaluation of the medium complex) on a single node of each of the
five simulated platforms, reads the hardware counters, and normalizes to
the best compiler — regenerating every column of Table 1.
"""

import pytest

from _emit import emit, record
from repro.platforms import format_table1, table1

#: Paper values: exec time, MFlop counted, rate, adjusted rate.
PAPER = {
    "t3e": (9.56, 811.71, 85, 52),
    "j90": (6.18, 497.55, 80, 80),
    "slow-cops": (10.00, 327.40, 32, 50),
    "smp-cops": (5.00, 327.40, 65, 100),
    "fast-cops": (4.85, 325.80, 67, 102),
}


def render(rows) -> str:
    lines = [
        "Table 1) computation speed parameters "
        "(single-node Opal kernel microbenchmark)",
        format_table1(rows),
        "",
        "paper vs measured (rate MFlop/s, adjusted MFlop/s):",
    ]
    for r in rows:
        paper = PAPER[r.platform]
        lines.append(
            f"  {r.platform:<10s} paper {paper[2]:>4d}/{paper[3]:>4d}   "
            f"measured {r.rate_mflops:6.1f}/{r.adjusted_rate_mflops:6.1f}"
        )
    lines.append(
        "note: T3E relative time printed as 138% in the paper is "
        "inconsistent with its own adjusted rate; we report the "
        "self-consistent 163% (see EXPERIMENTS.md)"
    )
    return "\n".join(lines)


def test_bench_table1(benchmark, artifact):
    rows = benchmark.pedantic(table1, rounds=1, iterations=1)
    artifact("TAB1_compute_speed", render(rows))
    emit(
        "TAB1_compute_speed",
        [record(r.platform, "adjusted_rate", r.adjusted_rate_mflops, "MFlop/s")
         for r in rows]
        + [record(r.platform, "kernel_time", r.exec_time, "s") for r in rows],
    )

    by_name = {r.platform: r for r in rows}
    for name, (time, counted, rate, adjusted) in PAPER.items():
        row = by_name[name]
        assert row.exec_time == pytest.approx(time, rel=1e-6)
        assert row.mflop_counted == pytest.approx(counted, rel=1e-6)
        assert row.rate_mflops == pytest.approx(rate, abs=0.8)
        assert row.adjusted_rate_mflops == pytest.approx(adjusted, abs=1.0)
