"""ABL2 — the price of exact accounting (Section 3.3 ablation).

Runs identical Opal configurations with plain overlapped Sciddle and
with the paper's barrier-instrumented variant, quantifying the slowdown
accepted in exchange for separable response variables, as a function of
the server count.
"""

from _emit import emit, record
from repro.core.parameters import ApplicationParams
from repro.opal.parallel import run_parallel_opal
from repro.opal.complexes import LARGE
from repro.platforms import CRAY_J90
from repro.sciddle import overlap_slowdown


def build():
    rows = []
    for p in (1, 2, 3, 5, 7):
        app = ApplicationParams(molecule=LARGE, steps=5, servers=p, cutoff=None)
        acc = run_parallel_opal(app, CRAY_J90, sync_mode="accounted")
        ovl = run_parallel_opal(app, CRAY_J90, sync_mode="overlapped")
        rows.append(
            (p, ovl.wall_time, acc.wall_time,
             overlap_slowdown(acc.wall_time, ovl.wall_time))
        )
    return rows


def render(rows) -> str:
    lines = [
        "ABL2) accounting barriers vs overlap (J90, large complex, 5 steps)",
        f"{'p':>3s} {'overlapped[s]':>14s} {'accounted[s]':>13s} {'slowdown':>9s}",
    ]
    for p, ovl, acc, slow in rows:
        lines.append(f"{p:3d} {ovl:14.3f} {acc:13.3f} {100*slow:8.1f}%")
    lines.append("")
    lines.append(
        "the paper accepts <5% for 'a solid understanding of what is going"
    )
    lines.append(
        "on'; the cost grows with p because the end-of-phase barriers expose"
    )
    lines.append("the serialized single-client returns (they do not cause them).")
    return "\n".join(lines)


def test_bench_ablation_sync(benchmark, artifact):
    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    artifact("ABL2_sync_overhead", render(rows))
    emit(
        "ABL2_sync_overhead",
        [record(f"p={p}", "accounting_slowdown", slow, "fraction")
         for p, _, _, slow in rows],
    )

    by_p = {p: slow for p, _, _, slow in rows}
    assert all(slow >= -1e-9 for slow in by_p.values())
    assert by_p[2] < 0.05  # the paper's bound at modest p
    assert by_p[3] < 0.08
    assert by_p[7] < 0.20
    # monotone growth with p (more serialized returns exposed)
    assert by_p[7] > by_p[2]
