"""PERF_fleet_throughput — the fleet tier vs one process, plus chaos.

Two questions, one benchmark:

* **Does the fleet scale?**  The same compute-heavy seeded campaign
  (sweep-only queries, up to 32 servers per sweep) runs through one
  in-process service and through a 3-worker subprocess fleet.  On a
  multi-core host the fleet must deliver >= 2x the single-process
  throughput — three worker processes sidestep the GIL that pins one
  service to one core.  On the 1–2 core shared runners CI uses, the
  ratio is advisory only (reported, never asserted), because three
  workers time-slicing one core cannot beat one process on that core.

* **Does chaos cost correctness?**  A second burst SIGKILLs a worker
  mid-flight; the burst must still complete every request, and every
  completed response must be canonical-JSON bit-identical to a serial
  single-service oracle of the same schedule.

Records: fleet and single-process throughput (``req/s``, higher is
better under the perf gate), the speedup ratio, and the chaos burst's
completion count.
"""

import asyncio
import os

from _emit import emit, record
from repro.serve import api
from repro.serve.fleet import FleetSpec, ServeFleet
from repro.serve.loadgen import LoadSpec, build_schedule, run_open_loop
from repro.serve.router import FleetConfig
from repro.serve.service import PredictionService, ServeConfig

WORKERS = 3
#: sweep-only mix: real model compute on every request, so worker
#: processes — not router bookkeeping — dominate the wall clock
SPEC = LoadSpec(
    clients=8, requests_per_client=8, seed=5, sweep_fraction=1.0,
    max_servers=32,
)
CHAOS_SPEC = LoadSpec(
    clients=4, requests_per_client=8, seed=17, sweep_fraction=0.3
)
#: best-of-N wall-clock per mode (discounts scheduler hiccups)
ROUNDS = 2
#: required fleet / single-process ratio — asserted only with the
#: cores to back it (see module docstring)
MIN_RATIO = 2.0
MIN_CORES = 4

WIDE_OPEN = dict(max_queue_depth=10**6, rate=1e9, burst=10**6)
ROUTER_CONFIG = FleetConfig(rate=1e9, burst=10**6, max_queue_depth=10**6)


def run_single(schedule):
    """The whole campaign through one in-process service."""

    async def go():
        config = ServeConfig(max_batch=64, **WIDE_OPEN)
        async with PredictionService(config) as service:
            return await run_open_loop(service.submit, schedule)

    return asyncio.run(go())


def run_fleet(schedule, kill_slot=None, abort_after=None):
    """The campaign through a subprocess fleet, optionally with chaos."""

    async def go():
        spec = FleetSpec(workers=WORKERS, config=ROUTER_CONFIG)
        async with ServeFleet(spec) as fleet:

            async def chaos():
                fleet.kill_worker(kill_slot)

            report = await run_open_loop(
                fleet.router.submit,
                schedule,
                abort_after=abort_after if kill_slot is not None else None,
                abort=chaos if kill_slot is not None else None,
            )
            report.per_worker = fleet.router.worker_report()
            return report

    return asyncio.run(go())


def oracle(schedule):
    """Serial single-service ground truth (deadlines stripped)."""

    async def go():
        async with PredictionService(ServeConfig(**WIDE_OPEN)) as service:
            responses = {}
            for item in schedule:
                envelope = dict(item)
                envelope.pop("deadline", None)
                responses[envelope["id"]] = await service.submit(envelope)
            return responses

    return asyncio.run(go())


def best_of(runner, schedule, rounds=ROUNDS):
    best = None
    for _ in range(rounds):
        report = runner(schedule)
        if best is None or report.throughput > best.throughput:
            best = report
    return best


def build():
    schedule = build_schedule(SPEC)
    single = best_of(run_single, schedule)
    fleet = best_of(run_fleet, schedule)
    chaos_schedule = build_schedule(CHAOS_SPEC)
    chaos = run_fleet(
        chaos_schedule, kill_slot=0, abort_after=len(chaos_schedule) // 2
    )
    truth = oracle(chaos_schedule)
    return {
        "single": single,
        "fleet": fleet,
        "chaos": chaos,
        "oracle": truth,
    }


def render(runs) -> str:
    single, fleet, chaos = runs["single"], runs["fleet"], runs["chaos"]
    ratio = fleet.throughput / single.throughput
    cores = os.cpu_count() or 1
    gate = (
        f"required >= {MIN_RATIO:.0f}x"
        if cores >= MIN_CORES
        else f"advisory on {cores} core(s)"
    )
    lines = [
        f"PERF_fleet_throughput) {SPEC.clients} clients x "
        f"{SPEC.requests_per_client} sweep requests (seed {SPEC.seed}), "
        f"best of {ROUNDS}",
        "",
        f"  fleet ({WORKERS} workers): {fleet.throughput:8.1f} req/s   "
        f"wall {fleet.wall * 1e3:7.1f} ms",
        f"  single process:      {single.throughput:8.1f} req/s   "
        f"wall {single.wall * 1e3:7.1f} ms",
        f"  speedup: {ratio:.2f}x ({gate})",
        "",
        f"  chaos burst (w0 SIGKILLed mid-flight): {chaos.ok}/{chaos.sent} "
        "completed, all bit-identical to the serial oracle",
    ]
    return "\n".join(lines)


def test_bench_fleet(benchmark, artifact):
    runs = benchmark.pedantic(build, rounds=1, iterations=1)
    single, fleet, chaos = runs["single"], runs["fleet"], runs["chaos"]
    ratio = fleet.throughput / single.throughput
    artifact("PERF_fleet_throughput", render(runs))
    emit(
        "PERF_fleet_throughput",
        [
            record("fleet-3w", "throughput", fleet.throughput, "req/s"),
            record("single", "throughput", single.throughput, "req/s"),
            record("fleet-vs-single", "speedup", ratio, "ratio"),
            record("chaos-burst", "completed", chaos.ok, "requests"),
        ],
    )

    # both modes answer everything — nothing shed, nothing stuck
    for report in (single, fleet):
        assert report.ok == report.sent == len(report.responses)
    # fleet answers are bit-identical to the single process
    assert fleet.canonical_responses() == single.canonical_responses()

    # the scaling criterion only binds where the cores exist
    if (os.cpu_count() or 1) >= MIN_CORES:
        assert ratio >= MIN_RATIO, (
            f"{WORKERS}-worker fleet is only {ratio:.2f}x a single process "
            f"(required >= {MIN_RATIO:.0f}x)"
        )

    # chaos: the mid-burst SIGKILL must not lose or corrupt anything
    assert chaos.ok == chaos.sent, chaos.summary()
    truth = runs["oracle"]
    mismatched = [
        rid
        for rid, response in chaos.responses.items()
        if response.get("status") == api.OK
        and api.canonical(response) != api.canonical(truth[rid])
    ]
    assert mismatched == [], (
        f"{len(mismatched)} chaos responses diverged from the oracle"
    )
    # the dead worker's shard was absorbed, not dropped
    failed = sum(w["failed"] for w in chaos.per_worker.values())
    assert failed >= 1, "the SIGKILL must surface as failed forwards"
