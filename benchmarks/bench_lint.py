"""PERF — simlint whole-program analysis, cold versus incremental.

The linter's CI cost is dominated by parsing and re-deriving the
project index (symbol table, import graph, call graph) for every file
on every run.  The content-hash cache (``repro.lint.cache``) is
supposed to make the common case — nothing changed — almost free: a
warm run re-hashes each file, finds every digest and component key in
the cache, and replays recorded findings without parsing a single AST.

This benchmark times both paths over the real ``src/`` tree and emits
two experiments so the perf gate tracks them independently:

* ``PERF_lint_full`` — cold analysis, empty cache (seconds);
* ``PERF_lint_incremental`` — warm analysis, fully-primed cache
  (seconds).

Both are min-of-3 wall times, lower is better.  The headline
criterion, also asserted here, is that the warm run is at least
``MIN_SPEEDUP``x faster than the cold run — if the cache stops paying
for itself, the incremental CI story (docs/LINTING.md) is broken.
"""

import pathlib
import shutil
import tempfile
import time

from _emit import emit, record
from repro.lint import analyze

SRC = pathlib.Path(__file__).parent.parent / "src"
ROUNDS = 3
#: warm/cold wall-time ratio the cache must deliver on the src tree
MIN_SPEEDUP = 5.0


def timed_analyze(cache_dir):
    start = time.perf_counter()
    result = analyze([SRC], cache_dir=cache_dir)
    return time.perf_counter() - start, result


def render(cold, warm, speedup, stats_cold, stats_warm) -> str:
    lines = [
        "simlint over src/: cold vs incremental (min of "
        f"{ROUNDS}, seconds)",
        "",
        f"  cold (empty cache):   {cold:8.3f} s  "
        f"({stats_cold.files_checked}/{stats_cold.files_total} files, "
        f"{stats_cold.components_reanalyzed}/{stats_cold.components_total}"
        " components)",
        f"  warm (primed cache):  {warm:8.3f} s  "
        f"({stats_warm.files_checked}/{stats_warm.files_total} files, "
        f"{stats_warm.components_reanalyzed}/{stats_warm.components_total}"
        " components)",
        f"  speedup:              {speedup:8.1f} x  "
        f"(required >= {MIN_SPEEDUP:.0f}x)",
    ]
    return "\n".join(lines)


def test_perf_lint_cold_vs_incremental(artifact):
    with tempfile.TemporaryDirectory() as tmp:
        cache = pathlib.Path(tmp) / "simlint-cache"

        cold_times = []
        for _ in range(ROUNDS):
            shutil.rmtree(cache, ignore_errors=True)
            elapsed, cold_result = timed_analyze(cache)
            cold_times.append(elapsed)
        # the last cold round left a fully-primed cache behind
        warm_times = []
        for _ in range(ROUNDS):
            elapsed, warm_result = timed_analyze(cache)
            warm_times.append(elapsed)

    cold, warm = min(cold_times), min(warm_times)
    speedup = cold / warm

    # the two paths must agree byte-for-byte before the timing means
    # anything: a fast cache that replays the wrong findings is a bug,
    # not a speedup
    assert warm_result.findings == cold_result.findings
    assert cold_result.stats.files_checked == cold_result.stats.files_total > 0
    assert warm_result.stats.files_checked == 0
    assert warm_result.stats.components_reanalyzed == 0

    emit(
        "PERF_lint_full",
        [record("src-tree", "cold_analysis", cold, "s")],
    )
    emit(
        "PERF_lint_incremental",
        [record("src-tree", "warm_analysis", warm, "s")],
    )
    artifact(
        "PERF_lint",
        render(cold, warm, speedup, cold_result.stats, warm_result.stats),
    )

    assert speedup >= MIN_SPEEDUP, (
        f"incremental lint is only {speedup:.1f}x faster than cold "
        f"(required >= {MIN_SPEEDUP:.0f}x)"
    )
