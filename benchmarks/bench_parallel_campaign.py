"""PARALLEL — design execution over a process pool with result caching.

Runs the reduced 7 * 2^(3-1) design on the simulated J90 three ways —
serially, over a process pool, and again from a warm on-disk cache —
and verifies the engine's two contracts: parallel execution reproduces
the serial records bit for bit (content-derived per-cell seeds), and a
warm cache performs zero new simulations.
"""

import tempfile
import time

from _emit import emit, record
from repro.experiments import ExperimentRunner, reduced_design
from repro.platforms import CRAY_J90


def run_three_ways(cache_dir: str):
    design = reduced_design()
    timings = {}

    serial = ExperimentRunner(CRAY_J90)
    t0 = time.perf_counter()
    serial_records = serial.run_design(design)
    timings["serial"] = time.perf_counter() - t0

    parallel = ExperimentRunner(CRAY_J90, workers=4, cache_dir=cache_dir)
    t0 = time.perf_counter()
    parallel_records = parallel.run_design(design)
    timings["parallel (4 workers, cold cache)"] = time.perf_counter() - t0

    warm = ExperimentRunner(CRAY_J90, workers=4, cache_dir=cache_dir)
    t0 = time.perf_counter()
    warm_records = warm.run_design(design)
    timings["parallel (4 workers, warm cache)"] = time.perf_counter() - t0

    return design, timings, serial_records, parallel_records, warm_records, warm


def render(design, timings, warm_runner) -> str:
    lines = [
        f"reduced design: {len(design)} cells on the simulated J90",
        "",
    ]
    for label, seconds in timings.items():
        lines.append(f"  {label:<34s} {seconds * 1e3:9.1f} ms")
    lines.extend(
        [
            "",
            f"warm-cache run: {warm_runner.simulations_run} simulations, "
            f"cache {warm_runner.cache_stats}",
            "serial and parallel records are identical by construction: "
            "every cell's seed derives from its content, not its position.",
        ]
    )
    return "\n".join(lines)


def test_bench_parallel_campaign(benchmark, artifact):
    with tempfile.TemporaryDirectory() as cache_dir:
        design, timings, serial_records, parallel_records, warm_records, warm = (
            benchmark.pedantic(
                run_three_ways, args=(cache_dir,), rounds=1, iterations=1
            )
        )
        artifact("PARALLEL_campaign", render(design, timings, warm))
        emit(
            "PARALLEL_campaign",
            [record(label, "wall_time", seconds, "s")
             for label, seconds in timings.items()]
            + [record("warm-cache", "simulations_run",
                      warm.simulations_run, "count")],
        )

        for a, b in zip(serial_records, parallel_records):
            assert a.breakdown == b.breakdown
            assert a.wall_stats == b.wall_stats
        for a, b in zip(serial_records, warm_records):
            assert a.breakdown == b.breakdown
        assert warm.simulations_run == 0
        assert warm.cache_stats.misses == 0
        assert warm.cache_stats.hits == len(design)
