#!/usr/bin/env python
"""A real molecular-dynamics run with the Opal physics engine.

Synthesizes a small solvated peptide, performs energy minimization
(Opal's energy-refinement mode), then integrates Newton's equations with
velocity Verlet and prints what the real Opal displays at the end of
every simulation step: total energy, volume, pressure, temperature.
Finishes with the united-water-model comparison of Section 2.1.
"""

from repro.opal import (
    ComplexSpec,
    OpalSerial,
    VerletPairList,
    compare_water_models,
    mean_square_displacement,
    radial_distribution,
    record_dynamics,
    running_averages,
)


def main() -> None:
    spec = ComplexSpec(
        "demo", protein_atoms=60, waters=180, density=0.035,
        description="small solvated synthetic peptide",
    )
    print(f"complex: {spec.n} mass centers "
          f"({spec.protein_atoms} solute atoms + {spec.waters} waters), "
          f"box {spec.box_edge:.1f} A, gamma={spec.gamma:.3f}")

    driver = OpalSerial(spec, cutoff=9.0, update_interval=5, seed=2)

    print("\n-- energy minimization ------------------------------------")
    mres = driver.run_minimization(max_steps=150)
    print(f"E: {mres.initial_energy:12.1f} -> {mres.final_energy:10.2f} kcal/mol "
          f"in {mres.iterations} iterations (|grad| = {mres.gradient_norm:.2e})")

    print("\n-- molecular dynamics (NVE after thermalization) -----------")
    result = driver.run_dynamics(steps=25, dt=0.0005, temperature=80.0, seed=4)
    print(f"{'step':>4s} {'E_total':>12s} {'volume':>10s} {'pressure':>10s} {'T [K]':>8s}")
    for rec in result.records[::5] + [result.records[-1]]:
        print(
            f"{rec.step:4d} {rec.energy_total:12.3f} {rec.volume:10.0f} "
            f"{rec.pressure:10.4f} {rec.temperature:8.1f}"
        )
    print(f"relative energy drift over the run: {result.energy_drift():+.2e}")

    stats = driver.stats()
    print(f"\npair-list statistics: {stats.updates} updates, "
          f"{stats.candidates_checked:,} candidates checked, "
          f"{stats.pairs_evaluated:,} pair evaluations")

    print("\n-- structural observables -----------------------------------")
    rdf = radial_distribution(driver.system)
    peak_r, peak_g = rdf.first_peak()
    print(f"solvent g(r): first peak at {peak_r:.2f} A, height {peak_g:.2f}")
    avg = running_averages(result, window=5)
    print(f"running <T> over the last window: {avg['temperature'][-1]:.1f} K")

    print("\n-- trajectory output -----------------------------------------")
    import tempfile

    vpl = VerletPairList(driver.system, cutoff=9.0, update_interval=5)
    traj = record_dynamics(
        driver.system, vpl, steps=10, dt=0.0005, temperature=80.0, stride=2
    )
    with tempfile.NamedTemporaryFile(suffix=".xyz", delete=False) as fh:
        path = fh.name
    traj.write_xyz(path)
    msd = mean_square_displacement(traj.frames, dt=2 * 0.0005)
    print(f"{len(traj)} frames written to {path}")
    print(f"solvated-system MSD after the recording: {msd.msd[-1]:.2e} A^2 "
          f"(D ~ {msd.diffusion_coefficient():.2e} A^2/time)")

    print("\n-- the united-water optimization (Section 2.1) --------------")
    cmp_ = compare_water_models(spec, cutoff=9.0)
    print(f"mass centers: {cmp_.n_explicit} (3-site water) -> {cmp_.n_united} (united)")
    print(f"energy-evaluation workload reduced by {100*cmp_.workload_reduction:.0f}%")
    print(f"pair-list update work reduced by {100*cmp_.update_reduction:.0f}%")


if __name__ == "__main__":
    main()
