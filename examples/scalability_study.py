#!/usr/bin/env python
"""Beyond the paper: scalability questions the model can now answer.

Four studies the paper implies but does not run:

1. **Saturation at scale** — out to 32 servers, where does each platform
   stop improving?
2. **Isoefficiency** — how big must the problem grow to keep 50%
   efficiency as processors are added?
3. **Parallelization alternatives** — would space or force decomposition
   (Section 2.1's alternatives) have served Opal better than its
   replicated-data scheme?
4. **The imbalance-aware model** — feeding the discovered even-p anomaly
   back into the model removes its largest residuals.
"""

from repro.core.extended import ImbalanceAwareModel, residual_improvement
from repro.core.isoefficiency import isoefficiency_curve
from repro.core.model import OpalPerformanceModel
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.core.prediction import predict_platforms
from repro.opal.complexes import MEDIUM
from repro.opal.decomposition import compare_decompositions
from repro.opal.parallel import run_parallel_opal
from repro.platforms import ALL_PLATFORMS, CRAY_J90, CRAY_T3E


def main() -> None:
    app = ApplicationParams(molecule=MEDIUM, steps=10, cutoff=10.0)

    print("-- 1. saturation out to 32 servers (10 A cutoff) --------------")
    series = predict_platforms(ALL_PLATFORMS, app, (1, 2, 4, 7, 12, 20, 32))
    for name, s in series.items():
        print(f"  {name:<10s} best {s.best_time:6.2f}s at p={s.saturation:2d}"
              f"   t(32)={s.times[-1]:7.2f}s")

    print("\n-- 2. isoefficiency: n needed for 50% efficiency ---------------")
    for spec in (CRAY_J90, CRAY_T3E):
        model = OpalPerformanceModel(ModelPlatformParams.from_spec(spec))
        pts = isoefficiency_curve(model, app, servers=(4, 8, 16), target=0.5)
        cells = ", ".join(
            f"p={pt.servers}: n={pt.n_required if pt.n_required else 'unreachable'}"
            for pt in pts
        )
        print(f"  {spec.name:<10s} {cells}")

    print("\n-- 3. RD vs SD vs FD on the J90 --------------------------------")
    out = compare_decompositions(
        ModelPlatformParams.from_spec(CRAY_J90), app, (1, 4, 7, 16)
    )
    print(f"  {'method':<8s}" + "".join(f"{f'p={p}':>9s}" for p in (1, 4, 7, 16)))
    for method, rows in out.items():
        print(f"  {method:<8s}" + "".join(f"{r.total:9.2f}" for r in rows))
    print("  (Opal's RD is fine at the paper's scale; the middleware makes")
    print("   the scalable decompositions win beyond a handful of servers)")

    print("\n-- 4. the imbalance-aware model --------------------------------")
    params = ModelPlatformParams.from_spec(CRAY_J90)
    observations = []
    for p in range(1, 8):
        a = app.with_(servers=p, cutoff=None)
        observations.append((a, run_parallel_opal(a, CRAY_J90).breakdown))
    errs = residual_improvement(
        OpalPerformanceModel(params),
        ImbalanceAwareModel(params, defect=0.1),
        observations,
    )
    print(f"  mean |relative error|, even p: {100*errs['basic_even']:.1f}% (paper model)"
          f" -> {100*errs['extended_even']:.1f}% (with imbalance term)")
    print(f"  mean |relative error|, odd p:  {100*errs['basic_odd']:.1f}%"
          f" -> {100*errs['extended_odd']:.1f}%")


if __name__ == "__main__":
    main()
