#!/usr/bin/env python
"""The full Section 2.3/2.5 measurement and calibration campaign.

1. Checks measurement reproducibility (the preliminary repetition test).
2. Runs the published 7 * 2^(3-1) reduced factorial design on the
   simulated Cray J90 with the instrumented middleware.
3. Fits all six platform parameters by least squares.
4. Reports fit quality per component and the Figure 4 residuals.
5. Runs a sign-table factor analysis over a 2^4 corner design (which
   factor moves execution time the most?).
6. Re-runs the design over a 4-worker process pool with an on-disk
   result cache — identical records, and a warm second pass performs
   zero new simulations.
"""

import tempfile
import time

from repro.analysis import residuals_table
from repro.core.calibration import calibrate, residual_table
from repro.core.model import OpalPerformanceModel
from repro.core.parameters import ApplicationParams
from repro.experiments import (
    ExperimentCase,
    ExperimentRunner,
    Factor,
    full_factorial,
    reduced_design,
    sign_table_effects,
)
from repro.opal.complexes import LARGE, MEDIUM
from repro.platforms import CRAY_J90


def main() -> None:
    runner = ExperimentRunner(CRAY_J90, repetitions=1, jitter_sigma=0.004)

    print("-- reproducibility probe (Section 2.3) ----------------------")
    probe = runner.variability_probe(
        ExperimentCase(molecule=MEDIUM, servers=4, cutoff=10.0, update_interval=1),
        repetitions=8,
    )
    print(f"8 repetitions: mean {probe.mean:.3f}s, CV {100*probe.coefficient_of_variation:.2f}%"
          f" -> reproducible: {probe.reproducible()}")

    print("\n-- running the reduced 7*2^(3-1) design ----------------------")
    design = reduced_design()
    observations = runner.observations(design)
    print(f"{len(observations)} experiments executed on the simulated J90")

    result = calibrate(observations, name="j90-calibrated")
    p = result.params
    print("\nfitted platform parameters:")
    print(f"  a1 = {p.a1/1e6:7.3f} MByte/s (paper's Table 2 observed: 3)")
    print(f"  b1 = {p.b1*1e3:7.3f} ms")
    print(f"  a2 = {p.a2:.3e} s/pair-check")
    print(f"  a3 = {p.a3:.3e} s/pair-energy  "
          f"(-> {p.compute_rate_mflops():.1f} MFlop/s algorithmic)")
    print(f"  a4 = {p.a4:.3e} s/atom")
    print(f"  b5 = {p.b5*1e3:7.3f} ms/barrier")
    print("component R^2: "
          + "  ".join(f"{k}={v:.4f}" for k, v in sorted(result.r2.items())))
    print(f"mean relative error: {100*result.mean_relative_error():.2f}% "
          "(the paper calls its fit 'excellent')")

    print("\n-- Figure 4 residuals ----------------------------------------")
    print(residuals_table(residual_table(result, observations)[:14]))
    print("  ... (first 14 of 28 cases)")

    print("\n-- factor analysis (Jain ch. 16 sign table) -------------------")
    factors = [
        Factor("servers", (1, 7)),
        Factor("molecule", (MEDIUM, LARGE)),
        Factor("cutoff", (10.0, None)),
        Factor("update_interval", (10, 1)),
    ]
    rows = full_factorial(factors)
    model = OpalPerformanceModel(p)
    y = [
        model.predict_total(
            ApplicationParams(
                molecule=r["molecule"], steps=10, servers=r["servers"],
                cutoff=r["cutoff"], update_interval=r["update_interval"],
            )
        )
        for r in rows
    ]
    for e in sign_table_effects(factors, rows, y)[:6]:
        print(f"  {e.name:<28s} effect {e.effect:+8.2f}s  "
              f"explains {100*e.variation_explained:5.1f}% of variation")

    print("\n-- parallel execution with result caching ---------------------")
    with tempfile.TemporaryDirectory() as cache_dir:
        par = ExperimentRunner(
            CRAY_J90,
            repetitions=1,
            jitter_sigma=0.004,
            workers=4,
            cache_dir=cache_dir,
            progress=lambda done, total, rec: (
                print(f"  {done}/{total} cells done") if done % 14 == 0 else None
            ),
        )
        t0 = time.perf_counter()
        par_records = par.run_design(design)
        cold = time.perf_counter() - t0
        same = all(
            a.breakdown == b[1]
            for a, b in zip(par_records, observations)
        )
        print(f"4 workers, cold cache: {cold*1e3:.0f} ms "
              f"({par.simulations_run} simulations); identical to serial: {same}")

        warm = ExperimentRunner(
            CRAY_J90, repetitions=1, jitter_sigma=0.004,
            workers=4, cache_dir=cache_dir,
        )
        t0 = time.perf_counter()
        warm.run_design(design)
        print(f"4 workers, warm cache: {(time.perf_counter()-t0)*1e3:.0f} ms "
              f"({warm.simulations_run} simulations, cache {warm.cache_stats})")


if __name__ == "__main__":
    main()
