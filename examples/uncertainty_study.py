#!/usr/bin/env python
"""How certain is "predict with good certainty"?

The paper asserts its model predicts alternative platforms "with good
certainty" without quantifying it.  This study does: a bootstrap over
the measured factorial design yields confidence intervals for every
fitted platform parameter and prediction bands for the headline curves,
and a replicated ANOVA (Jain ch. 18) separates real factor effects from
experimental error.
"""

from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.core.uncertainty import bootstrap_calibration
from repro.experiments import (
    ExperimentRunner,
    Factor,
    full_factorial,
    reduced_design,
    replicated_anova,
)
from repro.opal.complexes import MEDIUM
from repro.opal.parallel import run_parallel_opal
from repro.platforms import CRAY_J90


def main() -> None:
    print("-- bootstrap over the measured design --------------------------")
    runner = ExperimentRunner(CRAY_J90, jitter_sigma=0.006, seed=5)
    observations = runner.observations(reduced_design())
    boot = bootstrap_calibration(observations, n_bootstrap=120, seed=7)
    truth = ModelPlatformParams.from_spec(CRAY_J90)
    print(f"{'param':>6s} {'estimate':>12s} {'95% interval':>28s} {'truth':>12s}")
    for name, iv in boot.intervals.items():
        print(
            f"{name:>6s} {iv.estimate:12.4g} "
            f"[{iv.lower:12.4g}, {iv.upper:12.4g}] {getattr(truth, name):12.4g}"
        )

    print("\n-- prediction bands ---------------------------------------------")
    for p in (2, 5, 7):
        app = ApplicationParams(molecule=MEDIUM, steps=10, servers=p, cutoff=10.0)
        point, lower, upper = boot.predict_band(app)
        width = 100 * (upper - lower) / point
        print(f"  p={p}: t = {point:6.3f} s  [{lower:6.3f}, {upper:6.3f}]"
              f"  (band width {width:.1f}%)")

    print("\n-- replicated ANOVA: factor effects vs experimental error ------")
    factors = [Factor("servers", (2, 6)), Factor("cutoff", (10.0, None))]
    rows = full_factorial(factors)
    responses = []
    for row in rows:
        cell = []
        for rep in range(3):
            app = ApplicationParams(
                molecule=MEDIUM, steps=3, servers=row["servers"],
                cutoff=row["cutoff"],
            )
            cell.append(
                run_parallel_opal(
                    app, CRAY_J90, seed=rep * 31, jitter_sigma=0.006
                ).wall_time
            )
        responses.append(cell)
    result = replicated_anova(factors, rows, responses)
    for e in result.effects:
        flag = "significant" if e.significant else "noise"
        print(f"  {e.name:<18s} effect {e.effect:+8.3f}s  "
              f"explains {100*e.variation_explained:5.1f}%  [{flag}]")
    print(f"  experimental error: {100*result.error_variation:.2f}% of variation")


if __name__ == "__main__":
    main()
