#!/usr/bin/env python
"""Quickstart: predict Opal's performance on a platform in ten lines.

Builds the analytical model for the Cray J90 from its catalog data,
predicts the execution-time breakdown of a medium-complex simulation,
then validates the prediction against a full simulated run of the
client/server program over the Sciddle/PVM middleware.
"""

from repro import ApplicationParams, MEDIUM, ModelPlatformParams, OpalPerformanceModel, get_platform
from repro.opal import run_parallel_opal


def main() -> None:
    j90 = get_platform("j90")
    model = OpalPerformanceModel(ModelPlatformParams.from_spec(j90))

    app = ApplicationParams(
        molecule=MEDIUM,  # Antennapedia/DNA: 4289 mass centers
        steps=10,
        servers=4,
        cutoff=10.0,  # the effective cutoff radius [Angstrom]
        update_interval=1,  # full pair-list update every step
    )

    predicted = model.breakdown(app)
    print(f"predicted t_OPAL on {j90.label}: {predicted.total:.2f} s")
    for category, seconds in predicted.as_dict(merge_par=True).items():
        print(f"  {category:<10s} {seconds:8.3f} s")

    result = run_parallel_opal(app, j90)
    print(f"\nsimulated (measured) wall time:   {result.wall_time:.2f} s")
    err = (result.wall_time - predicted.total) / result.wall_time
    print(f"model vs measurement difference:  {100 * err:+.1f}%")
    print(f"server load imbalance (max/mean): {result.imbalance:.3f}")

    print("\nexecution times over 1..7 servers (model):")
    for p, t in zip(range(1, 8), model.execution_times(app, range(1, 8))):
        print(f"  p={p}: {t:7.2f} s")


if __name__ == "__main__":
    main()
