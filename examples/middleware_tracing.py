#!/usr/bin/env python
"""Middleware instrumentation in action (Chapter 3 of the paper).

Runs the same Opal configuration twice over the Sciddle middleware:

* ``overlapped`` — plain Sciddle: asynchronous RPCs overlap freely, the
  run is fastest, but per-category accounting is impossible (everything
  the client waits for lands in one conflated bucket);
* ``accounted`` — the paper's modification: explicit PVM barriers at
  every phase boundary separate communication, computation,
  synchronization and idle time exactly, for a small slowdown.

Then prints a Gantt chart of the accounted run — the even-server-count
load imbalance is visible as idle stripes — and the hardware-counter
readings that expose the platform-dependent flop counts of Section 3.2.
Both runs are also captured through the observability layer and written
as ``middleware_tracing.trace.json``, a Chrome trace-event file you can
drop into https://ui.perfetto.dev to see the spans and the causal
send->recv arrows (see ``docs/OBSERVABILITY.md``).
"""

import pathlib

from repro import ApplicationParams, MEDIUM
from repro.obs import ObsSession
from repro.opal import run_parallel_opal
from repro.platforms import CRAY_J90, FAST_COPS
from repro.sciddle import overlap_slowdown

TRACE_PATH = pathlib.Path(__file__).with_name("middleware_tracing.trace.json")


def main() -> None:
    app = ApplicationParams(molecule=MEDIUM, steps=3, servers=4, cutoff=None)
    obs = ObsSession(label="middleware_tracing")

    print("-- overlap vs accounting (Section 3.3) -----------------------")
    ovl = run_parallel_opal(
        app, CRAY_J90, sync_mode="overlapped", obs=obs, run_label="overlapped"
    )
    acc = run_parallel_opal(
        app,
        CRAY_J90,
        sync_mode="accounted",
        keep_cluster=True,
        obs=obs,
        run_label="accounted",
    )
    slow = overlap_slowdown(acc.wall_time, ovl.wall_time)
    print(f"overlapped wall time: {ovl.wall_time:7.3f} s "
          f"(barriers executed: {ovl.barriers_executed})")
    print(f"accounted wall time:  {acc.wall_time:7.3f} s "
          f"(barriers executed: {acc.barriers_executed})")
    print(f"accounting sacrifice: {100*slow:.1f}% "
          "(the paper accepts <5% for exact accounting)")

    print("\noverlapped mode can only report conflated client phases:")
    for k, v in sorted(ovl.client_phases.items()):
        print(f"  {k:<18s} {v:8.3f} s")
    print("('comm:return_nbi' silently contains the servers' compute time!)")

    print("\naccounted mode separates the paper's five response variables:")
    for k, v in acc.breakdown.as_dict(merge_par=True).items():
        print(f"  {k:<10s} {v:8.3f} s")

    print("\n-- Gantt chart of the accounted run (c=compute, s=send,")
    print("   r=recv wait, i=idle, y=sync) — note the idle stripes on the")
    print("   lightly-loaded servers of this EVEN server count:")
    chart = acc.cluster.tracer.gantt(width=68)
    chart = chart.replace("recv_wait"[0], "r")
    print(chart)

    print("\n-- hardware counters (Section 3.2) ----------------------------")
    for platform in (CRAY_J90, FAST_COPS):
        r = run_parallel_opal(app, platform)
        print(f"  {platform.label:<48s} counted {r.flops_counted/1e6:9.1f} MFlop")
    print("identical results, different counted operations — vectorizing")
    print("transformations and intrinsics expand differently per platform.")

    obs.export_chrome(TRACE_PATH)
    print("\n-- observability ---------------------------------------------")
    print(f"wrote {TRACE_PATH.name}: {len(obs.tracer.spans)} spans, "
          f"{len(obs.tracer.flows)} causal message edges across "
          f"{len(obs.tracer.runs())} runs")
    print("open it in https://ui.perfetto.dev (or chrome://tracing);")
    print("inspect it offline with: python -m repro.obs summarize "
          + TRACE_PATH.name)


if __name__ == "__main__":
    main()
