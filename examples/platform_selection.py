#!/usr/bin/env python
"""The paper's headline study: which platform should run Opal?

"The primary goal of our study was to find the most suitable and most
cost effective hardware platform for the application."  Predicts
execution times and speedups for the Cray J90 (reference), the Cray
T3E-900 and the three Clusters of PCs, for the medium and large
complexes with and without cutoff, and ranks the platforms by absolute
performance and by cost effectiveness.
"""

from repro import ApplicationParams, LARGE, MEDIUM
from repro.analysis import curve_table
from repro.core.prediction import cost_effectiveness, predict_platforms
from repro.platforms import ALL_PLATFORMS

SERVERS = tuple(range(1, 8))


def study(molecule, cutoff, label):
    app = ApplicationParams(molecule=molecule, steps=10, cutoff=cutoff)
    series = predict_platforms(ALL_PLATFORMS, app, SERVERS)
    print(curve_table({n: s.times for n, s in series.items()}, SERVERS,
                      f"predicted execution time [s] — {label}"))
    print()
    for name, s in series.items():
        note = ""
        if s.slowdown_beyond_saturation():
            note = f"  <- saturates at p={s.saturation}, then SLOWS DOWN"
        print(f"  {name:<10s} best {s.best_time:7.2f}s at p={s.saturation}"
              f"  speedup(7)={s.speedups[-1]:4.2f}{note}")
    print()
    return series


def main() -> None:
    print("=" * 72)
    series = {}
    series["medium/no-cutoff"] = study(MEDIUM, None, "medium complex, no cutoff")
    series["medium/cutoff"] = study(MEDIUM, 10.0, "medium complex, 10 A cutoff")
    series["large/cutoff"] = study(LARGE, 10.0, "large complex, 10 A cutoff")

    print("=" * 72)
    print("cost effectiveness (best time x rough acquisition cost, lower wins):")
    costs = {p.name: p.approx_cost_kusd for p in ALL_PLATFORMS}
    for row in cost_effectiveness(series["medium/cutoff"], costs):
        print(
            f"  {row.platform:<10s} best {row.best_time:6.2f}s  "
            f"~{row.cost_kusd:6.0f} k$  ->  {row.time_cost_product:10.0f}"
        )

    print()
    print("conclusion (matches the paper): a well designed cluster of PCs")
    print("achieves similar if not better performance than the J90, and its")
    print("computational efficiency compares favorably to the T3E-900.")


if __name__ == "__main__":
    main()
