"""Tests of the top-level public API, units and error hierarchy."""

import subprocess
import sys

import pytest

import repro
from repro import errors, units


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_docstring_example():
    from repro import (
        ApplicationParams,
        MEDIUM,
        ModelPlatformParams,
        OpalPerformanceModel,
        get_platform,
    )

    app = ApplicationParams(molecule=MEDIUM, steps=10, servers=4, cutoff=10.0)
    model = OpalPerformanceModel(
        ModelPlatformParams.from_spec(get_platform("j90"))
    )
    assert round(model.predict_total(app), 1) == pytest.approx(7.6, abs=0.2)


def test_lazy_opal_exports():
    import repro.opal

    assert callable(repro.opal.run_parallel_opal)
    assert callable(repro.opal.run_parallel_opal_physics)
    with pytest.raises(AttributeError):
        repro.opal.definitely_not_a_symbol


# ----------------------------------------------------------------------
def test_error_hierarchy():
    assert issubclass(errors.SimulationError, errors.ReproError)
    assert issubclass(errors.DeadlockError, errors.SimulationError)
    assert issubclass(errors.PastEventError, errors.SimulationError)
    assert issubclass(errors.CalibrationError, errors.ModelError)
    assert issubclass(errors.LintError, errors.ReproError)
    for name in (
        "PvmError",
        "SciddleError",
        "PlatformError",
        "WorkloadError",
        "DesignError",
    ):
        assert issubclass(getattr(errors, name), errors.ReproError)


def test_past_event_error_names_both_instants():
    err = errors.PastEventError(1.5, 2.0)
    assert err.time == 1.5
    assert err.now == 2.0
    assert "1.5" in str(err) and "2.0" in str(err)


def test_lint_public_api():
    from repro.lint import Finding, all_rules, run_checks

    assert callable(run_checks)
    codes = {cls.code for cls in all_rules()}
    assert {"D101", "P201", "M301"} <= codes
    f = Finding(path="x.py", line=3, col=0, code="D101", message="m")
    assert f.format() == "x.py:3:D101 m"


def test_library_raises_only_repro_errors_for_bad_input():
    from repro import ApplicationParams, MEDIUM

    with pytest.raises(errors.ReproError):
        ApplicationParams(molecule=MEDIUM, steps=-1)
    from repro.platforms import get_platform

    with pytest.raises(errors.ReproError):
        get_platform("deep-thought")


# ----------------------------------------------------------------------
def test_unit_conversions_roundtrip():
    assert units.to_mbyte_per_s(units.mbyte_per_s(30)) == pytest.approx(30)
    assert units.to_mflop_per_s(units.mflop_per_s(85)) == pytest.approx(85)
    assert units.usec(12) == pytest.approx(12e-6)
    assert units.msec(10) == pytest.approx(1e-2)
    assert units.ALPHA_BYTES_PER_ATOM == 24


# ----------------------------------------------------------------------
class TestCli:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            timeout=180,
        )

    def test_platforms_command(self):
        out = self.run_cli("platforms")
        assert out.returncode == 0
        assert "Cray J90" in out.stdout and "Myrinet" in out.stdout

    def test_predict_command(self):
        out = self.run_cli("predict", "--cutoff", "10", "--servers", "3")
        assert out.returncode == 0
        assert "relative speedup" in out.stdout
        assert "j90" in out.stdout

    def test_measure_command(self):
        out = self.run_cli(
            "measure", "--molecule", "small", "--servers", "2", "--steps", "3"
        )
        assert out.returncode == 0
        assert "measured breakdown" in out.stdout

    def test_tables_command(self):
        out = self.run_cli("tables")
        assert out.returncode == 0
        assert "497.55" in out.stdout  # J90 counted MFlop

    def test_calibrate_command(self):
        out = self.run_cli("calibrate")
        assert out.returncode == 0
        assert "mean relative error" in out.stdout
        assert "a1 = 3.000" in out.stdout

    def test_campaign_command(self):
        out = self.run_cli("campaign", "--servers", "3")
        assert out.returncode == 0
        assert "verdict:" in out.stdout
        assert "cost effectiveness" in out.stdout

    def test_bad_command_fails(self):
        out = self.run_cli("frobnicate")
        assert out.returncode != 0
