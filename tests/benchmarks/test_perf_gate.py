"""Tests for the benchmark emission layer and the perf-regression gate.

Covers the two robustness guarantees of ``benchmarks/_emit.py`` (atomic
writes, schema tagging) and the comparison semantics of
``benchmarks/check_regression.py`` (direction inferred from units,
tolerance, advisory vs strict exit codes, structural errors).
"""

import importlib.util
import json
import pathlib
import sys

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, BENCH_DIR / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    # check_regression does `from _emit import ...`; make it resolvable
    sys.path.insert(0, str(BENCH_DIR))
    try:
        spec.loader.exec_module(mod)
    finally:
        sys.path.remove(str(BENCH_DIR))
    return mod


emit_mod = _load("_emit")
gate = _load("check_regression")


def write_payload(path, records, experiment="PERF_x", schema=emit_mod.SCHEMA):
    payload = {"schema": schema, "experiment": experiment, "records": records}
    path.write_text(json.dumps(payload))


def rec(name, metric, value, units):
    return {"name": name, "metric": metric, "value": value, "units": units}


# ----------------------------------------------------------------------
# _emit: atomic write + schema validation
# ----------------------------------------------------------------------
def test_emit_roundtrips_through_load(tmp_path, monkeypatch):
    monkeypatch.setattr(emit_mod, "OUT_DIR", tmp_path)
    path = emit_mod.emit("PERF_demo", [rec("a", "rate", 10.0, "events/s")])
    payload = emit_mod.load(path)
    assert payload["schema"] == emit_mod.SCHEMA
    assert payload["experiment"] == "PERF_demo"
    assert payload["records"] == [rec("a", "rate", 10.0, "events/s")]
    # no temp droppings left behind
    assert list(tmp_path.glob(".*.tmp")) == []


def test_emit_rejects_incomplete_records(tmp_path, monkeypatch):
    monkeypatch.setattr(emit_mod, "OUT_DIR", tmp_path)
    with pytest.raises(ValueError, match="missing"):
        emit_mod.emit("PERF_demo", [{"name": "a", "metric": "m"}])
    with pytest.raises(ValueError, match="at least one"):
        emit_mod.emit("PERF_demo", [])


def test_load_rejects_torn_file(tmp_path):
    torn = tmp_path / "torn.json"
    torn.write_text('{"schema": "repro-bench/1", "experiment": "x", "rec')
    with pytest.raises(ValueError, match="torn or corrupt"):
        emit_mod.load(torn)


def test_load_rejects_wrong_schema(tmp_path):
    p = tmp_path / "old.json"
    write_payload(p, [rec("a", "m", 1.0, "s")], schema="repro-bench/0")
    with pytest.raises(ValueError, match="schema tag"):
        emit_mod.load(p)


def test_load_rejects_untagged_legacy_file(tmp_path):
    p = tmp_path / "legacy.json"
    p.write_text(json.dumps({"experiment": "x", "records": []}))
    with pytest.raises(ValueError, match="schema tag"):
        emit_mod.load(p)


# ----------------------------------------------------------------------
# check_regression: comparison semantics
# ----------------------------------------------------------------------
@pytest.fixture()
def dirs(tmp_path):
    base = tmp_path / "baselines"
    out = tmp_path / "out"
    base.mkdir()
    out.mkdir()
    return base, out


def run_gate(base, out, *extra):
    return gate.main([*extra, "--baselines", str(base), "--out", str(out)])


def test_direction_from_units():
    assert gate.higher_is_better("events/s")
    assert gate.higher_is_better("configs/s")
    assert not gate.higher_is_better("s")
    assert not gate.higher_is_better("bytes")


def test_rate_drop_is_a_regression(dirs, capsys):
    base, out = dirs
    write_payload(base / "PERF_a.json", [rec("x", "rate", 100.0, "events/s")])
    write_payload(out / "PERF_a.json", [rec("x", "rate", 50.0, "events/s")])
    assert run_gate(base, out) == 1
    assert "REGRESSED" in capsys.readouterr().out


def test_time_rise_is_a_regression(dirs):
    base, out = dirs
    write_payload(base / "PERF_a.json", [rec("x", "host", 1.0, "s")])
    write_payload(out / "PERF_a.json", [rec("x", "host", 1.5, "s")])
    assert run_gate(base, out) == 1


def test_faster_in_both_directions_passes(dirs, capsys):
    base, out = dirs
    write_payload(
        base / "PERF_a.json",
        [rec("x", "rate", 100.0, "events/s"), rec("x", "host", 1.0, "s")],
    )
    write_payload(
        out / "PERF_a.json",
        [rec("x", "rate", 250.0, "events/s"), rec("x", "host", 0.5, "s")],
    )
    assert run_gate(base, out) == 0
    assert "improved" in capsys.readouterr().out


def test_within_tolerance_passes(dirs):
    base, out = dirs
    write_payload(base / "PERF_a.json", [rec("x", "host", 1.0, "s")])
    write_payload(out / "PERF_a.json", [rec("x", "host", 1.10, "s")])
    assert run_gate(base, out) == 0  # 10% < 15% default tolerance


def test_tolerance_flag_tightens_gate(dirs):
    base, out = dirs
    write_payload(base / "PERF_a.json", [rec("x", "host", 1.0, "s")])
    write_payload(out / "PERF_a.json", [rec("x", "host", 1.10, "s")])
    assert run_gate(base, out, "--tolerance", "0.05") == 1


def test_advisory_mode_reports_but_passes(dirs, capsys):
    base, out = dirs
    write_payload(base / "PERF_a.json", [rec("x", "host", 1.0, "s")])
    write_payload(out / "PERF_a.json", [rec("x", "host", 9.0, "s")])
    assert run_gate(base, out, "--advisory") == 0
    out_text = capsys.readouterr().out
    assert "REGRESSED" in out_text
    assert "advisory" in out_text


def test_missing_measurement_is_structural(dirs):
    base, out = dirs
    write_payload(base / "PERF_a.json", [rec("x", "host", 1.0, "s")])
    assert run_gate(base, out) == 2


def test_units_change_is_structural(dirs):
    base, out = dirs
    write_payload(base / "PERF_a.json", [rec("x", "host", 1.0, "s")])
    write_payload(out / "PERF_a.json", [rec("x", "host", 1.0, "ms")])
    assert run_gate(base, out) == 2


def test_unknown_experiment_is_structural(dirs):
    base, out = dirs
    write_payload(base / "PERF_a.json", [rec("x", "host", 1.0, "s")])
    write_payload(out / "PERF_a.json", [rec("x", "host", 1.0, "s")])
    assert run_gate(base, out, "PERF_nonexistent") == 2


def test_selecting_one_experiment(dirs):
    base, out = dirs
    write_payload(base / "PERF_ok.json", [rec("x", "host", 1.0, "s")])
    write_payload(out / "PERF_ok.json", [rec("x", "host", 1.0, "s")])
    write_payload(base / "PERF_bad.json", [rec("x", "host", 1.0, "s")])
    write_payload(out / "PERF_bad.json", [rec("x", "host", 9.0, "s")])
    assert run_gate(base, out, "PERF_ok") == 0
    assert run_gate(base, out, "PERF_bad") == 1


def test_committed_baselines_are_schema_tagged():
    # the real committed baselines must always load cleanly
    baselines = sorted((BENCH_DIR / "baselines").glob("*.json"))
    assert baselines, "no committed baselines found"
    for p in baselines:
        payload = emit_mod.load(p)
        assert payload["records"], p


# ----------------------------------------------------------------------
# check_regression: --store mode
# ----------------------------------------------------------------------
def store_with(tmp_path, experiment, records):
    from repro.obs.ingest import ingest_bench_payload
    from repro.obs.store import TelemetryStore

    root = tmp_path / "telemetry"
    payload = {"schema": emit_mod.SCHEMA, "experiment": experiment,
               "records": records}
    ingest_bench_payload(TelemetryStore(root), payload)
    return root


def test_store_mode_reads_fresh_measurements(dirs, tmp_path):
    base, out = dirs
    write_payload(base / "PERF_a.json", [rec("x", "rate", 100.0, "events/s")])
    store = store_with(tmp_path, "PERF_a", [rec("x", "rate", 101.0, "events/s")])
    # no out/ file at all: the store is the only source, and it passes
    assert run_gate(base, out, "--store", str(store)) == 0


def test_store_mode_detects_regression(dirs, tmp_path):
    base, out = dirs
    write_payload(base / "PERF_a.json", [rec("x", "rate", 100.0, "events/s")])
    store = store_with(tmp_path, "PERF_a", [rec("x", "rate", 50.0, "events/s")])
    assert run_gate(base, out, "--store", str(store)) == 1


def test_store_mode_falls_back_to_files(dirs, tmp_path):
    base, out = dirs
    write_payload(base / "PERF_a.json", [rec("x", "rate", 100.0, "events/s")])
    write_payload(out / "PERF_a.json", [rec("x", "rate", 100.0, "events/s")])
    # a store that exists but has never seen PERF_a -> file fallback
    store = store_with(tmp_path, "PERF_other", [rec("y", "m", 1.0, "s")])
    assert run_gate(base, out, "--store", str(store)) == 0
    # a store directory that does not exist at all -> file fallback too
    assert run_gate(base, out, "--store", str(tmp_path / "nope")) == 0


def test_store_mode_uses_latest_emission(dirs, tmp_path):
    from repro.obs.ingest import ingest_bench_payload
    from repro.obs.store import TelemetryStore

    base, out = dirs
    write_payload(base / "PERF_a.json", [rec("x", "rate", 100.0, "events/s")])
    root = tmp_path / "telemetry"
    store = TelemetryStore(root)
    for value in (40.0, 110.0):  # stale regression, then a fresh pass
        ingest_bench_payload(
            store,
            {"schema": emit_mod.SCHEMA, "experiment": "PERF_a",
             "records": [rec("x", "rate", value, "events/s")]},
        )
    assert run_gate(base, out, "--store", str(root)) == 0
