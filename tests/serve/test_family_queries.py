"""Family queries on the serve path: answers, errors, calibration, mix."""

import asyncio

from repro.core.model import terms_breakdown
from repro.platforms import get_platform
from repro.serve import (
    LoadSpec,
    PredictionService,
    ServeClient,
    ServeConfig,
    build_schedule,
    run_open_loop,
)
from repro.serve.calibstore import CalibrationStore
from repro.workloads import get_family

WIDE_OPEN = dict(max_queue_depth=100000, rate=1e9, burst=10**6)


def run(coro):
    return asyncio.run(coro)


async def serve_one(service, envelope):
    async with service:
        return await ServeClient(service).request(envelope)


def family_envelope(kind="predict", rid="r", client="c", **query):
    q = {"platform": "fast-cops", "family": "collective",
         "spec": {"pattern": "broadcast"}}
    q.update(query)
    return {"kind": kind, "id": rid, "client": client, "query": q}


class TestFamilyAnswers:
    def test_collective_point_matches_terms_breakdown(self):
        response = run(
            serve_one(PredictionService(), family_envelope(servers=4))
        )
        assert response["status"] == 200
        family = get_family("collective")
        spec = family.spec_from_params({"pattern": "broadcast"})
        params = family.key_data_params(get_platform("fast-cops"))
        expected = terms_breakdown(params, family.terms(spec, 4))
        t1 = terms_breakdown(params, family.terms(spec, 1)).total
        result = response["result"]
        assert result["time"] == expected.total
        assert result["breakdown"] == expected.as_dict()
        assert result["speedup"] == t1 / expected.total
        assert result["family"] == "collective"
        assert result["spec"]["pattern"] == "broadcast"
        assert result["calibration"] == "key-data"

    def test_hpl_sweep_matches_terms_over_servers(self):
        envelope = family_envelope(
            kind="sweep", family="hpl", spec={"matrix_n": 128, "block": 32},
            servers=[1, 2, 4],
        )
        response = run(serve_one(PredictionService(), envelope))
        assert response["status"] == 200
        family = get_family("hpl")
        spec = family.spec_from_params({"matrix_n": 128, "block": 32})
        params = family.key_data_params(get_platform("fast-cops"))
        expected = [
            terms_breakdown(params, family.terms(spec, p)).total
            for p in (1, 2, 4)
        ]
        result = response["result"]
        assert result["times"] == expected
        assert result["family"] == "hpl"

    def test_family_less_query_keeps_v1_result_shape(self):
        # the classic opal wire format must not grow family/spec keys
        envelope = {"kind": "predict", "id": "r", "client": "c",
                    "query": {"platform": "j90", "molecule": "medium",
                              "servers": 4}}
        response = run(serve_one(PredictionService(), envelope))
        assert response["status"] == 200
        assert "family" not in response["result"]
        assert "spec" not in response["result"]


class TestFamilyErrors:
    def test_unit_suffix_in_spec_is_actionable_400(self):
        envelope = family_envelope(spec={"pattern": "broadcast",
                                         "message_bytes": "4 KB"})
        response = run(serve_one(PredictionService(), envelope))
        assert response["status"] == 400
        assert response["error"]["reason"] == "invalid-workload"
        detail = response["error"]["detail"]
        assert "unit suffixes are not accepted" in detail
        assert "message_bytes" in detail

    def test_unknown_family_lists_registered(self):
        envelope = family_envelope(family="colective")  # simlint: disable=W801
        response = run(serve_one(PredictionService(), envelope))
        assert response["status"] == 400
        assert response["error"]["reason"] == "invalid-workload"
        assert "collective" in response["error"]["detail"]

    def test_unknown_spec_field_names_accepted_fields(self):
        envelope = family_envelope(spec={"pattern": "broadcast",
                                         "msg_bytes": 64})
        response = run(serve_one(PredictionService(), envelope))
        assert response["status"] == 400
        assert response["error"]["reason"] == "invalid-workload"
        assert "message_bytes" in response["error"]["detail"]

    def test_opal_query_rejects_spec_object(self):
        envelope = {"kind": "predict", "id": "r", "client": "c",
                    "query": {"platform": "j90", "molecule": "medium",
                              "spec": {"pattern": "broadcast"}}}
        response = run(serve_one(PredictionService(), envelope))
        assert response["status"] == 400
        assert response["error"]["reason"] == "invalid-query"

    def test_family_query_rejects_opal_only_fields(self):
        envelope = family_envelope(molecule="medium")
        response = run(serve_one(PredictionService(), envelope))
        assert response["status"] == 400
        assert response["error"]["reason"] == "invalid-query"
        assert "molecule" in response["error"]["detail"]


class TestCalibratedFamily:
    def test_calibrated_point_bit_identical_across_batch_sizes(self, tmp_path):
        # the ISSUE acceptance criterion: same calibration disk cache,
        # blocking refresh, max_batch=1 vs 256 -> identical result bits
        envelope = family_envelope(servers=4, calibrated=True)

        async def serve_with(max_batch):
            service = PredictionService(
                config=ServeConfig(max_batch=max_batch, refresh="blocking",
                                   **WIDE_OPEN),
                calibrations=CalibrationStore(cache_dir=tmp_path),
            )
            async with service:
                return await ServeClient(service).request(envelope)

        a = run(serve_with(1))
        b = run(serve_with(256))
        assert a["status"] == b["status"] == 200
        assert a["result"] == b["result"]
        assert a["result"]["calibration"] == "calibrated"


class TestFamilyMix:
    def test_mix_schedule_is_deterministic_and_mixed(self):
        spec = LoadSpec(
            clients=4, requests_per_client=6, seed=3,
            family_mix={"opal": 0.4, "collective": 0.4, "hpl": 0.2},
        )
        a = build_schedule(spec)
        b = build_schedule(spec)
        assert a == b
        families = {e["query"].get("family", "opal") for e in a}
        assert families == {"opal", "collective", "hpl"}

    def test_no_mix_schedule_has_no_family_keys(self):
        schedule = build_schedule(
            LoadSpec(clients=4, requests_per_client=6, seed=3)
        )
        assert all("family" not in e["query"] for e in schedule)

    def test_mixed_campaign_bit_identical_across_batch_sizes(self):
        spec = LoadSpec(
            clients=4, requests_per_client=6, seed=7, sweep_fraction=0.25,
            family_mix={"opal": 0.5, "collective": 0.3, "hpl": 0.2},
        )

        async def campaign(max_batch):
            service = PredictionService(
                ServeConfig(max_batch=max_batch, **WIDE_OPEN)
            )
            async with service:
                return await run_open_loop(
                    ServeClient(service).request, build_schedule(spec)
                )

        batched = run(campaign(64))
        sequential = run(campaign(1))
        assert batched.ok == sequential.ok == 24
        assert (
            batched.canonical_responses() == sequential.canonical_responses()
        )
