"""Graceful-shutdown drain: no queued request is ever dropped.

The S702-adjacent bug this pins: an item ``put()`` concurrently with
``MicroBatcher.stop()`` can land *behind* the stop sentinel, where the
batch loop never picks it up — its future would hang forever.  The
drain contract now answers every such request deterministically with a
429 ``shed:drain``, and new submissions shed the same way the moment
draining begins.
"""

import asyncio

from repro.obs.monitor import SHED_STATUSES
from repro.serve import api
from repro.serve.batcher import MicroBatcher
from repro.serve.flight import STATUS_SHED_DRAIN, FlightRecorder
from repro.serve.service import PredictionService, ServeConfig, _Pending

WIDE_OPEN = dict(max_queue_depth=100000, rate=1e9, burst=10**6)


def run(coro):
    return asyncio.run(coro)


def predict_envelope(rid="r", client="c"):
    return {
        "kind": "predict",
        "id": rid,
        "client": client,
        "query": {"platform": "j90", "molecule": "small", "servers": 2},
    }


class TestBatcherDrain:
    def test_item_behind_sentinel_is_collected(self):
        async def main():
            dispatched = []

            async def dispatch(batch):
                dispatched.extend(batch)

            batcher = MicroBatcher(dispatch, max_batch=4, max_linger=0.0)
            batcher.start()
            batcher.put("early")
            stopping = asyncio.get_running_loop().create_task(batcher.stop())
            await asyncio.sleep(0)  # sentinel enqueued, loop draining
            batcher.put("late")  # races in behind the sentinel
            await stopping
            return dispatched, batcher.drain_pending()

        dispatched, leftovers = run(main())
        assert "early" in dispatched
        assert "late" not in dispatched
        assert leftovers == ["late"]

    def test_drain_pending_empty_after_clean_stop(self):
        async def main():
            async def dispatch(batch):
                pass

            batcher = MicroBatcher(dispatch, max_batch=4, max_linger=0.0)
            batcher.start()
            batcher.put("a")
            await batcher.stop()
            return batcher.drain_pending()

        assert run(main()) == []


class TestServiceDrain:
    def test_submit_during_drain_sheds_deterministically(self):
        async def main():
            service = PredictionService(ServeConfig(**WIDE_OPEN))
            await service.start()
            stopping = asyncio.get_running_loop().create_task(service.stop())
            await asyncio.sleep(0)  # stop() has set the draining flag
            response = await service.submit(predict_envelope())
            await stopping
            return response

        response = run(main())
        assert response["status"] == api.SHED
        assert response["error"]["reason"] == "shed:drain"

    def test_raced_pending_is_answered_not_hung(self):
        """A pending that lands behind the sentinel gets shed:drain."""

        async def main():
            flight = FlightRecorder()
            service = PredictionService(ServeConfig(**WIDE_OPEN), flight=flight)
            await service.start()
            loop = asyncio.get_running_loop()
            request = api.parse_request(predict_envelope(rid="raced"))
            now = loop.time()
            pending = _Pending(
                request, loop.create_future(), now, None, depth=1,
                admit_end=now,
            )
            stopping = loop.create_task(service.stop())
            await asyncio.sleep(0)
            service.batcher.put(pending)  # races in behind the sentinel
            await stopping
            assert pending.future.done(), "raced request would hang forever"
            return pending.future.result(), flight

        response, flight = run(main())
        assert response["status"] == api.SHED
        assert response["error"]["reason"] == "shed:drain"
        assert response["id"] == "raced"
        assert list(flight.snapshot()["status"]) == [STATUS_SHED_DRAIN]

    def test_queued_work_is_answered_before_stop_returns(self):
        """Everything ahead of the sentinel is served, not shed."""

        async def main():
            service = PredictionService(ServeConfig(**WIDE_OPEN))
            async with service:
                tasks = [
                    asyncio.ensure_future(
                        service.submit(predict_envelope(rid=f"q{i}"))
                    )
                    for i in range(8)
                ]
                responses = await asyncio.gather(*tasks)
            return responses

        responses = run(main())
        assert all(r["status"] == api.OK for r in responses)

    def test_drain_status_counts_as_shed_for_slo(self):
        assert STATUS_SHED_DRAIN in SHED_STATUSES

    def test_restart_clears_draining(self):
        async def main():
            service = PredictionService(ServeConfig(**WIDE_OPEN))
            await service.start()
            await service.stop()
            await service.start()
            response = await service.submit(predict_envelope())
            await service.stop()
            return response

        assert run(main())["status"] == api.OK
