"""Wire schema validation and the canonical JSON encoding."""

import json

import pytest

from repro.errors import ServeError
from repro.serve import api


def predict_envelope(**query):
    q = {"platform": "j90", "molecule": "medium", "servers": 4}
    q.update(query)
    return {"kind": "predict", "id": "r1", "client": "c0", "query": q}


class TestParseRequest:
    def test_minimal_predict(self):
        req = api.parse_request(predict_envelope())
        assert req.kind == "predict"
        assert req.client == "c0"
        assert req.query.platform == "j90"
        assert req.query.servers == 4
        assert req.arrival is None and req.deadline is None

    def test_ping_needs_no_query(self):
        req = api.parse_request({"kind": "ping", "id": "p"})
        assert req.kind == "ping" and req.query is None

    def test_sweep_defaults_to_paper_range(self):
        req = api.parse_request(
            {"kind": "sweep", "id": "s", "client": "c",
             "query": {"platform": "t3e", "molecule": "large"}}
        )
        assert req.query.servers == tuple(range(1, 8))

    def test_sweep_accepts_explicit_server_list(self):
        req = api.parse_request(
            {"kind": "sweep", "id": "s", "client": "c",
             "query": {"platform": "t3e", "molecule": "large",
                       "servers": [2, 4, 6]}}
        )
        assert req.query.servers == (2, 4, 6)

    def test_arrival_and_deadline_are_parsed(self):
        env = predict_envelope()
        env["arrival"] = 1.5
        env["deadline"] = 0.25
        req = api.parse_request(env)
        assert req.arrival == 1.5 and req.deadline == 0.25

    @pytest.mark.parametrize(
        "mutate, status, reason",
        [
            (lambda e: e.update(kind="frobnicate"), 400, "unknown-kind"),
            (lambda e: e.update(v=99), 400, "unsupported-version"),
            (lambda e: e.update(client=""), 400, "invalid-field"),
            (lambda e: e.update(deadline=-1), 400, "invalid-field"),
            (lambda e: e["query"].update(platform="vax"), 404, "unknown-platform"),
            (lambda e: e["query"].update(molecule="benzene"), 404, "unknown-molecule"),
            (lambda e: e["query"].update(servers=0), 400, "invalid-field"),
            (lambda e: e["query"].update(servers=True), 400, "invalid-field"),
            (lambda e: e["query"].update(cutoff=-3.0), 400, "invalid-field"),
            (lambda e: e["query"].update(wat=1), 400, "invalid-query"),
        ],
    )
    def test_invalid_requests_carry_status_and_reason(self, mutate, status, reason):
        env = predict_envelope()
        mutate(env)
        with pytest.raises(ServeError) as err:
            api.parse_request(env)
        assert err.value.status == status
        assert err.value.reason == reason

    def test_non_object_envelope_is_rejected(self):
        with pytest.raises(ServeError) as err:
            api.parse_request([1, 2, 3])
        assert err.value.status == 400


class TestComputeKey:
    def test_same_cell_different_servers_share_a_key(self):
        a = api.parse_request(predict_envelope(servers=1)).query
        b = api.parse_request(predict_envelope(servers=7)).query
        assert a.compute_key == b.compute_key

    def test_different_molecules_split_keys(self):
        a = api.parse_request(predict_envelope(molecule="small")).query
        b = api.parse_request(predict_envelope(molecule="large")).query
        assert a.compute_key != b.compute_key


class TestCanonical:
    def test_key_order_is_irrelevant(self):
        assert api.canonical({"b": 1, "a": 2}) == api.canonical({"a": 2, "b": 1})

    def test_round_trips_through_json(self):
        payload = api.ok_response("x", {"kind": "pong"})
        assert json.loads(api.canonical(payload)) == payload

    def test_no_whitespace(self):
        assert " " not in api.canonical({"a": [1, 2], "b": {"c": 3}})


class TestEnvelopes:
    def test_ok_response_shape(self):
        r = api.ok_response("id1", {"kind": "pong"})
        assert api.is_ok(r)
        assert r["v"] == api.WIRE_VERSION and r["id"] == "id1"

    def test_error_response_omits_duplicate_detail(self):
        r = api.error_response("id", 429, "shed:rate", "shed:rate")
        assert r["error"] == {"reason": "shed:rate"}
        assert not api.is_ok(r)

    def test_error_response_keeps_distinct_detail(self):
        r = api.error_response("id", 400, "invalid-field", "servers must be >= 1")
        assert r["error"]["detail"] == "servers must be >= 1"
