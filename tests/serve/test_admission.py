"""Token-bucket rate limiting and queue-bound shedding."""

import pytest

from repro.serve.admission import AdmissionController, TokenBucket


class TestTokenBucket:
    def test_burst_then_starve(self):
        bucket = TokenBucket(rate=10.0, burst=3)
        assert [bucket.admit(0.0) for _ in range(4)] == [True, True, True, False]

    def test_tokens_refill_with_time(self):
        bucket = TokenBucket(rate=10.0, burst=1)
        assert bucket.admit(0.0)
        assert not bucket.admit(0.0)
        assert bucket.admit(0.1)  # one token earned in 0.1s at 10/s

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        bucket.admit(0.0)
        bucket.admit(0.0)
        # a long quiet period earns at most `burst` tokens
        assert bucket.admit(100.0)
        assert bucket.admit(100.0)
        assert not bucket.admit(100.0)

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(rate=1000.0, burst=1)
        assert bucket.admit(5.0)
        # a stale stamp must not mint tokens
        assert not bucket.admit(4.0)
        assert not bucket.admit(5.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestAdmissionController:
    def test_clients_have_independent_buckets(self):
        ctrl = AdmissionController(rate=10.0, burst=1)
        assert ctrl.decide("a", 0.0, 0) is None
        assert ctrl.decide("a", 0.0, 0) == "rate"
        # a different client still has its full burst
        assert ctrl.decide("b", 0.0, 0) is None

    def test_queue_bound_sheds_before_rate(self):
        ctrl = AdmissionController(max_queue_depth=4, rate=1000.0, burst=100)
        assert ctrl.decide("a", 0.0, 3) is None
        assert ctrl.decide("a", 0.0, 4) == "queue"
        assert ctrl.decide("a", 0.0, 5) == "queue"

    def test_stats_track_every_decision(self):
        ctrl = AdmissionController(max_queue_depth=1, rate=10.0, burst=1)
        ctrl.decide("a", 0.0, 0)   # admitted
        ctrl.decide("a", 0.0, 0)   # rate-shed
        ctrl.decide("a", 0.0, 1)   # queue-shed
        assert ctrl.stats.as_dict() == {
            "admitted": 1,
            "shed_rate": 1,
            "shed_queue": 1,
        }

    def test_decisions_are_a_pure_function_of_the_timeline(self):
        # the determinism contract: same per-client (time, order) ->
        # same verdicts, no matter when the calls actually happen
        timeline = [("a", 0.00), ("a", 0.01), ("b", 0.00), ("a", 0.30),
                    ("b", 0.02), ("a", 0.31), ("b", 0.50)]

        def verdicts():
            ctrl = AdmissionController(rate=5.0, burst=1)
            return [ctrl.decide(c, t, 0) for c, t in timeline]

        assert verdicts() == verdicts()

    def test_rejects_bad_queue_depth(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=0)
