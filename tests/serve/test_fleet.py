"""Subprocess fleet: boot, chaos kill mid-burst, bit-identical answers.

This is the acceptance test for the fleet tier.  Real worker processes
are spawned (``python -m repro.serve serve`` on ephemeral ports), one
is SIGKILLed mid-burst, and every completed response must still be
canonical-JSON bit-identical to a serial single-service run of the
same schedule — the router's failover may change *who* answers, never
*what* is answered.
"""

import asyncio

from repro.serve import api
from repro.serve.fleet import FleetSpec, ServeFleet
from repro.serve.loadgen import LoadSpec, build_schedule, run_open_loop
from repro.serve.router import FleetConfig
from repro.serve.service import PredictionService, ServeConfig

WIDE_OPEN_ROUTER = FleetConfig(rate=1e9, burst=10**6, max_queue_depth=100000)


def run(coro):
    return asyncio.run(coro)


def oracle_responses(schedule):
    """Serial single-service ground truth for a schedule."""

    async def main():
        service = PredictionService(
            ServeConfig(max_queue_depth=100000, rate=1e9, burst=10**6)
        )
        async with service:
            responses = {}
            for item in schedule:
                envelope = dict(item)
                envelope.pop("deadline", None)
                responses[envelope["id"]] = await service.submit(envelope)
            return responses

    return run(main())


class TestFleetBoot:
    def test_boot_query_report_stop(self):
        async def main():
            spec = FleetSpec(workers=2, config=WIDE_OPEN_ROUTER)
            async with ServeFleet(spec) as fleet:
                response = await fleet.router.submit(
                    {
                        "kind": "predict",
                        "id": "boot-1",
                        "client": "t",
                        "query": {
                            "platform": "j90",
                            "molecule": "small",
                            "servers": 4,
                        },
                    }
                )
                report = fleet.report()
            return response, report

        response, report = run(main())
        assert response["status"] == api.OK
        assert set(report["processes"]) == {"w0", "w1"}
        assert all(
            p["returncode"] is None for p in report["processes"].values()
        ), "workers must still be live at report time"
        assert report["live"] == ["w0", "w1"]


class TestFleetChaos:
    def test_kill_mid_burst_completes_bit_identical(self):
        spec = LoadSpec(
            clients=3, requests_per_client=10, seed=11, sweep_fraction=0.2
        )
        schedule = build_schedule(spec)

        async def main():
            fleet_spec = FleetSpec(workers=3, config=WIDE_OPEN_ROUTER)
            async with ServeFleet(fleet_spec) as fleet:

                async def chaos():
                    fleet.kill_worker(0)

                report = await run_open_loop(
                    fleet.router.submit,
                    schedule,
                    abort_after=len(schedule) // 2,
                    abort=chaos,
                )
                worker_report = fleet.router.worker_report()
                w0_dead = fleet.procs[0].process.returncode
            return report, worker_report, w0_dead

        report, worker_report, w0_dead = run(main())
        assert w0_dead == -9, "the chaos tap must have SIGKILLed w0"
        assert report.sent == len(schedule)
        # every admitted request completed despite the mid-burst death
        assert report.ok == len(schedule), report.summary()
        # survivors absorbed w0's shard: their completions cover the burst
        completed = sum(w["completed"] for w in worker_report.values())
        assert completed == len(schedule)

        oracle = oracle_responses(schedule)
        mismatched = [
            rid
            for rid, response in report.responses.items()
            if response.get("status") == api.OK
            and api.canonical(response) != api.canonical(oracle[rid])
        ]
        assert mismatched == [], (
            f"{len(mismatched)} responses diverged from the single-worker "
            f"oracle: {mismatched[:5]}"
        )

    def test_respawn_after_kill_restores_fleet_size(self):
        async def main():
            fleet_spec = FleetSpec(workers=2, config=WIDE_OPEN_ROUTER)
            async with ServeFleet(fleet_spec) as fleet:
                fleet.kill_worker(1)
                # force traffic until the death is observed and respawn
                # brings the slot back
                for i in range(200):
                    await fleet.router.submit(
                        {
                            "kind": "predict",
                            "id": f"probe-{i}",
                            "client": "t",
                            "query": {
                                "platform": "t3e",
                                "molecule": "small",
                                "servers": 2,
                            },
                        }
                    )
                    if (
                        not fleet.router.health.is_dead(1)
                        and fleet.procs[1].generation == 2
                    ):
                        break
                    await asyncio.sleep(0.05)
                report = fleet.report()
            return report

        report = run(main())
        assert report["processes"]["w1"]["generation"] == 2
        assert report["live"] == ["w0", "w1"]
