"""Micro-batcher: coalescing, ordering, linger and shutdown."""

import asyncio

import pytest

from repro.serve.batcher import MicroBatcher


def run(coro):
    return asyncio.run(coro)


def collecting_batcher(max_batch=8, max_linger=0.0):
    batches = []

    async def dispatch(batch):
        batches.append(list(batch))

    return MicroBatcher(dispatch, max_batch=max_batch, max_linger=max_linger), batches


class TestBatching:
    def test_queued_items_coalesce_into_one_batch(self):
        async def scenario():
            batcher, batches = collecting_batcher(max_batch=8)
            for i in range(5):
                batcher.put(i)
            batcher.start()
            await batcher.stop()
            return batches

        batches = run(scenario())
        assert batches == [[0, 1, 2, 3, 4]]

    def test_max_batch_splits_a_burst(self):
        async def scenario():
            batcher, batches = collecting_batcher(max_batch=3)
            for i in range(7):
                batcher.put(i)
            batcher.start()
            await batcher.stop()
            return batches

        batches = run(scenario())
        assert [len(b) for b in batches] == [3, 3, 1]
        assert [i for b in batches for i in b] == list(range(7))

    def test_max_batch_one_is_sequential(self):
        async def scenario():
            batcher, batches = collecting_batcher(max_batch=1)
            for i in range(4):
                batcher.put(i)
            batcher.start()
            await batcher.stop()
            return batches

        assert run(scenario()) == [[0], [1], [2], [3]]

    def test_linger_waits_for_stragglers(self):
        async def scenario():
            batcher, batches = collecting_batcher(max_batch=8, max_linger=0.05)
            batcher.start()
            batcher.put("early")
            await asyncio.sleep(0.01)  # within the linger window
            batcher.put("late")
            await batcher.stop()
            return batches

        batches = run(scenario())
        assert batches == [["early", "late"]]

    def test_zero_linger_dispatches_immediately(self):
        async def scenario():
            batcher, batches = collecting_batcher(max_batch=8, max_linger=0.0)
            batcher.start()
            batcher.put("first")
            await asyncio.sleep(0.01)
            batcher.put("second")
            await batcher.stop()
            return batches

        assert run(scenario()) == [["first"], ["second"]]

    def test_stop_flushes_pending_items(self):
        async def scenario():
            batcher, batches = collecting_batcher(max_batch=100)
            batcher.start()
            await asyncio.sleep(0)  # batch loop parked on an empty queue
            for i in range(3):
                batcher.put(i)
            await batcher.stop()
            return batches

        batches = run(scenario())
        assert [i for b in batches for i in b] == [0, 1, 2]

    def test_counters(self):
        async def scenario():
            batcher, _ = collecting_batcher(max_batch=2)
            for i in range(5):
                batcher.put(i)
            batcher.start()
            await batcher.stop()
            return batcher

        batcher = run(scenario())
        assert batcher.items == 5
        assert batcher.batches == 3

    def test_rejects_bad_parameters(self):
        async def nop(batch):
            pass

        with pytest.raises(ValueError):
            MicroBatcher(nop, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(nop, max_linger=-1.0)
