"""The ``python -m repro.serve`` command line."""

import json

import pytest

from repro.serve.cli import main


class TestQuery:
    def test_predict_prints_a_response(self, capsys):
        code = main(["query", "--kind", "predict", "--platform", "j90",
                     "--molecule", "medium", "--servers", "4", "--compact"])
        assert code == 0
        response = json.loads(capsys.readouterr().out)
        assert response["status"] == 200
        assert response["result"]["servers"] == 4

    def test_sweep_returns_the_full_range(self, capsys):
        code = main(["query", "--kind", "sweep", "--servers", "5", "--compact"])
        assert code == 0
        response = json.loads(capsys.readouterr().out)
        assert response["result"]["servers"] == [1, 2, 3, 4, 5]

    def test_platforms_listing(self, capsys):
        code = main(["query", "--kind", "platforms", "--compact"])
        assert code == 0
        response = json.loads(capsys.readouterr().out)
        names = [p["name"] for p in response["result"]["platforms"]]
        assert "j90" in names

    def test_pretty_output_is_the_default(self, capsys):
        assert main(["query", "--kind", "ping"]) == 0
        out = capsys.readouterr().out
        assert "\n  " in out  # indented JSON
        assert json.loads(out)["status"] == 200


class TestBench:
    def test_nominal_load_passes_assertions(self, capsys):
        code = main(["bench", "--clients", "4", "--requests", "6",
                     "--seed", "0", "--fail-on-shed", "--json"])
        assert code == 0
        result = json.loads(capsys.readouterr().out)
        assert result["sent"] == 24
        assert result["ok"] == 24
        assert result["shed_rate"] == 0 and result["shed_queue"] == 0

    def test_overload_sheds_and_fails_when_asked(self, capsys):
        args = ["bench", "--clients", "4", "--requests", "30",
                "--load-rate", "500", "--admit-rate", "20", "--burst", "3",
                "--seed", "0", "--json"]
        assert main(args) == 0  # shedding alone is not a failure
        result = json.loads(capsys.readouterr().out)
        assert result["shed_rate"] > 0
        assert main(args + ["--fail-on-shed"]) == 1

    def test_shed_ids_are_reproducible(self, capsys):
        args = ["bench", "--clients", "4", "--requests", "30",
                "--load-rate", "500", "--admit-rate", "20", "--burst", "3",
                "--seed", "9", "--json"]
        main(args)
        first = json.loads(capsys.readouterr().out)
        main(args)
        second = json.loads(capsys.readouterr().out)
        assert first["shed_ids"] == second["shed_ids"]
        assert first["shed_ids"]  # the overload actually shed something

    def test_impossible_p99_budget_fails(self):
        assert main(["bench", "--clients", "2", "--requests", "4",
                     "--p99-budget", "1e-12"]) == 1

    def test_human_readable_report(self, capsys):
        assert main(["bench", "--clients", "2", "--requests", "4"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "p99" in out

    def test_trace_export(self, tmp_path, capsys):
        trace = tmp_path / "serve-trace.json"
        assert main(["bench", "--clients", "2", "--requests", "4",
                     "--trace-out", str(trace)]) == 0
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_main_module_is_importable(self):
        import repro.serve.__main__  # noqa: F401  (must not run the CLI)
