"""Flight recorder: ring semantics, flush, and live-service fidelity."""

import asyncio

import pytest

from repro.obs.query import percentile, run_query
from repro.obs.store import TelemetryStore
from repro.serve import (
    LoadSpec,
    PredictionService,
    ServeConfig,
    build_schedule,
    run_open_loop,
)
from repro.serve.flight import (
    COLUMNS,
    STATUS_OK,
    STATUS_SHED_RATE,
    FlightRecorder,
)

WIDE_OPEN = dict(max_queue_depth=100000, rate=1e9, burst=10**6)


def fill(recorder, n, reply_s=0.01):
    for i in range(n):
        recorder.record(
            t_admit=float(i), depth=i, admit_us=1.0, queue_us=2.0,
            compute_us=3.0, reply_us=4.0, reply_s=reply_s, status=STATUS_OK,
            batch=1,
        )


# ----------------------------------------------------------------------
# ring semantics
# ----------------------------------------------------------------------
def test_snapshot_returns_rows_oldest_first():
    r = FlightRecorder(capacity=8)
    fill(r, 3)
    snap = r.snapshot()
    assert set(snap) == set(COLUMNS)
    assert list(snap["t_admit"]) == [0.0, 1.0, 2.0]
    assert list(snap["depth"]) == [0, 1, 2]
    assert len(r) == 3 and r.pending == 3


def test_wraparound_keeps_newest_and_counts_drops(tmp_path):
    r = FlightRecorder(capacity=4, store=TelemetryStore(tmp_path))
    fill(r, 6)
    assert list(r.snapshot()["t_admit"]) == [2.0, 3.0, 4.0, 5.0]
    r.flush_sync()
    assert r.dropped == 2
    assert r.pending == 0
    assert r.store.rows("serve") == 4


def test_record_shed_rows_never_reply():
    r = FlightRecorder(capacity=4)
    r.record_shed(t_admit=1.0, depth=7, admit_us=2.0, status=STATUS_SHED_RATE)
    snap = r.snapshot()
    assert snap["status"][0] == STATUS_SHED_RATE
    assert snap["reply_s"][0] == 0.0
    assert snap["batch"][0] == 0


def test_flush_without_store_or_rows_is_a_noop(tmp_path):
    assert FlightRecorder().flush_sync() is None
    r = FlightRecorder(store=TelemetryStore(tmp_path))
    assert r.flush_sync() is None  # nothing recorded yet
    fill(r, 2)
    first = r.flush_sync()
    assert first is not None
    assert r.flush_sync() is None  # nothing new since
    fill(r, 1)
    assert r.store.rows("serve") == 2
    r.flush_sync()
    assert r.store.rows("serve") == 3


def test_capacity_validation():
    with pytest.raises(ValueError, match="capacity"):
        FlightRecorder(capacity=0)


def test_async_flush_runs_off_loop(tmp_path):
    r = FlightRecorder(store=TelemetryStore(tmp_path))
    fill(r, 5)

    async def go():
        return await r.flush()

    assert asyncio.run(go()) is not None
    assert r.store.rows("serve") == 5


# ----------------------------------------------------------------------
# live service fidelity
# ----------------------------------------------------------------------
def run_flight_campaign(tmp_path, config_kwargs, spec):
    store = TelemetryStore(tmp_path)
    flight = FlightRecorder(store=store)

    async def go():
        config = ServeConfig(**config_kwargs)
        async with PredictionService(config, flight=flight) as service:
            report = await run_open_loop(service.submit, build_schedule(spec))
            return report, service

    report, service = asyncio.run(go())
    return store, flight, report, service


def test_store_quantiles_equal_service_report(tmp_path):
    spec = LoadSpec(clients=8, requests_per_client=10, seed=5, sweep_fraction=0.3)
    store, flight, report, service = run_flight_campaign(
        tmp_path, dict(max_batch=64, **WIDE_OPEN), spec
    )
    assert len(flight) == report.sent
    assert flight.pending == 0  # service stop flushed the ring
    assert store.rows("serve") == report.sent

    # the acceptance contract: store aggregates reproduce the service's
    # own quantile report exactly (shared percentile, bitwise reply_s)
    served = service.latency_quantiles()
    result = run_query(
        store,
        "serve",
        where="status!=1 and status!=2",
        agg="p50(reply_s), p95(reply_s), p99(reply_s), count()",
    )
    assert result.aggregates["p50(reply_s)"] == served["p50"]
    assert result.aggregates["p95(reply_s)"] == served["p95"]
    assert result.aggregates["p99(reply_s)"] == served["p99"]
    assert result.aggregates["count()"] == float(len(service.latencies))
    assert result.aggregates["p99(reply_s)"] == percentile(service.latencies, 0.99)


def test_shed_requests_leave_shed_rows(tmp_path):
    spec = LoadSpec(clients=8, requests_per_client=10, seed=2)
    store, flight, report, _service = run_flight_campaign(
        tmp_path,
        dict(max_batch=64, max_queue_depth=100000, rate=40.0, burst=4),
        spec,
    )
    assert report.shed_rate > 0
    table = store.scan("serve")
    shed = run_query(store, "serve", where="status==1", agg="count()")
    assert shed.aggregates["count()"] == float(report.shed_rate)
    assert store.rows("serve") == report.sent
    # shed rows never reply
    assert float(table["reply_s"][table["status"] == 1].max()) == 0.0


def test_flight_recording_does_not_change_answers(tmp_path):
    spec = LoadSpec(clients=6, requests_per_client=6, seed=9, sweep_fraction=0.5)

    async def plain():
        async with PredictionService(ServeConfig(max_batch=64, **WIDE_OPEN)) as s:
            return await run_open_loop(s.submit, build_schedule(spec))

    baseline = asyncio.run(plain())
    _store, _flight, report, _service = run_flight_campaign(
        tmp_path, dict(max_batch=64, **WIDE_OPEN), spec
    )
    assert baseline.canonical_responses() == report.canonical_responses()
