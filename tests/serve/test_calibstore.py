"""Calibration store: content keys, LRU/disk caching, refresh policies."""

import asyncio

import pytest

from repro.core.parameters import ModelPlatformParams
from repro.experiments.cases import ExperimentCase
from repro.opal.complexes import get_complex
from repro.platforms import CRAY_J90, CRAY_T3E
from repro.serve.calibstore import (
    SOURCE_CALIBRATED,
    SOURCE_KEY_DATA,
    CalibrationStore,
    params_from_dict,
    params_to_dict,
)


def tiny_design():
    """A minimal non-degenerate design that calibrates in milliseconds."""
    return [
        ExperimentCase(
            molecule=get_complex("small"),
            servers=p,
            cutoff=c,
            update_interval=u,
            steps=2,
        )
        for p in (1, 2, 3)
        for c in (None, 10.0)
        for u in (1, 10)
    ]


def run(coro):
    return asyncio.run(coro)


class TestKeys:
    def test_key_covers_platform_identity(self):
        store = CalibrationStore(design=tiny_design())
        assert store.key_for_platform(CRAY_J90) != store.key_for_platform(CRAY_T3E)

    def test_key_covers_protocol(self):
        a = CalibrationStore(design=tiny_design(), seed=0)
        b = CalibrationStore(design=tiny_design(), seed=1)
        assert a.key_for_platform(CRAY_J90) != b.key_for_platform(CRAY_J90)

    def test_key_is_stable(self):
        a = CalibrationStore(design=tiny_design())
        b = CalibrationStore(design=tiny_design())
        assert a.key_for_platform(CRAY_J90) == b.key_for_platform(CRAY_J90)


class TestParamsRoundTrip:
    def test_dict_round_trip(self):
        params = ModelPlatformParams.from_spec(CRAY_J90)
        assert params_from_dict(params_to_dict(params)) == params


class TestResolve:
    def test_blocking_resolve_fits_once_then_hits(self):
        async def scenario():
            store = CalibrationStore(design=tiny_design())
            first = await store.resolve(CRAY_J90, now=0.0, refresh="blocking")
            second = await store.resolve(CRAY_J90, now=1.0, refresh="blocking")
            return store, first, second

        store, (p1, s1), (p2, s2) = run(scenario())
        assert s1 == SOURCE_CALIBRATED and s2 == SOURCE_CALIBRATED
        assert p1 == p2
        assert store.fits == 1
        assert (store.hits, store.misses) == (1, 1)

    def test_refresh_none_falls_back_to_key_data(self):
        async def scenario():
            store = CalibrationStore(design=tiny_design())
            return await store.resolve(CRAY_J90, now=0.0, refresh="none"), store

        (params, source), store = run(scenario())
        assert source == SOURCE_KEY_DATA
        assert params == ModelPlatformParams.from_spec(CRAY_J90)
        assert store.fits == 0

    def test_background_refresh_serves_fallback_then_calibrated(self):
        async def scenario():
            store = CalibrationStore(design=tiny_design())
            first = await store.resolve(CRAY_J90, now=0.0, refresh="background")
            await store.drain()  # let the background fit land
            second = await store.resolve(CRAY_J90, now=1.0, refresh="background")
            return store, first[1], second[1]

        store, first_source, second_source = run(scenario())
        assert first_source == SOURCE_KEY_DATA
        assert second_source == SOURCE_CALIBRATED
        assert store.refreshes == 1 and store.fits == 1

    def test_background_refresh_deduplicates_inflight_fits(self):
        async def scenario():
            store = CalibrationStore(design=tiny_design())
            await asyncio.gather(
                store.resolve(CRAY_J90, now=0.0, refresh="background"),
                store.resolve(CRAY_J90, now=0.0, refresh="background"),
                store.resolve(CRAY_J90, now=0.0, refresh="background"),
            )
            await store.drain()
            return store

        store = run(scenario())
        assert store.refreshes == 1
        assert store.fits == 1

    def test_unknown_refresh_mode_is_rejected(self):
        async def scenario():
            store = CalibrationStore(design=tiny_design())
            with pytest.raises(ValueError):
                await store.resolve(CRAY_J90, now=0.0, refresh="sometimes")

        run(scenario())


class TestDiskPersistence:
    def test_fits_survive_across_store_instances(self, tmp_path):
        async def scenario():
            first = CalibrationStore(design=tiny_design(), cache_dir=tmp_path)
            params, _ = await first.resolve(CRAY_J90, now=0.0, refresh="blocking")
            second = CalibrationStore(design=tiny_design(), cache_dir=tmp_path)
            reloaded, source = await second.resolve(
                CRAY_J90, now=0.0, refresh="blocking"
            )
            return first, second, params, reloaded, source

        first, second, params, reloaded, source = run(scenario())
        assert source == SOURCE_CALIBRATED
        assert reloaded == params
        assert first.fits == 1 and second.fits == 0  # disk hit, no refit

    def test_corrupt_disk_entry_is_refitted(self, tmp_path):
        async def scenario():
            store = CalibrationStore(design=tiny_design(), cache_dir=tmp_path)
            await store.resolve(CRAY_J90, now=0.0, refresh="blocking")
            key = store.key_for_platform(CRAY_J90)
            (tmp_path / f"{key}.json").write_text('{"name": "broken"}')
            fresh = CalibrationStore(design=tiny_design(), cache_dir=tmp_path)
            _, source = await fresh.resolve(CRAY_J90, now=0.0, refresh="blocking")
            return fresh, source

        fresh, source = run(scenario())
        assert source == SOURCE_CALIBRATED
        assert fresh.fits == 1  # the torn entry forced a real fit


class TestLruAndStaleness:
    def test_lru_bound_caps_in_memory_entries(self):
        async def scenario():
            store = CalibrationStore(design=tiny_design(), max_entries=1)
            await store.resolve(CRAY_J90, now=0.0, refresh="blocking")
            await store.resolve(CRAY_T3E, now=0.0, refresh="blocking")
            # J90 was evicted from memory; with no disk it must refit
            await store.resolve(CRAY_J90, now=0.0, refresh="blocking")
            return store

        store = run(scenario())
        assert store.fits == 3
        assert len(store._entries) == 1

    def test_stale_entry_triggers_background_refit(self):
        async def scenario():
            store = CalibrationStore(design=tiny_design(), stale_after=10.0)
            await store.resolve(CRAY_J90, now=0.0, refresh="blocking")
            # within freshness: served calibrated, no new fit
            _, fresh_source = await store.resolve(
                CRAY_J90, now=5.0, refresh="background"
            )
            # past freshness: falls back and refits in the background
            _, stale_source = await store.resolve(
                CRAY_J90, now=20.0, refresh="background"
            )
            await store.drain()
            return store, fresh_source, stale_source

        store, fresh_source, stale_source = run(scenario())
        assert fresh_source == SOURCE_CALIBRATED
        assert stale_source == SOURCE_KEY_DATA
        assert store.fits == 2

    def test_rejects_bad_max_entries(self):
        with pytest.raises(ValueError):
            CalibrationStore(design=tiny_design(), max_entries=0)
