"""TCP transports: NDJSON pipelining and the hand-rolled HTTP face."""

import asyncio
import json

from repro.serve import (
    PredictionService,
    ServeConfig,
    ServeServer,
    TcpServeClient,
    http_get,
    http_post,
)

WIDE_OPEN = dict(max_queue_depth=100000, rate=1e9, burst=10**6)


def run(coro):
    return asyncio.run(coro)


def predict_envelope(rid, servers=4):
    return {
        "kind": "predict",
        "id": rid,
        "client": "tcp",
        "query": {"platform": "j90", "molecule": "medium", "servers": servers},
    }


async def with_server(scenario, **config):
    service = PredictionService(ServeConfig(**(config or WIDE_OPEN)))
    async with ServeServer(service, port=0) as server:
        return await scenario(server.bound_port)


class TestNdjson:
    def test_request_response_round_trip(self):
        async def scenario(port):
            async with TcpServeClient("127.0.0.1", port) as client:
                pong = await client.request({"kind": "ping", "id": "p"})
                answer = await client.request(predict_envelope("q"))
            return pong, answer

        pong, answer = run(with_server(scenario))
        assert pong["status"] == 200 and pong["result"] == {"kind": "pong"}
        assert answer["status"] == 200 and answer["result"]["servers"] == 4

    def test_pipelined_requests_all_answered(self):
        async def scenario(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            n = 10
            for i in range(n):
                line = json.dumps(predict_envelope(f"r{i}", servers=1 + i % 7))
                writer.write(line.encode() + b"\n")
            await writer.drain()
            writer.write_eof()
            responses = []
            for _ in range(n):
                responses.append(json.loads(await reader.readline()))
            writer.close()
            await writer.wait_closed()
            return responses

        responses = run(with_server(scenario))
        assert {r["id"] for r in responses} == {f"r{i}" for i in range(10)}
        assert all(r["status"] == 200 for r in responses)

    def test_unparseable_line_gets_an_error_response(self):
        async def scenario(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"this is not json\n")
            await writer.drain()
            writer.write_eof()
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            return response

        response = run(with_server(scenario))
        assert response["status"] == 400
        assert response["error"]["reason"] == "invalid-json"


class TestHttp:
    def test_healthz(self):
        async def scenario(port):
            return await http_get("127.0.0.1", port, "/healthz")

        status, body = run(with_server(scenario))
        assert status == 200 and body == {"status": "ok"}

    def test_post_query(self):
        async def scenario(port):
            return await http_post(
                "127.0.0.1", port, "/v1/query", predict_envelope("h1")
            )

        status, body = run(with_server(scenario))
        assert status == 200
        assert body["result"]["platform"] == "j90"

    def test_platform_catalog_endpoint(self):
        async def scenario(port):
            return await http_get("127.0.0.1", port, "/v1/platforms")

        status, body = run(with_server(scenario))
        assert status == 200
        assert any(p["name"] == "j90" for p in body["result"]["platforms"])

    def test_unknown_endpoint_is_404(self):
        async def scenario(port):
            return await http_get("127.0.0.1", port, "/nope")

        status, body = run(with_server(scenario))
        assert status == 404
        assert body["error"]["reason"] == "unknown-endpoint"

    def test_error_statuses_propagate_to_http(self):
        async def scenario(port):
            bad = {"kind": "predict", "id": "x", "client": "h",
                   "query": {"platform": "vax", "molecule": "medium",
                             "servers": 1}}
            return await http_post("127.0.0.1", port, "/v1/query", bad)

        status, body = run(with_server(scenario))
        assert status == 404
        assert body["error"]["reason"] == "unknown-platform"

    def test_post_without_body_is_rejected(self):
        async def scenario(port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"POST /v1/query HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            status_line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            return int(status_line.split()[1])

        assert run(with_server(scenario)) == 400


class TestLifecycle:
    def test_port_zero_binds_an_ephemeral_port(self):
        async def scenario():
            service = PredictionService(ServeConfig(**WIDE_OPEN))
            async with ServeServer(service, port=0) as server:
                return server.bound_port

        assert run(scenario()) > 0

    def test_stop_is_idempotent(self):
        async def scenario():
            service = PredictionService(ServeConfig(**WIDE_OPEN))
            server = ServeServer(service, port=0)
            await server.start()
            await server.stop()
            await server.stop()

        run(scenario())
