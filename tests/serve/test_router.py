"""Fleet router edge cases: failover, retries, respawn, deadlines, drain.

All tests run in-process (:class:`InProcessWorker` wraps a real
:class:`PredictionService` and adds deterministic crash/stall taps), so
every chaos scenario lands at an await point the test controls.
"""

import asyncio

import pytest

from repro.obs.store import TelemetryStore
from repro.sciddle.resilient import RetryPolicy
from repro.serve import api
from repro.serve.calibstore import CalibrationStore
from repro.serve.hashring import HashRing
from repro.serve.loadgen import LoadSpec, build_schedule, run_open_loop
from repro.serve.router import FleetConfig, FleetRouter, InProcessWorker
from repro.serve.service import PredictionService, ServeConfig

WIDE_OPEN = dict(max_queue_depth=100000, rate=1e9, burst=10**6)
FAST_RETRY = RetryPolicy(
    timeout=0.2, max_retries=4, backoff_base=0.0, backoff_cap=0.0,
    backoff_jitter=0.0, death_threshold=2,
)


def run(coro):
    return asyncio.run(coro)


def predict_envelope(rid="r", client="c", deadline=None, **query):
    q = {"platform": "j90", "molecule": "small", "servers": 3}
    q.update(query)
    envelope = {"kind": "predict", "id": rid, "client": client, "query": q}
    if deadline is not None:
        envelope["deadline"] = deadline
    return envelope


def wide_service(**overrides):
    return PredictionService(ServeConfig(**{**WIDE_OPEN, **overrides}))


async def boot_fleet(n=3, policy=FAST_RETRY, respawn=None, store=None,
                     heartbeat=0.0, service_overrides=None, **config):
    services = [wide_service(**(service_overrides or {})) for _ in range(n)]
    for service in services:
        await service.start()
    workers = {
        i: InProcessWorker(service, name=f"w{i}")
        for i, service in enumerate(services)
    }
    router = FleetRouter(
        workers,
        config=FleetConfig(
            heartbeat=heartbeat, policy=policy,
            **{**WIDE_OPEN_ROUTER, **config},
        ),
        store=store,
        respawn_fn=respawn,
    )
    await router.start()
    return router, services, workers


WIDE_OPEN_ROUTER = dict(rate=1e9, burst=10**6, max_queue_depth=100000)


async def shutdown(router, services):
    await router.stop()
    for service in services:
        await service.stop()


def owner_of(router, envelope):
    request = api.parse_request(envelope)
    return router.ring.owner(router.shard_key(request.query))


class TestBitIdentity:
    def test_burst_matches_single_service(self):
        spec = LoadSpec(clients=4, requests_per_client=8, seed=3,
                        sweep_fraction=0.25)
        schedule = build_schedule(spec)

        async def fleet_run():
            router, services, _ = await boot_fleet(3)
            report = await run_open_loop(router.submit, schedule)
            await shutdown(router, services)
            return report

        async def single_run():
            service = wide_service()
            async with service:
                return await run_open_loop(service.submit, schedule)

        fleet_report = run(fleet_run())
        single_report = run(single_run())
        assert fleet_report.ok == len(schedule)
        assert (
            fleet_report.canonical_responses()
            == single_report.canonical_responses()
        )


class TestFailover:
    def test_owner_crash_reroutes_to_survivor(self):
        async def main():
            router, services, workers = await boot_fleet(3)
            envelope = predict_envelope()
            baseline = await router.submit(dict(envelope))
            owner = owner_of(router, envelope)
            workers[owner].crash()
            rerouted = await router.submit(dict(envelope, id="r2"))
            report = router.worker_report()
            await shutdown(router, services)
            return baseline, rerouted, owner, report

        baseline, rerouted, owner, report = run(main())
        assert rerouted["status"] == api.OK
        assert report[f"w{owner}"]["failed"] >= 1
        # identical payload from the surviving worker
        assert api.canonical(dict(baseline, id="x")) == api.canonical(
            dict(rerouted, id="x")
        )

    def test_double_death_mid_retry_still_completes(self):
        async def main():
            router, services, workers = await boot_fleet(3)
            envelope = predict_envelope()
            request = api.parse_request(envelope)
            order = router.ring.preference(router.shard_key(request.query))
            workers[order[0]].crash()
            workers[order[1]].crash()  # second death lands mid-retry walk
            response = await router.submit(dict(envelope))
            dead = set(router.health.dead)
            await shutdown(router, services)
            return response, order, dead

        response, order, dead = run(main())
        assert response["status"] == api.OK
        assert {order[0], order[1]} <= dead

    def test_all_dead_is_an_explicit_error(self):
        async def main():
            router, services, workers = await boot_fleet(2)
            for worker in workers.values():
                worker.crash()
            response = await router.submit(predict_envelope())
            await shutdown(router, services)
            return response

        response = run(main())
        assert response["status"] == api.INTERNAL
        assert response["error"]["reason"] == "no-live-workers"

    def test_stalled_worker_is_ostracized_by_timeouts(self):
        async def main():
            router, services, workers = await boot_fleet(2)
            envelope = predict_envelope()
            owner = owner_of(router, envelope)
            workers[owner].stall()
            response = await router.submit(dict(envelope))
            is_dead = router.health.is_dead(owner)
            report = router.worker_report()
            workers[owner].crash()  # release the stalled call
            await shutdown(router, services)
            return response, is_dead, report, owner

        response, is_dead, report, owner = run(main())
        assert response["status"] == api.OK
        assert is_dead, "consecutive timeouts must ostracize the worker"
        assert report[f"w{owner}"]["retried"] >= FAST_RETRY.death_threshold


class TestRespawn:
    def test_respawn_rejoins_ring_with_warm_calibrations(self, tmp_path):
        cache_dir = str(tmp_path / "calib")

        async def main():
            incarnations = []

            def make_service():
                # blocking refresh: the fit lands on disk before the
                # response, so the warm-reload assertion is race-free
                service = PredictionService(
                    ServeConfig(**WIDE_OPEN, refresh="blocking"),
                    calibrations=CalibrationStore(cache_dir=cache_dir),
                )
                incarnations.append(service)
                return service

            services = [make_service() for _ in range(2)]
            for service in services:
                await service.start()
            workers = {
                i: InProcessWorker(s, name=f"w{i}")
                for i, s in enumerate(services)
            }

            async def respawn(slot):
                service = make_service()
                await service.start()
                return InProcessWorker(service, name=f"w{slot}'")

            router = FleetRouter(
                workers,
                config=FleetConfig(
                    heartbeat=0.0, policy=FAST_RETRY, **WIDE_OPEN_ROUTER
                ),
                respawn_fn=respawn,
            )
            await router.start()
            envelope = predict_envelope(calibrated=True)
            owner = owner_of(router, envelope)
            first = await router.submit(dict(envelope))
            owner_before = owner_of(router, envelope)
            workers[owner].crash()
            failover = await router.submit(dict(envelope, id="r2"))
            # let the supervised respawn land
            for _ in range(100):
                if not router.health.is_dead(owner):
                    break
                await asyncio.sleep(0.01)
            revived = not router.health.is_dead(owner)
            owner_after = owner_of(router, envelope)
            warm = await router.submit(dict(envelope, id="r3"))
            respawned_store = incarnations[-1].calibrations
            await router.stop()
            for service in incarnations:
                await service.stop()
            return (
                first, failover, warm, revived,
                owner_before, owner_after, owner,
                respawned_store.fits,
            )

        (first, failover, warm, revived, owner_before, owner_after,
         owner, respawn_fits) = run(main())
        assert first["status"] == api.OK
        assert failover["status"] == api.OK
        assert warm["status"] == api.OK
        assert revived, "respawned slot must be revived in health tracking"
        # the revived slot reclaims its exact ring points
        assert owner_after == owner_before == owner
        # warm reload: the fit came from the shared disk cache, not refit
        assert respawn_fits == 0
        assert api.canonical(dict(first, id="x")) == api.canonical(
            dict(warm, id="x")
        )


class TestDeadlines:
    def test_forwarded_deadline_is_remaining_budget(self):
        forwarded = []

        class RecordingWorker:
            alive = True

            async def request(self, envelope):
                forwarded.append(dict(envelope))
                return api.ok_response(envelope.get("id", ""), {"kind": "pong"})

            async def ping(self):
                return True

            async def close(self):
                pass

        async def main():
            router = FleetRouter(
                {0: RecordingWorker()},
                config=FleetConfig(
                    heartbeat=0.0, policy=FAST_RETRY, **WIDE_OPEN_ROUTER
                ),
            )
            await router.start()
            await asyncio.sleep(0)
            response = await router.submit(predict_envelope(deadline=10.0))
            await router.stop()
            return response

        response = run(main())
        assert response["status"] == api.OK
        assert len(forwarded) == 1
        # the worker sees what is LEFT of the budget, never more
        assert 0 < forwarded[0]["deadline"] <= 10.0

    def test_expired_budget_is_504_before_any_compute(self):
        async def main():
            # the worker lingers longer than the whole budget, so the
            # request must die of deadline — at the worker's batcher or
            # the router's clock — without one model evaluation
            router, services, _ = await boot_fleet(
                2, service_overrides=dict(max_batch=64, max_linger=0.5)
            )
            response = await router.submit(
                predict_envelope(deadline=0.05)
            )
            computed = sum(s.batcher.batches for s in services)
            # let the worker-side linger window close before shutdown
            await asyncio.sleep(0.6)
            expired_at_worker = sum(
                s.metrics.counter("serve.deadline_expired").value
                for s in services
            )
            await shutdown(router, services)
            return response, computed, expired_at_worker

        response, computed, expired_at_worker = run(main())
        assert response["status"] == api.DEADLINE_EXPIRED
        assert response["error"]["reason"] == "deadline-expired"
        assert computed == 0, "an expired request must not reach compute"
        assert expired_at_worker >= 1, (
            "the propagated deadline must expire inside the worker batcher"
        )


class TestAdmissionAndDrain:
    def test_fleet_admission_sheds_on_virtual_stamps(self):
        async def main():
            router, services, _ = await boot_fleet(2, rate=1.0, burst=1)
            first = await router.submit(
                dict(predict_envelope(rid="a"), arrival=0.0)
            )
            second = await router.submit(
                dict(predict_envelope(rid="b"), arrival=0.001)
            )
            await shutdown(router, services)
            return first, second

        first, second = run(main())
        assert first["status"] == api.OK
        assert second["status"] == api.SHED
        assert second["error"]["reason"] == "shed:rate"

    def test_drain_sheds_new_work(self):
        async def main():
            router, services, _ = await boot_fleet(2)
            await router.drain()
            response = await router.submit(predict_envelope())
            await shutdown(router, services)
            return response

        response = run(main())
        assert response["status"] == api.SHED
        assert response["error"]["reason"] == "shed:drain"

    def test_stop_is_idempotent(self):
        async def main():
            router, services, _ = await boot_fleet(2)
            await router.stop()
            await router.stop()  # the fleet CLI path stops twice
            for service in services:
                await service.stop()

        run(main())


class TestRouterTelemetry:
    def test_fleet_dataset_rows_flushed_on_stop(self, tmp_path):
        store = TelemetryStore(tmp_path / "store")

        async def main():
            router, services, _ = await boot_fleet(2, store=store)
            for i in range(4):
                await router.submit(predict_envelope(rid=f"r{i}"))
            await shutdown(router, services)

        run(main())
        assert store.rows("fleet") == 4
        segment = store.segments("fleet")[0]
        columns = store.read_segment(segment["id"])
        assert set(columns) == {
            "t_admit", "admit_us", "reply_s", "depth", "status", "worker",
            "attempts",
        }
        assert all(int(s) == 0 for s in columns["status"])  # all OK

    def test_worker_report_accounts_every_forward(self):
        async def main():
            router, services, _ = await boot_fleet(2)
            for i in range(6):
                await router.submit(predict_envelope(rid=f"r{i}"))
            report = router.worker_report()
            await shutdown(router, services)
            return report

        report = run(main())
        assert sum(w["forwarded"] for w in report.values()) == 6
        assert sum(w["completed"] for w in report.values()) == 6


class TestLoadgenChaosHook:
    def test_abort_fires_after_exact_submission_count(self):
        fired_at = []

        async def main():
            seen = []

            async def submit(envelope):
                seen.append(envelope["id"])
                return api.ok_response(envelope["id"], {"kind": "pong"})

            schedule = build_schedule(
                LoadSpec(clients=2, requests_per_client=5, seed=1)
            )

            async def abort():
                fired_at.append(len(seen))

            report = await run_open_loop(
                submit, schedule, abort_after=4, abort=abort
            )
            return report

        report = run(main())
        assert report.sent == 10
        assert len(fired_at) == 1
        # with pace=False no fire() task has run yet at the abort point:
        # the chaos lands at a deterministic schedule position
        assert fired_at[0] == 0

    def test_report_accounts_drain_sheds(self):
        async def main():
            async def submit(envelope):
                return api.error_response(
                    envelope["id"], api.SHED, "shed:drain", "draining"
                )

            schedule = build_schedule(
                LoadSpec(clients=1, requests_per_client=3, seed=0)
            )
            return await run_open_loop(submit, schedule)

        report = run(main())
        assert report.shed_drain == 3
        assert report.shed_rate == 0
        summary = report.summary()
        assert summary["shed_drain"] == 3

    def test_per_worker_rides_in_summary(self):
        from repro.serve.loadgen import LoadgenReport

        report = LoadgenReport()
        assert "per_worker" not in report.summary()
        report.per_worker = {"w0": {"forwarded": 1}}
        assert report.summary()["per_worker"] == {"w0": {"forwarded": 1}}


class TestRingIntegration:
    def test_router_ring_matches_standalone_ring(self):
        async def main():
            router, services, _ = await boot_fleet(3)
            ring = HashRing([0, 1, 2], replicas=router.config.replicas)
            keys = [f"probe-{i}" for i in range(200)]
            same = all(
                router.ring.owner(k) == ring.owner(k) for k in keys
            )
            await shutdown(router, services)
            return same

        assert run(main())
