"""The pipeline core: correctness, bit-identity, shedding, deadlines."""

import asyncio

from repro.core.model import OpalPerformanceModel
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.obs import ObsSession
from repro.opal.complexes import get_complex
from repro.platforms import get_platform
from repro.serve import (
    LoadSpec,
    PredictionService,
    ServeClient,
    ServeConfig,
    build_schedule,
    run_open_loop,
)

WIDE_OPEN = dict(max_queue_depth=100000, rate=1e9, burst=10**6)


def run(coro):
    return asyncio.run(coro)


async def serve_one(service, envelope):
    async with service:
        return await ServeClient(service).request(envelope)


def predict_envelope(rid="r", client="c", **query):
    q = {"platform": "j90", "molecule": "medium", "servers": 4}
    q.update(query)
    return {"kind": "predict", "id": rid, "client": client, "query": q}


async def run_campaign(spec, **config):
    service = PredictionService(ServeConfig(**config))
    async with service:
        report = await run_open_loop(
            ServeClient(service).request, build_schedule(spec)
        )
    return report, service


class TestAnswers:
    def test_point_matches_direct_model_evaluation(self):
        response = run(
            serve_one(PredictionService(), predict_envelope(servers=4))
        )
        assert response["status"] == 200
        params = ModelPlatformParams.from_spec(get_platform("j90"))
        model = OpalPerformanceModel(params)
        app = ApplicationParams(molecule=get_complex("medium"), servers=4)
        expected = model.breakdown(app)
        result = response["result"]
        assert result["time"] == expected.total
        assert result["breakdown"] == expected.as_dict()
        t1 = model.breakdown(app.with_(servers=1)).total
        assert result["speedup"] == t1 / expected.total
        assert result["calibration"] == "key-data"

    def test_sweep_matches_predict_series(self):
        from repro.core.prediction import predict_series

        response = run(
            serve_one(
                PredictionService(),
                {"kind": "sweep", "id": "s", "client": "c",
                 "query": {"platform": "t3e", "molecule": "large"}},
            )
        )
        params = ModelPlatformParams.from_spec(get_platform("t3e"))
        app = ApplicationParams(molecule=get_complex("large"))
        series = predict_series(params, app, tuple(range(1, 8)))
        result = response["result"]
        assert result["times"] == list(series.times)
        assert result["speedups"] == list(series.speedups)
        assert result["saturation"] == series.saturation

    def test_ping_and_platforms(self):
        async def scenario():
            service = PredictionService()
            async with service:
                client = ServeClient(service)
                pong = await client.request({"kind": "ping", "id": "p"})
                catalog = await client.request({"kind": "platforms", "id": "q"})
            return pong, catalog

        pong, catalog = run(scenario())
        assert pong["result"] == {"kind": "pong"}
        names = [p["name"] for p in catalog["result"]["platforms"]]
        assert "j90" in names and names == sorted(names)

    def test_invalid_request_is_answered_not_raised(self):
        response = run(
            serve_one(PredictionService(), {"kind": "predict", "id": "bad",
                                            "client": "c", "query": {"servers": 0}})
        )
        assert response["status"] == 400
        assert response["id"] == "bad"


class TestBitIdentity:
    def test_batched_equals_sequential_and_repeat(self):
        spec = LoadSpec(clients=8, requests_per_client=12, seed=11,
                        sweep_fraction=0.25)
        batched, svc_b = run(run_campaign(spec, max_batch=64, **WIDE_OPEN))
        sequential, _ = run(run_campaign(spec, max_batch=1, **WIDE_OPEN))
        again, _ = run(run_campaign(spec, max_batch=64, **WIDE_OPEN))
        assert batched.ok == spec.clients * spec.requests_per_client
        assert batched.canonical_responses() == sequential.canonical_responses()
        assert batched.canonical_responses() == again.canonical_responses()
        # and batching actually happened on the batched run
        assert svc_b.batcher.batches < batched.sent

    def test_offload_and_inline_compute_agree(self):
        spec = LoadSpec(clients=4, requests_per_client=8, seed=3)
        offloaded, _ = run(run_campaign(spec, max_batch=32, offload=True,
                                        **WIDE_OPEN))
        inline, _ = run(run_campaign(spec, max_batch=32, offload=False,
                                     **WIDE_OPEN))
        assert offloaded.canonical_responses() == inline.canonical_responses()


class TestShedding:
    def test_overload_sheds_deterministically(self):
        spec = LoadSpec(clients=6, requests_per_client=30, rate=200.0, seed=7)
        tight = dict(max_queue_depth=100000, rate=50.0, burst=5)
        a, _ = run(run_campaign(spec, max_batch=64, **tight))
        b, _ = run(run_campaign(spec, max_batch=64, **tight))
        c, _ = run(run_campaign(spec, max_batch=1, **tight))
        assert a.shed_rate > 0
        assert a.shed_ids() == b.shed_ids() == c.shed_ids()
        # the answered subset is also bit-identical across modes
        assert a.canonical_responses() == c.canonical_responses()

    def test_shed_response_is_4xx_with_reason(self):
        async def scenario():
            service = PredictionService(
                ServeConfig(rate=10.0, burst=1, max_queue_depth=100000)
            )
            async with service:
                client = ServeClient(service)
                first = await client.request(
                    dict(predict_envelope(rid="a"), arrival=0.0)
                )
                second = await client.request(
                    dict(predict_envelope(rid="b"), arrival=0.0)
                )
            return first, second, service

        first, second, service = run(scenario())
        assert first["status"] == 200
        assert second["status"] == 429
        assert second["error"]["reason"] == "shed:rate"
        assert service.metrics.counters["serve.shed_rate"].value == 1

    def test_queue_bound_sheds_when_full(self):
        async def scenario():
            # tasks created back-to-back run their admission prefixes
            # back-to-back: "b" sees "a" still queued and is shed
            service = PredictionService(
                ServeConfig(max_queue_depth=1, rate=1e9, burst=10**6)
            )
            async with service:
                client = ServeClient(service)
                loop = asyncio.get_running_loop()
                task_a = loop.create_task(client.request(predict_envelope(rid="a")))
                task_b = loop.create_task(client.request(predict_envelope(rid="b")))
                served, shed = await asyncio.gather(task_a, task_b)
            return served, shed

        served, shed = run(scenario())
        assert {served["status"], shed["status"]} == {200, 429}
        assert shed["error"]["reason"] == "shed:queue"


class TestDeadlines:
    def test_expired_request_is_dropped_before_compute(self):
        async def scenario():
            service = PredictionService(
                ServeConfig(max_batch=8, max_linger=0.05, **WIDE_OPEN)
            )
            async with service:
                client = ServeClient(service)
                # a microscopic deadline expires during the linger window
                doomed = dict(predict_envelope(rid="dead"), deadline=1e-6)
                response = await client.request(doomed)
            return response, service

        response, service = run(scenario())
        assert response["status"] == 504
        assert response["error"]["reason"] == "deadline-expired"
        assert service.metrics.counters["serve.deadline_expired"].value == 1

    def test_generous_deadline_is_served(self):
        response = run(
            serve_one(
                PredictionService(ServeConfig(**WIDE_OPEN)),
                dict(predict_envelope(), deadline=30.0),
            )
        )
        assert response["status"] == 200


class TestObservability:
    def test_spans_and_metrics_cover_the_pipeline(self):
        obs = ObsSession(label="serve-test")

        async def scenario():
            service = PredictionService(ServeConfig(**WIDE_OPEN), obs=obs)
            async with service:
                report = await run_open_loop(
                    ServeClient(service).request,
                    build_schedule(LoadSpec(clients=3, requests_per_client=5)),
                )
            return service, report

        service, report = run(scenario())
        assert report.ok == 15
        categories = {span.category for span in obs.tracer.spans}
        assert {"admit", "queue", "compute", "reply"} <= categories
        counters = obs.metrics.counters
        assert counters["serve.requests"].value == 15
        assert counters["serve.ok"].value == 15
        assert counters["serve.compute_points"].value == 15
        assert obs.metrics.histograms["serve.latency_s"].count == 15
        occupancy = obs.metrics.histograms["serve.batch_occupancy"]
        assert occupancy.count == service.batcher.batches

    def test_report_shape(self):
        async def scenario():
            service = PredictionService(ServeConfig(**WIDE_OPEN))
            async with service:
                await ServeClient(service).request(predict_envelope())
            return service.report()

        report = run(scenario())
        assert report["admission"]["admitted"] == 1
        assert set(report["latency"]) == {"p50", "p95", "p99"}
        assert report["batches"] == 1


class TestRobustness:
    def test_internal_error_answers_500_not_a_hang(self, monkeypatch):
        from repro.serve import service as service_mod

        def boom(jobs):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(service_mod, "_evaluate_jobs", boom)

        async def scenario():
            service = PredictionService(
                ServeConfig(offload=False, **WIDE_OPEN)
            )
            async with service:
                return await asyncio.wait_for(
                    ServeClient(service).request(predict_envelope()), timeout=5.0
                )

        response = run(scenario())
        assert response["status"] == 500
        assert response["error"]["reason"] == "internal-error"
        assert "kaboom" in response["error"]["detail"]
