"""Seeded load generation: schedules, pacing and report accounting."""

import asyncio

import pytest

from repro.serve import api
from repro.serve.loadgen import (
    LoadSpec,
    LoadgenReport,
    build_schedule,
    run_open_loop,
)


def run(coro):
    return asyncio.run(coro)


class TestSchedule:
    def test_same_seed_same_schedule(self):
        spec = LoadSpec(clients=4, requests_per_client=10, seed=5)
        assert build_schedule(spec) == build_schedule(spec)

    def test_different_seeds_differ(self):
        a = build_schedule(LoadSpec(clients=4, requests_per_client=10, seed=1))
        b = build_schedule(LoadSpec(clients=4, requests_per_client=10, seed=2))
        assert a != b

    def test_arrivals_sorted_and_per_client_ordered(self):
        schedule = build_schedule(LoadSpec(clients=5, requests_per_client=20))
        arrivals = [e["arrival"] for e in schedule]
        assert arrivals == sorted(arrivals)
        per_client = {}
        for envelope in schedule:
            seq = int(envelope["id"].split("-")[1])
            last = per_client.get(envelope["client"], -1)
            assert seq == last + 1  # in-order within each client
            per_client[envelope["client"]] = seq

    def test_ids_are_unique(self):
        schedule = build_schedule(LoadSpec(clients=3, requests_per_client=7))
        ids = [e["id"] for e in schedule]
        assert len(set(ids)) == len(ids) == 21

    def test_sweep_fraction_controls_the_mix(self):
        all_points = build_schedule(
            LoadSpec(clients=2, requests_per_client=20, sweep_fraction=0.0)
        )
        all_sweeps = build_schedule(
            LoadSpec(clients=2, requests_per_client=20, sweep_fraction=1.0)
        )
        assert all(e["kind"] == "predict" for e in all_points)
        assert all(e["kind"] == "sweep" for e in all_sweeps)

    def test_deadline_is_stamped_when_requested(self):
        schedule = build_schedule(
            LoadSpec(clients=1, requests_per_client=3, deadline=0.5)
        )
        assert all(e["deadline"] == 0.5 for e in schedule)

    def test_every_envelope_parses(self):
        for envelope in build_schedule(
            LoadSpec(clients=3, requests_per_client=10, sweep_fraction=0.3)
        ):
            api.parse_request(envelope)  # must not raise

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LoadSpec(clients=0)
        with pytest.raises(ValueError):
            LoadSpec(rate=0.0)
        with pytest.raises(ValueError):
            LoadSpec(sweep_fraction=1.5)


class TestRunOpenLoop:
    def test_report_accounts_every_status(self):
        responses = {
            "a": api.ok_response("a", {"kind": "pong"}),
            "b": api.error_response("b", api.SHED, "shed:rate"),
            "c": api.error_response("c", api.SHED, "shed:queue"),
            "d": api.error_response("d", api.DEADLINE_EXPIRED, "deadline-expired"),
            "e": api.error_response("e", api.INTERNAL, "internal-error"),
        }

        async def submit(envelope):
            return responses[envelope["id"]]

        schedule = [
            {"id": rid, "client": "c0", "kind": "ping", "arrival": i * 0.01}
            for i, rid in enumerate(responses)
        ]
        report = run(run_open_loop(submit, schedule))
        assert report.sent == 5
        assert (report.ok, report.shed_rate, report.shed_queue) == (1, 1, 1)
        assert (report.expired, report.errors) == (1, 1)
        assert report.shed_ids() == ["b", "c"]
        assert len(report.latencies) == 5

    def test_canonical_responses_is_order_independent(self):
        report_a = LoadgenReport()
        report_b = LoadgenReport()
        first = api.ok_response("x", {"v": 1})
        second = api.ok_response("y", {"v": 2})
        report_a._account({"id": "x"}, first)
        report_a._account({"id": "y"}, second)
        report_b._account({"id": "y"}, second)
        report_b._account({"id": "x"}, first)
        assert report_a.canonical_responses() == report_b.canonical_responses()

    def test_paced_run_respects_the_virtual_schedule(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            stamps = []

            async def submit(envelope):
                stamps.append((envelope["id"], loop.time()))
                return api.ok_response(envelope["id"], {"kind": "pong"})

            schedule = [
                {"id": f"r{i}", "client": "c0", "kind": "ping",
                 "arrival": 0.3 * i}
                for i in range(3)
            ]
            t0 = loop.time()
            # time_scale=10 -> virtual 0.3s gaps replay as 0.03s
            await run_open_loop(submit, schedule, pace=True, time_scale=10.0)
            return [(rid, t - t0) for rid, t in stamps]

        stamps = run(scenario())
        assert [rid for rid, _ in stamps] == ["r0", "r1", "r2"]
        assert stamps[2][1] >= 0.06  # last request waited for its slot

    def test_summary_is_json_able(self):
        async def submit(envelope):
            return api.ok_response(envelope["id"], {"kind": "pong"})

        schedule = [{"id": "a", "client": "c0", "kind": "ping", "arrival": 0.0}]
        report = run(run_open_loop(submit, schedule))
        summary = report.summary()
        assert summary["sent"] == 1 and summary["ok"] == 1
        assert summary["throughput_rps"] == report.throughput
