"""Consistent-hash ring: determinism, minimal remap, revival."""

from repro.serve.hashring import HashRing, ring_hash

KEYS = [f"cell-{i}" for i in range(2000)]


class TestRingHash:
    def test_stable_across_instances(self):
        assert ring_hash("w0#0") == ring_hash("w0#0")
        assert ring_hash("a") != ring_hash("b")

    def test_is_64_bit(self):
        assert 0 <= ring_hash("anything") < 2**64


class TestOwnership:
    def test_deterministic_owner(self):
        a = HashRing([0, 1, 2])
        b = HashRing([2, 1, 0])  # insertion order must not matter
        assert [a.owner(k) for k in KEYS] == [b.owner(k) for k in KEYS]

    def test_every_key_owned(self):
        ring = HashRing([0, 1, 2])
        assert all(ring.owner(k) in {0, 1, 2} for k in KEYS)

    def test_empty_ring_owns_nothing(self):
        assert HashRing().owner("k") is None
        assert HashRing().preference("k") == []

    def test_all_dead_owns_nothing(self):
        ring = HashRing([0, 1])
        assert ring.owner("k", alive=lambda s: False) is None

    def test_distribution_roughly_fair(self):
        ring = HashRing([0, 1, 2, 3])
        counts = {s: 0 for s in range(4)}
        for key in KEYS:
            counts[ring.owner(key)] += 1
        fair = len(KEYS) / 4
        for slot, count in counts.items():
            assert 0.5 * fair < count < 1.8 * fair, (slot, counts)


class TestMinimalRemap:
    def test_only_dead_owned_keys_move(self):
        ring = HashRing([0, 1, 2])
        before = {k: ring.owner(k) for k in KEYS}
        after = {k: ring.owner(k, alive=lambda s: s != 1) for k in KEYS}
        for key in KEYS:
            if before[key] != 1:
                assert after[key] == before[key], key
            else:
                assert after[key] in {0, 2}, key

    def test_skip_equals_remove(self):
        """Skipping a dead slot and removing it give identical owners."""
        skipping = HashRing([0, 1, 2])
        removed = HashRing([0, 1, 2])
        removed.remove(1)
        for key in KEYS[:500]:
            assert skipping.owner(key, alive=lambda s: s != 1) == removed.owner(
                key
            ), key

    def test_revival_restores_exact_ownership(self):
        ring = HashRing([0, 1, 2])
        before = {k: ring.owner(k) for k in KEYS}
        ring.remove(1)
        ring.add(1)  # same slot id -> identical virtual points
        assert {k: ring.owner(k) for k in KEYS} == before

    def test_add_remove_idempotent(self):
        ring = HashRing([0])
        ring.add(0)
        assert len(ring) == 1
        ring.remove(5)  # absent: no-op
        assert ring.slots == {0}


class TestPreference:
    def test_preference_lists_every_slot_once(self):
        ring = HashRing([0, 1, 2, 3])
        for key in KEYS[:100]:
            order = ring.preference(key)
            assert sorted(order) == [0, 1, 2, 3]
            assert order[0] == ring.owner(key)

    def test_failover_follows_preference(self):
        ring = HashRing([0, 1, 2])
        for key in KEYS[:200]:
            order = ring.preference(key)
            dead = {order[0]}
            assert ring.owner(key, alive=lambda s: s not in dead) == order[1]
