"""Tests for the prediction service (repro.serve)."""
