"""Unit tests for PVM-style pack buffers."""

import pytest

from repro.pvm import PackBuffer, coordinates_nbytes


def test_typed_sizes():
    buf = PackBuffer().pack_double(10).pack_int(5).pack_bytes(3)
    assert buf.nbytes == 10 * 8 + 5 * 4 + 3


def test_unknown_type_rejected():
    with pytest.raises(ValueError):
        PackBuffer().pack("quaternion", 1)


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        PackBuffer().pack_double(-1)


def test_payload_attachment():
    buf = PackBuffer().pack_double(3).put("coords", [1, 2, 3])
    assert buf.payload == {"coords": [1, 2, 3]}
    assert buf.nbytes == 24


def test_chaining_returns_buffer():
    buf = PackBuffer()
    assert buf.pack_int(1) is buf


def test_coordinates_nbytes_matches_alpha():
    # the paper's alpha: 24 bytes per mass center (3 doubles)
    assert coordinates_nbytes(1) == 24
    assert coordinates_nbytes(4289) == 24 * 4289


def test_empty_buffer_is_zero_bytes():
    assert PackBuffer().nbytes == 0
