"""Unit tests for the PVM layer: tasks, groups, barriers."""

import pytest

from repro.errors import PvmError
from repro.netsim import Cluster, Node, SwitchedFabric, constant_rate
from repro.pvm import PackBuffer, PvmSystem


def make_pvm(barrier_cost=0.0, n_nodes=3):
    cluster = Cluster(
        lambda e: SwitchedFabric(e, latency=1e-3, bandwidth=1e6), seed=0
    )
    nodes = [
        cluster.add_node(Node(cluster.engine, i, constant_rate(1e6)))
        for i in range(n_nodes)
    ]
    return PvmSystem(cluster, barrier_cost=barrier_cost), nodes


def test_negative_barrier_cost_rejected():
    cluster = Cluster(lambda e: SwitchedFabric(e, 1e-3, 1e6))
    with pytest.raises(PvmError):
        PvmSystem(cluster, barrier_cost=-1.0)


def test_send_recv_between_tasks():
    pvm, nodes = make_pvm()
    got = {}

    def server(task):
        msg = yield from task.recv(tag=5)  # simlint: disable=R501
        got["data"] = msg.payload
        got["nbytes"] = msg.nbytes

    def client(task, dest):
        buf = PackBuffer().pack_double(10).put("v", 7)
        yield from task.send(dest, tag=5, nbytes=buf, payload=buf.payload)

    sp = pvm.spawn("server", nodes[0], server)
    pvm.spawn("client", nodes[1], client, sp.tid)
    pvm.run()
    assert got["data"] == {"v": 7}
    assert got["nbytes"] == 80


def test_mcast_serializes_at_sender():
    pvm, nodes = make_pvm()
    arrivals = {}

    def receiver(task):
        yield from task.recv(tag=1)  # simlint: disable=R501
        arrivals[task.name] = task.now

    r0 = pvm.spawn("r0", nodes[0], receiver)
    r1 = pvm.spawn("r1", nodes[1], receiver)

    def sender(task, dests):
        yield from task.mcast(dests, tag=1, nbytes=1e6)

    pvm.spawn("s", nodes[2], sender, [r0.tid, r1.tid])
    pvm.run()
    # 1 MB at 1 MB/s each: second receiver one second later
    assert arrivals["r1"] - arrivals["r0"] == pytest.approx(1.0)


def test_joingroup_and_barrier():
    pvm, nodes = make_pvm(barrier_cost=0.25)
    release = {}

    def member(task, delay):
        task.joingroup("workers")
        yield from task.delay(delay)
        yield from task.barrier("workers")
        release[task.name] = task.now

    pvm.spawn("a", nodes[0], member, 1.0)
    pvm.spawn("b", nodes[1], member, 2.0)
    pvm.run()
    assert release["a"] == release["b"] == pytest.approx(2.25)


def test_joingroup_returns_instance_numbers():
    pvm, nodes = make_pvm()
    numbers = {}

    def member(task):
        numbers[task.name] = task.joingroup("g")
        yield from task.delay(0.0)

    pvm.spawn("a", nodes[0], member)
    pvm.spawn("b", nodes[1], member)
    pvm.run()
    assert sorted(numbers.values()) == [0, 1]


def test_double_joingroup_rejected():
    pvm, nodes = make_pvm()

    def member(task):
        task.joingroup("g")
        task.joingroup("g")
        yield from task.delay(0.0)

    pvm.spawn("a", nodes[0], member)
    with pytest.raises(Exception):
        pvm.run()


def test_barrier_unknown_group_rejected():
    pvm, nodes = make_pvm()

    def member(task):
        yield from task.barrier("ghosts")

    pvm.spawn("a", nodes[0], member)
    with pytest.raises(Exception):
        pvm.run()


def test_explicit_barrier_count():
    pvm, nodes = make_pvm()
    done = {}

    def member(task):
        yield from task.barrier("adhoc", count=2)
        done[task.name] = task.now

    pvm.spawn("a", nodes[0], member)
    pvm.spawn("b", nodes[1], member)
    pvm.run()
    assert len(done) == 2


def test_compute_through_task():
    pvm, nodes = make_pvm()

    def body(task):
        yield from task.compute(flops=2e6)

    pvm.spawn("t", nodes[0], body)
    assert pvm.run() == pytest.approx(2.0)


def test_tasks_registry():
    pvm, nodes = make_pvm()

    def body(task):
        yield from task.delay(0.0)

    proc = pvm.spawn("t", nodes[0], body)
    pvm.run()
    assert proc.tid in pvm.tasks
    assert pvm.tasks[proc.tid].name == "t"
