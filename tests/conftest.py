"""Shared fixtures for the test suite."""


import pytest

from repro.core.parameters import ApplicationParams
from repro.netsim import Cluster, Node, SwitchedFabric, constant_rate
from repro.opal.complexes import ComplexSpec
from repro.opal.system import build_system
from repro.platforms import CRAY_J90, FAST_COPS, SLOW_COPS, SMP_COPS


@pytest.fixture
def two_node_cluster():
    """A deterministic 2x1-CPU switched cluster (100 MFlop/s, 30 MB/s)."""
    cluster = Cluster(
        lambda e: SwitchedFabric(e, latency=10e-6, bandwidth=30e6, overhead=5e-6),
        seed=7,
    )
    n0 = cluster.add_node(Node(cluster.engine, 0, constant_rate(100e6)))
    n1 = cluster.add_node(Node(cluster.engine, 1, constant_rate(100e6)))
    return cluster, n0, n1


@pytest.fixture
def tiny_spec():
    """A complex small enough for real physics in tests."""
    return ComplexSpec("tiny", protein_atoms=14, waters=30, density=0.033)


@pytest.fixture
def tiny_system(tiny_spec):
    return build_system(tiny_spec, seed=11)


@pytest.fixture
def medium_app():
    from repro.opal.complexes import MEDIUM

    return ApplicationParams(molecule=MEDIUM, steps=10, servers=4, cutoff=10.0)


@pytest.fixture(params=["j90", "t3e", "slow-cops", "smp-cops", "fast-cops"])
def any_platform(request):
    from repro.platforms import get_platform

    return get_platform(request.param)


@pytest.fixture
def j90():
    return CRAY_J90


@pytest.fixture
def fast_cops():
    return FAST_COPS


@pytest.fixture
def slow_cops():
    return SLOW_COPS


@pytest.fixture
def smp_cops():
    return SMP_COPS
