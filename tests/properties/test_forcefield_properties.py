"""Property-based tests of force-field physics invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opal import forcefield as ff
from repro.opal.complexes import ComplexSpec
from repro.opal.system import build_system


def make_system(seed):
    spec = ComplexSpec("h", protein_atoms=8, waters=10, density=0.03)
    return build_system(spec, seed=seed)


def all_pairs(n):
    return np.array([(i, j) for i in range(n) for j in range(i + 1, n)])


@given(st.integers(0, 50))
@settings(max_examples=25, deadline=None)
def test_energy_invariant_under_translation(seed):
    sys_ = make_system(seed)
    pairs = all_pairs(sys_.n)
    r0, _ = ff.total_energy(sys_, pairs)
    shift = np.array([seed + 1.0, -2.0 * seed, 0.5])
    r1, _ = ff.total_energy(sys_, pairs, sys_.coords + shift)
    assert abs(r1.total - r0.total) < 1e-6 * max(abs(r0.total), 1.0)


@given(st.integers(0, 50))
@settings(max_examples=25, deadline=None)
def test_energy_invariant_under_rotation(seed):
    sys_ = make_system(seed)
    pairs = all_pairs(sys_.n)
    r0, _ = ff.total_energy(sys_, pairs)
    rng = np.random.default_rng(seed)
    # random PROPER rotation via QR of a gaussian matrix; a reflection
    # (det -1) would legitimately change improper-dihedral (chirality)
    # energies, so flip one axis if needed
    q, r = np.linalg.qr(rng.standard_normal((3, 3)))
    q *= np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    r1, _ = ff.total_energy(sys_, pairs, sys_.coords @ q.T)
    assert abs(r1.total - r0.total) < 1e-6 * max(abs(r0.total), 1.0)


@given(st.integers(0, 50))
@settings(max_examples=25, deadline=None)
def test_net_force_is_zero(seed):
    sys_ = make_system(seed)
    pairs = all_pairs(sys_.n)
    _, grad = ff.total_energy(sys_, pairs)
    assert np.abs(grad.sum(axis=0)).max() < 1e-6 * max(np.abs(grad).max(), 1.0)


@given(st.integers(0, 50))
@settings(max_examples=25, deadline=None)
def test_net_torque_is_zero(seed):
    # internal forces exert no net torque about the origin
    sys_ = make_system(seed)
    pairs = all_pairs(sys_.n)
    _, grad = ff.total_energy(sys_, pairs)
    torque = np.cross(sys_.coords, -grad).sum(axis=0)
    scale = max(np.abs(np.cross(sys_.coords, grad)).max(), 1.0)
    assert np.abs(torque).max() < 1e-6 * scale


@given(st.integers(0, 30))
@settings(max_examples=20, deadline=None)
def test_pair_energy_symmetry(seed):
    # swapping i and j in the pair list changes nothing
    sys_ = make_system(seed)
    pairs = all_pairs(sys_.n)
    swapped = pairs[:, ::-1]
    ev1, ec1, g1 = ff.nonbonded_energy(sys_, pairs)
    ev2, ec2, g2 = ff.nonbonded_energy(sys_, swapped)
    assert abs(ev1 - ev2) < 1e-9 * max(abs(ev1), 1.0)
    assert abs(ec1 - ec2) < 1e-9 * max(abs(ec1), 1.0)
    assert np.allclose(g1, g2)


@given(st.integers(0, 30), st.integers(1, 40))
@settings(max_examples=20, deadline=None)
def test_nonbonded_energy_additive_over_pair_subsets(seed, split):
    sys_ = make_system(seed)
    pairs = all_pairs(sys_.n)
    split = split % len(pairs)
    a, b = pairs[:split], pairs[split:]
    ev, ec, g = ff.nonbonded_energy(sys_, pairs)
    eva, eca, ga = ff.nonbonded_energy(sys_, a)
    evb, ecb, gb = ff.nonbonded_energy(sys_, b)
    assert abs((eva + evb) - ev) < 1e-6 * max(abs(ev), 1.0)
    assert abs((eca + ecb) - ec) < 1e-9 * max(abs(ec), 1.0)
    assert np.allclose(ga + gb, g, rtol=1e-9, atol=1e-9)
