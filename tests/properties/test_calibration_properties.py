"""Property-based tests: calibration recovers arbitrary true platforms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calibration import calibrate
from repro.core.model import OpalPerformanceModel
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.opal.complexes import LARGE, MEDIUM, SMALL


@st.composite
def true_platforms(draw):
    return ModelPlatformParams(
        name="truth",
        a1=draw(st.floats(1e6, 2e8)),
        b1=draw(st.floats(1e-6, 2e-2)),
        a2=draw(st.floats(1e-9, 5e-7)),
        a3=draw(st.floats(1e-8, 2e-6)),
        a4=draw(st.floats(1e-8, 1e-5)),
        b5=draw(st.floats(1e-6, 2e-2)),
    )


def design_observations(model):
    obs = []
    for mol in (SMALL, MEDIUM, LARGE):
        for cutoff in (None, 10.0):
            for interval in (1, 10):
                for p in (1, 4, 7):
                    app = ApplicationParams(
                        molecule=mol, steps=10, servers=p, cutoff=cutoff,
                        update_interval=interval,
                    )
                    obs.append((app, model.breakdown(app)))
    return obs


@given(true_platforms())
@settings(max_examples=25, deadline=None)
def test_calibration_inverts_the_model(truth):
    """calibrate(model(theta)) == theta for any admissible theta."""
    model = OpalPerformanceModel(truth)
    result = calibrate(design_observations(model))
    fitted = result.params
    assert abs(fitted.a1 - truth.a1) / truth.a1 < 1e-6
    assert abs(fitted.b1 - truth.b1) / max(truth.b1, 1e-12) < 1e-4
    assert abs(fitted.a2 - truth.a2) / truth.a2 < 1e-6
    assert abs(fitted.a3 - truth.a3) / truth.a3 < 1e-6
    assert abs(fitted.a4 - truth.a4) / truth.a4 < 1e-6
    assert abs(fitted.b5 - truth.b5) / max(truth.b5, 1e-12) < 1e-6
    assert result.mean_relative_error() < 1e-9


@given(true_platforms())
@settings(max_examples=15, deadline=None)
def test_calibrated_model_extrapolates(truth):
    """A fit on the design predicts configurations outside it exactly."""
    model = OpalPerformanceModel(truth)
    result = calibrate(design_observations(model))
    unseen = ApplicationParams(
        molecule=MEDIUM, steps=25, servers=6, cutoff=15.0, update_interval=3
    )
    assert abs(
        result.model.predict_total(unseen) - model.predict_total(unseen)
    ) / model.predict_total(unseen) < 1e-6
