"""Property-based tests of discrete-event simulator invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import (
    Barrier,
    Cluster,
    Compute,
    Node,
    Recv,
    Send,
    SwitchedFabric,
    constant_rate,
)


def build_cluster(n_nodes, latency=1e-4, bandwidth=1e7):
    cluster = Cluster(
        lambda e: SwitchedFabric(e, latency=latency, bandwidth=bandwidth), seed=0
    )
    nodes = [
        cluster.add_node(Node(cluster.engine, i, constant_rate(1e8)))
        for i in range(n_nodes)
    ]
    return cluster, nodes


@given(
    st.lists(st.floats(0.0, 2.0), min_size=1, max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_independent_computes_finish_at_max(durations):
    """Processes on distinct nodes run concurrently: makespan = max."""
    cluster, nodes = build_cluster(len(durations))

    def body(ctx, d):
        yield Compute(seconds=d)

    for i, d in enumerate(durations):
        cluster.spawn(f"p{i}", nodes[i], body, d)
    assert cluster.run() == max(durations)


@given(
    st.lists(st.floats(0.01, 1.0), min_size=2, max_size=6),
    st.floats(0.0, 0.1),
)
@settings(max_examples=50, deadline=None)
def test_barrier_release_is_last_arrival_plus_cost(delays, cost):
    cluster, nodes = build_cluster(len(delays))
    releases = {}

    def body(ctx, d):
        yield Compute(seconds=d)
        yield Barrier("b", count=len(delays), cost=cost)
        releases[ctx.name] = ctx.now

    for i, d in enumerate(delays):
        cluster.spawn(f"p{i}", nodes[i], body, d)
    cluster.run()
    expected = max(delays) + cost
    assert all(abs(t - expected) < 1e-12 for t in releases.values())


@given(st.lists(st.integers(1, 200_000), min_size=1, max_size=10))
@settings(max_examples=50, deadline=None)
def test_fifo_message_order_preserved(sizes):
    """Messages between one sender/receiver pair arrive in send order."""
    cluster, nodes = build_cluster(2)
    received = []

    def receiver(ctx, count):
        for _ in range(count):
            msg = yield Recv(tag=1)
            received.append(msg.payload)

    def sender(ctx, dest):
        for k, size in enumerate(sizes):
            yield Send(dest, nbytes=size, tag=1, payload=k)

    r = cluster.spawn("r", nodes[1], receiver, len(sizes))
    cluster.spawn("s", nodes[0], sender, r.tid)
    cluster.run()
    assert received == list(range(len(sizes)))


@given(st.integers(1, 12), st.integers(1, 100_000))
@settings(max_examples=40, deadline=None)
def test_gather_time_scales_with_senders(n_senders, nbytes):
    """p concurrent transfers into one receiver serialize at its port."""
    cluster, nodes = build_cluster(n_senders + 1, latency=0.0)
    bw = cluster.fabric.bandwidth

    def receiver(ctx, count):
        for _ in range(count):
            yield Recv(tag=1)

    def sender(ctx, dest):
        yield Send(dest, nbytes=nbytes, tag=1)

    r = cluster.spawn("r", nodes[0], receiver, n_senders)
    for i in range(n_senders):
        cluster.spawn(f"s{i}", nodes[i + 1], sender, r.tid)
    t = cluster.run()
    assert abs(t - n_senders * (nbytes / bw)) < 1e-9


@given(st.integers(0, 2**31), st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_simulation_deterministic_across_runs(seed, n_procs):
    def run_once():
        cluster, nodes = build_cluster(n_procs)
        done = []

        def body(ctx, i):
            yield Compute(seconds=0.1 * (i + 1))
            if i > 0:
                yield Send(1, nbytes=1000 * i, tag=1)
            else:
                for _ in range(n_procs - 1):
                    yield Recv(tag=1)
            done.append(ctx.now)

        for i in range(n_procs):
            cluster.spawn(f"p{i}", nodes[i], body, i)
        cluster.run()
        return done

    assert run_once() == run_once()
