"""Property-based tests for experimental-design machinery."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.factorial import (
    Factor,
    design_size,
    fractional_factorial,
    full_factorial,
    sign_table_effects,
)


@st.composite
def factor_lists(draw):
    k = draw(st.integers(1, 4))
    factors = []
    for i in range(k):
        n_levels = draw(st.integers(1, 4))
        factors.append(Factor(f"f{i}", tuple(range(n_levels))))
    return factors


@given(factor_lists())
@settings(max_examples=80, deadline=None)
def test_full_factorial_size_and_uniqueness(factors):
    rows = full_factorial(factors)
    assert len(rows) == design_size(factors)
    as_tuples = {tuple(sorted(r.items())) for r in rows}
    assert len(as_tuples) == len(rows)


@given(factor_lists())
@settings(max_examples=80, deadline=None)
def test_full_factorial_covers_every_level(factors):
    rows = full_factorial(factors)
    for f in factors:
        seen = {r[f.name] for r in rows}
        assert seen == set(f.levels)


@given(st.integers(2, 5))
@settings(max_examples=20, deadline=None)
def test_half_fraction_properties(k):
    factors = [Factor(chr(ord("A") + i), (-1, 1)) for i in range(k)]
    generator = f"{factors[-1].name}=" + "*".join(f.name for f in factors[:-1])
    rows = fractional_factorial(factors, generators=[generator])
    # half the runs of the full design
    assert len(rows) == 2 ** (k - 1)
    # defining relation holds on every row
    for r in rows:
        prod = 1
        for f in factors[:-1]:
            prod *= r[f.name]
        assert r[factors[-1].name] == prod
    # base projection is a full factorial (orthogonality)
    base = {tuple(r[f.name] for f in factors[:-1]) for r in rows}
    assert len(base) == 2 ** (k - 1)


@given(
    st.floats(-10, 10),
    st.floats(-10, 10),
    st.floats(-10, 10),
    st.floats(-10, 10),
)
@settings(max_examples=80, deadline=None)
def test_sign_table_recovers_linear_coefficients(mean, ca, cb, cab):
    factors = [Factor("A", (-1, 1)), Factor("B", (-1, 1))]
    rows = full_factorial(factors)
    y = [mean + ca * r["A"] + cb * r["B"] + cab * r["A"] * r["B"] for r in rows]
    effects = {e.name: e.effect for e in sign_table_effects(factors, rows, y)}
    assert abs(effects["A"] - ca) < 1e-9
    assert abs(effects["B"] - cb) < 1e-9
    assert abs(effects["A*B"] - cab) < 1e-9
