"""Property-based tests over the full simulated Opal driver.

These run the complete client/server program on the simulated J90 for
hypothesis-generated configurations and assert the invariants every
measured breakdown must satisfy, whatever the configuration.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import ApplicationParams
from repro.opal.complexes import ComplexSpec
from repro.opal.parallel import run_parallel_opal
from repro.platforms import CRAY_J90


@st.composite
def small_apps(draw):
    mol = ComplexSpec(
        "h",
        protein_atoms=draw(st.integers(40, 400)),
        waters=draw(st.integers(0, 800)),
        density=draw(st.floats(0.03, 0.06)),
    )
    return ApplicationParams(
        molecule=mol,
        steps=draw(st.integers(1, 6)),
        servers=draw(st.integers(1, 7)),
        update_interval=draw(st.integers(1, 6)),
        cutoff=draw(st.one_of(st.none(), st.floats(5.0, 15.0))),
    )


@given(small_apps())
@settings(max_examples=30, deadline=None)
def test_breakdown_always_additive_and_nonnegative(app):
    r = run_parallel_opal(app, CRAY_J90)
    b = r.breakdown
    assert abs(b.total - r.wall_time) < 1e-9 * max(r.wall_time, 1.0)
    for value in b.as_dict().values():
        assert value >= 0.0
    assert b.sync > 0.0  # accounted mode always pays barriers
    assert b.comm > 0.0


@given(small_apps())
@settings(max_examples=20, deadline=None)
def test_accounting_never_faster_than_overlap(app):
    acc = run_parallel_opal(app, CRAY_J90, sync_mode="accounted")
    ovl = run_parallel_opal(app, CRAY_J90, sync_mode="overlapped")
    assert acc.wall_time >= ovl.wall_time - 1e-9


@given(small_apps())
@settings(max_examples=20, deadline=None)
def test_servers_all_do_work(app):
    import math

    from repro.opal.workload import OpalWorkload

    r = run_parallel_opal(app, CRAY_J90)
    assert len(r.server_energy_seconds) == app.p
    # energy work is dealt in whole blocks too: a tiny system with only
    # ~p blocks can leave a server without any — but never negative,
    # and never all-idle; with blocks to spare, everyone works
    assert all(s >= 0 for s in r.server_energy_seconds)
    assert any(s > 0 for s in r.server_energy_seconds)
    w = OpalWorkload(app, seed=0)
    energy_blocks = math.ceil(w.energy_pairs_total / w._dist.block)
    if energy_blocks >= 16 * app.p:
        assert all(s > 0 for s in r.server_energy_seconds)
    # update work is dealt in whole blocks: on tiny systems a single
    # block can hold the entire update scan, leaving other servers
    # legitimately update-idle — but never negative, and never all-idle
    assert all(s >= 0 for s in r.server_update_seconds)
    assert any(s > 0 for s in r.server_update_seconds)


@given(small_apps())
@settings(max_examples=15, deadline=None)
def test_flop_counters_scale_with_inflation(app):
    from repro.opal.workload import OpalWorkload

    r = run_parallel_opal(app, CRAY_J90)
    algo = OpalWorkload(app).total_algorithmic_flops()
    assert abs(r.flops_counted - algo * CRAY_J90.flop_inflation) < 1e-6 * algo


@given(small_apps())
@settings(max_examples=15, deadline=None)
def test_determinism_across_identical_runs(app):
    a = run_parallel_opal(app, CRAY_J90, seed=5)
    b = run_parallel_opal(app, CRAY_J90, seed=5)
    assert a.wall_time == b.wall_time
    assert a.breakdown.as_dict() == b.breakdown.as_dict()
