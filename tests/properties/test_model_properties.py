"""Property-based tests of the analytical model's structural invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import OpalPerformanceModel
from repro.core.parameters import (
    ApplicationParams,
    ModelPlatformParams,
    energy_pair_work,
    update_pair_work,
)
from repro.opal.complexes import ComplexSpec


@st.composite
def platforms(draw):
    return ModelPlatformParams(
        name="h",
        a1=draw(st.floats(1e5, 1e9)),
        b1=draw(st.floats(0.0, 0.1)),
        a2=draw(st.floats(1e-9, 1e-6)),
        a3=draw(st.floats(1e-9, 1e-6)),
        a4=draw(st.floats(1e-9, 1e-5)),
        b5=draw(st.floats(0.0, 0.05)),
    )


@st.composite
def complexes(draw):
    protein = draw(st.integers(10, 3000))
    waters = draw(st.integers(0, 6000))
    density = draw(st.floats(0.01, 0.08))
    return ComplexSpec("h", protein_atoms=protein, waters=waters, density=density)


@st.composite
def apps(draw):
    return ApplicationParams(
        molecule=draw(complexes()),
        steps=draw(st.integers(1, 50)),
        servers=draw(st.integers(1, 16)),
        update_interval=draw(st.integers(1, 20)),
        cutoff=draw(st.one_of(st.none(), st.floats(1.0, 80.0))),
    )


@given(platforms(), apps())
@settings(max_examples=120, deadline=None)
def test_all_components_nonnegative_and_finite(platform, app):
    model = OpalPerformanceModel(platform)
    b = model.breakdown(app)
    for value in b.as_dict().values():
        assert value >= 0.0
        assert math.isfinite(value)
    assert b.total > 0.0


@given(platforms(), apps())
@settings(max_examples=80, deadline=None)
def test_parallel_compute_divides_by_p(platform, app):
    model = OpalPerformanceModel(platform)
    t1 = model.t_par_comp(app.with_(servers=1))
    tp = model.t_par_comp(app)
    assert tp * app.p > t1 * (1 - 1e-9)
    assert tp * app.p < t1 * (1 + 1e-9)


@given(platforms(), apps())
@settings(max_examples=80, deadline=None)
def test_comm_increases_with_p(platform, app):
    model = OpalPerformanceModel(platform)
    if app.p >= 2:
        assert model.t_comm(app) > model.t_comm(app.with_(servers=app.p - 1))


@given(platforms(), apps())
@settings(max_examples=80, deadline=None)
def test_cutoff_never_increases_total(platform, app):
    model = OpalPerformanceModel(platform)
    with_cut = model.predict_total(app.with_(cutoff=10.0))
    without = model.predict_total(app.with_(cutoff=None))
    assert with_cut <= without * (1 + 1e-12)


@given(platforms(), apps())
@settings(max_examples=80, deadline=None)
def test_partial_update_never_increases_total(platform, app):
    model = OpalPerformanceModel(platform)
    full = model.predict_total(app.with_(update_interval=1))
    partial = model.predict_total(app.with_(update_interval=10))
    assert partial <= full * (1 + 1e-12)


@given(platforms(), apps(), st.integers(2, 4))
@settings(max_examples=60, deadline=None)
def test_faster_cpu_never_slower(platform, app, factor):
    slow = OpalPerformanceModel(platform.scaled_compute(float(factor)))
    fast = OpalPerformanceModel(platform)
    assert fast.predict_total(app) <= slow.predict_total(app) * (1 + 1e-12)


@given(platforms(), apps())
@settings(max_examples=60, deadline=None)
def test_more_steps_proportional(platform, app):
    # every component is linear in s, so total must be too
    model = OpalPerformanceModel(platform)
    t1 = model.predict_total(app.with_(steps=app.steps))
    t2 = model.predict_total(app.with_(steps=2 * app.steps))
    assert t2 / t1 == pytest_approx(2.0)


def pytest_approx(x, rel=1e-9):
    import pytest

    return pytest.approx(x, rel=rel)


@given(st.integers(2, 100_000), st.floats(0.0, 0.95))
@settings(max_examples=200, deadline=None)
def test_update_pair_work_positive(n, gamma):
    w = update_pair_work(n, gamma)
    assert w >= n  # never below a linear scan
    assert math.isfinite(w)


@given(st.integers(2, 100_000), st.floats(1.0, 1e6))
@settings(max_examples=200, deadline=None)
def test_energy_pair_work_bounded_by_all_pairs(n, n_tilde):
    w = energy_pair_work(n, n_tilde)
    assert 0 <= w <= n * (n - 1) / 2 + 1e-9
