"""Property-based tests of workload distribution and space invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.space import SpaceModel
from repro.opal.complexes import ComplexSpec
from repro.opal.distribution import PairDistribution


@given(
    st.integers(1, 16),
    st.integers(0, 2**20),
    st.integers(0, 1000),
    st.floats(0.0, 0.5),
)
@settings(max_examples=150, deadline=None)
def test_shares_conserve_work(servers, total, seed, defect):
    d = PairDistribution(servers=servers, seed=seed, defect=defect)
    s = d.shares(float(total))
    assert len(s) == servers
    assert np.all(s >= -1e-9)
    assert s.sum() == np.float64(total)


@given(st.integers(1, 15, ), st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_odd_p_defect_invisible(servers, seed):
    if servers % 2 == 0:
        servers += 1
    clean = PairDistribution(servers=servers, seed=seed, defect=0.0)
    dirty = PairDistribution(servers=servers, seed=seed, defect=0.3)
    total = 10_000_000
    # for odd p the defective fast path is still uniform, so the dirty
    # dealer is no worse than the clean one beyond multinomial noise
    # (max-of-p-cells fluctuation ~ sqrt(p / n_blocks))
    import math

    n_blocks = total / clean.block
    noise_bound = 1.0 + 5.0 * math.sqrt(servers / n_blocks)
    assert dirty.imbalance(total) < noise_bound
    assert clean.imbalance(total) < noise_bound


@given(st.integers(2, 16).filter(lambda p: p % 2 == 0), st.floats(0.05, 0.4))
@settings(max_examples=60, deadline=None)
def test_even_p_imbalance_tracks_defect(servers, defect):
    d = PairDistribution(servers=servers, seed=1, defect=defect)
    observed = d.imbalance(20_000_000)
    assert abs(observed - (1.0 + defect)) < 0.05


@given(
    st.integers(2, 5000),
    st.integers(0, 10_000),
    st.floats(0.01, 0.08),
    st.integers(1, 64),
)
@settings(max_examples=100, deadline=None)
def test_space_model_invariants(protein, waters, density, servers):
    spec = ComplexSpec("h", protein_atoms=protein, waters=waters, density=density)
    model = SpaceModel(spec)
    assert model.pair_list_total() >= 0
    assert model.pair_list_per_server(servers) <= model.pair_list_total() + 1e-9
    # working set decreases monotonically with servers
    assert model.server_working_set(servers) <= model.server_working_set(1) + 1e-9
    # the client never needs more than a server with one share
    assert model.client_working_set() <= model.server_working_set(1)


@given(st.integers(2, 5000), st.integers(0, 10_000), st.floats(0.5, 60.0))
@settings(max_examples=100, deadline=None)
def test_active_pairs_monotone_in_cutoff(protein, waters, cutoff):
    spec = ComplexSpec("h", protein_atoms=protein, waters=waters)
    smaller = spec.active_pairs(cutoff)
    larger = spec.active_pairs(cutoff * 1.5)
    assert smaller <= larger + 1e-9
    assert larger <= spec.n * (spec.n - 1) / 2 + 1e-9
