"""Property-based tests for the parallelization-alternative models."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.opal.complexes import ComplexSpec
from repro.opal.decomposition import (
    ALL_METHODS,
    ForceDecomposition,
    ReplicatedData,
    SpaceDecomposition,
)


@st.composite
def platforms(draw):
    return ModelPlatformParams(
        name="h",
        a1=draw(st.floats(1e6, 2e8)),
        b1=draw(st.floats(1e-6, 2e-2)),
        a2=draw(st.floats(1e-9, 5e-7)),
        a3=draw(st.floats(1e-8, 2e-6)),
        a4=draw(st.floats(1e-8, 1e-5)),
        b5=draw(st.floats(0.0, 2e-2)),
    )


@st.composite
def apps(draw):
    mol = ComplexSpec(
        "h",
        protein_atoms=draw(st.integers(50, 3000)),
        waters=draw(st.integers(0, 6000)),
        density=draw(st.floats(0.02, 0.07)),
    )
    return ApplicationParams(
        molecule=mol,
        steps=draw(st.integers(1, 20)),
        servers=draw(st.integers(1, 32)),
        update_interval=draw(st.integers(1, 10)),
        cutoff=draw(st.one_of(st.none(), st.floats(5.0, 30.0))),
    )


@given(platforms(), apps())
@settings(max_examples=100, deadline=None)
def test_all_methods_finite_positive(platform, app):
    for cls in ALL_METHODS:
        pred = cls(platform).predict(app)
        assert pred.total > 0 and math.isfinite(pred.total)
        assert pred.t_comm >= 0
        assert pred.memory_bytes > 0


@given(platforms(), apps())
@settings(max_examples=80, deadline=None)
def test_identical_compute_across_methods(platform, app):
    comps = {cls(platform).t_comp(app) for cls in ALL_METHODS}
    assert max(comps) - min(comps) < 1e-9 * max(comps)


@given(platforms(), apps())
@settings(max_examples=80, deadline=None)
def test_rd_comm_strictly_monotone_in_p(platform, app):
    rd = ReplicatedData(platform)
    if app.p >= 2:
        assert rd.t_comm(app) > rd.t_comm(app.with_(servers=app.p - 1))


@given(platforms(), apps())
@settings(max_examples=80, deadline=None)
def test_sd_halo_bounded_by_n(platform, app):
    sd = SpaceDecomposition(platform)
    halo = sd.halo_atoms(app)
    assert 0 <= halo <= app.n


@given(platforms(), apps())
@settings(max_examples=80, deadline=None)
def test_sd_memory_never_exceeds_rd(platform, app):
    sd = SpaceDecomposition(platform).memory_bytes(app)
    rd = ReplicatedData(platform).memory_bytes(app)
    # SD holds a subdomain + halo <= full replica + same pair-list share
    assert sd <= rd * (1 + 1e-9) + 1e-6


@given(platforms(), apps())
@settings(max_examples=80, deadline=None)
def test_fd_memory_never_exceeds_rd(platform, app):
    fd = ForceDecomposition(platform).memory_bytes(app)
    rd = ReplicatedData(platform).memory_bytes(app)
    assert fd <= rd * (1 + 1e-9) + 1e-6


@given(platforms(), apps())
@settings(max_examples=60, deadline=None)
def test_single_processor_in_place_methods_have_no_comm(platform, app):
    a1 = app.with_(servers=1)
    assert SpaceDecomposition(platform).t_comm(a1) == 0.0
    assert ForceDecomposition(platform).t_comm(a1) == 0.0
