"""Documentation completeness: every public item carries a docstring.

Deliverable (e) demands doc comments on every public item; this test
enforces it mechanically so the guarantee survives future edits.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_MODULES = {"repro.__main__"}


def all_modules():
    mods = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name not in SKIP_MODULES:
            mods.append(info.name)
    return mods


@pytest.mark.parametrize("module_name", all_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", all_modules())
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its definition site
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_"):
                    continue
                if not (
                    inspect.isfunction(member) or isinstance(member, property)
                ):
                    continue
                doc = (
                    member.fget.__doc__
                    if isinstance(member, property)
                    else member.__doc__
                )
                if not (doc and doc.strip()):
                    missing.append(f"{name}.{mname}")
    assert not missing, f"{module_name}: undocumented public items: {missing}"


def test_every_subpackage_reachable():
    names = set(all_modules())
    for pkg in (
        "repro.core",
        "repro.netsim",
        "repro.pvm",
        "repro.sciddle",
        "repro.hpm",
        "repro.platforms",
        "repro.opal",
        "repro.experiments",
        "repro.analysis",
    ):
        assert pkg in names
