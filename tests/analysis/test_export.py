"""Unit tests for CSV export/import round-trips."""

import pytest

from repro.analysis.export import (
    breakdowns_from_csv,
    breakdowns_to_csv,
    curves_from_csv,
    curves_to_csv,
    residuals_to_csv,
    to_csv_string,
)
from repro.core.breakdown import TimeBreakdown
from repro.core.parameters import ApplicationParams
from repro.core.prediction import predict_platforms
from repro.opal.complexes import MEDIUM
from repro.platforms import CRAY_J90, FAST_COPS


def test_curves_roundtrip(tmp_path):
    app = ApplicationParams(molecule=MEDIUM, steps=10, cutoff=10.0)
    series = predict_platforms([CRAY_J90, FAST_COPS], app, (1, 3, 5))
    path = tmp_path / "curves.csv"
    curves_to_csv(series, path)
    back = curves_from_csv(path)
    assert set(back) == {"j90", "fast-cops"}
    assert back["j90"][3]["time_s"] == pytest.approx(series["j90"].times[1])
    assert back["j90"][1]["speedup"] == pytest.approx(1.0)


def test_breakdowns_roundtrip(tmp_path):
    panels = {
        "a": {
            1: TimeBreakdown(update=1, nbint=5, comm=0.5),
            2: TimeBreakdown(update=0.5, nbint=2.5, comm=1.0, idle=0.2),
        }
    }
    path = tmp_path / "panels.csv"
    breakdowns_to_csv(panels, path)
    back = breakdowns_from_csv(path)
    assert back["a"][2].idle == pytest.approx(0.2)
    assert back["a"][1].total == pytest.approx(panels["a"][1].total)


def test_residuals_export(tmp_path):
    rows = [{"n": 100, "measured": 1.5, "predicted": 1.4}]
    path = tmp_path / "res.csv"
    residuals_to_csv(rows, path)
    assert "measured" in path.read_text()
    with pytest.raises(ValueError):
        residuals_to_csv([], path)


def test_to_csv_string():
    assert to_csv_string([]) == ""
    s = to_csv_string([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
    assert s.splitlines()[0] == "a,b"
    assert len(s.splitlines()) == 3
