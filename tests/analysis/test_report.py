"""Unit tests for ASCII reporting."""

import pytest

from repro.analysis.report import (
    breakdown_chart,
    breakdown_table,
    curve_table,
    residuals_table,
    stacked_bar,
)
from repro.core.breakdown import TimeBreakdown


@pytest.fixture
def rows():
    return {
        1: TimeBreakdown(update=1.0, nbint=8.0, seq_comp=0.1, comm=0.5, sync=0.2),
        2: TimeBreakdown(update=0.5, nbint=4.0, seq_comp=0.1, comm=1.0, sync=0.2,
                         idle=0.4),
    }


def test_breakdown_table_contains_all_rows(rows):
    out = breakdown_table(rows, title="panel a")
    lines = out.splitlines()
    assert lines[0] == "panel a"
    assert len(lines) == 4  # title + header + 2 rows
    assert "update" in lines[1] and "total" in lines[1]


def test_breakdown_table_merged(rows):
    out = breakdown_table(rows, merge_par=True)
    assert "par_comp" in out and "nbint" not in out


def test_curve_table_alignment():
    out = curve_table(
        {"j90": [1.0, 2.0], "t3e": [3.0, 4.0]}, servers=[1, 2], title="times"
    )
    lines = out.splitlines()
    assert lines[0] == "times"
    assert "p=1" in lines[1] and "p=2" in lines[1]
    assert len(lines) == 4


def test_curve_table_length_mismatch():
    with pytest.raises(ValueError):
        curve_table({"x": [1.0]}, servers=[1, 2])


def test_stacked_bar_proportions(rows):
    bar = stacked_bar(rows[1], width=50)
    # nbint dominates: most characters are '#' (par_comp merged)
    assert bar.count("#") > 30
    assert bar.endswith("s")


def test_stacked_bar_zero():
    assert stacked_bar(TimeBreakdown()) == "(zero)"


def test_breakdown_chart_scales_bars(rows):
    art = breakdown_chart(rows, title="fig", width=40)
    lines = art.splitlines()
    assert lines[0] == "fig"
    # p=1 (longer run) has the longer bar
    assert len(lines[1]) > len(lines[2])


def test_residuals_table_format():
    rows = [
        {
            "n": 4289,
            "p": 3,
            "cutoff": 10.0,
            "update_interval": 1,
            "measured": 6.0,
            "predicted": 6.2,
            "difference": -0.2,
            "relative_error": -0.0333,
        }
    ]
    out = residuals_table(rows, title="fig4")
    assert "4289" in out and "-3.33" in out
