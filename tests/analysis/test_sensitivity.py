"""Unit tests for parameter-sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import (
    PARAMETERS,
    elasticity,
    sensitivity_report,
    sensitivity_sweep,
)
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.errors import ModelError
from repro.opal.complexes import MEDIUM
from repro.platforms import CRAY_J90


@pytest.fixture
def params():
    return ModelPlatformParams.from_spec(CRAY_J90)


def app(**kw):
    defaults = dict(molecule=MEDIUM, steps=10, servers=4, cutoff=10.0)
    defaults.update(kw)
    return ApplicationParams(**defaults)


def test_unknown_parameter_rejected(params):
    with pytest.raises(ModelError):
        elasticity(params, app(), "warp")


def test_elasticities_sum_to_one(params):
    """t is a sum of terms each proportional to one parameter (a1 enters
    inversely), so |elasticities| sum to ~1."""
    rep = sensitivity_report(params, app())
    assert sum(abs(v) for v in rep.elasticities.values()) == pytest.approx(
        1.0, abs=1e-3
    )


def test_a1_elasticity_negative(params):
    """More bandwidth -> less time: d log t / d log a1 < 0."""
    assert elasticity(params, app(), "a1") < 0


def test_time_parameters_positive(params):
    for name in ("b1", "a2", "a3", "a4", "b5"):
        assert elasticity(params, app(), name) >= 0


def test_regime_transition_compute_to_communication(params):
    """The paper's conclusion as numbers: without cutoff compute
    dominates; with cutoff communication takes over as p grows.
    (On the J90's 3 MB/s middleware even the no-cutoff run tips at very
    high p — hence the moderate p here; a good network never tips.)"""
    no_cut = sensitivity_report(params, app(cutoff=None, servers=4))
    assert no_cut.compute_share() > 0.5
    assert no_cut.dominant() == "a3"
    with_cut = sensitivity_report(params, app(cutoff=10.0, servers=7))
    assert with_cut.communication_share() > 0.5
    assert with_cut.dominant() in ("a1", "b1")

    from repro.core.parameters import ModelPlatformParams
    from repro.platforms import CRAY_T3E

    t3e = ModelPlatformParams.from_spec(CRAY_T3E)
    no_cut_t3e = sensitivity_report(t3e, app(cutoff=None, servers=7))
    assert no_cut_t3e.compute_share() > 0.9  # "regardless of the system"


def test_sweep_monotone_communication_share(params):
    sweep = sensitivity_sweep(params, app(cutoff=10.0), servers=(1, 3, 5, 7))
    shares = [sweep[p].communication_share() for p in (1, 3, 5, 7)]
    assert all(a < b for a, b in zip(shares, shares[1:]))


def test_report_labels(params):
    rep = sensitivity_report(params, app())
    assert rep.platform == "j90"
    assert "medium" in rep.app_label and "p=4" in rep.app_label
    assert set(rep.elasticities) == set(PARAMETERS)
