"""Unit tests for the figure-data generators."""


from repro.analysis.figures import (
    PANEL_TITLES,
    figure3_parameter_space,
    figure4_calibration,
    figure5,
    figure6,
    figure_breakdown,
    figure_prediction,
)
from repro.opal.complexes import MEDIUM, SMALL


def test_figure_breakdown_structure(j90):
    out = figure_breakdown(SMALL, platform=j90, servers=(1, 3))
    assert set(out) == {"a", "b", "c", "d"}
    for panel in out.values():
        assert set(panel) == {1, 3}
        assert all(b.total > 0 for b in panel.values())


def test_breakdown_panel_semantics(j90):
    out = figure_breakdown(SMALL, platform=j90, servers=(2,))
    # cutoff panels (c, d) have less parallel compute than no-cutoff (a, b)
    assert out["c"][2].nbint < out["a"][2].nbint
    # partial-update panels have less update time
    assert out["b"][2].update < out["a"][2].update


def test_panel_titles_cover_all():
    assert set(PANEL_TITLES) == {"a", "b", "c", "d"}


def test_figure3_is_full_design():
    assert len(figure3_parameter_space()) == 84


def test_figure4_returns_fit_and_rows(j90):
    result, rows = figure4_calibration(platform=j90)
    assert len(rows) == 28
    assert result.mean_relative_error() < 0.10
    assert all("difference" in r for r in rows)


def test_figure_prediction_panels():
    out = figure_prediction(MEDIUM)
    assert set(out) == {"no_cutoff", "cutoff"}
    assert len(out["cutoff"]) == 5  # all platforms
    series = out["cutoff"]["j90"]
    assert len(series.times) == 7


def test_figure5_and_6_shapes():
    f5 = figure5()
    f6 = figure6()
    # larger problem: larger absolute times everywhere
    for name in f5["no_cutoff"]:
        assert f6["no_cutoff"][name].times[0] > f5["no_cutoff"][name].times[0]
