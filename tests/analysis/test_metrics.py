"""Unit tests for the Section 3.3 low-level indicators."""

import pytest

from repro.analysis.metrics import RunMetrics, payload_bytes, run_metrics
from repro.core.parameters import ApplicationParams
from repro.errors import ModelError
from repro.opal.complexes import MEDIUM, SMALL
from repro.opal.parallel import run_parallel_opal
from repro.platforms import CRAY_J90, FAST_COPS


def run(platform=CRAY_J90, **kw):
    defaults = dict(molecule=SMALL, steps=4, servers=4, cutoff=None)
    defaults.update(kw)
    app = ApplicationParams(**defaults)
    return run_parallel_opal(app, platform), app


def test_metrics_require_accounted_mode():
    app = ApplicationParams(molecule=SMALL, steps=2, servers=2)
    result = run_parallel_opal(app, CRAY_J90, sync_mode="overlapped")
    with pytest.raises(ModelError):
        run_metrics(result, CRAY_J90)


def test_metrics_in_valid_ranges():
    result, _ = run()
    m = run_metrics(result, CRAY_J90)
    assert 0.0 < m.communication_efficiency <= 1.0
    assert 0.0 <= m.idle_fraction < 1.0
    assert m.load_imbalance >= 1.0
    assert 0.0 < m.comm_fraction < 1.0
    assert 0.0 <= m.seq_fraction < 0.2


def test_even_p_flags_imbalance():
    even, _ = run(servers=4)
    odd, _ = run(servers=5)
    m_even = run_metrics(even, CRAY_J90)
    m_odd = run_metrics(odd, CRAY_J90)
    assert m_even.load_imbalance > m_odd.load_imbalance
    assert m_even.idle_fraction > m_odd.idle_fraction


def test_payload_accounting_matches_fabric():
    result, app = run(platform=FAST_COPS, servers=3, steps=3)
    # re-run keeping the cluster to compare with fabric byte counters
    result2 = run_parallel_opal(app, FAST_COPS, keep_cluster=True)
    fabric_bytes = result2.cluster.fabric.bytes_transferred
    payload = payload_bytes(result2)
    # fabric moves payload + RPC headers + shutdown: strictly more, but
    # within a few percent for coordinate-sized messages
    assert payload < fabric_bytes
    assert payload > 0.9 * fabric_bytes


def test_communication_efficiency_reflects_protocol_overheads():
    # J90: 10 ms per message on ~34 ms transfers -> efficiency well below 1
    result, _ = run(platform=CRAY_J90, molecule=MEDIUM, servers=4, steps=3)
    m = run_metrics(result, CRAY_J90)
    assert 0.5 < m.communication_efficiency < 0.95


def test_healthy_judgement():
    good = RunMetrics(0.9, 0.02, 1.02, 0.2, 0.01)
    assert good.healthy()
    imbalanced = RunMetrics(0.9, 0.30, 1.4, 0.2, 0.01)
    assert not imbalanced.healthy()
