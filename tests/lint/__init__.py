"""Tests for the simlint static-analysis pass (repro.lint)."""
