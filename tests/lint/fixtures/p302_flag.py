"""P302 flag: a declared procedure is called but no server binds it."""

SERVICE_IDL = """
compute(x);
shutdown_now();
"""


def compute_handler(task, args):
    yield
    return args


def serve(server):
    server.bind("compute", compute_handler)


def client_call(client):
    handle = client.call_async(0, "shutdown_now")
    return handle
