"""Simulation-scope module: timestamps are injected, not read."""

from ..toolbox.wallclock import duration


def record_event(started, finished):
    return duration(started, finished)
