"""Utility module: computes with timestamps, never reads a clock."""


def duration(started, finished):
    return finished - started
