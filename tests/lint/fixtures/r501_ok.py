"""Fixture near-misses: deadline-bounded and deliberately-unbounded recvs."""


def wait_with_deadline(task, server, deadline):
    msg = yield from task.recv(source=server, timeout=5.0)
    ack = yield from task.recv(source=server, timeout=deadline)
    return msg, ack


def service_loop(task):
    # a server waits for work forever by design; the waiver records that
    msg = yield from task.recv(source=0)  # simlint: disable=R501
    return msg
