"""O402 flag fixture: hand-built instruments bypass the registry."""

from repro.obs.metrics import Counter, Histogram


def roll_your_own_telemetry():
    requests = Counter("serve.requests")
    latencies = Histogram("serve.latency_s")
    requests.inc()
    latencies.observe(0.004)
    return requests, latencies
