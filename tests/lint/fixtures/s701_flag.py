"""S701 flag: a coroutine blocks through two synchronous helpers."""

import asyncio


def save_report(path, payload):
    with open(path, "w") as fh:
        fh.write(payload)


def persist(path, payload):
    save_report(path, payload)


async def handle_request(path, payload):
    persist(path, payload)
    await asyncio.sleep(0)
