"""P301 flag: a reply tag is allocated, sent, and never received."""


class RpcRequest:
    def __init__(self, proc, reply_tag, args):
        self.proc = proc
        self.reply_tag = reply_tag
        self.args = args


def fire_and_forget(client, task, server):
    tag = client.allocate_reply_tag()
    yield from task.send(server, 900, payload=RpcRequest("__shutdown__", tag, None))
