"""Fixture near-miss: an explicitly seeded Generator."""

import numpy as np


def make_rng(seed):
    return np.random.default_rng(seed)
