"""Fixture: a blocking receive that nothing ever drives (P204 fires)."""


def handler(task):
    msg = task.recv(source=0)
    return msg
