"""Fixture: fleet RPCs bounded by wait_for or an explicit timeout."""

import asyncio


async def forward(client, envelope, budget):
    return await asyncio.wait_for(client.request(envelope), budget)


async def probe(link, budget):
    return await link.ping(timeout=budget)
