"""Fixture: wall-clock read inside simulation code (D101 fires)."""

import time


def measure_round_trip(task):
    start = time.time()
    task.ping()
    return time.time() - start
