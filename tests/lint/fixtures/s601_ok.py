"""S601 near-miss fixture: async code that yields, sync code that sleeps."""

import asyncio
import time


async def handle_request(payload):
    await asyncio.sleep(0.1)  # cooperative: other clients keep running
    return payload


def warm_up():
    # blocking is fine off the event loop (e.g. inside an executor)
    time.sleep(0.1)
