"""Fixture: OS-entropy seeding (D103 fires)."""

import numpy as np


def make_rng():
    return np.random.default_rng()
