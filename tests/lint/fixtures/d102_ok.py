"""Fixture near-miss: explicit Generator instance, no global state."""

import numpy as np


def shuffle_peers(peers, seed):
    rng = np.random.default_rng(seed)
    rng.shuffle(peers)
    return peers
