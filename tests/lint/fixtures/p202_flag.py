"""Fixture: a tag constant sent but never received (P202 fires)."""

_TAG_ORPHAN = 77


def peer(task, dest):
    task.send(dest, _TAG_ORPHAN)
