"""Fixture: hard-coded seed literal ignoring the run seed (D106 fires)."""

import numpy as np


def peer_rng(index):
    return np.random.default_rng([index, 1234])
