"""S602 flag fixture: a coroutine called but never awaited."""


async def flush_queue():
    return 0


async def shutdown():
    flush_queue()  # builds a coroutine object and drops it: never runs
