"""Utility module outside D101's scope: returns wall-clock time."""

import time


def stamp():
    return time.time()
