"""Simulation-scope module consuming a wall clock through a helper."""

from ..toolbox.wallclock import stamp


def record_event():
    return stamp()
