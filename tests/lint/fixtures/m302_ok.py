"""Fixture near-miss: non-unit magnitudes and non-arithmetic contexts."""

BUFFER_BYTES = 1e6  # a bare assignment is not a conversion


def scaled(seconds):
    return seconds * 5e3
