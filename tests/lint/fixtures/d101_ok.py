"""Fixture near-miss: virtual-time reads and non-module .time() calls."""


def measure_round_trip(engine, task):
    start = engine.now
    task.ping()
    return engine.now - start


def stamp(recorder):
    # a method named time() on a local object is not the time module
    return recorder.time()
