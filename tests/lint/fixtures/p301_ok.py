"""P301 near-miss: the allocated tag is received, closing the exchange."""


class RpcRequest:
    def __init__(self, proc, reply_tag, args):
        self.proc = proc
        self.reply_tag = reply_tag
        self.args = args


def round_trip(client, task, server):
    tag = client.allocate_reply_tag()
    yield from task.send(server, 900, payload=RpcRequest("compute", tag, None))
    msg = yield from task.recv(tag=tag, timeout=5.0)
    return msg
