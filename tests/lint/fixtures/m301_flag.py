"""Fixture: a coefficient name outside equations (2)-(10) (M301 fires)."""


def predict(params):
    return params.a7 * params.a1
