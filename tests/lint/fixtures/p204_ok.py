"""Fixture near-miss: receives correctly driven from a coroutine."""

from repro.netsim import Recv


def handler(task):
    msg = yield from task.recv(source=0, timeout=1.0)
    raw = yield Recv(source=0)
    return msg, raw
