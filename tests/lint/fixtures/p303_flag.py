"""P303 flag: two workers each send only after the other's send."""

TAG_PING = 1
TAG_PONG = 2


def worker_one(task):
    msg = yield from task.recv(tag=TAG_PING)  # simlint: disable=R501
    yield from task.send(0, TAG_PONG, payload=msg)


def worker_two(task):
    msg = yield from task.recv(tag=TAG_PONG)  # simlint: disable=R501
    yield from task.send(1, TAG_PING, payload=msg)
