"""P302 near-miss: every called procedure has a server binding."""

SERVICE_IDL = """
compute(x);
shutdown_now();
"""


def compute_handler(task, args):
    yield
    return args


def shutdown_handler(task, args):
    yield
    return None


def serve(server):
    server.bind("compute", compute_handler)
    server.bind("shutdown_now", shutdown_handler)


def client_call(client):
    handle = client.call_async(0, "shutdown_now")
    return handle
