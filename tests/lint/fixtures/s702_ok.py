"""S702 near-miss: the check/await/write section holds a lock."""

import asyncio


class Service:
    def __init__(self):
        self._task = None
        self._lock = asyncio.Lock()

    async def start(self):
        async with self._lock:
            if self._task is None:
                await asyncio.sleep(0)
                self._task = object()
