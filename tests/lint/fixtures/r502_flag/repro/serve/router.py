"""Fixture: a fleet router forwarding to a worker with no bound."""


async def forward(client, envelope):
    return await client.request(envelope)
