"""Fixture: RPC reference to a procedure nobody declares (P201 fires)."""


def client_body(task, client, server_tid):
    client.call_async(server_tid, "mystery_proc", b"payload")
