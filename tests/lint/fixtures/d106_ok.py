"""Fixture near-miss: per-entity streams derived from the run seed."""

import numpy as np


def peer_rng(registry, index):
    return registry.stream(f"peer{index}/work-noise")


def derived_sequence(root_seed, salt):
    return np.random.SeedSequence([root_seed, salt])
