"""Fixture: workload family references outside the registry (W801 fires)."""


def build_query(predict):
    query = {"family": "colective", "servers": 4}
    predict(family="hpll")
    return query
