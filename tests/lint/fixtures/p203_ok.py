"""Fixture near-miss: balanced brackets and paired phase barriers."""


def step(accountant, work):
    accountant.begin("comm")
    work()
    accountant.end()
    accountant.begin("compute")
    work()
    accountant.end()


def synced_step(sync, work):
    sync.phase_barrier(0, "update_start@3")
    work()
    sync.phase_barrier(0, "update_end@3")
