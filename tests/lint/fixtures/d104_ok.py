"""Fixture near-miss: deterministic iteration orders over the same data."""


def drain(ready):
    for proc in sorted(ready):
        proc.step()


def drain_unique(ready):
    members = sorted(set(ready))
    for proc in members:
        proc.step()
