"""D201 near-miss: the seed is threaded through, never pinned."""

import numpy as np


def make_rng(seed):
    return np.random.default_rng(seed)


def run_experiment(run_seed):
    rng = make_rng(run_seed)
    return rng
