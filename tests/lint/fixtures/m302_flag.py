"""Fixture: a unit-magnitude literal in arithmetic (M302 fires)."""


def to_milliseconds(seconds):
    return seconds * 1e3
