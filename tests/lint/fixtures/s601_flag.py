"""S601 flag fixture: a coroutine that blocks the event loop."""

import time


async def handle_request(payload):
    time.sleep(0.1)  # blocks every other client on the loop
    return payload
