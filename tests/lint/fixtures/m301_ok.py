"""Fixture near-miss: only registered model coefficients."""


def predict(params, nbytes):
    return nbytes / params.a1 + params.b1 + params.b5
