"""O401 near-miss fixture: balanced brackets and scope() usage."""


def balanced_phase(tracer):
    tracer.begin("p0", "compute", time=0.0)
    tracer.end("p0", time=1.0)


def scoped_phase(tracer):
    with tracer.scope("p0", "compute"):
        pass


def accounting_is_not_a_span(accountant):
    # non-tracer receivers stay with P203, which sees balance here too
    accountant.begin("seq_comp")
    accountant.end("seq_comp")
