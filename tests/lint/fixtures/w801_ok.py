"""Fixture: registered workload family references (W801 stays quiet)."""


def build_query(predict):
    query = {"family": "collective", "servers": 4}
    predict(family="hpl")
    return query
