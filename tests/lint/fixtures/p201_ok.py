"""Fixture near-miss: every referenced procedure is declared somewhere."""

SERVER_IDL = """
compute_energy(in coords, out energy);
update_pairlist(in coords, out ack);
"""


def declare(iface):
    iface.procedure("gather_forces")


def client_body(client, server_tid, tids):
    client.call_async(server_tid, "compute_energy", b"payload")
    client.call_all(proc="update_pairlist")
    client.call_all("gather_forces")
