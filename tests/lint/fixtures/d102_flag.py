"""Fixture: stdlib random's hidden global state (D102 fires)."""

import random


def shuffle_peers(peers):
    random.shuffle(peers)
    return peers
