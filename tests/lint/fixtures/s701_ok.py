"""S701 near-miss: the blocking helper runs in an executor."""

import asyncio


def save_report(path, payload):
    with open(path, "w") as fh:
        fh.write(payload)


async def handle_request(path, payload):
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, save_report, path, payload)
