"""Fixture violation: a driven receive with no deadline (R501)."""


def wait_for_reply(task, server):
    msg = yield from task.recv(source=server)
    return msg.payload
