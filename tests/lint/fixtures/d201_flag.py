"""D201 flag: an integer literal reaches a seed sink through a call."""

import numpy as np


def make_rng(seed):
    return np.random.default_rng(seed)


def run_experiment():
    rng = make_rng(1234)
    return rng
