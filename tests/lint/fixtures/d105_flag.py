"""Fixture: ordering by object identity (D105 fires)."""


def order(procs):
    return sorted(procs, key=id)
