"""S702 flag: check self._task, await, then write — no lock held."""

import asyncio


class Service:
    def __init__(self):
        self._task = None

    async def start(self):
        if self._task is None:
            await asyncio.sleep(0)
            self._task = object()
