"""S602 near-miss fixture: coroutines that are awaited or scheduled."""

import asyncio


async def flush_queue():
    return 0


async def shutdown():
    await flush_queue()
    task = asyncio.ensure_future(flush_queue())  # scheduled, not dropped
    await task
