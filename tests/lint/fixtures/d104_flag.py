"""Fixture: hash-ordered iteration in scheduling code (D104 fires)."""


def drain(ready):
    for proc in set(ready):
        proc.step()
