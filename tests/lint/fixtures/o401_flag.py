"""O401 flag fixture: a span begin() that never reaches its end()."""


def leaky_phase(tracer):
    sid = tracer.begin("p0", "compute", time=0.0)
    return sid
