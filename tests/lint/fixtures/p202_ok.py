"""Fixture near-miss: the tag constant appears on both protocol sides."""

_TAG_PAIRED = 78


def sender(task, dest):
    task.send(dest, _TAG_PAIRED)


def receiver(task, source):
    msg = yield from task.recv(source, _TAG_PAIRED, timeout=1.0)
    return msg
