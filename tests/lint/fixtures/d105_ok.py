"""Fixture near-miss: deterministic sort key; id() equality is fine."""


def order(procs):
    return sorted(procs, key=lambda p: p.tid)


def is_same_object(a, b):
    # equality (not ordering) on id() does not depend on address layout
    return id(a) == id(b)
