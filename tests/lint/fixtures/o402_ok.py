"""O402 near-miss fixture: registry-obtained instruments and lookalikes."""

from collections import Counter

from repro.obs.metrics import MetricsRegistry


def registry_telemetry():
    registry = MetricsRegistry()
    registry.counter("serve.requests").inc()
    registry.histogram("serve.latency_s").observe(0.004)
    return registry


def stdlib_counter_is_not_a_metric(words):
    # collections.Counter shares the name, not the telemetry contract
    return Counter(words)
