"""Fixture: an accounting phase opened but never closed (P203 fires)."""


def step(accountant, work):
    accountant.begin("comm")
    work()
