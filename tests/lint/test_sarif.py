"""SARIF export: 2.1.0 document shape, levels and suppressions."""

from repro.lint import Finding, all_rules, to_sarif


def f(path, line, code, severity="error"):
    return Finding(
        path=path, line=line, col=4, code=code, message="msg", severity=severity
    )


def test_document_shape_matches_sarif_210():
    doc = to_sarif([f("a.py", 3, "D101")], [], all_rules())
    assert doc["version"] == "2.1.0"
    assert "sarif-schema-2.1.0.json" in doc["$schema"]
    assert len(doc["runs"]) == 1
    driver = doc["runs"][0]["tool"]["driver"]
    assert driver["name"] == "simlint"
    rule_ids = {r["id"] for r in driver["rules"]}
    assert {"D101", "D201", "P303", "S701", "S702"} <= rule_ids
    for entry in driver["rules"]:
        assert entry["shortDescription"]["text"]
        assert entry["defaultConfiguration"]["level"] in ("error", "warning")


def test_results_carry_location_and_level():
    doc = to_sarif(
        [f("a.py", 3, "D101"), f("b.py", 7, "S702", severity="warn")],
        [],
        all_rules(),
    )
    results = doc["runs"][0]["results"]
    assert len(results) == 2
    by_rule = {r["ruleId"]: r for r in results}
    assert by_rule["D101"]["level"] == "error"
    assert by_rule["S702"]["level"] == "warning"
    loc = by_rule["D101"]["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "a.py"
    assert loc["region"]["startLine"] == 3
    assert loc["region"]["startColumn"] == 5  # SARIF columns are 1-based


def test_baselined_results_are_externally_suppressed():
    doc = to_sarif([f("a.py", 3, "D101")], [f("b.py", 7, "S702")], all_rules())
    results = {r["ruleId"]: r for r in doc["runs"][0]["results"]}
    assert "suppressions" not in results["D101"]
    assert results["S702"]["suppressions"] == [{"kind": "external"}]


def test_results_are_sorted_by_location():
    doc = to_sarif(
        [f("b.py", 9, "D101"), f("a.py", 3, "D102"), f("a.py", 1, "D101")],
        [],
        all_rules(),
    )
    keys = [
        (
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"],
            r["locations"][0]["physicalLocation"]["region"]["startLine"],
        )
        for r in doc["runs"][0]["results"]
    ]
    assert keys == sorted(keys)
