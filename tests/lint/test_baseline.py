"""Baseline files: freezing debt by (path, code) counts."""

import json

import pytest

from repro.errors import LintError
from repro.lint import Finding, load_baseline, partition, write_baseline


def f(path, line, code, severity="error"):
    return Finding(
        path=path, line=line, col=0, code=code, message="m", severity=severity
    )


def test_write_then_load_round_trips(tmp_path):
    findings = [f("a.py", 1, "D101"), f("a.py", 9, "D101"), f("b.py", 2, "S702")]
    target = tmp_path / "baseline.json"
    write_baseline(target, findings)
    entries = load_baseline(target)
    assert entries == {"a.py::D101": 2, "b.py::S702": 1}


def test_partition_respects_counts():
    entries = {"a.py::D101": 1}
    fresh, baselined = partition(
        [f("a.py", 1, "D101"), f("a.py", 9, "D101"), f("b.py", 2, "D101")], entries
    )
    assert [x.line for x in baselined] == [1]
    assert [(x.path, x.line) for x in fresh] == [("a.py", 9), ("b.py", 2)]


def test_partition_with_empty_baseline_keeps_everything_fresh():
    findings = [f("a.py", 1, "D101")]
    fresh, baselined = partition(findings, {})
    assert fresh == findings and baselined == []


def test_unfixed_entries_leave_slack_not_errors():
    # the baseline names more findings than exist: nothing fresh appears
    fresh, baselined = partition([f("a.py", 1, "D101")], {"a.py::D101": 5})
    assert fresh == [] and len(baselined) == 1


def test_load_rejects_wrong_version(tmp_path):
    target = tmp_path / "baseline.json"
    target.write_text(json.dumps({"version": "something-else", "entries": {}}))
    with pytest.raises(LintError):
        load_baseline(target)


def test_load_rejects_bad_counts(tmp_path):
    target = tmp_path / "baseline.json"
    target.write_text(
        json.dumps({"version": "simlint-baseline/1", "entries": {"a.py::D101": -2}})
    )
    with pytest.raises(LintError):
        load_baseline(target)
