"""Incremental cache: warm-run skips, component granularity, invalidation."""

import json

from repro.lint import all_rules, analyze
from repro.lint.cache import CACHE_FILENAME


MOD_A = "import numpy as np\n\n\ndef make():\n    return np.random.default_rng(7)\n"
MOD_B = "def helper(x):\n    return x + 1\n"


def write_tree(root, files):
    for name, text in files.items():
        p = root / name
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text)


def test_warm_run_skips_every_file_and_component(tmp_path):
    src = tmp_path / "src"
    write_tree(src, {"repro/sim/a.py": MOD_A})
    cache = tmp_path / "cache"

    cold = analyze([src], cache_dir=cache)
    assert cold.stats.files_checked == cold.stats.files_total == 1
    assert cold.stats.components_reanalyzed == 1

    warm = analyze([src], cache_dir=cache)
    assert warm.stats.files_total == 1
    assert warm.stats.files_checked == 0
    assert warm.stats.components_reanalyzed == 0
    assert warm.findings == cold.findings


def test_editing_one_file_reanalyzes_only_its_component(tmp_path):
    src = tmp_path / "src"
    write_tree(
        src,
        {
            "repro/sim/a.py": MOD_A,
            "repro/other/b.py": MOD_B,
        },
    )
    cache = tmp_path / "cache"

    cold = analyze([src], cache_dir=cache)
    assert cold.stats.components_total == 2

    (src / "repro/other/b.py").write_text(MOD_B + "\n\ndef more(x):\n    return x\n")
    warm = analyze([src], cache_dir=cache)
    assert warm.stats.files_checked == 1
    assert warm.stats.components_reanalyzed == 1
    assert warm.findings == cold.findings


def test_rule_set_change_invalidates_the_cache(tmp_path):
    src = tmp_path / "src"
    write_tree(src, {"repro/sim/a.py": MOD_A})
    cache = tmp_path / "cache"

    analyze([src], cache_dir=cache)
    narrowed = [r for r in all_rules() if r.code != "D101"]
    rerun = analyze([src], rules=narrowed, cache_dir=cache)
    assert rerun.stats.files_checked == 1  # signature mismatch discards the cache


def test_cache_file_is_versioned_json(tmp_path):
    src = tmp_path / "src"
    write_tree(src, {"repro/sim/a.py": MOD_A})
    cache = tmp_path / "cache"
    analyze([src], cache_dir=cache)

    payload = json.loads((cache / CACHE_FILENAME).read_text())
    assert payload["version"] == "simlint-cache/1"
    assert len(payload["files"]) == 1
    assert len(payload["components"]) == 1


def test_corrupt_cache_is_discarded_not_fatal(tmp_path):
    src = tmp_path / "src"
    write_tree(src, {"repro/sim/a.py": MOD_A})
    cache = tmp_path / "cache"
    cache.mkdir()
    (cache / CACHE_FILENAME).write_text("{not json")

    result = analyze([src], cache_dir=cache)
    assert result.stats.files_checked == 1
    # and the bad file was replaced with a valid one
    json.loads((cache / CACHE_FILENAME).read_text())
