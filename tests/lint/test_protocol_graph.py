"""Protocol graph: bind registries and tag wait-order cycles."""

from repro.lint import get_rule, load_modules, run_checks
from repro.lint.dataflow import collect_procedure_graph, tag_wait_cycles
from repro.lint.index import ProjectIndex


def build_index(tmp_path, files):
    for name, text in files.items():
        p = tmp_path / name
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text)
    return ProjectIndex.build(load_modules([tmp_path]))


def test_collect_procedure_graph_separates_binds_and_calls(tmp_path):
    index = build_index(
        tmp_path,
        {
            "repro/sciddle/app.py": (
                "def serve(server, handler):\n"
                "    server.bind('compute', handler)\n"
                "\n"
                "\n"
                "def call(client):\n"
                "    client.call_async(0, 'compute')\n"
                "    client.call_all('broadcast')\n"
                "    client.call_async(0, '__shutdown__')\n"
            )
        },
    )
    bindings, references = collect_procedure_graph(index)
    assert set(bindings) == {"compute"}
    assert {name for _, _, name in references} == {"compute", "broadcast"}


def test_p302_stays_quiet_in_client_only_slices(tmp_path):
    path = tmp_path / "client.py"
    path.write_text(
        "def call(client):\n    return client.call_async(0, 'compute')\n"
    )
    assert run_checks([path], rules=[get_rule("P302")]) == []


def test_wait_cycle_detected_across_functions(tmp_path):
    index = build_index(
        tmp_path,
        {
            "repro/pvm/workers.py": (
                "TAG_A = 1\n"
                "TAG_B = 2\n"
                "\n"
                "\n"
                "def one(task):\n"
                "    yield from task.recv(tag=TAG_A)\n"
                "    yield from task.send(0, TAG_B)\n"
                "\n"
                "\n"
                "def two(task):\n"
                "    yield from task.recv(tag=TAG_B)\n"
                "    yield from task.send(1, TAG_A)\n"
            )
        },
    )
    cycles = tag_wait_cycles(index)
    assert len(cycles) == 1
    tags, witnesses = cycles[0]
    assert tags == ["TAG_A", "TAG_B"]
    assert len(witnesses) == 2


def test_timeout_breaks_the_wait_edge(tmp_path):
    index = build_index(
        tmp_path,
        {
            "repro/pvm/workers.py": (
                "TAG_A = 1\n"
                "TAG_B = 2\n"
                "\n"
                "\n"
                "def one(task):\n"
                "    yield from task.recv(tag=TAG_A, timeout=5.0)\n"
                "    yield from task.send(0, TAG_B)\n"
                "\n"
                "\n"
                "def two(task):\n"
                "    yield from task.recv(tag=TAG_B)\n"
                "    yield from task.send(1, TAG_A)\n"
            )
        },
    )
    assert tag_wait_cycles(index) == []


def test_send_before_recv_creates_no_edge(tmp_path):
    index = build_index(
        tmp_path,
        {
            "repro/pvm/workers.py": (
                "TAG_A = 1\n"
                "TAG_B = 2\n"
                "\n"
                "\n"
                "def one(task):\n"
                "    yield from task.send(0, TAG_B)\n"
                "    yield from task.recv(tag=TAG_A)\n"
                "\n"
                "\n"
                "def two(task):\n"
                "    yield from task.send(1, TAG_A)\n"
                "    yield from task.recv(tag=TAG_B)\n"
            )
        },
    )
    # sends happen first: nobody's send waits on a recv, no deadlock
    assert tag_wait_cycles(index) == []


def test_three_party_cycle_is_reported_once(tmp_path):
    body = []
    tags = ["TAG_X", "TAG_Y", "TAG_Z"]
    for i, (waits, sends) in enumerate(
        [("TAG_X", "TAG_Y"), ("TAG_Y", "TAG_Z"), ("TAG_Z", "TAG_X")]
    ):
        body.append(
            f"def worker{i}(task):\n"
            f"    yield from task.recv(tag={waits})\n"
            f"    yield from task.send(0, {sends})\n"
        )
    source = "\n".join(f"{t} = {i}" for i, t in enumerate(tags))
    source += "\n\n\n" + "\n\n".join(body)
    index = build_index(tmp_path, {"repro/pvm/ring.py": source})
    cycles = tag_wait_cycles(index)
    assert len(cycles) == 1
    assert cycles[0][0] == ["TAG_X", "TAG_Y", "TAG_Z"]
