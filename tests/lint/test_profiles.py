"""Severity profiles: demotion, budgets, lookup."""

import pytest

from repro.errors import LintError
from repro.lint import Finding, get_profile
from repro.lint.profiles import PROFILES, Profile


def f(code, line=1, severity="error"):
    return Finding(
        path="a.py", line=line, col=0, code=code, message="m", severity=severity
    )


def test_strict_keeps_declared_severities():
    strict = get_profile("strict")
    findings = [f("D101"), f("S702", severity="warn")]
    assert [x.severity for x in strict.apply(findings)] == ["error", "warn"]


def test_relaxed_demotes_determinism_and_hygiene_only():
    relaxed = get_profile("relaxed")
    out = relaxed.apply([f("D101"), f("M301"), f("P303"), f("S701")])
    assert [x.severity for x in out] == ["warn", "warn", "error", "error"]


def test_budgets_escalate_overflow_back_to_error():
    profile = Profile(name="budgeted", demote=("D",), budgets={"D101": 2})
    out = profile.apply([f("D101", line=i) for i in range(1, 5)])
    assert [x.severity for x in out] == ["warn", "warn", "error", "error"]


def test_budget_only_counts_matching_code():
    profile = Profile(name="budgeted", demote=("D",), budgets={"D101": 1})
    out = profile.apply([f("D102"), f("D101"), f("D102")])
    assert [x.severity for x in out] == ["warn", "warn", "warn"]


def test_unknown_profile_raises():
    with pytest.raises(LintError):
        get_profile("nope")
    assert set(PROFILES) == {"strict", "relaxed"}
