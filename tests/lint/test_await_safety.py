"""Await safety: transitive blocking reachability and S702 interleaving."""

from repro.lint import get_rule, load_modules, run_checks
from repro.lint.dataflow import blocking_reachable
from repro.lint.index import ProjectIndex


def build_index(tmp_path, files):
    for name, text in files.items():
        p = tmp_path / name
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text)
    return ProjectIndex.build(load_modules([tmp_path]))


def test_blocking_reachability_spans_modules(tmp_path):
    index = build_index(
        tmp_path,
        {
            "repro/serve/disk.py": (
                "def write_out(path, data):\n"
                "    with open(path, 'w') as fh:\n"
                "        fh.write(data)\n"
            ),
            "repro/serve/store.py": (
                "from .disk import write_out\n"
                "\n"
                "\n"
                "def persist(path, data):\n"
                "    write_out(path, data)\n"
            ),
        },
    )
    chains = blocking_reachable(index)
    assert chains["repro.serve.disk:write_out"] == ["write_out", "open()"]
    assert chains["repro.serve.store:persist"] == [
        "persist",
        "write_out",
        "open()",
    ]


def test_sleep_and_pathlib_io_count_as_blocking(tmp_path):
    index = build_index(
        tmp_path,
        {
            "repro/serve/mod.py": (
                "import time\n"
                "\n"
                "\n"
                "def nap():\n"
                "    time.sleep(1)\n"
                "\n"
                "\n"
                "def dump(path, data):\n"
                "    path.write_text(data)\n"
            )
        },
    )
    chains = blocking_reachable(index)
    assert chains["repro.serve.mod:nap"] == ["nap", "time.sleep()"]
    assert chains["repro.serve.mod:dump"] == ["dump", ".write_text()"]


def test_async_functions_do_not_propagate_blocking(tmp_path):
    index = build_index(
        tmp_path,
        {
            "repro/serve/mod.py": (
                "def slow():\n"
                "    with open('x') as fh:\n"
                "        return fh.read()\n"
                "\n"
                "\n"
                "async def shim():\n"
                "    return slow()\n"
                "\n"
                "\n"
                "def caller_of_async():\n"
                "    return shim()\n"
            )
        },
    )
    chains = blocking_reachable(index)
    # the async def is S701's *subject*, never a link in a sync chain
    assert "repro.serve.mod:shim" not in chains
    assert "repro.serve.mod:caller_of_async" not in chains


def test_s702_rechecks_only_fire_without_lock(tmp_path):
    flagged = tmp_path / "flagged.py"
    flagged.write_text(
        "import asyncio\n"
        "\n"
        "\n"
        "class S:\n"
        "    async def start(self):\n"
        "        if self._task is None:\n"
        "            await asyncio.sleep(0)\n"
        "            self._task = 1\n"
    )
    findings = run_checks([flagged], rules=[get_rule("S702")])
    assert [f.code for f in findings] == ["S702"]
    assert findings[0].severity == "warn"

    locked = tmp_path / "locked.py"
    locked.write_text(
        "import asyncio\n"
        "\n"
        "\n"
        "class S:\n"
        "    async def start(self):\n"
        "        async with self._lock:\n"
        "            if self._task is None:\n"
        "                await asyncio.sleep(0)\n"
        "                self._task = 1\n"
    )
    assert run_checks([locked], rules=[get_rule("S702")]) == []


def test_s702_ignores_write_before_the_guard(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "import asyncio\n"
        "\n"
        "\n"
        "class S:\n"
        "    async def start(self):\n"
        "        self._task = 1\n"
        "        await asyncio.sleep(0)\n"
        "        if self._task is None:\n"
        "            return\n"
    )
    assert run_checks([path], rules=[get_rule("S702")]) == []
