"""Determinism taint: witness chains, and the D2xx-vs-D1xx regression."""

from repro.lint import get_rule, load_modules, run_checks
from repro.lint.dataflow import seed_sink_params, wallclock_returning
from repro.lint.index import ProjectIndex


def build_index(tmp_path, files):
    for name, text in files.items():
        p = tmp_path / name
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text)
    return ProjectIndex.build(load_modules([tmp_path]))


def test_wallclock_chain_propagates_through_returns(tmp_path):
    index = build_index(
        tmp_path,
        {
            "repro/toolbox/clock.py": (
                "import time\n"
                "\n"
                "\n"
                "def raw():\n"
                "    return time.time()\n"
                "\n"
                "\n"
                "def stamped():\n"
                "    return raw()\n"
                "\n"
                "\n"
                "def shifted(offset):\n"
                "    return stamped() + offset\n"
            )
        },
    )
    chains = wallclock_returning(index)
    assert chains["repro.toolbox.clock:raw"] == ["raw", "time.time()"]
    assert chains["repro.toolbox.clock:stamped"] == ["stamped", "raw", "time.time()"]
    assert chains["repro.toolbox.clock:shifted"][0] == "shifted"
    assert chains["repro.toolbox.clock:shifted"][-1] == "time.time()"


def test_functions_not_returning_clock_values_stay_clean(tmp_path):
    index = build_index(
        tmp_path,
        {
            "repro/toolbox/clock.py": (
                "import time\n"
                "\n"
                "\n"
                "def log_and_compute(x):\n"
                "    t = time.time()  # read but not returned\n"
                "    print(t)\n"
                "    return x * 2\n"
            )
        },
    )
    assert wallclock_returning(index) == {}


def test_seed_sink_params_follow_forwarding(tmp_path):
    index = build_index(
        tmp_path,
        {
            "repro/experiments/rng.py": (
                "import numpy as np\n"
                "\n"
                "\n"
                "def make(seed):\n"
                "    return np.random.default_rng(seed)\n"
                "\n"
                "\n"
                "def mid(s):\n"
                "    return make(s)\n"
            )
        },
    )
    sinks = seed_sink_params(index)
    assert "seed" in sinks["repro.experiments.rng:make"]
    chain = sinks["repro.experiments.rng:mid"]["s"]
    assert chain == ["mid(s)", "make(seed)", "numpy.random.default_rng"]


SEEDED_THROUGH_TWO_CALLS = (
    "import numpy as np\n"
    "\n"
    "\n"
    "def make(seed):\n"
    "    return np.random.default_rng(seed)\n"
    "\n"
    "\n"
    "def mid(s):\n"
    "    return make(s)\n"
    "\n"
    "\n"
    "def run():\n"
    "    return mid(77)\n"
)


def test_d1xx_is_silent_but_d201_fires_with_full_path(tmp_path):
    """Regression: the per-file rules cannot see a seed two frames deep.

    D106 only flags an integer literal *inside* the RNG constructor
    call; here the literal sits two calls away.  The interprocedural
    D201 must fire — and cite the whole path.
    """
    path = tmp_path / "mod.py"
    path.write_text(SEEDED_THROUGH_TWO_CALLS)
    old_school = run_checks([path], rules=[get_rule("D106"), get_rule("D103")])
    assert old_school == []
    findings = run_checks([path], rules=[get_rule("D201")])
    assert len(findings) == 1
    (finding,) = findings
    assert finding.code == "D201"
    assert finding.line == 13  # the mid(77) call inside run()
    assert "mid(s) -> make(seed) -> numpy.random.default_rng" in finding.message


def test_d201_quiet_when_seed_is_threaded(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        SEEDED_THROUGH_TWO_CALLS.replace("def run():", "def run(seed):").replace(
            "mid(77)", "mid(seed)"
        )
    )
    assert run_checks([path], rules=[get_rule("D201")]) == []
