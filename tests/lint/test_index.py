"""Unit tests for the project indexer: symbols, imports, call graph."""

from repro.lint import load_modules
from repro.lint.index import ProjectIndex, resolve_import_edges


def build_index(tmp_path, files):
    for name, text in files.items():
        p = tmp_path / name
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text)
    return ProjectIndex.build(load_modules([tmp_path]))


def test_symbol_table_indexes_functions_classes_and_methods(tmp_path):
    index = build_index(
        tmp_path,
        {
            "repro/netsim/engine.py": (
                "def tick():\n"
                "    pass\n"
                "\n"
                "\n"
                "class Engine:\n"
                "    def run(self):\n"
                "        pass\n"
                "\n"
                "    async def drain(self):\n"
                "        pass\n"
            )
        },
    )
    info = index.modules["repro.netsim.engine"]
    assert set(info.functions) == {"tick", "Engine.run", "Engine.drain"}
    assert info.functions["Engine.drain"].is_async
    assert info.functions["Engine.run"].cls == "Engine"
    assert info.functions["tick"].qualname == "repro.netsim.engine:tick"
    assert info.functions["Engine.run"].display == "Engine.run"


def test_relative_imports_resolve_to_module_keys(tmp_path):
    index = build_index(
        tmp_path,
        {
            "repro/toolbox/util.py": "def helper():\n    return 1\n",
            "repro/netsim/engine.py": (
                "from ..toolbox.util import helper\n"
                "\n"
                "\n"
                "def run():\n"
                "    return helper()\n"
            ),
        },
    )
    assert index.import_graph["repro.netsim.engine"] == {"repro.toolbox.util"}
    assert index.import_graph["repro.toolbox.util"] == set()


def test_resolve_import_edges_longest_prefix():
    keys = {"repro.netsim", "repro.netsim.engine"}
    edges = resolve_import_edges(
        {"repro.netsim.engine.run", "repro.netsim.other"}, keys, "repro.core"
    )
    assert edges == {"repro.netsim.engine", "repro.netsim"}
    # a module never points at itself
    assert resolve_import_edges({"repro.core.model"}, {"repro.core"}, "repro.core") == set()


def test_call_graph_resolves_local_imported_and_method_calls(tmp_path):
    index = build_index(
        tmp_path,
        {
            "repro/toolbox/util.py": "def helper():\n    return 1\n",
            "repro/netsim/engine.py": (
                "from ..toolbox.util import helper\n"
                "\n"
                "\n"
                "class Store:\n"
                "    def load(self):\n"
                "        return 2\n"
                "\n"
                "\n"
                "class Engine:\n"
                "    def __init__(self):\n"
                "        self.store = Store()\n"
                "\n"
                "    def step(self):\n"
                "        return self.advance()\n"
                "\n"
                "    def advance(self):\n"
                "        local = Store()\n"
                "        local.load()\n"
                "        self.store.load()\n"
                "        return helper()\n"
            ),
        },
    )
    callees = {
        site.callee.qualname
        for site in index.sites_from("repro.netsim.engine:Engine.advance")
    }
    assert "repro.netsim.engine:Store.load" in callees  # local var + attr type
    assert "repro.toolbox.util:helper" in callees  # cross-module import
    step_callees = {
        site.callee.qualname
        for site in index.sites_from("repro.netsim.engine:Engine.step")
    }
    assert step_callees == {"repro.netsim.engine:Engine.advance"}  # self.method


def test_constructor_calls_resolve_to_init(tmp_path):
    index = build_index(
        tmp_path,
        {
            "repro/netsim/engine.py": (
                "class Engine:\n"
                "    def __init__(self):\n"
                "        self.t = 0\n"
                "\n"
                "\n"
                "def build():\n"
                "    return Engine()\n"
            )
        },
    )
    callees = {
        site.callee.qualname for site in index.sites_from("repro.netsim.engine:build")
    }
    assert callees == {"repro.netsim.engine:Engine.__init__"}


def test_unresolvable_dynamic_calls_create_no_edges(tmp_path):
    index = build_index(
        tmp_path,
        {
            "repro/netsim/engine.py": (
                "def run(callback, task):\n"
                "    callback()\n"
                "    task.recv()\n"
            )
        },
    )
    assert index.sites_from("repro.netsim.engine:run") == []
