"""Tests of the simlint driver: suppression, scoping, sorting, errors."""

from pathlib import Path

import pytest

from repro.errors import LintError
from repro.lint import (
    Finding,
    get_rule,
    iter_python_files,
    load_module,
    run_checks,
)

WALLCLOCK_SRC = "import time\n\n\ndef f():\n    return time.time()\n"


def write(root: Path, relative: str, text: str) -> Path:
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


# -- suppression --------------------------------------------------------
def test_inline_suppression_drops_the_finding(tmp_path):
    src = "import time\n\n\ndef f():\n    return time.time()  # simlint: disable=D101\n"
    path = write(tmp_path, "repro/netsim/mod.py", src)
    assert run_checks([path]) == []


def test_no_suppress_reports_suppressed_findings(tmp_path):
    src = "import time\n\n\ndef f():\n    return time.time()  # simlint: disable=D101\n"
    path = write(tmp_path, "repro/netsim/mod.py", src)
    findings = run_checks([path], respect_suppressions=False)
    assert [f.code for f in findings] == ["D101"]


def test_suppression_is_per_code(tmp_path):
    # disabling an unrelated code must not silence the real finding
    src = "import time\n\n\ndef f():\n    return time.time()  # simlint: disable=D102\n"
    path = write(tmp_path, "repro/netsim/mod.py", src)
    assert [f.code for f in run_checks([path])] == ["D101"]


def test_suppression_accepts_code_lists(tmp_path):
    src = (
        "import time\nimport random\n\n\ndef f():  # noqa\n"
        "    return time.time()  # simlint: disable=D101,D102\n"
    )
    path = write(tmp_path, "repro/netsim/mod.py", src)
    # the import line still flags D102; only the call line is suppressed
    assert [f.code for f in run_checks([path])] == ["D102"]


# -- package scoping ----------------------------------------------------
def test_simulation_rule_skips_model_packages(tmp_path):
    flagged = write(tmp_path, "a/repro/netsim/mod.py", WALLCLOCK_SRC)
    skipped = write(tmp_path, "b/repro/core/mod.py", WALLCLOCK_SRC)
    assert [f.code for f in run_checks([flagged])] == ["D101"]
    assert run_checks([skipped]) == []


def test_files_outside_repro_see_every_rule(tmp_path):
    path = write(tmp_path, "scratch.py", WALLCLOCK_SRC)
    assert [f.code for f in run_checks([path])] == ["D101"]


def test_rule_subset_runs_only_those_rules(tmp_path):
    src = "import time\nimport random\nt = time.time()\n"
    path = write(tmp_path, "scratch.py", src)
    findings = run_checks([path], rules=[get_rule("D102")])
    assert {f.code for f in findings} == {"D102"}


# -- ordering and discovery ---------------------------------------------
def test_findings_sorted_by_file_line_code(tmp_path):
    one = write(tmp_path, "a.py", "import time\nt1 = time.time()\nt2 = time.time()\n")
    two = write(tmp_path, "b.py", "import random\n")
    findings = run_checks([two, one])
    keys = [(f.path, f.line, f.code) for f in findings]
    assert keys == sorted(keys)
    assert [f.line for f in findings if f.path.endswith("a.py")] == [2, 3]


def test_iter_python_files_deduplicates(tmp_path):
    path = write(tmp_path, "pkg/mod.py", "x = 1\n")
    files = iter_python_files([tmp_path, path, path])
    assert [f.resolve() for f in files] == [path.resolve()]


def test_missing_path_raises_lint_error(tmp_path):
    with pytest.raises(LintError):
        run_checks([tmp_path / "no_such_dir"])


def test_unparseable_file_raises_lint_error(tmp_path):
    path = write(tmp_path, "broken.py", "def broken(:\n")
    with pytest.raises(LintError):
        run_checks([path])


# -- module model --------------------------------------------------------
def test_load_module_extracts_package_and_imports(tmp_path):
    path = write(
        tmp_path,
        "repro/platforms/mod.py",
        "import numpy as np\nfrom repro.units import MBYTE\n",
    )
    module = load_module(path)
    assert module.package == ("platforms", "mod")
    assert module.subpackage == "platforms"
    assert module.imports["np"] == "numpy"
    assert module.imports["MBYTE"] == "repro.units.MBYTE"


def test_finding_format_contract():
    f = Finding(path="src/x.py", line=7, col=4, code="D101", message="boom")
    assert f.format() == "src/x.py:7:D101 boom"
