"""Fixture-driven tests: every rule both fires and stays quiet.

Each rule code has two fixtures under ``fixtures/``: a ``*_flag``
containing a minimal violation and a ``*_ok`` containing the nearest
legitimate construct.  Most are single files; rules that are inherently
cross-module (D202) use fixture *directories* holding a miniature
``repro`` package tree.  Deleting (or breaking) any shipped rule makes
its flag fixture come back clean and fails the corresponding test here.
"""

from pathlib import Path

import pytest

from repro.lint import all_rules, run_checks

FIXTURES = Path(__file__).parent / "fixtures"

ALL_CODES = [
    "D101",
    "D102",
    "D103",
    "D104",
    "D105",
    "D106",
    "D201",
    "D202",
    "P201",
    "P202",
    "P203",
    "P204",
    "P301",
    "P302",
    "P303",
    "M301",
    "M302",
    "O401",
    "O402",
    "R501",
    "R502",
    "S601",
    "S602",
    "S701",
    "S702",
    "W801",
]


def fixture_path(code: str, kind: str) -> Path:
    """The flag/ok fixture for ``code`` — a file or a directory."""
    directory = FIXTURES / f"{code.lower()}_{kind}"
    if directory.is_dir():
        return directory
    return FIXTURES / f"{code.lower()}_{kind}.py"


def test_every_shipped_rule_has_a_fixture_pair():
    codes = {cls.code for cls in all_rules()}
    assert codes == set(ALL_CODES)
    for code in ALL_CODES:
        assert fixture_path(code, "flag").exists(), code
        assert fixture_path(code, "ok").exists(), code


@pytest.mark.parametrize("code", ALL_CODES)
def test_flag_fixture_is_flagged(code):
    findings = run_checks([fixture_path(code, "flag")])
    assert findings, f"rule {code} reported nothing on its flag fixture"
    # the fixtures are minimal: nothing else may fire on them either
    assert {f.code for f in findings} == {code}


@pytest.mark.parametrize("code", ALL_CODES)
def test_near_miss_fixture_is_clean(code):
    findings = run_checks([fixture_path(code, "ok")])
    assert findings == [], [f.format() for f in findings]


def test_rule_metadata_is_complete():
    for cls in all_rules():
        assert cls.code and cls.name and cls.summary, cls
        assert cls.code[0] in "DPMORSW" and cls.code[1:].isdigit()
        assert cls.severity in ("error", "warn"), cls


def test_finding_locations_point_at_the_violation():
    findings = run_checks([FIXTURES / "d101_flag.py"])
    lines = {f.line for f in findings}
    # the two time.time() calls sit on lines 7 and 9 of the fixture
    assert lines == {7, 9}
    for f in findings:
        assert f.format().startswith(f"{f.path}:{f.line}:D101 ")


def test_warn_tier_rules_declare_warn_severity():
    by_code = {cls.code: cls for cls in all_rules()}
    assert by_code["S702"].severity == "warn"
    findings = run_checks([fixture_path("S702", "flag")])
    assert findings and all(f.severity == "warn" for f in findings)
