"""End-to-end tests of the ``python -m repro.lint`` command line."""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def run_simlint(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        timeout=180,
        cwd=REPO_ROOT,
        env=env,
    )


def test_shipped_source_is_clean():
    # the acceptance contract: against the checked-in baseline the
    # package lints itself with no fresh findings
    out = run_simlint("src", "--baseline", ".simlint-baseline.json")
    assert out.returncode == 0, out.stdout + out.stderr
    assert out.stdout == ""
    assert "0 finding(s)" in out.stderr


def test_shipped_source_has_no_unbaselined_errors():
    # even without the baseline, every surviving finding is warn-tier:
    # error-tier debt must be fixed, not frozen
    out = run_simlint("src")
    assert out.returncode == 0, out.stdout + out.stderr


def test_default_path_is_the_repro_package():
    out = run_simlint()
    assert out.returncode == 0, out.stdout + out.stderr


def test_findings_set_exit_code_and_format():
    out = run_simlint(str(FIXTURES / "d101_flag.py"))
    assert out.returncode == 1
    for line in out.stdout.splitlines():
        assert re.match(r"^.+\.py:\d+:D101 ", line), line
    assert "2 finding(s)" in out.stderr


def test_list_rules_shows_every_code():
    out = run_simlint("--list-rules")
    assert out.returncode == 0
    for code in ("D101", "D106", "D201", "P201", "P303", "M301", "S701", "S702"):
        assert code in out.stdout


def test_no_suppress_flag(tmp_path):
    src = "import time\nt = time.time()  # simlint: disable=D101\n"
    path = tmp_path / "mod.py"
    path.write_text(src)
    assert run_simlint(str(path)).returncode == 0
    out = run_simlint("--no-suppress", str(path))
    assert out.returncode == 1
    assert ":2:D101" in out.stdout


def test_bad_path_exits_2():
    out = run_simlint("definitely/not/a/path.py")
    assert out.returncode == 2
    assert "simlint: error:" in out.stderr


def test_baseline_suppresses_known_findings(tmp_path):
    fixture = FIXTURES / "d101_flag.py"
    baseline = tmp_path / "baseline.json"
    wrote = run_simlint(str(fixture), "--write-baseline", str(baseline))
    assert wrote.returncode == 0, wrote.stderr
    assert baseline.is_file()
    out = run_simlint(str(fixture), "--baseline", str(baseline))
    assert out.returncode == 0, out.stdout + out.stderr
    assert out.stdout == ""
    assert "0 finding(s), 2 baselined" in out.stderr


def test_baseline_does_not_hide_new_findings(tmp_path):
    src = "import time\n\n\ndef a():\n    return time.time()\n"
    path = tmp_path / "mod.py"
    path.write_text(src)
    baseline = tmp_path / "baseline.json"
    run_simlint(str(path), "--write-baseline", str(baseline))
    # a second violation appears: only the overflow is fresh
    path.write_text(src + "\n\ndef b():\n    return time.time()\n")
    out = run_simlint(str(path), "--baseline", str(baseline))
    assert out.returncode == 1
    assert len(out.stdout.splitlines()) == 1
    assert "1 finding(s), 1 baselined" in out.stderr


def test_sarif_output_is_valid(tmp_path):
    sarif_path = tmp_path / "out.sarif"
    out = run_simlint(str(FIXTURES / "d101_flag.py"), "--sarif", str(sarif_path))
    assert out.returncode == 1
    doc = json.loads(sarif_path.read_text())
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "simlint"
    assert {r["ruleId"] for r in run["results"]} == {"D101"}


def test_relaxed_profile_demotes_determinism(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text("import time\nt = time.time()\n")
    strict = run_simlint(str(path))
    relaxed = run_simlint("--profile", "relaxed", str(path))
    assert strict.returncode == 1
    # demoted to warn: printed, but not the exit code
    assert relaxed.returncode == 0, relaxed.stdout + relaxed.stderr
    assert "D101" in relaxed.stdout


def test_cache_dir_makes_second_run_incremental(tmp_path):
    cache = tmp_path / "cache"
    args = (str(FIXTURES / "d101_flag.py"), "--cache-dir", str(cache), "--stats")
    cold = run_simlint(*args)
    warm = run_simlint(*args)
    assert cold.returncode == warm.returncode == 1
    assert cold.stdout == warm.stdout
    assert "1/1 file(s) analyzed" in cold.stderr
    assert "0/1 file(s) analyzed" in warm.stderr
    assert "0/1 component(s) reanalyzed" in warm.stderr


def test_exclude_skips_matching_paths():
    out = run_simlint(str(FIXTURES / "d101_flag.py"), "--exclude", "fixtures")
    assert out.returncode == 0
    assert "0 finding(s)" in out.stderr
