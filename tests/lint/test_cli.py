"""End-to-end tests of the ``python -m repro.lint`` command line."""

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def run_simlint(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        timeout=180,
        cwd=REPO_ROOT,
        env=env,
    )


def test_shipped_source_is_clean():
    # the acceptance contract: the package lints itself with no findings
    out = run_simlint("src")
    assert out.returncode == 0, out.stdout + out.stderr
    assert out.stdout == ""
    assert "0 finding(s)" in out.stderr


def test_default_path_is_the_repro_package():
    out = run_simlint()
    assert out.returncode == 0, out.stdout + out.stderr


def test_findings_set_exit_code_and_format():
    out = run_simlint(str(FIXTURES / "d101_flag.py"))
    assert out.returncode == 1
    for line in out.stdout.splitlines():
        assert re.match(r"^.+\.py:\d+:D101 ", line), line
    assert "2 finding(s)" in out.stderr


def test_list_rules_shows_every_code():
    out = run_simlint("--list-rules")
    assert out.returncode == 0
    for code in ("D101", "D106", "P201", "P204", "M301", "M302"):
        assert code in out.stdout


def test_no_suppress_flag(tmp_path):
    src = "import time\nt = time.time()  # simlint: disable=D101\n"
    path = tmp_path / "mod.py"
    path.write_text(src)
    assert run_simlint(str(path)).returncode == 0
    out = run_simlint("--no-suppress", str(path))
    assert out.returncode == 1
    assert ":2:D101" in out.stdout


def test_bad_path_exits_2():
    out = run_simlint("definitely/not/a/path.py")
    assert out.returncode == 2
    assert "simlint: error:" in out.stderr
