"""Tests for the declarative workload subsystem (repro.workloads)."""
