"""Workload campaigns: determinism, caching, chaos, telemetry ingest."""

import math

import pytest

from repro.experiments.cache import ResultCache
from repro.netsim import FaultSpec
from repro.platforms import get_platform
from repro.workloads import get_family, spec_digest
from repro.workloads.campaign import (
    WorkloadCell,
    render_workload_campaign,
    run_workload_campaign,
    run_workload_design,
    workload_record_from_dict,
    workload_record_to_dict,
)


def _small_cells(family_name):
    family = get_family(family_name)
    specs = family.campaign_specs(None)[:2]
    return [WorkloadCell(spec, p) for spec in specs for p in (1, 2)]


class TestDesignDeterminism:
    @pytest.mark.parametrize("family_name", ["collective", "hpl"])
    def test_serial_equals_pooled(self, family_name):
        platform = get_platform("fast-cops")
        cells = _small_cells(family_name)
        serial, n_serial = run_workload_design(cells, platform, workers=None)
        pooled, n_pooled = run_workload_design(cells, platform, workers=2)
        assert n_serial == n_pooled == len(cells)
        assert [workload_record_to_dict(r) for r in serial] == [
            workload_record_to_dict(r) for r in pooled
        ]

    def test_chaos_serial_equals_pooled(self):
        platform = get_platform("fast-cops")
        cells = _small_cells("collective")
        faults = FaultSpec.parse("drop=0.05,timeout=0.5")
        serial, _ = run_workload_design(
            cells, platform, workers=None, faults=faults
        )
        pooled, _ = run_workload_design(cells, platform, workers=2, faults=faults)
        assert [workload_record_to_dict(r) for r in serial] == [
            workload_record_to_dict(r) for r in pooled
        ]

    def test_record_round_trips_through_dict(self):
        platform = get_platform("fast-cops")
        cells = _small_cells("hpl")
        records, _ = run_workload_design(cells, platform)
        for record in records:
            d = workload_record_to_dict(record)
            again = workload_record_from_dict(d)
            assert workload_record_to_dict(again) == d
            assert spec_digest(again.cell.spec) == spec_digest(record.cell.spec)


class TestCache:
    def test_warm_cache_runs_zero_simulations(self, tmp_path):
        platform = get_platform("fast-cops")
        cells = _small_cells("collective")
        cache = ResultCache(tmp_path)
        cold, n_cold = run_workload_design(cells, platform, cache=cache)
        warm_cache = ResultCache(tmp_path)
        warm, n_warm = run_workload_design(cells, platform, cache=warm_cache)
        assert n_cold == len(cells) and n_warm == 0
        assert [workload_record_to_dict(r) for r in cold] == [
            workload_record_to_dict(r) for r in warm
        ]

    def test_chaos_spec_joins_the_cache_key(self, tmp_path):
        platform = get_platform("fast-cops")
        cells = _small_cells("collective")[:1]
        cache = ResultCache(tmp_path)
        run_workload_design(cells, platform, cache=cache)
        _, simulated = run_workload_design(
            cells,
            platform,
            cache=ResultCache(tmp_path),
            faults=FaultSpec.parse("drop=0.05,timeout=0.5"),
        )
        assert simulated == 1  # clean entry must not answer a chaos run


class TestCampaign:
    def test_campaign_serial_equals_pooled_render(self):
        platform = get_platform("fast-cops")
        kwargs = dict(servers=(1, 2), candidates=[get_platform("j90")])
        serial = run_workload_campaign("hpl", platform, workers=None, **kwargs)
        pooled = run_workload_campaign("hpl", platform, workers=2, **kwargs)
        assert render_workload_campaign(serial) == render_workload_campaign(
            pooled
        )

    def test_calibration_fit_is_tight_on_clean_runs(self):
        platform = get_platform("fast-cops")
        report = run_workload_campaign("collective", platform, servers=(1, 2, 4))
        assert report.calibration.mean_relative_error() < 0.05
        for label, measured, predicted in report.rows:
            assert predicted == pytest.approx(measured, rel=0.25), label

    def test_store_ingest_stamps_family_columns(self, tmp_path):
        from repro.obs.store import TelemetryStore

        platform = get_platform("fast-cops")
        run_workload_campaign(
            "hpl", platform, servers=(1, 2), store_dir=tmp_path / "store"
        )
        store = TelemetryStore(tmp_path / "store")
        cells = store.scan("cells")
        assert set(cells["family"]) == {"hpl"}
        assert all(math.isnan(v) for v in cells["cutoff"])
        residuals = store.scan("residuals")
        assert set(residuals["family"]) == {"hpl"}
        assert set(residuals["variable"]) >= {"nbint", "comm", "sync"}
