"""Spec schema: validation, canonicalization, digests, loaders."""

import json

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    dump_spec,
    family_names,
    get_family,
    parse_spec,
    spec_digest,
)


class TestRegistry:
    def test_shipped_families_registered(self):
        assert set(family_names()) >= {"collective", "hpl", "opal"}

    def test_unknown_family_lists_registered(self):
        with pytest.raises(WorkloadError) as exc:
            get_family("colective")  # simlint: disable=W801
        assert "collective" in str(exc.value)

    def test_parse_spec_requires_family(self):
        with pytest.raises(WorkloadError):
            parse_spec({"pattern": "barrier"})


class TestRoundTrip:
    @pytest.mark.parametrize(
        "family,params",
        [
            ("collective", {"pattern": "allreduce", "message_bytes": 4096}),
            ("collective", {"pattern": "barrier"}),
            ("hpl", {"matrix_n": 128, "block": 32}),
            ("opal", {"molecule": "small", "cutoff": 10.0, "steps": 3}),
        ],
    )
    def test_parse_dump_parse_identical(self, family, params):
        spec = get_family(family).spec_from_params(dict(params))
        dumped = dump_spec(spec)
        again = parse_spec(json.loads(dumped))
        assert again == spec
        assert dump_spec(again) == dumped
        assert spec_digest(again) == spec_digest(spec)

    def test_digest_stable_across_dict_ordering(self):
        fwd = get_family("collective").spec_from_params(
            {"pattern": "broadcast", "message_bytes": 512, "rounds": 2}
        )
        rev = get_family("collective").spec_from_params(
            {"rounds": 2, "message_bytes": 512, "pattern": "broadcast"}
        )
        assert fwd == rev
        assert spec_digest(fwd) == spec_digest(rev)

    def test_digest_differs_when_params_differ(self):
        family = get_family("hpl")
        a = family.spec_from_params({"matrix_n": 128})
        b = family.spec_from_params({"matrix_n": 256})
        assert spec_digest(a) != spec_digest(b)

    def test_defaults_are_materialized(self):
        spec = get_family("collective").spec_from_params({"pattern": "barrier"})
        params = spec.params_dict()
        assert params["fanout"] == 2 and params["rounds"] == 4


class TestValidation:
    def test_unknown_field_lists_accepted(self):
        with pytest.raises(WorkloadError) as exc:
            get_family("collective").spec_from_params(
                {"pattern": "barrier", "msg_bytes": 64}
            )
        message = str(exc.value)
        assert "msg_bytes" in message and "message_bytes" in message

    def test_unit_suffix_rejected_with_actionable_message(self):
        with pytest.raises(WorkloadError) as exc:
            get_family("collective").spec_from_params(
                {"pattern": "broadcast", "message_bytes": "64 KB"}
            )
        message = str(exc.value)
        assert "unit suffixes are not accepted" in message
        assert "plain number in bytes" in message

    def test_bad_choice_names_the_choices(self):
        with pytest.raises(WorkloadError) as exc:
            get_family("collective").spec_from_params({"pattern": "bcast"})
        assert "broadcast" in str(exc.value)

    def test_range_violation_names_field_and_bounds(self):
        with pytest.raises(WorkloadError) as exc:
            get_family("hpl").spec_from_params({"matrix_n": 1})
        assert "hpl.matrix_n" in str(exc.value)

    def test_cross_field_check_runs(self):
        with pytest.raises(WorkloadError):
            get_family("hpl").spec_from_params({"matrix_n": 64, "block": 128})

    def test_family_key_must_agree(self):
        with pytest.raises(WorkloadError):
            get_family("hpl").spec_from_params(
                {"family": "collective", "matrix_n": 64}
            )

    def test_bool_is_not_an_int(self):
        with pytest.raises(WorkloadError):
            get_family("hpl").spec_from_params({"matrix_n": True})


class TestLoaders:
    def test_load_json_file(self, tmp_path):
        from repro.workloads import load_spec_data

        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"family": "hpl", "matrix_n": 64}))
        spec = parse_spec(load_spec_data(path))
        assert spec.family == "hpl" and spec.get("matrix_n") == 64

    def test_load_toml_file(self, tmp_path):
        pytest.importorskip("tomllib")
        from repro.workloads import load_spec_data

        path = tmp_path / "spec.toml"
        path.write_text('family = "collective"\npattern = "barrier"\n')
        spec = parse_spec(load_spec_data(path))
        assert spec.family == "collective"

    def test_unknown_extension_rejected(self, tmp_path):
        from repro.workloads import load_spec_data

        path = tmp_path / "spec.yaml"
        path.write_text("family: hpl\n")
        with pytest.raises(WorkloadError):
            load_spec_data(path)
