"""Family compilation: programs, closed-form terms, simulation coherence."""

import pytest

from repro.errors import WorkloadError
from repro.platforms import get_platform
from repro.workloads import get_family
from repro.workloads.collective import PATTERNS


class TestCompile:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_collective_patterns_compile(self, pattern):
        family = get_family("collective")
        spec = family.spec_from_params({"pattern": pattern})
        steps = family.compile(spec, 4)
        assert steps
        for step in steps:
            assert step.send_bytes > 0 and step.reply_bytes > 0

    def test_hpl_step_count_is_panel_count(self):
        family = get_family("hpl")
        spec = family.spec_from_params({"matrix_n": 128, "block": 32})
        assert len(family.compile(spec, 2)) == 128 // 32

    def test_opal_family_does_not_compile_to_steps(self):
        family = get_family("opal")
        spec = family.spec_from_params({"molecule": "small"})
        with pytest.raises(WorkloadError):
            family.compile(spec, 2)


class TestTerms:
    def test_terms_match_compiled_program(self):
        family = get_family("collective")
        spec = family.spec_from_params(
            {"pattern": "allreduce", "message_bytes": 2048}
        )
        servers = 3
        steps = family.compile(spec, servers)
        terms = family.terms(spec, servers)
        assert terms.pair_ops == sum(s.server_flops for s in steps)
        assert terms.seq_ops == sum(s.client_flops for s in steps)
        assert terms.comm_bytes == sum(
            servers * (s.send_bytes + s.reply_bytes) for s in steps
        )
        assert terms.comm_msgs == 2 * servers * len(steps)
        assert terms.sync_ops == 2 * len(steps)

    def test_key_data_prediction_tracks_simulation(self):
        # the closed-form terms and the DES program describe the same
        # workload: key-data prediction must land within a few percent
        from repro.core.model import terms_breakdown

        platform = get_platform("fast-cops")
        family = get_family("hpl")
        spec = family.spec_from_params({"matrix_n": 96, "block": 32})
        for servers in (1, 2, 4):
            result = family.simulate(spec, servers, platform, seed=1)
            predicted = terms_breakdown(
                family.key_data_params(platform), family.terms(spec, servers)
            )
            assert result.wall_time == pytest.approx(predicted.total, rel=0.10)

    def test_opal_terms_match_model_breakdown(self):
        # the spec-ified opal family must reproduce the paper model's
        # component times exactly through the generic terms pipeline
        from repro.core.model import OpalPerformanceModel, terms_breakdown
        from repro.core.parameters import ModelPlatformParams

        platform = get_platform("j90")
        family = get_family("opal")
        spec = family.spec_from_params(
            {"molecule": "medium", "cutoff": 10.0, "update_interval": 10}
        )
        params = ModelPlatformParams.from_spec(platform)
        direct = OpalPerformanceModel(params).breakdown(family.app(spec, 4))
        generic = terms_breakdown(
            family.key_data_params(platform), family.terms(spec, 4)
        )
        for component in ("update", "nbint", "seq_comp", "comm", "sync"):
            assert getattr(generic, component) == pytest.approx(
                getattr(direct, component), rel=1e-12
            )


class TestSimulate:
    def test_deterministic_under_fixed_seed(self):
        platform = get_platform("fast-cops")
        family = get_family("collective")
        spec = family.spec_from_params({"pattern": "broadcast"})
        a = family.simulate(spec, 3, platform, seed=5)
        b = family.simulate(spec, 3, platform, seed=5)
        assert a.wall_time == b.wall_time
        assert a.breakdown.as_dict() == b.breakdown.as_dict()

    def test_crash_faults_rejected_by_generic_program(self):
        from repro.netsim import FaultSpec

        platform = get_platform("fast-cops")
        family = get_family("collective")
        spec = family.spec_from_params({"pattern": "barrier"})
        with pytest.raises(WorkloadError):
            family.simulate(
                spec, 2, platform, faults=FaultSpec.parse("crash=1@0.001")
            )

    def test_chaos_run_retries_and_completes(self):
        # drops are transport-level retransmissions (delivery delay, not
        # loss), so Sciddle-level retries only fire when the added delay
        # exceeds the RPC timeout while the client is waiting: pair an
        # aggressive drop rate with a short timeout to force that path
        from repro.netsim import FaultSpec

        platform = get_platform("fast-cops")
        family = get_family("collective")
        spec = family.spec_from_params({"pattern": "broadcast"})
        clean = family.simulate(spec, 2, platform, seed=1)
        chaotic = family.simulate(
            spec, 2, platform, seed=1,
            faults=FaultSpec.parse("drop=0.4,timeout=0.05"),
        )
        assert chaotic.rpc_retries > 0
        assert chaotic.wall_time > clean.wall_time
