"""Unit tests for middleware phase accounting."""

import pytest

from repro.errors import SimulationError
from repro.hpm import HpmCounter, PhaseAccountant


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def test_begin_end_accumulates_wall_time():
    clock = FakeClock()
    acct = PhaseAccountant(clock)
    acct.begin("comm")
    clock.t = 2.0
    assert acct.end() == pytest.approx(2.0)
    acct.begin("comm")
    clock.t = 3.5
    acct.end("comm")
    assert acct.seconds("comm") == pytest.approx(3.5)
    assert acct.totals["comm"].intervals == 2


def test_nested_begin_rejected():  # simlint: disable=P203
    acct = PhaseAccountant(FakeClock())
    acct.begin("a")
    with pytest.raises(SimulationError):
        acct.begin("b")


def test_end_without_begin_rejected():  # simlint: disable=P203
    with pytest.raises(SimulationError):
        PhaseAccountant(FakeClock()).end()


def test_end_with_wrong_category_rejected():
    acct = PhaseAccountant(FakeClock())
    acct.begin("a")
    with pytest.raises(SimulationError):
        acct.end("b")


def test_counter_deltas_attached_to_phase():
    clock = FakeClock()
    counter = HpmCounter(flop_inflation=2.0)
    acct = PhaseAccountant(clock, counter)
    acct.begin("compute")
    counter.add(flops=100.0, busy=1.0)
    clock.t = 1.0
    acct.end()
    totals = acct.totals["compute"]
    assert totals.flops_algorithmic == pytest.approx(100.0)
    assert totals.flops_counted == pytest.approx(200.0)
    assert totals.rate() == pytest.approx(200.0)


def test_unknown_category_reads_zero():
    acct = PhaseAccountant(FakeClock())
    assert acct.seconds("nope") == 0.0


def test_as_dict():
    clock = FakeClock()
    acct = PhaseAccountant(clock)
    acct.begin("x")
    clock.t = 1.0
    acct.end()
    assert acct.as_dict() == {"x": pytest.approx(1.0)}


def test_rate_of_zero_duration_phase():
    acct = PhaseAccountant(FakeClock())
    acct.begin("x")
    acct.end()
    assert acct.totals["x"].rate() == 0.0
