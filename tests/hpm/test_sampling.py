"""Unit tests for the sampling profiler (and its documented weaknesses)."""

import pytest

from repro.errors import SimulationError
from repro.hpm.sampling import SamplingMonitor, counter_rate
from repro.netsim.trace import Tracer


def make_trace():
    tr = Tracer()
    # one process: 6 s compute, 3 s comm, 1 s idle over a 10 s run
    tr.record("p", "compute", 0.0, 4.0)
    tr.record("p", "comm", 4.0, 6.0)
    tr.record("p", "compute", 6.0, 8.0)
    tr.record("p", "comm", 8.0, 9.0)
    tr.record("p", "idle", 9.0, 10.0)
    return tr


def test_empty_trace_rejected():
    with pytest.raises(SimulationError):
        SamplingMonitor(Tracer())


def test_fine_sampling_recovers_fractions():
    mon = SamplingMonitor(make_trace())
    est = mon.sample(interval=0.001)
    assert est.fractions["compute"] == pytest.approx(0.6, abs=0.01)
    assert est.fractions["comm"] == pytest.approx(0.3, abs=0.01)
    assert est.fractions["idle"] == pytest.approx(0.1, abs=0.01)
    assert est.busy_fraction == pytest.approx(0.6, abs=0.01)


def test_coarse_sampling_is_biased():
    """The paper's complaint: few samples, unstable estimates."""
    mon = SamplingMonitor(make_trace())
    coarse = mon.sample(interval=3.0)  # 4 probes over 10 s
    assert coarse.samples <= 4
    # with 4 samples, the compute fraction can only be k/4
    assert coarse.busy_fraction in (0.0, 0.25, 0.5, 0.75, 1.0)


def test_phase_offset_changes_coarse_estimates():
    """Aliasing: shifting the probe grid moves the answer."""
    mon = SamplingMonitor(make_trace())
    estimates = {
        mon.sample(interval=4.0, phase=ph).busy_fraction
        for ph in (0.0, 1.0, 2.0, 3.0)
    }
    assert len(estimates) > 1  # not a stable measurement


def test_interval_validation():
    mon = SamplingMonitor(make_trace())
    with pytest.raises(SimulationError):
        mon.sample(interval=0.0)
    with pytest.raises(SimulationError):
        mon.sample(interval=100.0)


def test_estimated_rate_vs_counter_rate():
    mon = SamplingMonitor(make_trace())
    est = mon.sample(interval=0.001)
    flops = 600e6  # executed during the 6 s of compute
    sampled = est.estimated_rate(flops, wall_time=10.0)
    counted = counter_rate(flops, busy_seconds=6.0)
    assert counted == pytest.approx(100e6)
    # fine sampling converges to the truth...
    assert sampled == pytest.approx(counted, rel=0.02)
    # ...coarse sampling does not
    coarse = mon.sample(interval=3.0, phase=0.5)
    coarse_rate = coarse.estimated_rate(flops, wall_time=10.0)
    assert abs(coarse_rate - counted) / counted > 0.05


def test_counter_rate_validation():
    with pytest.raises(SimulationError):
        counter_rate(1.0, 0.0)


def test_proc_filter():
    tr = make_trace()
    # a second process computing while p communicates; its records start
    # later, so an unfiltered profiler attributes those probes to it
    tr.record("other", "compute", 4.5, 5.5)
    est_all = SamplingMonitor(tr).sample(interval=0.01)
    est_p = SamplingMonitor(tr, proc="p").sample(interval=0.01)
    assert est_p.fractions["compute"] == pytest.approx(0.6, abs=0.01)
    assert est_all.fractions["compute"] > est_p.fractions["compute"] + 0.05
