"""Unit tests for simulated hardware performance counters."""

import pytest

from repro.hpm import HpmCounter, HpmSnapshot


def test_counts_accumulate():
    c = HpmCounter()
    c.add(flops=100.0, busy=2.0)
    c.add(flops=50.0, busy=1.0)
    snap = c.snapshot()
    assert snap.flops_algorithmic == 150.0
    assert snap.flops_counted == 150.0
    assert snap.busy_seconds == 3.0


def test_flop_inflation_applies_to_counted_only():
    c = HpmCounter(flop_inflation=1.5)
    c.add(flops=100.0, busy=1.0)
    snap = c.snapshot()
    assert snap.flops_algorithmic == 100.0
    assert snap.flops_counted == pytest.approx(150.0)


def test_inflation_below_one_rejected():
    with pytest.raises(ValueError):
        HpmCounter(flop_inflation=0.5)


def test_negative_increment_rejected():
    c = HpmCounter()
    with pytest.raises(ValueError):
        c.add(flops=-1.0, busy=0.0)
    with pytest.raises(ValueError):
        c.add(flops=0.0, busy=-1.0)


def test_snapshot_delta():
    c = HpmCounter()
    c.add(flops=100.0, busy=1.0)
    s0 = c.snapshot()
    c.add(flops=40.0, busy=0.5)
    delta = c.snapshot() - s0
    assert delta.flops_counted == pytest.approx(40.0)
    assert delta.busy_seconds == pytest.approx(0.5)


def test_snapshot_rate():
    s = HpmSnapshot(flops_counted=100.0, flops_algorithmic=100.0, busy_seconds=2.0)
    assert s.rate() == 50.0
    empty = HpmSnapshot(0.0, 0.0, 0.0)
    assert empty.rate() == 0.0


def test_reads_counted():
    c = HpmCounter()
    c.snapshot()
    c.snapshot()
    assert c.reads == 2


def test_reset():
    c = HpmCounter(flop_inflation=2.0)
    c.add(flops=10.0, busy=1.0)
    c.reset()
    snap = c.snapshot()
    assert snap.flops_counted == 0.0
    assert snap.busy_seconds == 0.0
    # inflation survives the reset
    c.add(flops=10.0, busy=1.0)
    assert c.snapshot().flops_counted == 20.0
