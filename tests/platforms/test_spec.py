"""Unit tests for platform specifications."""

import pytest

from repro.core.memhier import MemoryHierarchy
from repro.errors import PlatformError
from repro.netsim import CrossbarFabric, SharedMediumFabric, SwitchedFabric
from repro.platforms import CRAY_J90, SLOW_COPS, SMP_COPS, PlatformSpec


def make_spec(**kw):
    defaults = dict(
        name="test",
        label="test platform",
        clock_mhz=100,
        cpu_rate=50e6,
        flop_inflation=1.0,
        cpus_per_node=1,
        max_nodes=4,
        memory=MemoryHierarchy(base_rate=50e6),
        net_kind="switched",
        net_peak_bw=100e6,
        net_bw=30e6,
        net_latency=15e-6,
        sync_cost=30e-6,
    )
    defaults.update(kw)
    return PlatformSpec(**defaults)


def test_validation():
    with pytest.raises(PlatformError):
        make_spec(cpu_rate=0.0)
    with pytest.raises(PlatformError):
        make_spec(flop_inflation=0.9)
    with pytest.raises(PlatformError):
        make_spec(net_kind="tokenring")
    with pytest.raises(PlatformError):
        make_spec(net_bw=200e6)  # observed above peak
    with pytest.raises(PlatformError):
        make_spec(overhead_fraction=1.5)


def test_overhead_split():
    spec = make_spec(net_latency=10e-6, overhead_fraction=0.7)
    assert spec.net_overhead == pytest.approx(7e-6)
    assert spec.net_wire_latency == pytest.approx(3e-6)
    assert spec.net_overhead + spec.net_wire_latency == pytest.approx(10e-6)


def test_node_rate_aggregates_cpus():
    spec = make_spec(cpus_per_node=2)
    assert spec.node_rate() == 2 * spec.cpu_rate
    assert spec.total_cpus == 8


def test_fabric_kind_mapping():
    assert isinstance(
        make_spec(net_kind="switched").make_fabric(_engine()), SwitchedFabric
    )
    assert isinstance(
        make_spec(net_kind="shared").make_fabric(_engine()), SharedMediumFabric
    )
    assert isinstance(
        make_spec(net_kind="crossbar").make_fabric(_engine()), CrossbarFabric
    )


def _engine():
    from repro.netsim import Engine

    return Engine()


def test_slow_local_path_for_j90():
    fabric = CRAY_J90.make_fabric(_engine())
    # PVM on the J90 pays the full middleware path even intra-node
    assert fabric.local_bandwidth == CRAY_J90.net_bw
    fast = make_spec().make_fabric(_engine())
    assert fast.local_bandwidth > make_spec().net_bw


def test_build_cluster_node_count():
    cluster = SMP_COPS.build_cluster(5)  # 5 processes on twin-CPU nodes
    assert len(cluster.nodes) == 3
    cluster2 = SLOW_COPS.build_cluster(5)
    assert len(cluster2.nodes) == 5


def test_build_cluster_respects_max_nodes():
    spec = make_spec(max_nodes=2)
    with pytest.raises(PlatformError):
        spec.build_cluster(3)


def test_placement_node_major():
    cluster = SMP_COPS.build_cluster(4)
    assert SMP_COPS.place(cluster, 0) is cluster.nodes[0]
    assert SMP_COPS.place(cluster, 1) is cluster.nodes[0]
    assert SMP_COPS.place(cluster, 2) is cluster.nodes[1]


def test_with_creates_variant():
    spec = make_spec()
    fast = spec.with_(net_bw=60e6)
    assert fast.net_bw == 60e6 and spec.net_bw == 30e6


def test_jitter_enabled_cluster():
    cluster = make_spec().build_cluster(2, jitter_sigma=0.01)
    assert all(n.jitter is not None for n in cluster.nodes)
    cluster2 = make_spec().build_cluster(2, jitter_sigma=0.0)
    assert all(n.jitter is None for n in cluster2.nodes)
