"""Unit tests for the parameter-extraction microbenchmarks."""

import pytest

from repro.errors import PlatformError
from repro.platforms import (
    ALL_PLATFORMS,
    CRAY_J90,
    FAST_COPS,
    SMP_COPS,
    barrier_bench,
    extract_model_params,
    kernel_bench,
    ping_pong,
)


class TestPingPong:
    def test_recovers_bandwidth_and_latency(self):
        for spec in (CRAY_J90, FAST_COPS):
            r = ping_pong(spec)
            assert r.a1 == pytest.approx(spec.net_bw, rel=1e-3)
            assert r.b1 == pytest.approx(spec.net_latency, rel=1e-3)

    def test_time_for_is_linear_model(self):
        r = ping_pong(FAST_COPS)
        assert r.time_for(0) == pytest.approx(r.b1)
        assert r.time_for(r.a1) == pytest.approx(r.b1 + 1.0)

    def test_needs_two_sizes(self):
        with pytest.raises(PlatformError):
            ping_pong(FAST_COPS, sizes=[100])

    def test_measures_across_nodes_not_local(self):
        # SMP nodes have a fast local path; the bench must use two nodes
        r = ping_pong(SMP_COPS)
        assert r.a1 == pytest.approx(SMP_COPS.net_bw, rel=1e-3)


class TestKernelBench:
    @pytest.mark.parametrize("spec", ALL_PLATFORMS, ids=lambda s: s.name)
    def test_reproduces_table1_row(self, spec):
        from repro.platforms import TABLE1_MEASUREMENTS

        time, counted = TABLE1_MEASUREMENTS[spec.name]
        r = kernel_bench(spec)
        assert r.exec_time == pytest.approx(time, rel=1e-6)
        assert r.flops_counted == pytest.approx(counted, rel=1e-6)

    def test_rates(self):
        r = kernel_bench(CRAY_J90)
        assert r.rate == pytest.approx(80.5e6, rel=0.01)
        assert r.algorithmic_rate == pytest.approx(52.7e6, rel=0.01)

    def test_smp_uses_both_cpus(self):
        r = kernel_bench(SMP_COPS)
        # 5.00 s only achievable with the work split over two CPUs
        assert r.exec_time == pytest.approx(5.00, rel=1e-6)


class TestBarrierBench:
    def test_recovers_sync_cost(self):
        for spec in (CRAY_J90, FAST_COPS):
            b5 = barrier_bench(spec, n_procs=4, reps=8)
            assert b5 == pytest.approx(spec.sync_cost, rel=0.01)

    def test_needs_two_processes(self):
        with pytest.raises(PlatformError):
            barrier_bench(FAST_COPS, n_procs=1)


class TestExtraction:
    def test_full_pipeline_close_to_spec_derivation(self):
        from repro.core.parameters import ModelPlatformParams

        for spec in (CRAY_J90, FAST_COPS):
            measured = extract_model_params(spec)
            derived = ModelPlatformParams.from_spec(spec)
            assert measured.a1 == pytest.approx(derived.a1, rel=0.01)
            assert measured.b1 == pytest.approx(derived.b1, rel=0.01)
            assert measured.a2 == pytest.approx(derived.a2, rel=0.01)
            assert measured.a3 == pytest.approx(derived.a3, rel=0.01)
            assert measured.a4 == pytest.approx(derived.a4, rel=0.01)
            assert measured.b5 == pytest.approx(derived.b5, rel=0.01)
