"""Unit tests for the five-paper-platform catalog."""

import pytest

from repro.errors import PlatformError
from repro.opal import costs
from repro.platforms import (
    ALL_PLATFORMS,
    CRAY_J90,
    CRAY_T3E,
    FAST_COPS,
    REFERENCE_PLATFORM,
    SLOW_COPS,
    SMP_COPS,
    TABLE1_MEASUREMENTS,
    get_platform,
)


def test_catalog_contains_five_platforms():
    assert len(ALL_PLATFORMS) == 5
    assert {p.name for p in ALL_PLATFORMS} == {
        "j90", "t3e", "slow-cops", "smp-cops", "fast-cops",
    }


def test_reference_is_j90():
    assert REFERENCE_PLATFORM is CRAY_J90


def test_lookup():
    assert get_platform("t3e") is CRAY_T3E
    with pytest.raises(PlatformError):
        get_platform("sx4")


def test_cpu_rates_reproduce_table1_times():
    # kernel flops / per-node rate must equal the Table 1 execution time
    for spec in ALL_PLATFORMS:
        time, _ = TABLE1_MEASUREMENTS[spec.name]
        assert costs.KERNEL_FLOPS / spec.node_rate() == pytest.approx(time)


def test_flop_inflations_reproduce_table1_counts():
    for spec in ALL_PLATFORMS:
        _, counted = TABLE1_MEASUREMENTS[spec.name]
        assert costs.KERNEL_FLOPS * spec.flop_inflation == pytest.approx(counted)


def test_vector_machines_inflate_most():
    assert CRAY_T3E.flop_inflation > CRAY_J90.flop_inflation > 1.0
    assert FAST_COPS.flop_inflation == 1.0  # the best-compiler anchor


def test_table2_communication_data():
    assert CRAY_T3E.net_bw == 100e6 and CRAY_T3E.net_latency == pytest.approx(12e-6)
    assert CRAY_J90.net_bw == 3e6 and CRAY_J90.net_latency == pytest.approx(10e-3)
    assert SLOW_COPS.net_bw == 3e6
    assert SMP_COPS.net_bw == 15e6
    assert FAST_COPS.net_bw == 30e6


def test_interconnect_kinds():
    assert SLOW_COPS.net_kind == "shared"  # shared Ethernet segment
    assert SMP_COPS.net_kind == "switched"
    assert FAST_COPS.net_kind == "switched"
    assert CRAY_J90.net_kind == "crossbar"


def test_j90_middleware_pathology_encoded():
    # observed bandwidth is ~3 orders below the crossbar peak, and the
    # fast local path is disabled (PVM ignores the shared memory)
    assert CRAY_J90.net_peak_bw / CRAY_J90.net_bw > 100
    assert not CRAY_J90.fast_local_path


def test_smp_nodes_have_two_cpus():
    assert SMP_COPS.cpus_per_node == 2
    assert all(
        p.cpus_per_node == 1 for p in ALL_PLATFORMS if p.name != "smp-cops"
    )


def test_j90_supports_paper_experiment_sizes():
    # client + 7 servers on the 8-CPU J90
    assert CRAY_J90.total_cpus == 8


def test_j90_has_no_cache_tier():
    assert CRAY_J90.memory.cache_bytes == 0.0
    assert CRAY_J90.memory.cache_factor == 1.0


def test_costs_ordered_big_iron_expensive():
    assert CRAY_T3E.approx_cost_kusd > CRAY_J90.approx_cost_kusd
    assert CRAY_J90.approx_cost_kusd > 10 * FAST_COPS.approx_cost_kusd
