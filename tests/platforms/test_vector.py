"""Unit tests for the Hockney vector performance model."""


import pytest

from repro.errors import PlatformError
from repro.platforms.vector import J90_VECTOR, VectorModel


@pytest.fixture
def model():
    return VectorModel(r_inf=60e6, n_half=30.0, scalar_rate=8e6)


def test_validation():
    with pytest.raises(PlatformError):
        VectorModel(r_inf=0.0, n_half=10, scalar_rate=1.0)
    with pytest.raises(PlatformError):
        VectorModel(r_inf=10.0, n_half=-1, scalar_rate=1.0)
    with pytest.raises(PlatformError):
        VectorModel(r_inf=10.0, n_half=10, scalar_rate=20.0)


def test_half_performance_at_n_half(model):
    assert model.rate(30.0) == pytest.approx(30e6)


def test_rate_monotone_and_saturating(model):
    rates = [model.rate(n) for n in (1, 10, 100, 1000, 100000)]
    assert all(a <= b for a, b in zip(rates, rates[1:]))
    assert rates[-1] < model.r_inf
    assert rates[-1] > 0.999 * model.r_inf


def test_short_vectors_floor_at_scalar_rate(model):
    # rate never drops below what scalar issue achieves
    assert model.rate(0.1) == model.scalar_rate


def test_vectorized_flag(model):
    assert model.rate(10000, vectorized=False) == model.scalar_rate


def test_speedup_over_scalar(model):
    assert model.speedup_over_scalar(100000) == pytest.approx(
        model.r_inf / model.scalar_rate, rel=0.01
    )


def test_break_even_length(model):
    n_be = model.break_even_length()
    assert model.rate(n_be) == pytest.approx(model.scalar_rate, rel=1e-9)
    assert model.rate(2 * n_be) > model.scalar_rate


def test_invalid_length(model):
    with pytest.raises(PlatformError):
        model.rate(0.0)


def test_calibrated_constructor():
    m = VectorModel.calibrated(
        observed_rate=50e6, reference_length=1000, n_half=35, vector_speedup=7
    )
    assert m.rate(1000) == pytest.approx(50e6, rel=1e-9)
    assert m.scalar_rate == pytest.approx(50e6 / 7)
    with pytest.raises(PlatformError):
        VectorModel.calibrated(50e6, -1, 35, 7)
    with pytest.raises(PlatformError):
        VectorModel.calibrated(50e6, 1000, 35, 0.5)


def test_j90_vector_matches_table1_rate():
    # at Opal's streaming lengths the J90 runs at its Table 1 rate
    assert J90_VECTOR.rate(1000) == pytest.approx(52.72e6, rel=1e-6)
    assert J90_VECTOR.speedup_over_scalar(1000) == pytest.approx(7.0, rel=1e-6)
