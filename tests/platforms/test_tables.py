"""Tests reproducing the paper's Tables 1 and 2."""

import pytest

from repro.platforms import format_table1, format_table2, table1, table2

#: Paper Table 1: (exec time, MFlop counted, rate, adjusted rate).
PAPER_TABLE1 = {
    "t3e": (9.56, 811.71, 85, 52),
    "j90": (6.18, 497.55, 80, 80),
    "slow-cops": (10.00, 327.40, 32, 50),
    "smp-cops": (5.00, 327.40, 65, 100),
    "fast-cops": (4.85, 325.80, 67, 102),
}

#: Paper Table 2: (peak MB/s, observed MB/s, latency seconds).
PAPER_TABLE2 = {
    "t3e": (350, 100, 12e-6),
    "j90": (2000, 3, 10e-3),
    "slow-cops": (10, 3, 10e-3),
    "smp-cops": (50, 15, 25e-6),
    "fast-cops": (125, 30, 15e-6),
}


@pytest.fixture(scope="module")
def t1rows():
    return {r.platform: r for r in table1()}


@pytest.fixture(scope="module")
def t2rows():
    return {r.platform: r for r in table2()}


def test_table1_execution_times(t1rows):
    for name, (time, *_rest) in PAPER_TABLE1.items():
        assert t1rows[name].exec_time == pytest.approx(time, rel=1e-6), name


def test_table1_counted_mflop(t1rows):
    for name, (_t, counted, *_rest) in PAPER_TABLE1.items():
        assert t1rows[name].mflop_counted == pytest.approx(counted, rel=1e-6)


def test_table1_rates_within_rounding(t1rows):
    for name, (_t, _c, rate, _adj) in PAPER_TABLE1.items():
        assert t1rows[name].rate_mflops == pytest.approx(rate, abs=0.8), name


def test_table1_adjusted_rates_within_rounding(t1rows):
    for name, (_t, _c, _r, adj) in PAPER_TABLE1.items():
        assert t1rows[name].adjusted_rate_mflops == pytest.approx(adj, abs=1.0), name


def test_table1_reference_relative_is_100(t1rows):
    assert t1rows["j90"].relative_time_pct == pytest.approx(100.0)


def test_table1_t3e_relative_self_consistent(t1rows):
    # documented deviation: the paper prints 138% but its own adjusted
    # rate implies 163% (= 811.71 / 497.55); we compute the consistent one
    assert t1rows["t3e"].relative_time_pct == pytest.approx(163.0, abs=1.0)


def test_table2_all_rows(t2rows):
    for name, (peak, observed, latency) in PAPER_TABLE2.items():
        row = t2rows[name]
        assert row.peak_mbps == pytest.approx(peak)
        assert row.observed_mbps == pytest.approx(observed, rel=0.01)
        assert row.latency_s == pytest.approx(latency, rel=0.01)


def test_table2_spec_mode_skips_measurement():
    rows = {r.platform: r for r in table2(measured=False)}
    for name, (peak, observed, latency) in PAPER_TABLE2.items():
        assert rows[name].observed_mbps == pytest.approx(observed)


def test_formatting_smoke(t1rows, t2rows):
    s1 = format_table1(list(t1rows.values()))
    s2 = format_table2(list(t2rows.values()))
    assert "Cray J90" in s1 and "MFl/s" in s1
    assert "Myrinet" in s2 and ("ms" in s2 and "us" in s2)
