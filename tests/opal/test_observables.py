"""Unit tests for MD trajectory observables."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.opal.complexes import ComplexSpec
from repro.opal.observables import (
    mean_square_displacement,
    radial_distribution,
    running_averages,
)
from repro.opal.serial import OpalSerial
from repro.opal.system import build_system


@pytest.fixture(scope="module")
def water_system():
    spec = ComplexSpec("obs", protein_atoms=10, waters=220, density=0.033)
    return build_system(spec, seed=9)


class TestRdf:
    def test_shape_and_positivity(self, water_system):
        rdf = radial_distribution(water_system, bins=60)
        assert len(rdf.r) == len(rdf.g) == 60
        assert np.all(rdf.g >= 0)
        assert rdf.n_pairs > 0

    def test_excluded_volume_hole_at_small_r(self, water_system):
        # grid-built waters keep a minimum separation: g(r) ~ 0 below it
        rdf = radial_distribution(water_system, bins=60)
        assert np.all(rdf.g[rdf.r < 1.2] == 0.0)

    def test_structured_fluid_has_a_peak(self, water_system):
        rdf = radial_distribution(water_system, bins=60)
        pos, height = rdf.first_peak()
        # jittered-grid waters peak near the grid spacing, above 1
        assert 1.5 < pos < 6.0
        assert height > 1.0

    def test_ideal_gas_is_flat(self):
        # uniform random points: g(r) ~ 1 away from the edges
        rng = np.random.default_rng(0)
        spec = ComplexSpec("ig", protein_atoms=2, waters=600, density=0.02)
        sys_ = build_system(spec, seed=0)
        sys_.coords[2:] = rng.uniform(0, sys_.box_edge, size=(600, 3))
        rdf = radial_distribution(sys_, bins=40, r_max=sys_.box_edge / 4)
        mid = (rdf.r > 2.0) & (rdf.r < rdf.r[-1] * 0.9)
        assert np.mean(rdf.g[mid]) == pytest.approx(1.0, abs=0.35)

    def test_coordination_number_scales_with_rmax(self, water_system):
        rdf = radial_distribution(water_system, bins=80)
        density = water_system.n_waters / (
            (4 / 3) * np.pi * (water_system.box_edge / 2) ** 3
        )
        c_small = rdf.coordination_number(3.0, density)
        c_large = rdf.coordination_number(6.0, density)
        assert 0 <= c_small < c_large

    def test_validation(self, water_system):
        with pytest.raises(WorkloadError):
            radial_distribution(water_system, selection=np.zeros(water_system.n, bool))
        with pytest.raises(WorkloadError):
            radial_distribution(water_system, bins=1)


class TestMsd:
    def test_static_frames_zero_msd(self, water_system):
        frames = [water_system.coords.copy()] * 4
        res = mean_square_displacement(frames, dt=0.1)
        assert np.allclose(res.msd, 0.0)

    def test_ballistic_motion_quadratic(self):
        rng = np.random.default_rng(1)
        x0 = rng.uniform(0, 10, size=(50, 3))
        v = rng.standard_normal((50, 3))
        frames = [x0 + v * (k * 0.5) for k in range(6)]
        res = mean_square_displacement(frames, dt=0.5)
        # MSD(t) = <v^2> t^2: ratio between t=2dt and t=dt is 4
        assert res.msd[2] / res.msd[1] == pytest.approx(4.0, rel=1e-9)

    def test_diffusion_coefficient_of_linear_msd(self):
        time = np.arange(6) * 1.0
        frames = [np.zeros((10, 3))]
        # construct frames whose displacements give MSD = 6 D t, D = 2
        for t in time[1:]:
            disp = np.sqrt(6 * 2.0 * t / 3.0)
            frames.append(np.full((10, 3), disp))
        res = mean_square_displacement(frames, dt=1.0)
        assert res.diffusion_coefficient() == pytest.approx(2.0, rel=1e-9)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            mean_square_displacement([np.zeros((3, 3))], dt=0.1)
        with pytest.raises(WorkloadError):
            mean_square_displacement([np.zeros((3, 3))] * 2, dt=0.0)


class TestRunningAverages:
    def test_windows_and_keys(self):
        spec = ComplexSpec("ra", protein_atoms=12, waters=24, density=0.033)
        drv = OpalSerial(spec, cutoff=7.0, seed=3)
        drv.run_minimization(max_steps=60)
        result = drv.run_dynamics(steps=12, dt=0.0005, temperature=40.0)
        avg = running_averages(result, window=4)
        assert set(avg) == {"energy_total", "temperature", "pressure"}
        assert len(avg["energy_total"]) == 12 - 4 + 1
        with pytest.raises(WorkloadError):
            running_averages(result, window=0)
