"""Unit tests for synthetic molecular systems."""

import numpy as np
import pytest

from repro.opal.complexes import ComplexSpec
from repro.opal.system import build_system


@pytest.fixture
def spec():
    return ComplexSpec("t", protein_atoms=20, waters=40, density=0.033)


def test_counts_match_spec(spec):
    sys_ = build_system(spec, seed=0)
    assert sys_.n == spec.n
    assert sys_.n_protein == 20
    assert sys_.n_waters == 40


def test_explicit_water_three_sites(spec):
    sys_ = build_system(spec, seed=0, united_water=False)
    assert sys_.n == spec.n_explicit == 20 + 120


def test_deterministic_by_seed(spec):
    a = build_system(spec, seed=5)
    b = build_system(spec, seed=5)
    assert np.array_equal(a.coords, b.coords)
    c = build_system(spec, seed=6)
    assert not np.array_equal(a.coords, c.coords)


def test_solute_is_neutral(spec):
    sys_ = build_system(spec, seed=0)
    assert abs(sys_.charges[~sys_.is_water].sum()) < 1e-12


def test_explicit_waters_neutral(spec):
    sys_ = build_system(spec, seed=0, united_water=False)
    assert abs(sys_.charges[sys_.is_water].sum()) < 1e-9


def test_united_waters_uncharged(spec):
    sys_ = build_system(spec, seed=0)
    assert np.all(sys_.charges[sys_.is_water] == 0.0)


def test_no_severe_protein_water_overlap(spec):
    sys_ = build_system(spec, seed=0)
    prot = sys_.coords[~sys_.is_water]
    wat = sys_.coords[sys_.is_water]
    d = wat[:, None, :] - prot[None, :, :]
    rmin = np.sqrt(np.einsum("wij,wij->wi", d, d).min())
    assert rmin > 2.0


def test_bond_lengths_near_nominal(spec):
    sys_ = build_system(spec, seed=1)
    topo = sys_.topology
    i, j = topo.bonds[:, 0], topo.bonds[:, 1]
    lengths = np.linalg.norm(sys_.coords[i] - sys_.coords[j], axis=1)
    assert np.allclose(lengths, 1.5, atol=1e-9)


def test_density_close_to_spec(spec):
    sys_ = build_system(spec, seed=0)
    assert sys_.density() == pytest.approx(spec.density, rel=1e-9)


def test_lj_combination_rule(spec):
    sys_ = build_system(spec, seed=0)
    i = np.array([0])
    j = np.array([spec.protein_atoms])  # protein with water
    c12, c6 = sys_.lj_c12_c6(i, j)
    eps = np.sqrt(sys_.eps[0] * sys_.eps[j[0]])
    sig = 0.5 * (sys_.sigma[0] + sys_.sigma[j[0]])
    assert c6[0] == pytest.approx(4 * eps * sig**6)
    assert c12[0] == pytest.approx(4 * eps * sig**12)


def test_copy_is_deep_for_mutables(spec):
    sys_ = build_system(spec, seed=0)
    cp = sys_.copy()
    cp.coords[0, 0] += 1.0
    assert sys_.coords[0, 0] != cp.coords[0, 0]


def test_masses_positive(spec):
    sys_ = build_system(spec, seed=0)
    assert np.all(sys_.masses > 0)
