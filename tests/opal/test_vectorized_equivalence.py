"""Vectorized-vs-scalar equivalence for the Opal numeric kernels.

The cell-list pair builder and the bincount scatter-add are pure
performance rewrites: each must agree with its straightforward scalar
reference — exactly for integer pair lists, to 1e-12 for floating
point reductions (bincount and ``np.add.at`` may associate additions
differently).  The extremes (no pairs at all, every pair within the
cutoff) exercise the empty-array branches that vectorized code is most
likely to get wrong.
"""

import numpy as np
import pytest

from repro.opal.complexes import ComplexSpec
from repro.opal.dynamics import VelocityVerlet
from repro.opal.forcefield import _scatter_add
from repro.opal.pairlist import PairListBuilder, VerletPairList
from repro.opal.system import build_system


@pytest.fixture(scope="module")
def sys_():
    spec = ComplexSpec("veq", protein_atoms=24, waters=90, density=0.033)
    return build_system(spec, seed=11)


def both_methods(coords, cutoff, exclusions=None):
    brute = PairListBuilder(
        cutoff=cutoff, method="brute", exclusions=exclusions
    ).build(coords)
    cells = PairListBuilder(
        cutoff=cutoff, method="cells", exclusions=exclusions
    ).build(coords)
    return brute, cells


# ----------------------------------------------------------------------
# pair list: cells vs brute, including both extremes
# ----------------------------------------------------------------------
def test_empty_pair_extreme_identical(sys_):
    # cutoff far smaller than any interatomic distance: zero pairs
    brute, cells = both_methods(sys_.coords, cutoff=1e-6)
    assert brute.shape == cells.shape == (0, 2)
    assert brute.dtype == cells.dtype == np.int64


def test_far_apart_atoms_no_pairs():
    coords = np.arange(30, dtype=float).reshape(10, 3) * 1000.0
    brute, cells = both_methods(coords, cutoff=5.0)
    assert brute.shape == cells.shape == (0, 2)


def test_all_pairs_extreme_identical(sys_):
    # cutoff larger than the bounding box: the full n(n-1)/2 triangle
    span = float(np.ptp(sys_.coords)) * 4.0
    brute, cells = both_methods(sys_.coords, cutoff=span)
    n = len(sys_.coords)
    assert len(brute) == n * (n - 1) // 2
    assert np.array_equal(brute, cells)


def test_single_cell_degenerate_case():
    # every atom in one cell: only the triangular self-cell path runs
    rng = np.random.default_rng(3)
    coords = rng.uniform(0.0, 1.0, size=(40, 3))
    brute, cells = both_methods(coords, cutoff=2.0)
    assert np.array_equal(brute, cells)


def test_cells_vs_brute_with_exclusions(sys_):
    excl = sys_.topology.excluded_pairs()
    brute, cells = both_methods(sys_.coords, cutoff=7.0, exclusions=excl)
    assert np.array_equal(brute, cells)
    got = set(map(tuple, cells.tolist()))
    assert not got & set(map(tuple, excl.tolist()))


def test_cells_vs_brute_random_sweep():
    rng = np.random.default_rng(17)
    for trial in range(6):
        n = int(rng.integers(2, 120))
        coords = rng.uniform(-20.0, 20.0, size=(n, 3))
        cutoff = float(rng.uniform(0.5, 30.0))
        brute, cells = both_methods(coords, cutoff=cutoff)
        assert np.array_equal(brute, cells), f"trial={trial} n={n} cutoff={cutoff}"


def test_candidate_count_parity_between_methods(sys_):
    # cells may check fewer candidates than brute, never more, and both
    # must report their arithmetic honestly (non-zero for real work)
    brute = PairListBuilder(cutoff=5.0, method="brute")
    cells = PairListBuilder(cutoff=5.0, method="cells")
    brute.build(sys_.coords)
    cells.build(sys_.coords)
    n = sys_.n
    assert brute.stats.candidates_checked == n * (n - 1) // 2
    assert 0 < cells.stats.candidates_checked <= n * (n - 1)


# ----------------------------------------------------------------------
# scatter-add: bincount kernel vs np.add.at reference
# ----------------------------------------------------------------------
def scatter_reference(grad, idx, g):
    out = grad.copy()
    np.add.at(out, idx, g)
    return out


def test_scatter_add_matches_add_at():
    rng = np.random.default_rng(5)
    for trial in range(5):
        n = int(rng.integers(4, 60))
        m = int(rng.integers(1, 500))
        idx = rng.integers(0, n, size=m)
        g = rng.standard_normal((m, 3))
        grad = rng.standard_normal((n, 3))  # pre-existing accumulation
        want = scatter_reference(grad, idx, g)
        got = grad.copy()
        _scatter_add(got, idx, g)
        np.testing.assert_allclose(got, want, rtol=0, atol=1e-12)


def test_scatter_add_all_rows_one_atom():
    # the worst collision case: every contribution lands on one row
    g = np.random.default_rng(9).standard_normal((1000, 3))
    idx = np.zeros(1000, dtype=np.int64)
    grad = np.zeros((4, 3))
    _scatter_add(grad, idx, g)
    np.testing.assert_allclose(grad[0], g.sum(axis=0), rtol=0, atol=1e-12)
    assert np.all(grad[1:] == 0.0)


def test_scatter_add_empty_contribution():
    grad = np.ones((5, 3))
    _scatter_add(grad, np.zeros(0, dtype=np.int64), np.zeros((0, 3)))
    assert np.array_equal(grad, np.ones((5, 3)))


# ----------------------------------------------------------------------
# dynamics: the fused per-step observables equal the method results
# ----------------------------------------------------------------------
def test_step_record_observables_match_methods(sys_):
    import copy

    system = copy.deepcopy(sys_)
    vpl = VerletPairList(system, cutoff=6.0, update_interval=5)
    integ = VelocityVerlet(system, vpl, dt=0.002, temperature=300.0)
    for _ in range(3):
        rec = integ.step()
        # the record is computed from one shared kinetic-energy pass;
        # it must be bit-identical to calling the methods afterwards
        assert rec.energy_kinetic == integ.kinetic_energy()
        assert rec.temperature == integ.temperature()
        assert rec.pressure == integ.pressure()
