"""Unit tests for the operation-count workload model."""

import numpy as np
import pytest

from repro.core.parameters import (
    ApplicationParams,
    energy_pair_work,
    update_pair_work,
)
from repro.errors import WorkloadError
from repro.opal import costs
from repro.opal.complexes import MEDIUM, SMALL
from repro.opal.workload import OpalWorkload


def make_app(**kw):
    defaults = dict(molecule=MEDIUM, steps=10, servers=4, cutoff=10.0)
    defaults.update(kw)
    return ApplicationParams(**defaults)


def test_totals_match_model_complexities():
    app = make_app()
    w = OpalWorkload(app)
    assert w.update_pairs_total == update_pair_work(app.n, app.gamma)
    assert w.energy_pairs_total == energy_pair_work(app.n, app.n_tilde)


def test_no_cutoff_energy_pairs_quadratic():
    app = make_app(cutoff=None)
    w = OpalWorkload(app)
    assert w.energy_pairs_total == app.n * (app.n - 1) / 2


def test_updates_total_respects_interval():
    assert OpalWorkload(make_app(update_interval=1)).updates_total == 10
    assert OpalWorkload(make_app(update_interval=10)).updates_total == 1
    assert OpalWorkload(make_app(update_interval=3)).updates_total == 4


def test_server_shares_sum_to_totals():
    app = make_app(servers=5)
    w = OpalWorkload(app)
    assert w.server_update_pairs().sum() == pytest.approx(w.update_pairs_total)
    assert w.server_energy_pairs().sum() == pytest.approx(w.energy_pairs_total)


def test_flops_are_pairs_times_cost():
    app = make_app(servers=3)
    w = OpalWorkload(app)
    assert np.allclose(
        w.server_energy_flops(), w.server_energy_pairs() * costs.NB_PAIR_FLOPS
    )
    assert np.allclose(
        w.server_update_flops(), w.server_update_pairs() * costs.UPDATE_PAIR_FLOPS
    )


def test_even_p_imbalance_visible():
    w4 = OpalWorkload(make_app(servers=4, cutoff=None))
    w5 = OpalWorkload(make_app(servers=5, cutoff=None))
    assert w4.imbalance() > 1.05
    assert w5.imbalance() < 1.05


def test_message_sizes_match_paper_alpha():
    app = make_app()
    w = OpalWorkload(app)
    assert w.coords_nbytes == 24 * app.n
    assert w.result_nbytes == 16 + 24 * app.n
    assert w.ack_nbytes == 0


def test_seq_flops_linear_in_n():
    small = OpalWorkload(make_app(molecule=SMALL))
    medium = OpalWorkload(make_app(molecule=MEDIUM))
    ratio = medium.seq_flops_per_step / small.seq_flops_per_step
    assert ratio == pytest.approx(MEDIUM.n / SMALL.n)


def test_share_noise_validation():
    with pytest.raises(WorkloadError):
        OpalWorkload(make_app(), share_noise=0.6)


def test_zero_noise_matches_raw_distribution():
    app = make_app(servers=3)
    w = OpalWorkload(app, share_noise=0.0)
    raw = w._dist.shares(w.energy_pairs_total)
    assert np.array_equal(w.server_energy_pairs(), raw)


def test_working_sets_positive_and_ordered():
    app = make_app(servers=2)
    w = OpalWorkload(app)
    assert w.server_working_set() > w.client_working_set() > 0


def test_total_flops_composition():
    app = make_app(servers=1, update_interval=1, cutoff=None)
    w = OpalWorkload(app)
    expected = (
        10 * w.update_pairs_total * costs.UPDATE_PAIR_FLOPS
        + 10 * w.energy_pairs_total * costs.NB_PAIR_FLOPS
        + 10 * w.seq_flops_per_step
    )
    assert w.total_algorithmic_flops() == pytest.approx(expected)


def test_deterministic_by_seed():
    a = OpalWorkload(make_app(), seed=3).server_energy_pairs()
    b = OpalWorkload(make_app(), seed=3).server_energy_pairs()
    assert np.array_equal(a, b)
