"""Tests for the physics-mode parallel Opal (real MD over the middleware)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.opal.complexes import ComplexSpec
from repro.opal.dynamics import VelocityVerlet
from repro.opal.forcefield import total_energy
from repro.opal.minimize import steepest_descent
from repro.opal.pairlist import VerletPairList
from repro.opal.parallel_physics import (
    partition_candidate_pairs,
    run_parallel_opal_physics,
)
from repro.opal.system import build_system
from repro.platforms import CRAY_J90, FAST_COPS


@pytest.fixture(scope="module")
def relaxed_system():
    spec = ComplexSpec("pp", protein_atoms=16, waters=44, density=0.033)
    sys_ = build_system(spec, seed=5)
    vpl = VerletPairList(sys_, cutoff=None)
    steepest_descent(sys_, vpl, max_steps=120)
    return sys_


# ----------------------------------------------------------------------
class TestPartition:
    def test_partitions_are_disjoint_and_complete(self, relaxed_system):
        sys_ = relaxed_system
        parts = partition_candidate_pairs(sys_, servers=4, seed=1)
        assert len(parts) == 4
        n = sys_.n
        all_codes = np.concatenate([p[:, 0] * n + p[:, 1] for p in parts])
        assert len(all_codes) == len(np.unique(all_codes))
        expected = n * (n - 1) // 2 - len(sys_.topology.excluded_pairs())
        assert len(all_codes) == expected

    def test_excluded_pairs_never_assigned(self, relaxed_system):
        sys_ = relaxed_system
        parts = partition_candidate_pairs(sys_, servers=3, seed=0)
        n = sys_.n
        excl = set(
            (sys_.topology.excluded_pairs()[:, 0] * n
             + sys_.topology.excluded_pairs()[:, 1]).tolist()
        )
        for p in parts:
            codes = set((p[:, 0] * n + p[:, 1]).tolist())
            assert not codes & excl

    def test_single_server_gets_all(self, relaxed_system):
        parts = partition_candidate_pairs(relaxed_system, servers=1)
        n = relaxed_system.n
        assert len(parts[0]) == n * (n - 1) // 2 - len(
            relaxed_system.topology.excluded_pairs()
        )


# ----------------------------------------------------------------------
class TestPhysicsRun:
    def test_parallel_energy_matches_direct_evaluation(self, relaxed_system):
        sys_ = relaxed_system
        result = run_parallel_opal_physics(
            sys_.copy(), servers=3, platform=CRAY_J90, steps=1, dt=0.0,
            cutoff=None,
        )
        rec = result.records[-1]
        vpl = VerletPairList(sys_, cutoff=None)
        report, _ = total_energy(sys_, vpl.pairs_for_step(0))
        assert rec.e_vdw + rec.e_coul == pytest.approx(report.nonbonded, rel=1e-9)
        assert rec.e_bonded == pytest.approx(report.bonded, rel=1e-9)

    def test_parallel_trajectory_matches_serial(self, relaxed_system):
        sys_par = relaxed_system.copy()
        sys_ser = relaxed_system.copy()
        steps, dt = 4, 0.0005
        result = run_parallel_opal_physics(
            sys_par, servers=3, platform=CRAY_J90, steps=steps, dt=dt,
            cutoff=None, temperature=None,
        )
        vpl = VerletPairList(sys_ser, cutoff=None)
        md = VelocityVerlet(sys_ser, vpl, dt=dt, temperature=None)
        serial = md.run(steps)
        assert np.allclose(result.final_coords, serial.final_coords, atol=1e-9)
        assert result.records[-1].e_total == pytest.approx(
            serial.records[-1].energy_total, rel=1e-9
        )

    def test_server_count_does_not_change_physics(self, relaxed_system):
        finals = []
        for p in (1, 2, 5):
            r = run_parallel_opal_physics(
                relaxed_system.copy(), servers=p, platform=FAST_COPS,
                steps=3, dt=0.0005, cutoff=8.0,
            )
            finals.append(r.final_coords)
        assert np.allclose(finals[0], finals[1], atol=1e-8)
        assert np.allclose(finals[0], finals[2], atol=1e-8)

    def test_cutoff_reduces_evaluated_pairs(self, relaxed_system):
        full = run_parallel_opal_physics(
            relaxed_system.copy(), servers=2, platform=CRAY_J90, steps=1,
            dt=0.0, cutoff=None,
        )
        cut = run_parallel_opal_physics(
            relaxed_system.copy(), servers=2, platform=CRAY_J90, steps=1,
            dt=0.0, cutoff=6.0,
        )
        assert sum(cut.server_pair_counts) < sum(full.server_pair_counts)

    def test_wall_time_reflects_platform(self, relaxed_system):
        slow = run_parallel_opal_physics(
            relaxed_system.copy(), servers=2, platform=CRAY_J90, steps=2,
            dt=0.0005,
        )
        fast = run_parallel_opal_physics(
            relaxed_system.copy(), servers=2, platform=FAST_COPS, steps=2,
            dt=0.0005,
        )
        assert fast.wall_time < slow.wall_time

    def test_nve_energy_conserved(self, relaxed_system):
        r = run_parallel_opal_physics(
            relaxed_system.copy(), servers=3, platform=FAST_COPS, steps=20,
            dt=0.0005, temperature=25.0, seed=2,
        )
        e = r.energies
        drift = abs(e[-1] - e[0]) / max(abs(e[0]), 1e-9)
        assert drift < 5e-3

    def test_validation(self, relaxed_system):
        with pytest.raises(WorkloadError):
            run_parallel_opal_physics(relaxed_system, 0, CRAY_J90)
        with pytest.raises(WorkloadError):
            run_parallel_opal_physics(relaxed_system, 2, CRAY_J90, steps=0)
