"""Unit tests for the pseudo-random pair distribution (even-p anomaly)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.opal.distribution import PairDistribution


def test_validation():
    with pytest.raises(WorkloadError):
        PairDistribution(servers=0)
    with pytest.raises(WorkloadError):
        PairDistribution(servers=2, block=0)
    with pytest.raises(WorkloadError):
        PairDistribution(servers=2, defect=1.5)


def test_shares_sum_to_total():
    for p in range(1, 9):
        d = PairDistribution(servers=p, seed=3)
        for total in (1, 255, 256, 1000, 123456, 9_195_616):
            s = d.shares(total)
            assert s.sum() == pytest.approx(total)
            assert len(s) == p
            assert np.all(s >= 0)


def test_single_server_gets_everything():
    d = PairDistribution(servers=1)
    assert d.shares(1000).tolist() == [1000.0]


def test_zero_pairs():
    d = PairDistribution(servers=3)
    assert d.shares(0).tolist() == [0.0, 0.0, 0.0]


def test_deterministic_by_seed():
    a = PairDistribution(servers=5, seed=1).shares(100000)
    b = PairDistribution(servers=5, seed=1).shares(100000)
    c = PairDistribution(servers=5, seed=2).shares(100000)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_odd_server_counts_well_balanced():
    for p in (3, 5, 7):
        d = PairDistribution(servers=p, seed=0)
        imb = d.imbalance(5_000_000)
        assert imb < 1.03, f"p={p} imbalance {imb}"


def test_even_server_counts_imbalanced():
    # the paper's anomaly: even p shows systematic imbalance ~ 1+defect
    for p in (2, 4, 6):
        d = PairDistribution(servers=p, seed=0, defect=0.1)
        imb = d.imbalance(5_000_000)
        assert 1.05 < imb < 1.2, f"p={p} imbalance {imb}"


def test_even_excess_on_even_indexed_servers():
    d = PairDistribution(servers=4, seed=0, defect=0.1)
    s = d.shares(5_000_000)
    even_mean = s[::2].mean()
    odd_mean = s[1::2].mean()
    assert even_mean > odd_mean * 1.05


def test_zero_defect_balances_even_p():
    d = PairDistribution(servers=4, seed=0, defect=0.0)
    assert d.imbalance(5_000_000) < 1.02


def test_expected_imbalance_formula():
    assert PairDistribution(servers=3, defect=0.1).expected_imbalance() == 1.0
    assert PairDistribution(servers=4, defect=0.1).expected_imbalance() == pytest.approx(1.1)
    assert PairDistribution(servers=1, defect=0.9).expected_imbalance() == 1.0


def test_observed_matches_expected_imbalance():
    for p in (2, 4, 6, 8):
        d = PairDistribution(servers=p, seed=5, defect=0.2)
        observed = d.imbalance(20_000_000)
        assert observed == pytest.approx(d.expected_imbalance(), abs=0.03)


def test_assign_blocks_range():
    d = PairDistribution(servers=6, seed=1)
    owners = d.assign_blocks(10_000)
    assert owners.min() >= 0 and owners.max() < 6
    assert len(np.unique(owners)) == 6


def test_negative_inputs_rejected():
    d = PairDistribution(servers=2)
    with pytest.raises(WorkloadError):
        d.shares(-5)
    with pytest.raises(WorkloadError):
        d.assign_blocks(-1)
