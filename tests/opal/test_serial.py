"""Unit tests for the serial Opal driver."""

import pytest

from repro.errors import WorkloadError
from repro.opal.complexes import ComplexSpec
from repro.opal.serial import OpalSerial
from repro.opal.system import build_system


@pytest.fixture
def spec():
    return ComplexSpec("ser", protein_atoms=18, waters=42, density=0.033)


def test_accepts_spec_or_system(spec):
    drv1 = OpalSerial(spec, cutoff=7.0)
    sys_ = build_system(spec, seed=0)
    drv2 = OpalSerial(sys_, cutoff=7.0)
    assert drv1.system.n == drv2.system.n == spec.n
    with pytest.raises(WorkloadError):
        OpalSerial("not-a-system")


def test_minimization_then_dynamics(spec):
    drv = OpalSerial(spec, cutoff=7.0, update_interval=2, seed=1)
    mres = drv.run_minimization(max_steps=80)
    assert mres.final_energy < mres.initial_energy
    dres = drv.run_dynamics(steps=10, dt=0.0005, temperature=30.0)
    assert len(dres.records) == 10


def test_stats_reflect_update_interval(spec):
    drv = OpalSerial(spec, cutoff=7.0, update_interval=5, seed=1)
    drv.run_dynamics(steps=10, dt=0.0005, temperature=10.0)
    st = drv.stats()
    # step 0 builds once, then rebuilds at steps 5, 10 (VelocityVerlet
    # evaluates at construction + after each step)
    assert st.updates == 3
    n = spec.n
    assert st.candidates_per_update() == n * (n - 1) / 2


def test_no_cutoff_evaluates_all_pairs(spec):
    drv = OpalSerial(spec, cutoff=None, seed=1)
    drv.run_dynamics(steps=2, dt=0.0005, temperature=10.0)
    st = drv.stats()
    n = spec.n
    expected = n * (n - 1) / 2 - len(drv.system.topology.excluded_pairs())
    assert st.active_pairs_last == expected


def test_cutoff_reduces_active_pairs(spec):
    full = OpalSerial(spec, cutoff=None, seed=1)
    full.run_dynamics(steps=1, dt=0.0005, temperature=10.0)
    cut = OpalSerial(spec, cutoff=6.0, seed=1)
    cut.run_dynamics(steps=1, dt=0.0005, temperature=10.0)
    assert cut.stats().active_pairs_last < full.stats().active_pairs_last


def test_united_water_reduces_problem_size(spec):
    united = OpalSerial(spec, united_water=True)
    explicit = OpalSerial(spec, united_water=False)
    assert united.system.n < explicit.system.n
    assert explicit.system.n == spec.n_explicit
