"""Unit tests for cut-off pair lists and periodic updates."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.opal.complexes import ComplexSpec
from repro.opal.pairlist import PairListBuilder, VerletPairList
from repro.opal.system import build_system


@pytest.fixture(scope="module")
def sys_():
    spec = ComplexSpec("pl", protein_atoms=30, waters=120, density=0.033)
    return build_system(spec, seed=7)


def brute_reference(coords, cutoff):
    n = len(coords)
    out = []
    for i in range(n):
        for j in range(i + 1, n):
            if cutoff is None or np.linalg.norm(coords[i] - coords[j]) <= cutoff:
                out.append((i, j))
    return np.array(out, dtype=np.int64)


def test_brute_matches_reference(sys_):
    got = PairListBuilder(cutoff=6.0).build(sys_.coords)
    excl = {tuple(r) for r in sys_.topology.excluded_pairs().tolist()}
    want = np.array(
        [p for p in brute_reference(sys_.coords, 6.0).tolist() if tuple(p) not in excl]
    )
    # builder applied no exclusions here
    got_plain = PairListBuilder(cutoff=6.0).build(sys_.coords)
    assert np.array_equal(got_plain, brute_reference(sys_.coords, 6.0))


def test_cells_matches_brute(sys_):
    for cutoff in (4.0, 6.0, 9.0):
        b = PairListBuilder(cutoff=cutoff, method="brute").build(sys_.coords)
        c = PairListBuilder(cutoff=cutoff, method="cells").build(sys_.coords)
        assert np.array_equal(b, c), f"cutoff={cutoff}"


def test_no_cutoff_gives_all_pairs(sys_):
    pairs = PairListBuilder(cutoff=None).build(sys_.coords)
    n = sys_.n
    assert len(pairs) == n * (n - 1) // 2


def test_exclusions_removed(sys_):
    excl = sys_.topology.excluded_pairs()
    pairs = PairListBuilder(cutoff=None, exclusions=excl).build(sys_.coords)
    codes = set(map(tuple, pairs.tolist()))
    for e in map(tuple, excl.tolist()):
        assert e not in codes


def test_pairs_sorted_i_lt_j(sys_):
    pairs = PairListBuilder(cutoff=5.0).build(sys_.coords)
    assert np.all(pairs[:, 0] < pairs[:, 1])


def test_invalid_args():
    with pytest.raises(WorkloadError):
        PairListBuilder(cutoff=-1.0)
    with pytest.raises(WorkloadError):
        PairListBuilder(method="quantum")


def test_candidates_counted_quadratically(sys_):
    b = PairListBuilder(cutoff=5.0)
    b.build(sys_.coords)
    n = sys_.n
    assert b.stats.candidates_checked == n * (n - 1) // 2


# ----------------------------------------------------------------------
class TestVerletPairList:
    def test_update_interval_controls_rebuilds(self, sys_):
        vpl = VerletPairList(sys_, cutoff=6.0, update_interval=5)
        for step in range(10):
            vpl.pairs_for_step(step)
        assert vpl.stats.updates == 2  # steps 0 and 5

    def test_full_update_rebuilds_every_step(self, sys_):
        vpl = VerletPairList(sys_, cutoff=6.0, update_interval=1)
        for step in range(10):
            vpl.pairs_for_step(step)
        assert vpl.stats.updates == 10

    def test_stale_list_reused_between_updates(self, sys_):
        vpl = VerletPairList(sys_, cutoff=6.0, update_interval=10)
        p0 = vpl.pairs_for_step(0)
        moved = sys_.coords + 100.0  # even after moving, no rebuild at step 1
        p1 = vpl.pairs_for_step(1, moved)
        assert p1 is p0

    def test_pairs_evaluated_accumulates(self, sys_):
        vpl = VerletPairList(sys_, cutoff=6.0, update_interval=1)
        total = 0
        for step in range(3):
            total += len(vpl.pairs_for_step(step))
        assert vpl.pairs_evaluated == total

    def test_invalid_interval(self, sys_):
        with pytest.raises(WorkloadError):
            VerletPairList(sys_, cutoff=6.0, update_interval=0)

    def test_excludes_bonded_neighbours(self, sys_):
        vpl = VerletPairList(sys_, cutoff=6.0)
        pairs = set(map(tuple, vpl.pairs_for_step(0).tolist()))
        assert (0, 1) not in pairs  # bonded neighbours excluded
