"""Unit tests for the operation-cost anchor constants."""

from repro.opal import costs


def test_medium_pair_count():
    assert costs.MEDIUM_PAIRS == 4289 * 4288 // 2 == 9_195_616


def test_kernel_flops_anchor():
    # Table 1: fast CoPs counted 325.80 MFlop with inflation 1.0
    assert costs.KERNEL_FLOPS == 325.80e6


def test_nb_pair_flops_consistent():
    assert costs.NB_PAIR_FLOPS * costs.MEDIUM_PAIRS == costs.KERNEL_FLOPS
    assert 30 < costs.NB_PAIR_FLOPS < 45  # a plausible LJ+Coulomb+grad cost


def test_cost_hierarchy():
    # distance check < pair energy; client per-atom work is O(100)
    assert costs.UPDATE_PAIR_FLOPS < costs.NB_PAIR_FLOPS
    assert costs.SEQ_ATOM_FLOPS > costs.NB_PAIR_FLOPS


def test_alpha_is_three_doubles():
    assert costs.ALPHA_BYTES == 24


def test_pair_entry_is_two_ints():
    assert costs.PAIR_ENTRY_BYTES == 8
