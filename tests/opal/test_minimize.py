"""Unit tests for energy minimization."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.opal.complexes import ComplexSpec
from repro.opal.minimize import minimize_lbfgs, steepest_descent
from repro.opal.pairlist import VerletPairList
from repro.opal.system import build_system


@pytest.fixture
def setup():
    spec = ComplexSpec("min", protein_atoms=16, waters=30, density=0.033)
    sys_ = build_system(spec, seed=2)
    vpl = VerletPairList(sys_, cutoff=7.0, update_interval=3)
    return sys_, vpl


def test_energy_monotonically_nonincreasing(setup):
    sys_, vpl = setup
    res = steepest_descent(sys_, vpl, max_steps=40)
    e = np.array(res.energies)
    assert np.all(np.diff(e) <= 1e-9)
    assert res.final_energy < res.initial_energy


def test_apply_updates_system_coords(setup):
    sys_, vpl = setup
    before = sys_.coords.copy()
    steepest_descent(sys_, vpl, max_steps=20, apply=True)
    assert not np.array_equal(before, sys_.coords)


def test_apply_false_leaves_system(setup):
    sys_, vpl = setup
    before = sys_.coords.copy()
    res = steepest_descent(sys_, vpl, max_steps=20, apply=False)
    assert np.array_equal(before, sys_.coords)
    assert res.final_coords is not None


def test_invalid_max_steps(setup):
    sys_, vpl = setup
    with pytest.raises(WorkloadError):
        steepest_descent(sys_, vpl, max_steps=0)


def test_lbfgs_reaches_lower_energy_than_start(setup):
    sys_, vpl = setup
    res = minimize_lbfgs(sys_, vpl, max_steps=80)
    assert res.final_energy < res.initial_energy
    assert res.iterations > 0


def test_gradient_norm_reported(setup):
    sys_, vpl = setup
    res = steepest_descent(sys_, vpl, max_steps=30)
    assert np.isfinite(res.gradient_norm)


def test_converges_on_already_minimal_system():
    # a two-atom bond at equilibrium with no other terms
    spec = ComplexSpec("flat", protein_atoms=2, waters=0, density=0.03)
    sys_ = build_system(spec, seed=0)
    sys_.charges[:] = 0.0
    sys_.eps[:] = 0.0
    b0 = sys_.topology.bond_b0[0]
    sys_.coords[:] = 0.0
    sys_.coords[1, 0] = b0
    vpl = VerletPairList(sys_, cutoff=None)
    res = steepest_descent(sys_, vpl, max_steps=10, gtol=1e-6)
    assert res.converged
    assert res.final_energy == pytest.approx(0.0, abs=1e-12)
