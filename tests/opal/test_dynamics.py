"""Unit tests for velocity-Verlet dynamics."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.opal.complexes import ComplexSpec
from repro.opal.dynamics import KB, VelocityVerlet
from repro.opal.minimize import steepest_descent
from repro.opal.pairlist import VerletPairList
from repro.opal.system import build_system


@pytest.fixture
def relaxed():
    spec = ComplexSpec("md", protein_atoms=12, waters=24, density=0.033)
    sys_ = build_system(spec, seed=4)
    vpl = VerletPairList(sys_, cutoff=7.0, update_interval=2)
    steepest_descent(sys_, vpl, max_steps=120)
    return sys_, vpl


def test_energy_conservation_nve(relaxed):
    sys_, vpl = relaxed
    md = VelocityVerlet(sys_, vpl, dt=0.0005, temperature=30.0, seed=1)
    result = md.run(60)
    assert abs(result.energy_drift()) < 5e-3


def test_smaller_dt_conserves_better(relaxed):
    sys_, vpl = relaxed
    base = sys_.copy()

    drifts = {}
    for dt in (0.002, 0.0005):
        s = base.copy()
        v = VerletPairList(s, cutoff=7.0, update_interval=2)
        md = VelocityVerlet(s, v, dt=dt, temperature=30.0, seed=1)
        drifts[dt] = abs(md.run(40).energy_drift())
    assert drifts[0.0005] <= drifts[0.002] + 1e-12


def test_initial_temperature_near_target(relaxed):
    sys_, vpl = relaxed
    md = VelocityVerlet(sys_, vpl, dt=0.001, temperature=300.0, seed=0)
    assert md.temperature() == pytest.approx(300.0, rel=0.35)


def test_thermostat_holds_temperature(relaxed):
    sys_, vpl = relaxed
    md = VelocityVerlet(
        sys_, vpl, dt=0.001, temperature=100.0, thermostat=True, seed=0
    )
    result = md.run(30)
    assert result.records[-1].temperature == pytest.approx(100.0, rel=0.05)


def test_zero_momentum(relaxed):
    sys_, vpl = relaxed
    md = VelocityVerlet(sys_, vpl, dt=0.001, temperature=200.0, seed=3)
    p = (sys_.masses[:, None] * md.velocities).sum(axis=0)
    assert np.abs(p).max() < 1e-9


def test_records_contain_paper_observables(relaxed):
    sys_, vpl = relaxed
    md = VelocityVerlet(sys_, vpl, dt=0.001, temperature=50.0)
    rec = md.run(3).records[-1]
    # Opal displays energy, volume, pressure, temperature per step
    assert rec.energy_total == pytest.approx(
        rec.energy_potential + rec.energy_kinetic
    )
    assert rec.volume == pytest.approx(sys_.volume)
    assert np.isfinite(rec.pressure)
    assert rec.temperature >= 0.0


def test_invalid_dt():
    spec = ComplexSpec("x", protein_atoms=3, waters=0, density=0.03)
    sys_ = build_system(spec, seed=0)
    vpl = VerletPairList(sys_, cutoff=None)
    with pytest.raises(WorkloadError):
        VelocityVerlet(sys_, vpl, dt=0.0)


def test_invalid_steps(relaxed):
    sys_, vpl = relaxed
    md = VelocityVerlet(sys_, vpl, dt=0.001)
    with pytest.raises(WorkloadError):
        md.run(0)


def test_kb_value():
    assert KB == pytest.approx(1.987e-3, rel=1e-3)
