"""Integration-grade unit tests for the parallel Opal driver."""

import numpy as np
import pytest

from repro.core.model import OpalPerformanceModel
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.opal.complexes import MEDIUM, SMALL
from repro.opal.parallel import make_opal_interface, run_parallel_opal
from repro.platforms import CRAY_J90, FAST_COPS, SMP_COPS


def small_app(**kw):
    defaults = dict(molecule=SMALL, steps=4, servers=3, cutoff=10.0)
    defaults.update(kw)
    return ApplicationParams(**defaults)


def test_interface_declares_both_procedures():
    iface = make_opal_interface()
    assert set(iface.names()) == {"update_lists", "eval_nonbonded"}


def test_run_produces_additive_breakdown():
    r = run_parallel_opal(small_app(), CRAY_J90)
    b = r.breakdown
    assert r.wall_time == pytest.approx(b.total, rel=1e-9)
    assert b.update > 0 and b.nbint > 0 and b.comm > 0 and b.sync > 0


def test_single_server_matches_model_closely():
    app = small_app(servers=1, steps=6)
    r = run_parallel_opal(app, CRAY_J90)
    model = OpalPerformanceModel(ModelPlatformParams.from_spec(CRAY_J90))
    assert r.wall_time == pytest.approx(model.predict_total(app), rel=0.05)


def test_more_servers_less_compute_per_server():
    r2 = run_parallel_opal(small_app(servers=2, cutoff=None), CRAY_J90)
    r6 = run_parallel_opal(small_app(servers=6, cutoff=None), CRAY_J90)
    assert r6.breakdown.nbint < r2.breakdown.nbint
    assert r6.breakdown.comm > r2.breakdown.comm


def test_even_p_shows_more_idle_than_odd():
    r4 = run_parallel_opal(small_app(servers=4, cutoff=None), CRAY_J90)
    r5 = run_parallel_opal(small_app(servers=5, cutoff=None), CRAY_J90)
    assert r4.breakdown.idle > r5.breakdown.idle
    assert r4.imbalance > r5.imbalance


def test_partial_update_reduces_update_time():
    full = run_parallel_opal(small_app(update_interval=1, steps=10), CRAY_J90)
    part = run_parallel_opal(small_app(update_interval=10, steps=10), CRAY_J90)
    assert part.breakdown.update < full.breakdown.update
    assert part.breakdown.comm < full.breakdown.comm


def test_cutoff_reduces_energy_time():
    with_cut = run_parallel_opal(small_app(cutoff=10.0), CRAY_J90)
    without = run_parallel_opal(small_app(cutoff=None), CRAY_J90)
    assert with_cut.breakdown.nbint < without.breakdown.nbint


def test_overlapped_mode_is_faster_but_unaccounted():
    app = small_app(steps=6)
    acc = run_parallel_opal(app, CRAY_J90, sync_mode="accounted")
    ovl = run_parallel_opal(app, CRAY_J90, sync_mode="overlapped")
    assert ovl.wall_time <= acc.wall_time
    assert ovl.breakdown.sync == 0.0
    assert ovl.barriers_executed == 0
    assert acc.barriers_executed > 0


def test_accounting_overhead_below_paper_bound():
    # the paper accepts < 5% slowdown for exact accounting; on compute-
    # bound runs the overhead should stay in that band
    app = ApplicationParams(molecule=MEDIUM, steps=5, servers=4, cutoff=None)
    acc = run_parallel_opal(app, FAST_COPS, sync_mode="accounted")
    ovl = run_parallel_opal(app, FAST_COPS, sync_mode="overlapped")
    slowdown = (acc.wall_time - ovl.wall_time) / ovl.wall_time
    assert 0.0 <= slowdown < 0.05


def test_flops_counted_with_inflation():
    app = small_app(servers=2, steps=3)
    r = run_parallel_opal(app, CRAY_J90)
    # counted = algorithmic x J90 inflation (~1.527)
    from repro.opal.workload import OpalWorkload

    algo = OpalWorkload(app).total_algorithmic_flops()
    assert r.flops_counted == pytest.approx(algo * CRAY_J90.flop_inflation, rel=1e-6)


def test_smp_placement_two_servers_per_node():
    app = small_app(servers=4)
    r = run_parallel_opal(app, SMP_COPS, keep_cluster=True)
    # 5 processes on 2-cpu nodes -> 3 nodes
    assert len(r.cluster.nodes) == 3


def test_jitter_changes_wall_time_but_not_much():
    app = small_app(steps=5)
    r0 = run_parallel_opal(app, CRAY_J90, jitter_sigma=0.0)
    r1 = run_parallel_opal(app, CRAY_J90, jitter_sigma=0.004, seed=1)
    assert r0.wall_time != r1.wall_time
    assert abs(r1.wall_time - r0.wall_time) / r0.wall_time < 0.05


def test_deterministic_without_jitter():
    app = small_app()
    a = run_parallel_opal(app, CRAY_J90, seed=0)
    b = run_parallel_opal(app, CRAY_J90, seed=0)
    assert a.wall_time == b.wall_time


def test_server_seconds_lists_have_p_entries():
    app = small_app(servers=5)
    r = run_parallel_opal(app, CRAY_J90)
    assert len(r.server_update_seconds) == 5
    assert len(r.server_energy_seconds) == 5
    assert all(s > 0 for s in r.server_energy_seconds)


def test_client_phases_cover_rpc_components():
    r = run_parallel_opal(small_app(), CRAY_J90)
    for key in ("comm:call_upd", "comm:return_upd", "comm:call_nbi",
                "comm:return_nbi", "seq_comp"):
        assert key in r.client_phases, key
