"""Unit tests for the force field: analytic gradients vs numerical."""

import numpy as np
import pytest

from repro.opal import forcefield as ff
from repro.opal.complexes import ComplexSpec
from repro.opal.system import COULOMB_K, build_system


@pytest.fixture(scope="module")
def sys_():
    spec = ComplexSpec("ff", protein_atoms=12, waters=18, density=0.03)
    return build_system(spec, seed=3)


@pytest.fixture(scope="module")
def all_pairs(sys_):
    n = sys_.n
    return np.array([(i, j) for i in range(n) for j in range(i + 1, n)])


def numerical_gradient(f, x, h=1e-6):
    g = np.zeros_like(x)
    for a in range(x.shape[0]):
        for c in range(3):
            xp = x.copy()
            xp[a, c] += h
            xm = x.copy()
            xm[a, c] -= h
            g[a, c] = (f(xp) - f(xm)) / (2 * h)
    return g


@pytest.mark.parametrize(
    "name,fn",
    [
        ("bond", ff.bond_energy),
        ("angle", ff.angle_energy),
        ("dihedral", ff.dihedral_energy),
        ("improper", ff.improper_energy),
    ],
)
def test_bonded_gradients_match_numerical(sys_, name, fn):
    # perturb away from any equilibrium so every term has a real gradient
    rng = np.random.default_rng(0)
    x0 = sys_.coords + 0.05 * rng.standard_normal(sys_.coords.shape)
    _, g = fn(sys_, x0)
    gn = numerical_gradient(lambda x: fn(sys_, x)[0], x0)
    scale = max(np.abs(gn).max(), 1e-10)
    assert np.abs(g - gn).max() / scale < 1e-6, name


def test_nonbonded_gradient_matches_numerical(sys_, all_pairs):
    x0 = sys_.coords.copy()

    def energy(x):
        ev, ec, _ = ff.nonbonded_energy(sys_, all_pairs, x)
        return ev + ec

    _, _, g = ff.nonbonded_energy(sys_, all_pairs, x0)
    gn = numerical_gradient(energy, x0, h=1e-7)
    scale = max(np.abs(gn).max(), 1e-10)
    assert np.abs(g - gn).max() / scale < 1e-5


def test_bond_energy_zero_at_equilibrium():
    spec = ComplexSpec("eq", protein_atoms=4, waters=0, density=0.03)
    sys_ = build_system(spec, seed=0)
    # place the chain exactly at b0 along a line
    b0 = sys_.topology.bond_b0[0]
    sys_.coords[:] = 0.0
    sys_.coords[:, 0] = np.arange(4) * b0
    e, g = ff.bond_energy(sys_)
    assert e == pytest.approx(0.0, abs=1e-12)
    assert np.abs(g).max() == pytest.approx(0.0, abs=1e-12)


def test_bond_energy_quadratic_in_stretch():
    spec = ComplexSpec("eq", protein_atoms=2, waters=0, density=0.03)
    sys_ = build_system(spec, seed=0)
    b0 = sys_.topology.bond_b0[0]
    k = sys_.topology.bond_k[0]
    sys_.coords[:] = 0.0
    sys_.coords[1, 0] = b0 + 0.2
    e, _ = ff.bond_energy(sys_)
    assert e == pytest.approx(0.5 * k * 0.04)


def test_coulomb_sign_and_magnitude():
    spec = ComplexSpec("q", protein_atoms=2, waters=0, density=0.03)
    sys_ = build_system(spec, seed=0)
    sys_.coords[:] = 0.0
    sys_.coords[1, 0] = 5.0
    sys_.charges[:] = [0.5, -0.5]
    sys_.eps[:] = 0.0  # kill LJ
    ev, ec, _ = ff.nonbonded_energy(sys_, np.array([[0, 1]]))
    assert ev == 0.0
    assert ec == pytest.approx(COULOMB_K * 0.5 * -0.5 / 5.0)


def test_lj_minimum_location():
    # LJ minimum at r = 2^(1/6) sigma with depth -eps
    spec = ComplexSpec("lj", protein_atoms=2, waters=0, density=0.03)
    sys_ = build_system(spec, seed=0)
    sys_.charges[:] = 0.0
    sigma, eps = 3.0, 0.2
    sys_.sigma[:] = sigma
    sys_.eps[:] = eps
    rmin = 2 ** (1 / 6) * sigma
    sys_.coords[:] = 0.0
    sys_.coords[1, 0] = rmin
    ev, _, grad = ff.nonbonded_energy(sys_, np.array([[0, 1]]))
    assert ev == pytest.approx(-eps, rel=1e-9)
    assert np.abs(grad).max() < 1e-9


def test_empty_pair_list():
    spec = ComplexSpec("e", protein_atoms=3, waters=0, density=0.03)
    sys_ = build_system(spec, seed=0)
    ev, ec, g = ff.nonbonded_energy(sys_, np.zeros((0, 2), dtype=int))
    assert ev == ec == 0.0
    assert np.all(g == 0.0)


def test_bad_pair_shape_rejected():
    spec = ComplexSpec("e", protein_atoms=3, waters=0, density=0.03)
    sys_ = build_system(spec, seed=0)
    with pytest.raises(Exception):
        ff.nonbonded_energy(sys_, np.array([0, 1, 2]))


def test_total_energy_decomposition(sys_, all_pairs):
    report, grad = ff.total_energy(sys_, all_pairs)
    assert report.total == pytest.approx(report.bonded + report.nonbonded)
    assert report.bonded == pytest.approx(
        report.bond + report.angle + report.dihedral + report.improper
    )
    # gradient is the sum of the term gradients
    parts = [
        ff.bond_energy(sys_)[1],
        ff.angle_energy(sys_)[1],
        ff.dihedral_energy(sys_)[1],
        ff.improper_energy(sys_)[1],
        ff.nonbonded_energy(sys_, all_pairs)[2],
    ]
    assert np.allclose(grad, sum(parts))


def test_translation_invariance(sys_, all_pairs):
    report0, _ = ff.total_energy(sys_, all_pairs)
    shifted = sys_.coords + np.array([10.0, -5.0, 3.0])
    report1, _ = ff.total_energy(sys_, all_pairs, shifted)
    assert report1.total == pytest.approx(report0.total, rel=1e-9)


def test_gradient_sums_to_zero(sys_, all_pairs):
    # internal forces: no net force on the system
    _, grad = ff.total_energy(sys_, all_pairs)
    assert np.abs(grad.sum(axis=0)).max() < 1e-6
