"""Unit tests for the united-water model comparison."""

import pytest

from repro.errors import WorkloadError
from repro.opal.complexes import MEDIUM
from repro.opal.water import (
    compare_water_models,
    dipole_truncation_error,
)


def test_united_water_reduces_workload():
    cmp_ = compare_water_models(MEDIUM, cutoff=10.0)
    # claim (i): reduced workload of the servers
    assert cmp_.workload_reduction > 0.5
    # claim (ii): smaller lists
    assert cmp_.list_size_reduction > 0.5
    assert cmp_.update_reduction > 0.5


def test_explicit_model_has_more_sites():
    cmp_ = compare_water_models(MEDIUM, cutoff=10.0)
    assert cmp_.n_explicit == MEDIUM.n_explicit > cmp_.n_united == MEDIUM.n


def test_accuracy_claim_small_cutoff():
    # claim (iii): better accuracy at small cutoff radii
    assert dipole_truncation_error(8.0, united=True) < dipole_truncation_error(
        8.0, united=False
    )


def test_accuracy_gap_shrinks_with_cutoff():
    gap_small = dipole_truncation_error(8.0, united=False) - dipole_truncation_error(
        8.0, united=True
    )
    gap_large = dipole_truncation_error(30.0, united=False) - dipole_truncation_error(
        30.0, united=True
    )
    assert gap_large < gap_small


def test_invalid_cutoffs():
    with pytest.raises(WorkloadError):
        compare_water_models(MEDIUM, cutoff=0.0)
    with pytest.raises(WorkloadError):
        dipole_truncation_error(-1.0, united=True)
