"""Unit tests for molecular topology."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.opal.topology import Topology, chain_topology


def test_chain_term_counts():
    topo = chain_topology(10)
    assert len(topo.bonds) == 9
    assert len(topo.angles) == 8
    assert len(topo.dihedrals) == 7
    assert len(topo.impropers) == 2  # every 5th quadruple of 7


def test_chain_minimum_size():
    with pytest.raises(WorkloadError):
        chain_topology(1)
    topo = chain_topology(2)
    assert len(topo.bonds) == 1
    assert len(topo.angles) == 0


def test_offset_shifts_indices():
    topo = chain_topology(5, offset=100)
    assert topo.bonds.min() == 100
    assert topo.bonds.max() == 104
    assert topo.n_atoms == 105


def test_index_out_of_range_rejected():
    with pytest.raises(WorkloadError):
        Topology(
            n_atoms=3,
            bonds=np.array([[0, 5]]),
            bond_k=np.array([1.0]),
            bond_b0=np.array([1.0]),
        )


def test_parameter_length_mismatch_rejected():
    with pytest.raises(WorkloadError):
        Topology(
            n_atoms=3,
            bonds=np.array([[0, 1]]),
            bond_k=np.array([1.0, 2.0]),
            bond_b0=np.array([1.0]),
        )


def test_repeated_atom_in_term_rejected():
    with pytest.raises(WorkloadError):
        Topology(
            n_atoms=3,
            bonds=np.array([[1, 1]]),
            bond_k=np.array([1.0]),
            bond_b0=np.array([1.0]),
        )


def test_excluded_pairs_cover_12_and_13():
    topo = chain_topology(5)
    excl = {tuple(r) for r in topo.excluded_pairs().tolist()}
    # 1-2 neighbours
    assert (0, 1) in excl and (3, 4) in excl
    # 1-3 via angles
    assert (0, 2) in excl and (2, 4) in excl
    # 1-4 NOT excluded
    assert (0, 3) not in excl


def test_excluded_pairs_unique_and_sorted():
    topo = chain_topology(8)
    excl = topo.excluded_pairs()
    assert np.all(excl[:, 0] < excl[:, 1])
    assert len(np.unique(excl, axis=0)) == len(excl)


def test_n_bonded_terms():
    topo = chain_topology(10)
    assert topo.n_bonded_terms == 9 + 8 + 7 + 2
