"""Tests for the simulated space-decomposition Opal."""

import pytest

from repro.core.parameters import ApplicationParams
from repro.opal.complexes import LARGE, MEDIUM
from repro.opal.parallel import run_parallel_opal
from repro.opal.parallel_sd import run_parallel_opal_sd, sd_halo_atoms
from repro.platforms import CRAY_J90, FAST_COPS


def app(**kw):
    defaults = dict(molecule=MEDIUM, steps=5, servers=4, cutoff=10.0)
    defaults.update(kw)
    return ApplicationParams(**defaults)


class TestHalo:
    def test_no_cutoff_degenerates(self):
        assert sd_halo_atoms(app(cutoff=None)) == app().n

    def test_wide_slabs_have_bounded_halo(self):
        a = app(servers=4, cutoff=10.0)
        halo = sd_halo_atoms(a)
        assert 0 < halo < a.n
        # halo = 2 c A rho, independent of p while slabs stay wider than c
        assert sd_halo_atoms(app(servers=2)) == pytest.approx(halo)

    def test_too_thin_slabs_degenerate(self):
        # box ~ 46 A; 8 slabs of ~5.7 A are thinner than the 10 A cutoff
        assert sd_halo_atoms(app(servers=8)) == app().n


class TestSdRun:
    def test_basic_run_additive_breakdown(self):
        r = run_parallel_opal_sd(app(), CRAY_J90)
        assert r.wall_time > 0
        assert r.breakdown.total == pytest.approx(r.wall_time, rel=1e-6)
        assert r.breakdown.comm > 0 and r.breakdown.nbint > 0

    def test_single_peer(self):
        r = run_parallel_opal_sd(app(servers=1), FAST_COPS)
        assert r.breakdown.comm == pytest.approx(0.0, abs=1e-9)

    def test_compute_scales_down_with_p(self):
        r2 = run_parallel_opal_sd(app(servers=2), FAST_COPS)
        r4 = run_parallel_opal_sd(app(servers=4), FAST_COPS)
        assert r4.breakdown.nbint < 0.7 * r2.breakdown.nbint

    def test_comm_grows_sublinearly_with_p(self):
        """Interior peers all exchange the same two halo faces and join a
        log-depth reduction; communication must grow far slower than
        RD's client-serialized linear-in-p traffic."""
        a = app(molecule=LARGE)
        r3 = run_parallel_opal_sd(a.with_(servers=3), CRAY_J90)
        r5 = run_parallel_opal_sd(a.with_(servers=5), CRAY_J90)
        assert r5.breakdown.comm < 1.6 * r3.breakdown.comm  # vs 5/3 for RD

    def test_sd_scales_where_rd_does_not_on_j90(self):
        """The EXT2 analytic claim, validated by simulation: on the
        J90's middleware the RD client/server program regresses past
        ~3 servers while the SPMD slab program keeps improving."""
        a = app(molecule=LARGE, steps=5, cutoff=10.0)
        rd = {p: run_parallel_opal(a.with_(servers=p), CRAY_J90).wall_time
              for p in (2, 3, 4)}
        sd = {p: run_parallel_opal_sd(a.with_(servers=p), CRAY_J90).wall_time
              for p in (2, 3, 4)}
        assert sd[3] < sd[2] and sd[4] < sd[3]  # monotone improvement
        assert rd[4] > rd[3]  # RD has turned over
        assert sd[4] < 0.7 * rd[4]

    def test_deterministic(self):
        a = app()
        r1 = run_parallel_opal_sd(a, CRAY_J90, seed=3)
        r2 = run_parallel_opal_sd(a, CRAY_J90, seed=3)
        assert r1.wall_time == r2.wall_time

    def test_work_noise_follows_run_seed(self):
        # regression: peer work-noise streams were seeded from a
        # hard-coded literal and ignored the run seed entirely
        a = app()
        r1 = run_parallel_opal_sd(a, CRAY_J90, seed=1)
        r2 = run_parallel_opal_sd(a, CRAY_J90, seed=2)
        assert r1.wall_time != r2.wall_time

    def test_zero_work_noise_is_seed_independent(self):
        a = app()
        r1 = run_parallel_opal_sd(a, CRAY_J90, seed=1, work_noise=0.0)
        r2 = run_parallel_opal_sd(a, CRAY_J90, seed=2, work_noise=0.0)
        assert r1.wall_time == r2.wall_time

    def test_invalid_servers_rejected_at_params(self):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            app(servers=0)
