"""Failover and degradation tests for the parallel Opal driver.

The graceful-degradation contract: a mid-run server crash costs work
redistribution, never correctness — the run completes on the survivors,
the accountant identity (wall = sum of response variables) still holds
exactly, and the degradation is visible in the result and in the
observability layer.
"""

import pytest

from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.errors import FaultError
from repro.netsim.faults import FaultSpec, NodeCrash
from repro.obs import ObsSession
from repro.opal.complexes import MEDIUM, SMALL
from repro.opal.parallel import run_parallel_opal
from repro.platforms import CRAY_J90
from repro.sciddle import RetryPolicy


def crash_app(**kw):
    defaults = dict(molecule=MEDIUM, steps=6, servers=4, update_interval=3)
    defaults.update(kw)
    return ApplicationParams(**defaults)


CRASH_SPEC = FaultSpec(crashes=(NodeCrash(2, 1.5),), rpc_timeout=5.0)


def test_zero_fault_resilient_run_is_bit_identical_to_plain():
    app = ApplicationParams(molecule=SMALL, steps=4, servers=3, cutoff=10.0)
    plain = run_parallel_opal(app, CRAY_J90, seed=0)
    resilient = run_parallel_opal(
        app, CRAY_J90, seed=0, retry_policy=RetryPolicy()
    )
    assert resilient.wall_time == plain.wall_time
    assert resilient.breakdown == plain.breakdown
    assert resilient.servers_failed == []
    assert resilient.failovers == 0
    assert resilient.rpc_retries == 0


def test_mid_run_crash_degrades_gracefully():
    result = run_parallel_opal(crash_app(), CRAY_J90, faults=CRASH_SPEC)
    assert result.servers_failed, "the crashed server must be recorded"
    assert result.failovers >= 1
    # the accountant identity survives degradation: every wall second is
    # attributed to exactly one response variable
    assert result.wall_time == pytest.approx(result.breakdown.total, rel=1e-9)
    # the run costs more than the healthy one (work was redistributed)
    healthy = run_parallel_opal(crash_app(), CRAY_J90)
    assert result.wall_time > healthy.wall_time


def test_crash_failover_is_seed_deterministic():
    a = run_parallel_opal(crash_app(), CRAY_J90, faults=CRASH_SPEC)
    b = run_parallel_opal(crash_app(), CRAY_J90, faults=CRASH_SPEC)
    assert a.wall_time == b.wall_time
    assert a.breakdown == b.breakdown
    assert a.servers_failed == b.servers_failed
    assert a.failovers == b.failovers


def test_crashing_the_client_node_is_rejected():
    spec = FaultSpec(crashes=(NodeCrash(0, 1.0),))
    with pytest.raises(FaultError, match="coordinator"):
        run_parallel_opal(crash_app(), CRAY_J90, faults=spec)


def test_degraded_run_is_flagged_in_the_residual_report():
    obs = ObsSession(label="failover-test")
    obs.set_model_params(ModelPlatformParams.from_spec(CRAY_J90))
    run_parallel_opal(crash_app(), CRAY_J90, faults=CRASH_SPEC, obs=obs)
    report = obs.model_report(threshold=0.10)
    # a degraded cell drifts far off the healthy-machine model; the
    # residual join must flag it rather than average it away
    assert " !" in report
    assert "drifted beyond tolerance" in report


def test_failover_emits_spans_matching_counters():
    obs = ObsSession(label="failover-spans")
    result = run_parallel_opal(crash_app(), CRAY_J90, faults=CRASH_SPEC, obs=obs)
    failover_spans = [
        s for s in obs.tracer.spans if s.category == "failover" and s.detail
    ]
    assert len(failover_spans) == result.failovers
    retry_spans = [s for s in obs.tracer.spans if s.category == "retry"]
    assert len(retry_spans) == result.rpc_retries


def test_plain_run_metrics_stay_free_of_resilience_rows():
    app = ApplicationParams(molecule=SMALL, steps=3, servers=2, cutoff=10.0)
    result = run_parallel_opal(app, CRAY_J90, keep_cluster=True)
    names = set(result.cluster.metrics.counters)
    assert "sciddle.retries" not in names
    assert "opal.failovers" not in names
