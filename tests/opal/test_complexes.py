"""Unit tests for molecular complex descriptors."""

import math

import pytest

from repro.errors import WorkloadError
from repro.opal.complexes import (
    LARGE,
    MEDIUM,
    SMALL,
    ComplexSpec,
    get_complex,
)


def test_paper_medium_statistics():
    # Antennapedia/DNA: 1575 atoms + 2714 waters = 4289 mass centers
    assert MEDIUM.protein_atoms == 1575
    assert MEDIUM.waters == 2714
    assert MEDIUM.n == 4289
    assert MEDIUM.gamma == pytest.approx(2714 / 4289)


def test_paper_large_statistics():
    # LFB homeodomain: 1655 atoms + 4634 waters = 6289 mass centers
    assert LARGE.n == 6289
    assert LARGE.gamma == pytest.approx(4634 / 6289)


def test_explicit_water_triples_solvent_sites():
    assert MEDIUM.n_explicit == 1575 + 3 * 2714
    assert MEDIUM.mass_centers(united_water=False) == MEDIUM.n_explicit
    assert MEDIUM.mass_centers(united_water=True) == MEDIUM.n


def test_size_ordering():
    assert SMALL.n < MEDIUM.n < LARGE.n


def test_validation():
    with pytest.raises(WorkloadError):
        ComplexSpec("bad", protein_atoms=1, waters=10)
    with pytest.raises(WorkloadError):
        ComplexSpec("bad", protein_atoms=10, waters=-1)
    with pytest.raises(WorkloadError):
        ComplexSpec("bad", protein_atoms=10, waters=10, density=0.0)


def test_volume_and_box_consistent_with_density():
    assert MEDIUM.volume == pytest.approx(MEDIUM.n / MEDIUM.density)
    assert MEDIUM.box_edge**3 == pytest.approx(MEDIUM.volume)


def test_n_tilde_scales_with_cutoff_cubed():
    assert MEDIUM.n_tilde(20.0) == pytest.approx(8 * MEDIUM.n_tilde(10.0))


def test_n_tilde_no_cutoff_is_infinite():
    assert math.isinf(MEDIUM.n_tilde(None))


def test_n_tilde_invalid_cutoff():
    with pytest.raises(WorkloadError):
        MEDIUM.n_tilde(-1.0)


def test_effective_vs_ineffective_cutoff():
    # the paper's contrast: 10 A effective, 60 A ineffective
    for spec in (SMALL, MEDIUM, LARGE):
        assert spec.cutoff_effective(10.0)
        assert not spec.cutoff_effective(60.0)


def test_active_pairs_saturate_at_all_pairs():
    all_pairs = MEDIUM.n * (MEDIUM.n - 1) / 2
    assert MEDIUM.active_pairs(None) == all_pairs
    assert MEDIUM.active_pairs(60.0) == all_pairs
    assert MEDIUM.active_pairs(10.0) < all_pairs


def test_named_lookup():
    assert get_complex("medium") is MEDIUM
    with pytest.raises(WorkloadError):
        get_complex("gigantic")
