"""Unit tests for the RD/SD/FD parallelization-alternative models."""

import pytest

from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.opal.complexes import LARGE, MEDIUM
from repro.opal.decomposition import (
    ForceDecomposition,
    ReplicatedData,
    SpaceDecomposition,
    best_method,
    compare_decompositions,
)
from repro.platforms import CRAY_J90, CRAY_T3E


def app(**kw):
    defaults = dict(molecule=MEDIUM, steps=10, servers=4, cutoff=10.0)
    defaults.update(kw)
    return ApplicationParams(**defaults)


@pytest.fixture
def j90_params():
    return ModelPlatformParams.from_spec(CRAY_J90)


@pytest.fixture
def t3e_params():
    return ModelPlatformParams.from_spec(CRAY_T3E)


def test_rd_matches_the_papers_model(j90_params):
    """The RD method IS the paper's model: comm must coincide exactly."""
    from repro.core.model import OpalPerformanceModel

    a = app()
    rd = ReplicatedData(j90_params)
    paper = OpalPerformanceModel(j90_params)
    assert rd.t_comm(a) == pytest.approx(paper.t_comm(a))
    assert rd.t_comp(a) == pytest.approx(paper.t_par_comp(a))


def test_computation_identical_across_methods(j90_params):
    a = app()
    comps = {cls.method: cls(j90_params).t_comp(a)
             for cls in (ReplicatedData, SpaceDecomposition, ForceDecomposition)}
    assert len(set(round(v, 12) for v in comps.values())) == 1


def test_rd_comm_grows_sd_comm_shrinks_with_p(j90_params):
    rd = ReplicatedData(j90_params)
    sd = SpaceDecomposition(j90_params)
    assert rd.t_comm(app(servers=8)) > rd.t_comm(app(servers=2))
    assert sd.t_comm(app(servers=8)) <= sd.t_comm(app(servers=2)) * 1.01


def test_fd_comm_scales_inverse_sqrt_p(t3e_params):
    fd = ForceDecomposition(t3e_params)
    # on the low-latency T3E the bandwidth term dominates: quadrupling p
    # halves the exchanged volume (modulo the log-p latency stages)
    t4 = fd.t_comm(app(servers=4))
    t16 = fd.t_comm(app(servers=16))
    assert t16 < 0.75 * t4
    assert t16 > t4 / 4.0


def test_fd_latency_bound_on_j90(j90_params):
    # with b1 = 10 ms the log-p stage latency dominates FD on the J90:
    # comm does NOT shrink when going from 4 to 16 processors
    fd = ForceDecomposition(j90_params)
    assert fd.t_comm(app(servers=16)) >= fd.t_comm(app(servers=4))


def test_sd_degenerates_without_cutoff(j90_params):
    sd = SpaceDecomposition(j90_params)
    a = app(cutoff=None, servers=8)
    assert sd.halo_atoms(a) == a.n  # import everyone


def test_sd_halo_smaller_than_domain_at_large_p(j90_params):
    sd = SpaceDecomposition(j90_params)
    a = app(molecule=LARGE, cutoff=10.0, servers=8)
    assert sd.halo_atoms(a) < a.n


def test_memory_hierarchy_rd_largest(j90_params):
    a = app(servers=16, molecule=LARGE)
    rd = ReplicatedData(j90_params).memory_bytes(a)
    sd = SpaceDecomposition(j90_params).memory_bytes(a)
    fd = ForceDecomposition(j90_params).memory_bytes(a)
    assert rd >= fd >= sd


def test_compare_structure(j90_params):
    out = compare_decompositions(j90_params, app(), servers=(1, 2, 4))
    assert set(out) == {"RD", "SD", "FD"}
    for rows in out.values():
        assert len(rows) == 3
        assert all(r.total > 0 for r in rows)


def test_rd_fine_at_low_p_everywhere(t3e_params):
    # at p=1..2 the methods barely differ: RD's simplicity is justified
    a = app(servers=1)
    totals = {
        cls.method: cls(t3e_params).predict(a).total
        for cls in (ReplicatedData, SpaceDecomposition, ForceDecomposition)
    }
    spread = max(totals.values()) / min(totals.values())
    assert spread < 1.25


def test_sd_or_fd_wins_at_scale_on_slow_networks(j90_params):
    # the J90's 3 MB/s middleware makes RD's p*n coordinate traffic the
    # bottleneck; the scalable decompositions win clearly at p=7
    a = app(servers=7, cutoff=10.0)
    assert best_method(j90_params, a) in ("SD", "FD")
    rd = ReplicatedData(j90_params).predict(a).total
    winner = min(
        cls(j90_params).predict(a).total
        for cls in (SpaceDecomposition, ForceDecomposition)
    )
    assert winner < rd / 2


def test_fast_network_keeps_rd_competitive():
    params = ModelPlatformParams.from_spec(CRAY_T3E)
    a = app(servers=7, cutoff=10.0)
    rd = ReplicatedData(params).predict(a).total
    sd = SpaceDecomposition(params).predict(a).total
    assert rd < 2 * sd  # no catastrophic gap on 100 MB/s MPI
