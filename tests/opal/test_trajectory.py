"""Unit tests for trajectory recording and XYZ I/O."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.opal.complexes import ComplexSpec
from repro.opal.pairlist import VerletPairList
from repro.opal.system import build_system
from repro.opal.trajectory import Trajectory, record_dynamics


@pytest.fixture
def system():
    spec = ComplexSpec("traj", protein_atoms=8, waters=12, density=0.033)
    return build_system(spec, seed=1)


def test_labels_from_system(system):
    traj = Trajectory.for_system(system)
    assert traj.n_atoms == system.n
    assert traj.element_labels[:8] == ["C"] * 8
    assert traj.element_labels[8:] == ["O"] * 12


def test_append_validates_shape(system):
    traj = Trajectory.for_system(system)
    with pytest.raises(WorkloadError):
        traj.append(np.zeros((3, 3)))


def test_append_copies(system):
    traj = Trajectory.for_system(system)
    traj.append(system.coords)
    system.coords[0, 0] += 99.0
    assert traj.frames[0][0, 0] != system.coords[0, 0]


def test_xyz_roundtrip(tmp_path, system):
    traj = Trajectory.for_system(system)
    traj.append(system.coords, comment="frame one")
    traj.append(system.coords + 0.5, comment="frame two")
    path = tmp_path / "out.xyz"
    traj.write_xyz(path)
    back = Trajectory.read_xyz(path)
    assert len(back) == 2
    assert back.element_labels == traj.element_labels
    assert back.comments == ["frame one", "frame two"]
    assert np.allclose(back.frames[1], traj.frames[1], atol=1e-6)


def test_write_empty_rejected(system):
    with pytest.raises(WorkloadError):
        Trajectory.for_system(system).write_xyz("/tmp/never.xyz")


def test_read_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.xyz"
    bad.write_text("not-a-count\nhello\n")
    with pytest.raises(WorkloadError):
        Trajectory.read_xyz(bad)
    bad.write_text("3\ncomment\nC 0 0 0\n")
    with pytest.raises(WorkloadError, match="truncated"):
        Trajectory.read_xyz(bad)
    bad.write_text("")
    with pytest.raises(WorkloadError, match="no frames"):
        Trajectory.read_xyz(bad)


def test_record_dynamics_stride(system):
    vpl = VerletPairList(system, cutoff=6.0, update_interval=2)
    traj = record_dynamics(
        system, vpl, steps=6, dt=0.0005, temperature=20.0, stride=2
    )
    # initial frame + steps 2, 4, 6
    assert len(traj) == 4
    assert traj.comments[0] == "step 0"
    assert "E=" in traj.comments[-1]
    with pytest.raises(WorkloadError):
        record_dynamics(system, vpl, steps=2, stride=0)


def test_recorded_trajectory_feeds_msd(system):
    from repro.opal.observables import mean_square_displacement

    vpl = VerletPairList(system, cutoff=6.0)
    traj = record_dynamics(
        system, vpl, steps=5, dt=0.0005, temperature=50.0
    )
    res = mean_square_displacement(traj.frames, dt=0.0005)
    assert res.msd[0] == 0.0
    assert res.msd[-1] > 0.0
