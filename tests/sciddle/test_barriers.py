"""Unit tests for the accounting-barrier discipline (Section 3.3)."""

import pytest

from repro.netsim import Cluster, Node, SwitchedFabric, constant_rate
from repro.pvm import PvmSystem
from repro.sciddle import SyncDiscipline, overlap_slowdown


def make_pvm(barrier_cost=0.1):
    cluster = Cluster(lambda e: SwitchedFabric(e, 1e-3, 1e6), seed=0)
    nodes = [
        cluster.add_node(Node(cluster.engine, i, constant_rate(1e6)))
        for i in range(2)
    ]
    return PvmSystem(cluster, barrier_cost=barrier_cost), nodes


def test_bad_mode_rejected():
    with pytest.raises(ValueError):
        SyncDiscipline("sometimes", "g", 2)


def test_bad_count_rejected():
    with pytest.raises(ValueError):
        SyncDiscipline("accounted", "g", 0)


def test_overlapped_barriers_are_noops():
    pvm, nodes = make_pvm()
    sync = SyncDiscipline("overlapped", "g", 2)
    done = {}

    def body(task, delay):
        yield from task.delay(delay)
        yield from sync.phase_barrier(task, "phase1")
        done[task.name] = task.now

    pvm.spawn("a", nodes[0], body, 1.0)
    pvm.spawn("b", nodes[1], body, 3.0)
    pvm.run()
    # no rendezvous: each finishes at its own time
    assert done["a"] == pytest.approx(1.0)
    assert done["b"] == pytest.approx(3.0)
    assert sync.barriers_executed == 0


def test_accounted_barriers_synchronize():
    pvm, nodes = make_pvm(barrier_cost=0.5)
    sync = SyncDiscipline("accounted", "g", 2)
    done = {}

    def body(task, delay):
        yield from task.delay(delay)
        yield from sync.phase_barrier(task, "phase1")
        done[task.name] = task.now

    pvm.spawn("a", nodes[0], body, 1.0)
    pvm.spawn("b", nodes[1], body, 3.0)
    pvm.run()
    assert done["a"] == done["b"] == pytest.approx(3.5)
    assert sync.barriers_executed == 2  # each member counts its arrival


def test_overlap_slowdown_metric():
    assert overlap_slowdown(1.04, 1.0) == pytest.approx(0.04)
    with pytest.raises(ValueError):
        overlap_slowdown(1.0, 0.0)
