"""Unit tests for the Sciddle interface specification."""

import pytest

from repro.errors import SciddleError
from repro.sciddle import SciddleInterface


def test_declare_and_lookup():
    iface = SciddleInterface("opal")
    spec = iface.procedure("update_lists", doc="rebuild lists")
    assert iface.spec("update_lists") is spec
    assert "update_lists" in iface
    assert iface.names() == ["update_lists"]


def test_duplicate_rejected():
    iface = SciddleInterface("x")
    iface.procedure("f")
    with pytest.raises(SciddleError):
        iface.procedure("f")


def test_reserved_names_rejected():
    iface = SciddleInterface("x")
    with pytest.raises(SciddleError):
        iface.procedure("__shutdown__")


def test_unknown_lookup_raises_with_candidates():
    iface = SciddleInterface("x")
    iface.procedure("known")
    with pytest.raises(SciddleError, match="known"):
        iface.spec("unknown")  # simlint: disable=P201


def test_size_rules_attached():
    iface = SciddleInterface("x")
    iface.procedure("f", in_size=lambda args: 24 * args["n"])
    assert iface.spec("f").in_size({"n": 10}) == 240
