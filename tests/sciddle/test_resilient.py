"""Unit tests for the resilient Sciddle client: retries, dedup, health."""

import numpy as np
import pytest

from repro.errors import RpcTimeoutError, ServerDeadError
from repro.netsim import Cluster, Node, SwitchedFabric, constant_rate
from repro.netsim.faults import FaultSpec
from repro.pvm import PvmSystem
from repro.sciddle import (
    ResilientSciddleClient,
    RetryPolicy,
    RpcReply,
    SciddleInterface,
    SciddleServer,
    ServerHealth,
)


def setup_rpc(n_servers=1, handler=None, latency=1e-4, bandwidth=1e7):
    cluster = Cluster(
        lambda e: SwitchedFabric(e, latency=latency, bandwidth=bandwidth), seed=0
    )
    nodes = [
        cluster.add_node(Node(cluster.engine, i, constant_rate(1e6)))
        for i in range(n_servers + 1)
    ]
    pvm = PvmSystem(cluster)
    iface = SciddleInterface("test")
    iface.procedure("work")

    if handler is None:

        def handler(task, args):
            yield from task.compute(seconds=0.05)
            return RpcReply(nbytes=10, payload={"ok": True})

    def server_body(task):
        server = SciddleServer(task, iface)
        server.bind("work", handler)
        yield from server.run()

    servers = [
        pvm.spawn(f"server{i}", nodes[i + 1], server_body)
        for i in range(n_servers)
    ]
    return cluster, pvm, iface, nodes, servers


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------

def test_policy_from_spec_copies_resilience_knobs():
    spec = FaultSpec(
        rpc_timeout=2.0,
        rpc_max_retries=7,
        backoff_base=0.2,
        backoff_cap=3.0,
        backoff_jitter=0.5,
        death_threshold=4,
    )
    policy = RetryPolicy.from_spec(spec)
    assert policy.timeout == 2.0
    assert policy.max_retries == 7
    assert policy.backoff_base == 0.2
    assert policy.backoff_cap == 3.0
    assert policy.backoff_jitter == 0.5
    assert policy.death_threshold == 4


@pytest.mark.parametrize(
    "kwargs",
    [
        {"timeout": 0.0},
        {"max_retries": -1},
        {"backoff_base": 0.5, "backoff_cap": 0.1},
        {"backoff_jitter": 1.0},
        {"death_threshold": 0},
    ],
)
def test_policy_validation(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


def test_backoff_doubles_caps_and_jitters_within_band():
    policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.5, backoff_jitter=0.25)
    rng = np.random.default_rng(0)
    for attempt in range(8):
        base = min(0.1 * 2**attempt, 0.5)
        b = policy.backoff(attempt, rng)
        assert base * 0.75 <= b <= base * 1.25


def test_backoff_without_jitter_is_exact():
    policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.5, backoff_jitter=0.0)
    rng = np.random.default_rng(0)
    assert [policy.backoff(a, rng) for a in range(4)] == [0.1, 0.2, 0.4, 0.5]


def test_backoff_is_seed_deterministic():
    policy = RetryPolicy()
    a = [policy.backoff(i, np.random.default_rng(5)) for i in range(5)]
    b = [policy.backoff(i, np.random.default_rng(5)) for i in range(5)]
    assert a == b


# ---------------------------------------------------------------------------
# ServerHealth
# ---------------------------------------------------------------------------

def test_health_declares_death_after_threshold():
    health = ServerHealth(death_threshold=3)
    assert not health.record_timeout(7)
    assert not health.record_timeout(7)
    assert health.record_timeout(7)
    assert health.is_dead(7)
    assert health.dead == {7}


def test_health_success_resets_the_streak():
    health = ServerHealth(death_threshold=2)
    health.record_timeout(7)
    health.record_success(7)
    assert not health.record_timeout(7)
    assert health.record_timeout(7)


def test_health_listeners_fire_once_per_server():
    health = ServerHealth(death_threshold=1)
    fired = []
    health.on_death(fired.append)
    health.mark_dead(3)
    health.mark_dead(3)
    health.record_timeout(3)
    health.mark_dead(4)
    assert fired == [3, 4]


# ---------------------------------------------------------------------------
# ResilientSciddleClient end to end
# ---------------------------------------------------------------------------

def test_retry_resend_is_deduplicated_and_handler_runs_once():
    """A reply slower than the per-wait timeout triggers retransmission;
    the server dedups the duplicates and the handler runs exactly once."""
    handler_runs = []

    def slow_handler(task, args):
        handler_runs.append(task.now)
        yield from task.compute(seconds=0.6)
        return RpcReply(nbytes=10, payload="done")

    cluster, pvm, iface, nodes, servers = setup_rpc(handler=slow_handler)
    policy = RetryPolicy(
        timeout=0.25,
        max_retries=6,
        backoff_base=0.01,
        backoff_cap=0.05,
        backoff_jitter=0.0,
        death_threshold=10,
    )
    result = {}

    def client_body(task, tids):
        client = ResilientSciddleClient(task, iface, tids, policy=policy)
        h = yield from client.call_async(tids[0], "work", nbytes=10)
        result["reply"] = yield from client.wait(h)
        yield from client.shutdown()

    pvm.spawn("client", nodes[0], client_body, [s.tid for s in servers])
    pvm.run()
    assert result["reply"] == "done"
    assert len(handler_runs) == 1
    assert cluster.metrics.counters["sciddle.retries"].value >= 1
    assert cluster.metrics.counters["sciddle.dup_requests"].value >= 1


def test_silent_server_is_declared_dead():
    def mute_handler(task, args):
        yield from task.compute(seconds=1e6)
        return RpcReply()

    cluster, pvm, iface, nodes, servers = setup_rpc(handler=mute_handler)
    policy = RetryPolicy(
        timeout=0.1, max_retries=10, backoff_base=0.01, death_threshold=3
    )
    outcome = {}

    def client_body(task, tids):
        client = ResilientSciddleClient(task, iface, tids, policy=policy)
        h = yield from client.call_async(tids[0], "work", nbytes=10)
        try:
            yield from client.wait(h)
        except ServerDeadError as exc:
            outcome["error"] = exc
        outcome["dead"] = client.health.dead
        # ostracized servers get a fire-and-forget shutdown so a merely
        # slow (rather than crashed) one exits its service loop
        yield from client.quarantine(tids[0])

    pvm.spawn("client", nodes[0], client_body, [s.tid for s in servers])
    pvm.run()
    assert isinstance(outcome["error"], ServerDeadError)
    assert outcome["dead"] == {servers[0].tid}
    assert cluster.metrics.counters["sciddle.server_deaths"].value == 1
    assert cluster.metrics.counters["sciddle.rpc_timeouts"].value == 3


def test_exhausted_retry_budget_raises_rpc_timeout():
    def mute_handler(task, args):
        yield from task.compute(seconds=1e6)
        return RpcReply()

    cluster, pvm, iface, nodes, servers = setup_rpc(handler=mute_handler)
    # budget (2 timeouts) runs out before the death threshold (5)
    policy = RetryPolicy(
        timeout=0.1, max_retries=1, backoff_base=0.01, death_threshold=5
    )
    outcome = {}

    def client_body(task, tids):
        client = ResilientSciddleClient(task, iface, tids, policy=policy)
        h = yield from client.call_async(tids[0], "work", nbytes=10)
        try:
            yield from client.wait(h)
        except RpcTimeoutError as exc:
            outcome["error"] = exc
        yield from client.quarantine(tids[0])

    pvm.spawn("client", nodes[0], client_body, [s.tid for s in servers])
    pvm.run()
    assert isinstance(outcome["error"], RpcTimeoutError)


def test_calls_to_dead_servers_are_rejected():
    cluster, pvm, iface, nodes, servers = setup_rpc()
    caught = {}

    def client_body(task, tids):
        health = ServerHealth()
        health.mark_dead(tids[0])
        client = ResilientSciddleClient(task, iface, tids, health=health)
        try:
            yield from client.call_async(tids[0], "work", nbytes=10)
        except ServerDeadError as exc:
            caught["error"] = exc
        # the server still needs a shutdown so the run drains; it is
        # dead to the *client*, so send the quarantine path instead
        yield from client.quarantine(tids[0])

    pvm.spawn("client", nodes[0], client_body, [s.tid for s in servers])
    pvm.run()
    assert isinstance(caught["error"], ServerDeadError)


def test_zero_fault_behaviour_matches_plain_client():
    """With no faults and ample timeouts the resilient client is a
    drop-in: same replies, same virtual-time cost as SciddleClient."""
    from repro.sciddle import SciddleClient

    def run(client_cls):
        cluster, pvm, iface, nodes, servers = setup_rpc(n_servers=2)
        result = {}

        def client_body(task, tids):
            client = client_cls(task, iface, tids)
            handles = []
            for tid in tids:
                h = yield from client.call_async(tid, "work", nbytes=10)
                handles.append(h)
            result["replies"] = []
            for h in handles:
                r = yield from client.wait(h)
                result["replies"].append(r)
            yield from client.shutdown()
            result["t"] = task.now

        pvm.spawn("client", nodes[0], client_body, [s.tid for s in servers])
        pvm.run()
        return result

    plain = run(SciddleClient)
    resilient = run(ResilientSciddleClient)
    assert plain["replies"] == resilient["replies"]
    assert plain["t"] == resilient["t"]


def test_retry_schedule_is_seed_deterministic():
    def slow_handler(task, args):
        yield from task.compute(seconds=0.6)
        return RpcReply(nbytes=10, payload="done")

    policy = RetryPolicy(
        timeout=0.2, max_retries=8, backoff_base=0.02, death_threshold=20
    )

    def run():
        cluster, pvm, iface, nodes, servers = setup_rpc(handler=slow_handler)
        times = {}

        def client_body(task, tids):
            client = ResilientSciddleClient(task, iface, tids, policy=policy)
            h = yield from client.call_async(tids[0], "work", nbytes=10)
            yield from client.wait(h)
            yield from client.shutdown()
            times["t"] = task.now

        pvm.spawn("client", nodes[0], client_body, [s.tid for s in servers])
        pvm.run()
        return times["t"], cluster.metrics.counters["sciddle.retries"].value

    assert run() == run()
