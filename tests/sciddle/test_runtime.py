"""Unit tests for the Sciddle RPC runtime."""

import pytest

from repro.errors import SciddleError
from repro.hpm import PhaseAccountant
from repro.netsim import Cluster, Node, SwitchedFabric, constant_rate
from repro.pvm import PvmSystem
from repro.sciddle import (
    HEADER_BYTES,
    RpcReply,
    SciddleClient,
    SciddleInterface,
    SciddleServer,
)


def setup_rpc(n_servers=2, handler=None, bandwidth=1e6, latency=1e-3):
    cluster = Cluster(
        lambda e: SwitchedFabric(e, latency=latency, bandwidth=bandwidth), seed=0
    )
    nodes = [
        cluster.add_node(Node(cluster.engine, i, constant_rate(1e6)))
        for i in range(n_servers + 1)
    ]
    pvm = PvmSystem(cluster)
    iface = SciddleInterface("test")
    iface.procedure("work")

    if handler is None:

        def handler(task, args):
            yield from task.compute(seconds=1.0)
            return RpcReply(nbytes=100, payload={"done": True, "args": args})

    def server_body(task):
        server = SciddleServer(task, iface)
        server.bind("work", handler)
        yield from server.run()

    server_procs = [
        pvm.spawn(f"server{i}", nodes[i + 1], server_body) for i in range(n_servers)
    ]
    return cluster, pvm, iface, nodes, server_procs


def test_basic_call_and_reply():
    cluster, pvm, iface, nodes, servers = setup_rpc(n_servers=1)
    result = {}

    def client_body(task, server_tids):
        client = SciddleClient(task, iface, server_tids)
        h = yield from client.call_async(server_tids[0], "work", args={"x": 1}, nbytes=50)
        result["reply"] = yield from client.wait(h)
        yield from client.shutdown()

    pvm.spawn("client", nodes[0], client_body, [s.tid for s in servers])
    pvm.run()
    assert result["reply"] == {"done": True, "args": {"x": 1}}


def test_call_all_wait_all_order():
    cluster, pvm, iface, nodes, servers = setup_rpc(n_servers=3)
    result = {}

    def handler(task, args):
        yield from task.compute(seconds=0.5)
        return RpcReply(nbytes=10, payload=args["i"])

    # rebuild with our handler
    cluster, pvm, iface, nodes, servers = setup_rpc(n_servers=3, handler=handler)

    def client_body(task, tids):
        client = SciddleClient(task, iface, tids)
        handles = yield from client.call_all(
            "work", args_for=lambda i, tid: {"i": i}, nbytes=10
        )
        result["replies"] = yield from client.wait_all(handles)
        yield from client.shutdown()

    pvm.spawn("client", nodes[0], client_body, [s.tid for s in servers])
    pvm.run()
    assert result["replies"] == [0, 1, 2]


def test_unbound_procedure_raises():
    cluster = Cluster(lambda e: SwitchedFabric(e, 1e-3, 1e6), seed=0)
    nodes = [
        cluster.add_node(Node(cluster.engine, i, constant_rate(1e6)))
        for i in range(2)
    ]
    pvm = PvmSystem(cluster)
    iface = SciddleInterface("t")
    iface.procedure("declared_but_unbound")

    def server_body(task):
        server = SciddleServer(task, iface)
        yield from server.run()

    def client_body(task, tid):
        client = SciddleClient(task, iface, [tid])
        h = yield from client.call_async(tid, "declared_but_unbound", nbytes=0)  # simlint: disable=P302
        yield from client.wait(h)

    sp = pvm.spawn("server", nodes[1], server_body)
    pvm.spawn("client", nodes[0], client_body, sp.tid)
    with pytest.raises(Exception, match="no binding"):
        pvm.run()


def test_undeclared_procedure_rejected_client_side():
    cluster, pvm, iface, nodes, servers = setup_rpc(n_servers=1)

    def client_body(task, tids):
        client = SciddleClient(task, iface, tids)
        with pytest.raises(SciddleError):
            yield from client.call_async(tids[0], "nonexistent", nbytes=0)  # simlint: disable=P201,P302
        yield from client.shutdown()

    pvm.spawn("client", nodes[0], client_body, [s.tid for s in servers])
    pvm.run()


def test_in_size_rule_used_for_message_size():
    cluster = Cluster(lambda e: SwitchedFabric(e, latency=0.0, bandwidth=1e6), seed=0)
    nodes = [
        cluster.add_node(Node(cluster.engine, i, constant_rate(1e9)))
        for i in range(2)
    ]
    pvm = PvmSystem(cluster)
    iface = SciddleInterface("t")
    iface.procedure("f", in_size=lambda args: 1e6)  # 1 MB => 1 s at 1 MB/s

    def handler(task, args):
        return RpcReply()
        yield  # pragma: no cover

    def server_body(task):
        server = SciddleServer(task, iface)
        server.bind("f", handler)
        yield from server.run()

    times = {}

    def client_body(task, tid):
        client = SciddleClient(task, iface, [tid])
        t0 = task.now
        h = yield from client.call_async(tid, "f")
        times["send"] = task.now - t0
        yield from client.wait(h)
        yield from client.shutdown()

    sp = pvm.spawn("server", nodes[1], server_body)
    pvm.spawn("client", nodes[0], client_body, sp.tid)
    pvm.run()
    assert times["send"] == pytest.approx((1e6 + HEADER_BYTES) / 1e6)


def test_missing_size_rule_requires_nbytes():
    cluster, pvm, iface, nodes, servers = setup_rpc(n_servers=1)

    def client_body(task, tids):
        client = SciddleClient(task, iface, tids)
        with pytest.raises(SciddleError, match="in_size"):
            yield from client.call_async(tids[0], "work")
        yield from client.shutdown()

    pvm.spawn("client", nodes[0], client_body, [s.tid for s in servers])
    pvm.run()


def test_handler_must_return_rpc_reply():
    def handler(task, args):
        yield from task.compute(seconds=0.1)
        return {"not": "a reply"}

    cluster, pvm, iface, nodes, servers = setup_rpc(n_servers=1, handler=handler)

    def client_body(task, tids):
        client = SciddleClient(task, iface, tids)
        h = yield from client.call_async(tids[0], "work", nbytes=0)
        yield from client.wait(h)

    pvm.spawn("client", nodes[0], client_body, [s.tid for s in servers])
    with pytest.raises(Exception, match="RpcReply"):
        pvm.run()


def test_handler_none_means_empty_reply():
    def handler(task, args):
        yield from task.compute(seconds=0.1)
        return None

    cluster, pvm, iface, nodes, servers = setup_rpc(n_servers=1, handler=handler)
    result = {}

    def client_body(task, tids):
        client = SciddleClient(task, iface, tids)
        h = yield from client.call_async(tids[0], "work", nbytes=0)
        result["reply"] = yield from client.wait(h)
        yield from client.shutdown()

    pvm.spawn("client", nodes[0], client_body, [s.tid for s in servers])
    pvm.run()
    assert result["reply"] is None


def test_shutdown_terminates_servers():
    cluster, pvm, iface, nodes, servers = setup_rpc(n_servers=2)

    def client_body(task, tids):
        client = SciddleClient(task, iface, tids)
        yield from client.shutdown()

    pvm.spawn("client", nodes[0], client_body, [s.tid for s in servers])
    pvm.run()
    assert all(s.finished for s in servers)


def test_client_needs_servers():
    cluster, pvm, iface, nodes, servers = setup_rpc(n_servers=1)
    with pytest.raises(SciddleError):
        SciddleClient(None, iface, [])


def test_accountant_categories_recorded():
    cluster, pvm, iface, nodes, servers = setup_rpc(n_servers=1)
    acct_holder = {}

    def client_body(task, tids):
        acct = PhaseAccountant(lambda: task.now)
        acct_holder["acct"] = acct
        client = SciddleClient(task, iface, tids, accountant=acct)
        h = yield from client.call_async(
            tids[0], "work", nbytes=1000, category="comm:call"
        )
        yield from client.wait(h, category="comm:return")
        yield from client.shutdown()

    pvm.spawn("client", nodes[0], client_body, [s.tid for s in servers])
    pvm.run()
    acct = acct_holder["acct"]
    assert acct.seconds("comm:call") > 0
    assert acct.seconds("comm:return") > 0


def test_calls_served_counter():
    cluster, pvm, iface, nodes, servers = setup_rpc(n_servers=1)
    counts = {}

    def server_probe(task):
        # reuse the serverbody already spawned; just run the client twice
        yield from task.delay(0.0)

    def client_body(task, tids):
        client = SciddleClient(task, iface, tids)
        for _ in range(3):
            h = yield from client.call_async(tids[0], "work", nbytes=0)
            yield from client.wait(h)
        yield from client.shutdown()

    pvm.spawn("client", nodes[0], client_body, [s.tid for s in servers])
    pvm.run()


def test_two_clients_on_one_task_use_distinct_reply_tags():
    """Regression: reply-tag allocation is per *task*, not per client.

    Two clients on the same task used to both start at TAG_REPLY_BASE,
    so two outstanding RPCs to the same server carried identical reply
    tags and a wait on one client could consume the other's reply.
    """

    def handler(task, args):
        yield from task.compute(seconds=0.5)
        return RpcReply(nbytes=10, payload=args["who"])

    cluster, pvm, iface, nodes, servers = setup_rpc(n_servers=1, handler=handler)
    result = {}

    def client_body(task, tids):
        c1 = SciddleClient(task, iface, tids)
        c2 = SciddleClient(task, iface, tids)
        h1 = yield from c1.call_async(tids[0], "work", args={"who": "first"}, nbytes=10)
        h2 = yield from c2.call_async(tids[0], "work", args={"who": "second"}, nbytes=10)
        result["tags"] = (h1.reply_tag, h2.reply_tag)
        # wait on the *second* call first: with colliding tags this
        # would match the first reply instead of the second
        result["r2"] = yield from c2.wait(h2)
        result["r1"] = yield from c1.wait(h1)
        yield from c1.shutdown()

    pvm.spawn("client", nodes[0], client_body, [s.tid for s in servers])
    pvm.run()
    tag1, tag2 = result["tags"]
    assert tag1 != tag2
    assert result["r1"] == "first"
    assert result["r2"] == "second"


def test_reply_tags_unique_across_clients_and_shutdown():
    from repro.sciddle import TAG_REPLY_BASE, allocate_reply_tag

    class FakeTask:
        pass

    task = FakeTask()
    a = [allocate_reply_tag(task) for _ in range(3)]
    b = [allocate_reply_tag(task) for _ in range(3)]
    assert a == [TAG_REPLY_BASE, TAG_REPLY_BASE + 1, TAG_REPLY_BASE + 2]
    assert len(set(a + b)) == 6
    other = FakeTask()
    assert allocate_reply_tag(other) == TAG_REPLY_BASE
