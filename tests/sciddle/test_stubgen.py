"""Unit tests for the Sciddle stub compiler."""

import pytest

from repro.errors import SciddleError
from repro.sciddle.stubgen import OPAL_IDL, compile_idl


def test_compile_opal_idl():
    compiled = compile_idl(OPAL_IDL)
    assert compiled.name == "opal"
    assert set(compiled.procedures) == {"update_lists", "eval_nonbonded"}


def test_message_sizes_match_paper_alpha():
    compiled = compile_idl(OPAL_IDL)
    n = 4289
    upd = compiled.procedures["update_lists"]
    # alpha * n: three doubles per mass center
    assert upd.in_nbytes({"n": n}) == 24 * n
    assert upd.out_nbytes({"n": n}) == 0  # eq. (8): bare completion
    nbi = compiled.procedures["eval_nonbonded"]
    assert nbi.in_nbytes({"n": n}) == 24 * n
    # eq. (9): gradients (alpha n) + two energies (16 bytes)
    assert nbi.out_nbytes({"n": n}) == 24 * n + 16


def test_runtime_interface_sizes_calls():
    iface = compile_idl(OPAL_IDL).runtime_interface()
    spec = iface.spec("eval_nonbonded")
    assert spec.in_size({"n": 100}) == 2400
    assert spec.out_size({"n": 100}) == 2416


def test_scalar_arguments():
    compiled = compile_idl(
        "interface t { f(in x: double, in k: int, out y: double[k]); }"
    )
    f = compiled.procedures["f"]
    assert f.in_nbytes({"k": 5}) == 8 + 4
    assert f.out_nbytes({"k": 5}) == 40


def test_arithmetic_length_expressions():
    compiled = compile_idl(
        "interface t { f(in m: double[(a+1)*b - 2]); }"
    )
    assert compiled.procedures["f"].in_nbytes({"a": 3, "b": 10}) == 8 * 38


def test_comments_ignored():
    compiled = compile_idl(
        """interface t { // trailing
        f(in x: int); // per-call
        }"""
    )
    assert "f" in compiled.procedures


def test_missing_parameter_reported():
    compiled = compile_idl("interface t { f(in m: double[3*n]); }")
    with pytest.raises(SciddleError, match="needs parameter 'n'"):
        compiled.procedures["f"].in_nbytes({})


def test_rejects_bad_sources():
    with pytest.raises(SciddleError, match="interface"):
        compile_idl("module x {}")
    with pytest.raises(SciddleError, match="no procedures"):
        compile_idl("interface empty { }")
    with pytest.raises(SciddleError, match="bad argument"):
        compile_idl("interface t { f(inout x: double); }")
    with pytest.raises(SciddleError, match="unknown type"):
        compile_idl("interface t { f(in x: quaternion); }")
    with pytest.raises(SciddleError, match="duplicate procedure"):
        compile_idl("interface t { f(in x: int); f(in y: int); }")
    with pytest.raises(SciddleError, match="duplicate argument"):
        compile_idl("interface t { f(in x: int, out x: int); }")
    with pytest.raises(SciddleError, match="remnants"):
        compile_idl("interface t { f(in x: int); gibberish }")


def test_length_expression_sandbox():
    with pytest.raises(SciddleError, match="forbidden"):
        compile_idl(
            "interface t { f(in x: double[__import__('os').getpid()]); }"
        ).procedures["f"].in_nbytes({})
    with pytest.raises(SciddleError):
        compile_idl("interface t { f(in x: double[n-10]); }").procedures[
            "f"
        ].in_nbytes({"n": 3})


def test_compiled_interface_drives_real_rpc():
    """End to end: IDL-compiled sizes flow into actual message timing."""
    from repro.netsim import Cluster, Node, SwitchedFabric, constant_rate
    from repro.pvm import PvmSystem
    from repro.sciddle import HEADER_BYTES, RpcReply, SciddleClient, SciddleServer

    compiled = compile_idl("interface t { f(in data: double[n]); }")
    iface = compiled.runtime_interface()
    cluster = Cluster(lambda e: SwitchedFabric(e, 0.0, 1e6), seed=0)
    nodes = [
        cluster.add_node(Node(cluster.engine, i, constant_rate(1e9)))
        for i in range(2)
    ]
    pvm = PvmSystem(cluster)

    def handler(task, args):
        return RpcReply()
        yield  # pragma: no cover

    def server_body(task):
        server = SciddleServer(task, iface)
        server.bind("f", handler)
        yield from server.run()

    times = {}

    def client_body(task, tid):
        client = SciddleClient(task, iface, [tid])
        t0 = task.now
        h = yield from client.call_async(tid, "f", args={"n": 125_000})
        times["send"] = task.now - t0
        yield from client.wait(h)
        yield from client.shutdown()

    sp = pvm.spawn("server", nodes[1], server_body)
    pvm.spawn("client", nodes[0], client_body, sp.tid)
    pvm.run()
    # 1 MB of doubles at 1 MB/s plus the RPC header
    assert times["send"] == pytest.approx((1e6 + HEADER_BYTES) / 1e6)
