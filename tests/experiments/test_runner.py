"""Unit tests for the experiment runner."""

import pytest

from repro.errors import DesignError
from repro.experiments.cases import ExperimentCase, breakdown_chart_cases
from repro.experiments.runner import ExperimentRunner
from repro.opal.complexes import SMALL


def small_case(**kw):
    defaults = dict(molecule=SMALL, servers=2, cutoff=10.0, update_interval=1)
    defaults.update(kw)
    return ExperimentCase(**defaults)


def test_run_case_returns_breakdown(j90):
    runner = ExperimentRunner(j90)
    record = runner.run_case(small_case())
    assert record.breakdown.total > 0
    assert record.wall_stats.n == 1
    assert record.app.servers == 2


def test_repetitions_average(j90):
    runner = ExperimentRunner(j90, repetitions=3, jitter_sigma=0.01)
    record = runner.run_case(small_case())
    assert record.wall_stats.n == 3
    assert record.wall_stats.std > 0


def test_zero_jitter_zero_variance(j90):
    runner = ExperimentRunner(j90, repetitions=3, jitter_sigma=0.0)
    record = runner.run_case(small_case())
    # repetitions differ only through the workload seed; with zero jitter
    # each repetition's own run is deterministic, but seeds vary shares
    assert record.wall_stats.coefficient_of_variation < 0.05


def test_empty_design_rejected(j90):
    with pytest.raises(DesignError):
        ExperimentRunner(j90).run_design([])
    with pytest.raises(DesignError):
        ExperimentRunner(j90, repetitions=0)


def test_observations_shape(j90):
    runner = ExperimentRunner(j90)
    obs = runner.observations([small_case(servers=p) for p in (1, 2)])
    assert len(obs) == 2
    app, breakdown = obs[0]
    assert app.servers == 1 and breakdown.total > 0


def test_breakdown_series_panels(j90):
    runner = ExperimentRunner(j90)
    panels = breakdown_chart_cases(SMALL, servers=(1, 2))
    out = runner.breakdown_series(panels)
    assert set(out) == {"a", "b", "c", "d"}
    assert len(out["a"]) == 2


def test_variability_probe_confirms_low_cv(j90):
    # Section 2.3: "low variability and good reproducibility"
    runner = ExperimentRunner(j90, jitter_sigma=0.004)
    stats = runner.variability_probe(small_case(), repetitions=6)
    assert stats.reproducible(cv_threshold=0.02)


def test_keep_results_flag(j90):
    runner = ExperimentRunner(j90, keep_results=True)
    record = runner.run_case(small_case())
    assert record.last_result is not None
    runner2 = ExperimentRunner(j90, keep_results=False)
    assert runner2.run_case(small_case()).last_result is None
