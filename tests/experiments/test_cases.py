"""Unit tests for the paper's parameter space."""


from repro.experiments.cases import (
    CUTOFF_EFFECTIVE,
    ExperimentCase,
    breakdown_chart_cases,
    full_design,
    paper_factors,
    reduced_design,
)
from repro.opal.complexes import MEDIUM


def test_full_design_is_the_papers_84_experiments():
    cases = full_design()
    assert len(cases) == 84  # 7 servers x 3 sizes x 2 cutoffs x 2 updates


def test_full_design_unique_cells():
    cases = full_design()
    keys = {(c.molecule.name, c.servers, c.cutoff, c.update_interval) for c in cases}
    assert len(keys) == 84


def test_ineffective_cutoff_maps_to_none():
    cases = full_design()
    cutoffs = {c.cutoff for c in cases}
    assert cutoffs == {CUTOFF_EFFECTIVE, None}


def test_reduced_design_is_7_times_half_fraction():
    cases = reduced_design()
    assert len(cases) == 28  # 7 x 2^(3-1)
    for p in range(1, 8):
        assert sum(1 for c in cases if c.servers == p) == 4


def test_reduced_design_subset_of_full():
    # every reduced case (with medium/large sizes) appears in the full design
    full_keys = {
        (c.molecule.name, c.servers, c.cutoff, c.update_interval)
        for c in full_design()
    }
    for c in reduced_design():
        key = (c.molecule.name, c.servers, c.cutoff, c.update_interval)
        assert key in full_keys


def test_reduced_design_balances_factors():
    cases = reduced_design()
    assert sum(1 for c in cases if c.molecule is MEDIUM) == 14
    assert sum(1 for c in cases if c.cutoff is None) == 14
    assert sum(1 for c in cases if c.update_interval == 1) == 14


def test_case_label_and_app():
    case = ExperimentCase(
        molecule=MEDIUM, servers=3, cutoff=10.0, update_interval=10
    )
    assert "medium" in case.label and "p=3" in case.label
    app = case.app()
    assert app.servers == 3 and app.cutoff == 10.0 and app.steps == 10


def test_paper_factors_structure():
    factors = paper_factors()
    names = [f.name for f in factors]
    assert names == ["servers", "molecule", "cutoff", "update_interval"]
    assert len(factors[0].levels) == 7


def test_breakdown_chart_cases_four_panels():
    panels = breakdown_chart_cases(MEDIUM, servers=(1, 2, 3))
    assert set(panels) == {"a", "b", "c", "d"}
    assert all(len(v) == 3 for v in panels.values())
    # panel a: no cutoff, full update
    assert panels["a"][0].cutoff is None
    assert panels["a"][0].update_interval == 1
    # panel d: cutoff + partial update
    assert panels["d"][0].cutoff == CUTOFF_EFFECTIVE
    assert panels["d"][0].update_interval == 10
