"""Tests for parallel campaign execution and the on-disk result cache."""

import pytest

from repro.errors import DesignError
from repro.experiments import (
    ExperimentCase,
    ExperimentRunner,
    ResultCache,
    derive_cell_seed,
    export_jsonl,
    load_jsonl,
    run_campaign,
    run_design_parallel,
)
from repro.experiments.cache import (
    cell_key_payload,
    record_from_dict,
    record_to_dict,
)
from repro.opal.complexes import SMALL
from repro.platforms import CRAY_J90, FAST_COPS


def small_design(servers=(1, 2, 3)):
    return [
        ExperimentCase(molecule=SMALL, servers=p, cutoff=10.0, update_interval=1)
        for p in servers
    ]


# ----------------------------------------------------------------------
# seed derivation
# ----------------------------------------------------------------------
def test_cell_seeds_differ_across_cells_and_reps():
    a, b = small_design((1, 2))[:2]
    assert derive_cell_seed(0, a, 0) != derive_cell_seed(0, b, 0)
    assert derive_cell_seed(0, a, 0) != derive_cell_seed(0, a, 1)
    assert derive_cell_seed(0, a, 0) != derive_cell_seed(1, a, 0)
    assert derive_cell_seed(0, a, 0) != derive_cell_seed(0, a, 0, salt="probe")


def test_cell_seed_depends_on_content_not_position():
    case = small_design((2,))[0]
    same = ExperimentCase(
        molecule=SMALL, servers=2, cutoff=10.0, update_interval=1
    )
    assert derive_cell_seed(7, case, 0) == derive_cell_seed(7, same, 0)


def test_cell_seed_is_stable_across_sessions():
    # a frozen value: changing the derivation silently invalidates every
    # cache and breaks serial/parallel equivalence with old results
    case = ExperimentCase(
        molecule=SMALL, servers=2, cutoff=10.0, update_interval=1
    )
    assert derive_cell_seed(0, case, 0) == derive_cell_seed(0, case, 0)
    assert 0 <= derive_cell_seed(0, case, 0) < 2**63


# ----------------------------------------------------------------------
# serial vs parallel equivalence
# ----------------------------------------------------------------------
def test_serial_and_parallel_records_identical():
    design = small_design()
    serial = ExperimentRunner(CRAY_J90).run_design(design)
    parallel = ExperimentRunner(CRAY_J90, workers=2).run_design(design)
    for a, b in zip(serial, parallel):
        assert a.case == b.case
        assert a.breakdown == b.breakdown
        assert a.wall_stats == b.wall_stats


def test_parallel_results_in_design_order():
    design = small_design((3, 1, 2))
    records = ExperimentRunner(CRAY_J90, workers=2).run_design(design)
    assert [r.case.servers for r in records] == [3, 1, 2]


def test_campaign_serial_vs_parallel_identical_report():
    kwargs = dict(
        reference=CRAY_J90,
        candidates=[FAST_COPS],
        probe_repetitions=2,
        servers=(1, 2, 3),
    )
    serial = run_campaign(**kwargs)
    parallel = run_campaign(workers=4, **kwargs)
    assert serial.calibration.params == parallel.calibration.params
    assert serial.probe == parallel.probe
    for label in serial.predictions:
        for name in serial.predictions[label]:
            assert (
                serial.predictions[label][name].times
                == parallel.predictions[label][name].times
            )


def test_parallel_flag_and_worker_validation():
    assert ExperimentRunner(CRAY_J90, parallel=True).parallel
    assert ExperimentRunner(CRAY_J90, workers=2).parallel
    assert not ExperimentRunner(CRAY_J90, workers=1).parallel
    with pytest.raises(DesignError):
        ExperimentRunner(CRAY_J90, workers=0)
    with pytest.raises(DesignError):
        run_design_parallel(small_design(), CRAY_J90, workers=0)
    with pytest.raises(DesignError):
        run_design_parallel([], CRAY_J90)


def test_progress_callback_runs_for_every_cell():
    design = small_design()
    seen = []
    runner = ExperimentRunner(
        CRAY_J90, workers=2, progress=lambda done, total, rec: seen.append((done, total))
    )
    runner.run_design(design)
    assert sorted(seen) == [(1, 3), (2, 3), (3, 3)]


# ----------------------------------------------------------------------
# cache behaviour
# ----------------------------------------------------------------------
def test_cache_miss_then_hit(tmp_path):
    design = small_design()
    r1 = ExperimentRunner(CRAY_J90, cache_dir=tmp_path)
    first = r1.run_design(design)
    assert r1.cache_stats.misses == 3
    assert r1.cache_stats.stores == 3
    assert r1.simulations_run == 3

    r2 = ExperimentRunner(CRAY_J90, cache_dir=tmp_path)
    second = r2.run_design(design)
    assert r2.cache_stats.hits == 3
    assert r2.simulations_run == 0
    for a, b in zip(first, second):
        assert a.breakdown == b.breakdown
        assert a.wall_stats == b.wall_stats


def test_cache_shared_between_serial_and_parallel(tmp_path):
    design = small_design()
    serial = ExperimentRunner(CRAY_J90, cache_dir=tmp_path)
    serial.run_design(design)
    parallel = ExperimentRunner(CRAY_J90, workers=2, cache_dir=tmp_path)
    parallel.run_design(design)
    assert parallel.cache_stats.hits == 3
    assert parallel.simulations_run == 0


def test_cache_invalidated_by_protocol_change(tmp_path):
    design = small_design((2,))
    ExperimentRunner(CRAY_J90, cache_dir=tmp_path).run_design(design)
    for changed in (
        ExperimentRunner(CRAY_J90, cache_dir=tmp_path, seed=1),
        ExperimentRunner(CRAY_J90, cache_dir=tmp_path, jitter_sigma=0.01),
        ExperimentRunner(CRAY_J90, cache_dir=tmp_path, repetitions=2),
        ExperimentRunner(CRAY_J90, cache_dir=tmp_path, sync_mode="overlapped"),
        ExperimentRunner(FAST_COPS, cache_dir=tmp_path),
    ):
        changed.run_design(design)
        assert changed.cache_stats.hits == 0
        assert changed.simulations_run >= 1


def test_keep_results_bypasses_cache(tmp_path):
    design = small_design((2,))
    runner = ExperimentRunner(CRAY_J90, cache_dir=tmp_path, keep_results=True)
    record = runner.run_design(design)[0]
    assert record.last_result is not None
    assert runner.cache_stats.lookups == 0
    assert len(runner.cache) == 0


def test_warm_cache_campaign_runs_zero_simulations(tmp_path):
    kwargs = dict(
        reference=CRAY_J90,
        candidates=[FAST_COPS],
        probe_repetitions=2,
        servers=(1, 2),
    )
    cold = run_campaign(cache_dir=tmp_path, **kwargs)
    assert cold.simulations_run > 0
    assert cold.cache_stats.misses > 0

    warm = run_campaign(cache_dir=tmp_path, **kwargs)
    assert warm.simulations_run == 0
    assert warm.cache_stats.misses == 0
    assert warm.cache_stats.hits == cold.cache_stats.misses
    assert warm.calibration.params == cold.calibration.params


def test_cache_clear_and_len(tmp_path):
    cache = ResultCache(tmp_path)
    cache.store("abc", {"x": 1})
    assert len(cache) == 1
    assert cache.load("abc") == {"x": 1}
    assert cache.clear() == 1
    assert cache.load("abc") is None
    assert cache.stats.misses == 1


def test_cache_key_is_canonical():
    case = small_design((2,))[0]
    payload = cell_key_payload(case, CRAY_J90, "accounted", 0.004, 0, 1)
    assert ResultCache.key_for(payload) == ResultCache.key_for(dict(payload))
    other = cell_key_payload(case, CRAY_J90, "accounted", 0.004, 0, 2)
    assert ResultCache.key_for(payload) != ResultCache.key_for(other)


# ----------------------------------------------------------------------
# record serialization / JSONL export
# ----------------------------------------------------------------------
def test_record_roundtrip():
    record = ExperimentRunner(CRAY_J90).run_case(small_design((2,))[0])
    back = record_from_dict(record_to_dict(record))
    assert back.case == record.case
    assert back.breakdown == record.breakdown
    assert back.wall_stats == record.wall_stats
    assert back.last_result is None


def test_export_and_load_jsonl(tmp_path):
    records = ExperimentRunner(CRAY_J90).run_design(small_design())
    path = tmp_path / "cells.jsonl"
    assert export_jsonl(records, path) == 3
    loaded = load_jsonl(path)
    assert len(loaded) == 3
    for a, b in zip(records, loaded):
        assert a.case == b.case
        assert a.breakdown == b.breakdown


def test_analysis_layer_jsonl_aliases(tmp_path):
    from repro.analysis import records_from_jsonl, records_to_jsonl

    records = ExperimentRunner(CRAY_J90).run_design(small_design())
    path = tmp_path / "cells.jsonl"
    assert records_to_jsonl(records, path) == 3
    loaded = records_from_jsonl(path)
    assert [r.case for r in loaded] == [r.case for r in records]
    assert [r.breakdown for r in loaded] == [r.breakdown for r in records]
