"""Unit tests for repeated-measurement statistics."""

import pytest

from repro.errors import DesignError
from repro.experiments.measurement import repeat, summarize


def test_summarize_basics():
    st = summarize([1.0, 2.0, 3.0])
    assert st.n == 3
    assert st.mean == pytest.approx(2.0)
    assert st.std == pytest.approx(1.0)


def test_summarize_single_value():
    st = summarize([5.0])
    assert st.std == 0.0
    assert st.confidence_halfwidth == float("inf")


def test_summarize_empty_rejected():
    with pytest.raises(DesignError):
        summarize([])


def test_cv_and_reproducibility():
    st = summarize([100.0, 100.5, 99.5, 100.2, 99.8])
    assert st.coefficient_of_variation < 0.01
    assert st.reproducible()
    noisy = summarize([100.0, 150.0, 60.0])
    assert not noisy.reproducible()


def test_cv_of_zero_mean():
    st = summarize([1.0, -1.0])
    assert st.coefficient_of_variation == float("inf")


def test_confidence_interval_shrinks_with_n():
    few = summarize([1.0, 2.0, 3.0])
    many = summarize([1.0, 2.0, 3.0] * 10)
    assert many.confidence_halfwidth < few.confidence_halfwidth


def test_repeat_runs_fn():
    st = repeat(lambda i: float(i), repetitions=4)
    assert st.values == (0.0, 1.0, 2.0, 3.0)
    with pytest.raises(DesignError):
        repeat(lambda i: 0.0, repetitions=0)
