"""Unit tests for the replicated allocation-of-variation analysis."""

import numpy as np
import pytest

from repro.errors import DesignError
from repro.experiments.anova import replicated_anova
from repro.experiments.factorial import Factor, full_factorial


def two_factors():
    return [Factor("A", (-1, 1)), Factor("B", (-1, 1))]


def responses(rows, fn, noise, r, seed=0):
    rng = np.random.default_rng(seed)
    return [
        [fn(row) + noise * rng.standard_normal() for _ in range(r)]
        for row in rows
    ]


def test_recovers_effects_with_noise():
    factors = two_factors()
    rows = full_factorial(factors)
    reps = responses(rows, lambda r: 10 + 3 * r["A"] - 1 * r["B"], 0.1, r=5)
    result = replicated_anova(factors, rows, reps)
    effects = {e.name: e for e in result.effects}
    assert effects["A"].effect == pytest.approx(3.0, abs=0.2)
    assert effects["B"].effect == pytest.approx(-1.0, abs=0.2)
    assert effects["A"].significant
    assert effects["B"].significant
    assert not effects["A*B"].significant
    assert result.error_variation < 0.05


def test_pure_noise_nothing_significant():
    factors = two_factors()
    rows = full_factorial(factors)
    reps = responses(rows, lambda r: 5.0, 1.0, r=6, seed=3)
    result = replicated_anova(factors, rows, reps)
    # error dominates, no factor stands out
    assert result.error_variation > 0.5
    assert len(result.significant_effects()) <= 1


def test_tiny_effect_needs_replication_to_surface():
    factors = two_factors()
    rows = full_factorial(factors)
    fn = lambda r: 10 + 0.4 * r["A"]  # noqa: E731
    noisy_few = replicated_anova(
        factors, rows, responses(rows, fn, 1.0, r=2, seed=1)
    )
    noisy_many = replicated_anova(
        factors, rows, responses(rows, fn, 1.0, r=200, seed=1)
    )
    eff_few = {e.name: e for e in noisy_few.effects}["A"]
    eff_many = {e.name: e for e in noisy_many.effects}["A"]
    assert eff_many.confidence_halfwidth < eff_few.confidence_halfwidth
    assert eff_many.significant


def test_validation():
    factors = two_factors()
    rows = full_factorial(factors)
    with pytest.raises(DesignError):
        replicated_anova(factors, rows[:3], [[1, 2]] * 3)
    with pytest.raises(DesignError):
        replicated_anova(factors, rows, [[1.0]] * 4)  # r=1
    with pytest.raises(DesignError):
        replicated_anova(factors, rows, [[1, 2], [1, 2], [1, 2], [1, 2, 3]])
    with pytest.raises(DesignError):
        replicated_anova(
            [Factor("A", (1, 2, 3))], [{"A": 1}, {"A": 2}, {"A": 3}],
            [[1, 2]] * 3,
        )
    with pytest.raises(DesignError):
        replicated_anova(factors, rows, [[2.0, 2.0]] * 4)  # zero variation


def test_on_simulated_measurements(j90):
    """End to end: replicated simulated runs -> significant factors."""
    from repro.core.parameters import ApplicationParams
    from repro.opal.complexes import MEDIUM, LARGE
    from repro.opal.parallel import run_parallel_opal

    factors = [
        Factor("servers", (2, 6)),
        Factor("cutoff", (10.0, None)),
    ]
    rows = full_factorial(factors)
    reps = []
    for row in rows:
        cell = []
        for rep in range(3):
            app = ApplicationParams(
                molecule=MEDIUM, steps=3, servers=row["servers"],
                cutoff=row["cutoff"],
            )
            result = run_parallel_opal(
                app, j90, seed=rep * 17, jitter_sigma=0.004
            )
            cell.append(result.wall_time)
        reps.append(cell)
    result = replicated_anova(factors, rows, reps)
    names = {e.name for e in result.significant_effects()}
    # the cutoff is the dominant factor of the paper's design
    assert "cutoff" in names
    assert result.error_variation < 0.05
