"""Tests for the integrated campaign pipeline."""

import pytest

from repro.errors import DesignError
from repro.experiments.campaign import render, run_campaign
from repro.opal.complexes import MEDIUM
from repro.platforms import ALL_PLATFORMS, CRAY_J90, FAST_COPS


@pytest.fixture(scope="module")
def report():
    return run_campaign(
        reference=CRAY_J90,
        candidates=ALL_PLATFORMS,
        molecule=MEDIUM,
        probe_repetitions=4,
    )


def test_campaign_structure(report):
    assert report.reference_platform == "j90"
    assert set(report.predictions) == {"no cutoff", "10 A cutoff"}
    for series in report.predictions.values():
        assert set(series) == {p.name for p in ALL_PLATFORMS}
    assert report.cost_ranking


def test_probe_reproducible(report):
    assert report.probe.reproducible(cv_threshold=0.05)


def test_fit_quality(report):
    assert report.fit_error < 0.08


def test_reference_uses_calibrated_parameters(report):
    # the reference platform's curve comes from the fit, not the catalog
    assert report.calibration.params.a1 == pytest.approx(3e6, rel=0.02)


def test_verdict_names_a_cluster_of_pcs(report):
    best = report.best_platform("10 A cutoff")
    assert best in ("fast-cops", "smp-cops", "t3e")
    assert "faster than the j90" in report.verdict()


def test_render_readable(report):
    text = render(report)
    assert "Integrated performance study" in text
    assert "verdict:" in text
    assert "10 A cutoff" in text
    assert "cost effectiveness" in text


def test_probe_failure_rejected():
    # absurd jitter breaks the dedicated-system reproducibility gate
    # (per-event noise averages over the run's many phases, so the
    # sigma must be large before run-level CV exceeds the threshold)
    with pytest.raises(DesignError, match="reproducible"):
        run_campaign(
            reference=CRAY_J90,
            candidates=[FAST_COPS],
            jitter_sigma=1.2,
            probe_repetitions=4,
        )


def test_probe_repetitions_validated():
    with pytest.raises(DesignError):
        run_campaign(
            reference=CRAY_J90, candidates=[FAST_COPS], probe_repetitions=1
        )


def test_custom_scenarios():
    report = run_campaign(
        reference=CRAY_J90,
        candidates=[FAST_COPS],
        scenarios={"only-cutoff": 10.0},
        probe_repetitions=2,
        servers=(1, 2, 3),
    )
    assert list(report.predictions) == ["only-cutoff"]
    series = report.predictions["only-cutoff"]
    assert len(series["fast-cops"].times) == 3
