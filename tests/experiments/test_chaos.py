"""Chaos-campaign properties: determinism, cache keys, probe hygiene.

The fault layer is a *design factor*: a chaos campaign must be exactly
as reproducible as a healthy one.  Same seed and spec -> bit-identical
records, serial or pooled; faults off -> bit-identical to a run that
never imported the fault layer at all.
"""

import pytest

from repro.experiments import (
    ExperimentCase,
    ExperimentRunner,
    ResultCache,
    run_campaign,
)
from repro.experiments.cache import cell_key_payload
from repro.netsim.faults import FaultSpec
from repro.opal.complexes import SMALL
from repro.platforms import CRAY_J90, FAST_COPS

CHAOS = FaultSpec.parse("drop=0.01,delay=0.02,delay_scale=0.05,timeout=5")


def small_design(servers=(1, 2, 3)):
    return [
        ExperimentCase(molecule=SMALL, servers=p, cutoff=10.0, update_interval=1)
        for p in servers
    ]


def test_chaos_design_is_repeatable():
    a = ExperimentRunner(CRAY_J90, faults=CHAOS).run_design(small_design())
    b = ExperimentRunner(CRAY_J90, faults=CHAOS).run_design(small_design())
    for ra, rb in zip(a, b):
        assert ra.breakdown == rb.breakdown
        assert ra.wall_stats == rb.wall_stats


def test_chaos_serial_and_parallel_records_identical():
    design = small_design()
    serial = ExperimentRunner(CRAY_J90, faults=CHAOS).run_design(design)
    pooled = ExperimentRunner(CRAY_J90, workers=2, faults=CHAOS).run_design(
        design
    )
    for a, b in zip(serial, pooled):
        assert a.case == b.case
        assert a.breakdown == b.breakdown
        assert a.wall_stats == b.wall_stats


def test_chaos_costs_time_but_not_correctness():
    design = small_design((2,))
    healthy = ExperimentRunner(CRAY_J90).run_design(design)[0]
    faulted = ExperimentRunner(CRAY_J90, faults=CHAOS).run_design(design)[0]
    assert faulted.wall_stats.mean > healthy.wall_stats.mean


def test_disabled_faults_leave_results_bit_identical():
    # a spec that injects nothing still switches the client to the
    # resilient stub; the measured numbers must not move at all
    design = small_design((2,))
    plain = ExperimentRunner(CRAY_J90).run_design(design)[0]
    idle_spec = FaultSpec(rpc_timeout=30.0)
    assert not idle_spec.enabled
    resilient = ExperimentRunner(CRAY_J90, faults=idle_spec).run_design(design)[0]
    assert resilient.breakdown == plain.breakdown
    assert resilient.wall_stats == plain.wall_stats


def test_cache_key_separates_chaos_from_healthy_cells():
    case = small_design((2,))[0]
    healthy = cell_key_payload(case, CRAY_J90, "accounted", 0.004, 0, 1)
    faulted = cell_key_payload(
        case, CRAY_J90, "accounted", 0.004, 0, 1, faults=CHAOS
    )
    assert "chaos" not in healthy
    assert faulted["chaos"] == CHAOS.as_dict()
    assert ResultCache.key_for(healthy) != ResultCache.key_for(faulted)
    other = cell_key_payload(
        case, CRAY_J90, "accounted", 0.004, 0, 1, faults=FaultSpec(drop=0.02)
    )
    assert ResultCache.key_for(faulted) != ResultCache.key_for(other)


def test_chaos_cells_cached_and_replayed(tmp_path):
    design = small_design((1, 2))
    cold = ExperimentRunner(CRAY_J90, cache_dir=tmp_path, faults=CHAOS)
    first = cold.run_design(design)
    assert cold.simulations_run == 2
    warm = ExperimentRunner(CRAY_J90, cache_dir=tmp_path, faults=CHAOS)
    second = warm.run_design(design)
    assert warm.simulations_run == 0
    for a, b in zip(first, second):
        assert a.breakdown == b.breakdown
    # healthy cells do not hit the chaos cache entries
    healthy = ExperimentRunner(CRAY_J90, cache_dir=tmp_path)
    healthy.run_design(design)
    assert healthy.cache_stats.hits == 0


def test_probe_stays_unfaulted_under_chaos():
    # the reproducibility probe certifies the measurement protocol; the
    # chaos factor applies to design cells only, so the probe CV stays
    # in the licensed band and the campaign proceeds
    runner = ExperimentRunner(
        CRAY_J90, jitter_sigma=0.004, faults=FaultSpec.parse("drop=0.05,timeout=5")
    )
    case = small_design((2,))[0]
    stats = runner.variability_probe(case, repetitions=3)
    baseline = ExperimentRunner(CRAY_J90, jitter_sigma=0.004).variability_probe(
        case, repetitions=3
    )
    assert stats == baseline


def test_chaos_campaign_serial_vs_parallel_identical_report():
    kwargs = dict(
        reference=CRAY_J90,
        candidates=[FAST_COPS],
        probe_repetitions=2,
        servers=(1, 2),
        faults=CHAOS,
    )
    serial = run_campaign(**kwargs)
    pooled = run_campaign(workers=2, **kwargs)
    assert serial.calibration.params == pooled.calibration.params
    assert serial.probe == pooled.probe
    for label in serial.predictions:
        for name in serial.predictions[label]:
            assert (
                serial.predictions[label][name].times
                == pooled.predictions[label][name].times
            )
    # chaos degrades the fit relative to a healthy campaign
    healthy = run_campaign(**{**kwargs, "faults": None})
    assert serial.fit_error >= healthy.fit_error
