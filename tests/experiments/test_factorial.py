"""Unit tests for factorial experimental designs."""

import pytest

from repro.errors import DesignError
from repro.experiments.factorial import (
    Factor,
    design_size,
    fractional_factorial,
    full_factorial,
    sign_table_effects,
)


def test_factor_validation():
    with pytest.raises(DesignError):
        Factor("empty", ())
    with pytest.raises(DesignError):
        Factor("dup", (1, 1))


def test_full_factorial_enumeration():
    rows = full_factorial([Factor("a", (1, 2)), Factor("b", ("x", "y", "z"))])
    assert len(rows) == 6
    assert rows[0] == {"a": 1, "b": "x"}
    assert rows[-1] == {"a": 2, "b": "z"}
    # last factor varies fastest
    assert [r["b"] for r in rows[:3]] == ["x", "y", "z"]


def test_duplicate_factor_names_rejected():
    with pytest.raises(DesignError):
        full_factorial([Factor("a", (1, 2)), Factor("a", (3, 4))])


def test_design_size():
    fs = [Factor("a", (1, 2)), Factor("b", (1, 2, 3)), Factor("c", (1, 2))]
    assert design_size(fs) == 12 == len(full_factorial(fs))


# ----------------------------------------------------------------------
def two_level():
    return [Factor("A", (-1, 1)), Factor("B", (-1, 1)), Factor("C", (-1, 1))]


def test_half_fraction_size_and_generator():
    rows = fractional_factorial(two_level(), generators=["C=AB"])
    assert len(rows) == 4
    for r in rows:
        assert r["C"] == r["A"] * r["B"]  # the defining relation


def test_fraction_needs_two_level_factors():
    factors = [Factor("A", (1, 2, 3)), Factor("B", (1, 2))]
    with pytest.raises(DesignError):
        fractional_factorial(factors, generators=["B=A"])


def test_fraction_generator_validation():
    with pytest.raises(DesignError):
        fractional_factorial(two_level(), generators=["CAB"])
    with pytest.raises(DesignError):
        fractional_factorial(two_level(), generators=["C=AZ"])
    with pytest.raises(DesignError):
        fractional_factorial(two_level(), generators=[])


def test_fraction_covers_distinct_base_combinations():
    rows = fractional_factorial(two_level(), generators=["C=AB"])
    base = {(r["A"], r["B"]) for r in rows}
    assert len(base) == 4


# ----------------------------------------------------------------------
def test_sign_table_main_effects_exact():
    factors = two_level()[:2]
    rows = full_factorial(factors)
    # y = 10 + 3*A - 2*B (no interaction)
    y = [10 + 3 * r["A"] - 2 * r["B"] for r in rows]
    effects = {e.name: e for e in sign_table_effects(factors, rows, y)}
    assert effects["A"].effect == pytest.approx(3.0)
    assert effects["B"].effect == pytest.approx(-2.0)
    assert effects["A*B"].effect == pytest.approx(0.0)
    # variation fully explained by A and B
    total = effects["A"].variation_explained + effects["B"].variation_explained
    assert total == pytest.approx(1.0)


def test_sign_table_interaction_detected():
    factors = two_level()[:2]
    rows = full_factorial(factors)
    y = [5 + 4 * r["A"] * r["B"] for r in rows]
    effects = {e.name: e for e in sign_table_effects(factors, rows, y)}
    assert effects["A*B"].effect == pytest.approx(4.0)
    assert effects["A*B"].variation_explained == pytest.approx(1.0)


def test_sign_table_requires_full_design():
    factors = two_level()[:2]
    rows = full_factorial(factors)[:3]
    with pytest.raises(DesignError):
        sign_table_effects(factors, rows, [1, 2, 3])


def test_sign_table_sorted_by_variation():
    factors = two_level()[:2]
    rows = full_factorial(factors)
    y = [1 * r["A"] + 10 * r["B"] for r in rows]
    effects = sign_table_effects(factors, rows, y)
    assert effects[0].name == "B"
