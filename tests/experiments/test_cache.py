"""Eviction, corruption and concurrency behaviour of the result cache.

The on-disk cache sits under every campaign, benchmark and the serve
layer's calibration store; these tests pin down the paths that only
show up in production use: bounded caches evicting cold entries, torn
or corrupted entry files, and many threads hitting one instance.
"""

import json
import threading

import pytest

from repro.experiments.cache import ResultCache


def entry(i):
    return {"payload": i}


def key(i):
    return ResultCache.key_for({"cell": i})


class TestEviction:
    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(50):
            cache.store(key(i), entry(i))
        assert len(cache) == 50
        assert cache.stats.evictions == 0

    def test_lru_eviction_drops_coldest_entry(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=3)
        for i in range(3):
            cache.store(key(i), entry(i))
        # touch entry 0 so entry 1 is now the coldest
        assert cache.load(key(0)) == entry(0)
        cache.store(key(3), entry(3))
        assert len(cache) == 3
        assert cache.stats.evictions == 1
        assert cache.load(key(1)) is None  # evicted
        assert cache.load(key(0)) == entry(0)
        assert cache.load(key(3)) == entry(3)

    def test_restoring_an_entry_counts_as_a_fresh_store(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        cache.store(key(0), entry(0))
        cache.store(key(1), entry(1))
        cache.store(key(0), entry(100))  # overwrite refreshes recency
        cache.store(key(2), entry(2))  # evicts 1, not 0
        assert cache.load(key(1)) is None
        assert cache.load(key(0)) == entry(100)

    def test_recency_is_seeded_from_disk_across_instances(self, tmp_path):
        first = ResultCache(tmp_path)
        for i in range(4):
            first.store(key(i), entry(i))
        # a new bounded instance over the same directory evicts by age
        second = ResultCache(tmp_path, max_entries=4)
        second.store(key(99), entry(99))
        assert second.stats.evictions == 1
        assert second.load(key(0)) is None  # the oldest file went first
        assert second.load(key(3)) == entry(3)

    def test_max_entries_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_entries=0)


class TestCorruption:
    def test_truncated_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(key(0), entry(0))
        path = tmp_path / f"{key(0)}.json"
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # torn write
        assert cache.load(key(0)) is None
        assert cache.stats.misses == 1

    def test_garbage_bytes_are_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = tmp_path / f"{key(1)}.json"
        path.write_bytes(b"\xff\xfe\x00 not json at all \x9c")
        assert cache.load(key(1)) is None
        assert cache.stats.misses == 1

    def test_non_object_json_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = tmp_path / f"{key(2)}.json"
        path.write_text(json.dumps([1, 2, 3]))
        assert cache.load(key(2)) is None
        assert cache.stats.misses == 1

    def test_corrupt_entry_can_be_overwritten_and_hit_again(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(key(0), entry(0))
        (tmp_path / f"{key(0)}.json").write_text("{ truncated")
        assert cache.load(key(0)) is None
        cache.store(key(0), entry(0))
        assert cache.load(key(0)) == entry(0)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1


class TestConcurrency:
    def test_stats_stay_consistent_under_concurrent_readers(self, tmp_path):
        cache = ResultCache(tmp_path)
        present = 8
        for i in range(present):
            cache.store(key(i), entry(i))
        # half the lookups hit, half miss, across many racing threads
        readers, per_reader = 8, 160  # per_reader % (2 * present) == 0
        errors = []

        def read(tid):
            try:
                for j in range(per_reader):
                    i = (tid + j) % (2 * present)
                    value = cache.load(key(i))
                    if i < present:
                        assert value == entry(i)
                    else:
                        assert value is None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=read, args=(t,)) for t in range(readers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        total = readers * per_reader
        assert cache.stats.lookups == total
        assert cache.stats.hits + cache.stats.misses == total
        assert cache.stats.hits == total // 2
        assert cache.stats.misses == total // 2

    def test_concurrent_hits_on_bounded_cache_keep_entry_count(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=4)
        for i in range(4):
            cache.store(key(i), entry(i))

        def hammer(tid):
            for j in range(100):
                cache.load(key((tid + j) % 4))

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) == 4
        assert cache.stats.evictions == 0
        assert cache.stats.misses == 0
