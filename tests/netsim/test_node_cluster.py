"""Unit tests for nodes and cluster assembly."""

import pytest

from repro.core.memhier import MemoryHierarchy
from repro.errors import SimulationError
from repro.netsim import (
    Cluster,
    Compute,
    Node,
    SwitchedFabric,
    Timeout,
    constant_rate,
)
from repro.netsim.rng import Jitter


def make_cluster():
    return Cluster(lambda e: SwitchedFabric(e, 1e-4, 1e7), seed=3)


def test_node_validation():
    cluster = make_cluster()
    with pytest.raises(ValueError):
        Node(cluster.engine, 0, constant_rate(1e6), n_cpus=0)
    with pytest.raises(ValueError):
        constant_rate(0.0)


def test_compute_duration_seconds_vs_flops():
    cluster = make_cluster()
    node = Node(cluster.engine, 0, constant_rate(2e6))
    d, f = node.compute_duration(Compute(seconds=1.5))
    assert (d, f) == (1.5, 0.0)
    d, f = node.compute_duration(Compute(flops=4e6))
    assert d == pytest.approx(2.0)
    assert f == 4e6


def test_memory_hierarchy_rate_model_in_node():
    cluster = make_cluster()
    mem = MemoryHierarchy(base_rate=32e6, cache_bytes=256e3, core_bytes=64e6)
    node = Node(cluster.engine, 0, mem.as_rate_model())
    fast, _ = node.compute_duration(Compute(flops=32e6, working_set=50e3))
    base, _ = node.compute_duration(Compute(flops=32e6, working_set=8e6))
    slow, _ = node.compute_duration(Compute(flops=32e6, working_set=120e6))
    assert fast < base < slow
    assert slow / base == pytest.approx(4.0)


def test_node_jitter_applied():
    import numpy as np

    cluster = make_cluster()
    node = Node(
        cluster.engine,
        0,
        constant_rate(1e6),
        jitter=Jitter(np.random.default_rng(0), sigma=0.01),
    )
    durations = {node.compute_duration(Compute(seconds=1.0))[0] for _ in range(5)}
    assert len(durations) > 1
    assert all(0.9 < d < 1.1 for d in durations)


def test_cluster_node_lookup():
    cluster = make_cluster()
    n = cluster.add_node(Node(cluster.engine, 42, constant_rate(1e6)))
    assert cluster.node(42) is n
    with pytest.raises(SimulationError):
        cluster.node(7)


def test_unknown_tid_rejected():
    cluster = make_cluster()
    with pytest.raises(SimulationError):
        cluster.process_by_tid(99)


def test_tids_assigned_sequentially():
    cluster = make_cluster()
    node = cluster.add_node(Node(cluster.engine, 0, constant_rate(1e6)))

    def body(ctx):
        yield Timeout(0.0)

    p1 = cluster.spawn("a", node, body)
    p2 = cluster.spawn("b", node, body)
    assert p2.tid == p1.tid + 1


def test_failure_recorded_and_raised():
    cluster = make_cluster()
    node = cluster.add_node(Node(cluster.engine, 0, constant_rate(1e6)))

    def bad(ctx):
        yield Timeout(0.1)
        raise RuntimeError("boom")

    cluster.spawn("bad", node, bad)
    with pytest.raises(SimulationError, match="boom"):
        cluster.run()
    assert cluster.failures and cluster.failures[0][0] == "bad"


def test_run_until():
    cluster = make_cluster()
    node = cluster.add_node(Node(cluster.engine, 0, constant_rate(1e6)))

    def body(ctx):
        yield Timeout(10.0)

    cluster.spawn("p", node, body)
    assert cluster.run(until=2.0) == 2.0


def test_proc_context_properties():
    cluster = make_cluster()
    node = cluster.add_node(Node(cluster.engine, 0, constant_rate(1e6)))
    seen = {}

    def body(ctx):
        seen["tid"] = ctx.tid
        seen["name"] = ctx.name
        seen["node"] = ctx.node
        seen["cluster"] = ctx.cluster
        ctx.trace("custom", 0.0, 0.5, detail="x")
        yield Timeout(0.0)

    cluster.spawn("probe", node, body)
    cluster.run()
    assert seen["name"] == "probe"
    assert seen["node"] is node
    assert seen["cluster"] is cluster
    assert cluster.tracer.by_category()["custom"] == pytest.approx(0.5)
