"""Unit tests for RNG streams and jitter."""

import numpy as np
import pytest

from repro.netsim.rng import (
    Jitter,
    RngRegistry,
    RngStreams,
    derive_seed,
    spawn_generator,
)


def test_streams_are_deterministic_by_name():
    a = RngStreams(seed=42)
    b = RngStreams(seed=42)
    assert a.stream("x").random() == b.stream("x").random()


def test_streams_independent_of_creation_order():
    a = RngStreams(seed=1)
    b = RngStreams(seed=1)
    a.stream("first")
    va = a.stream("second").random()
    vb = b.stream("second").random()  # created without touching "first"
    assert va == vb


def test_different_names_differ():
    s = RngStreams(seed=5)
    assert s.stream("a").random() != s.stream("b").random()


def test_different_seeds_differ():
    assert RngStreams(1).stream("x").random() != RngStreams(2).stream("x").random()


def test_stream_is_cached():
    s = RngStreams(0)
    assert s.stream("x") is s.stream("x")


def test_rng_streams_is_an_alias_of_rng_registry():
    # old name kept for callers written before the rename
    assert RngStreams is RngRegistry


def test_derive_seed_is_deterministic_and_name_sensitive():
    assert derive_seed(3, "x").entropy == derive_seed(3, "x").entropy
    assert derive_seed(3, "x").entropy != derive_seed(3, "y").entropy
    assert derive_seed(3, "x").entropy != derive_seed(4, "x").entropy


def test_spawn_generator_restarts_identically():
    a = spawn_generator(9, "noise").random(4)
    b = spawn_generator(9, "noise").random(4)
    assert (a == b).all()


def test_registry_streams_match_spawned_generators():
    # the registry is the cached form of the same derivation
    registry = RngRegistry(seed=13)
    assert registry.stream("w").random() == spawn_generator(13, "w").random()


def test_jitter_zero_sigma_is_identity():
    j = Jitter(np.random.default_rng(0), sigma=0.0)
    assert j.apply(1.234) == 1.234


def test_jitter_preserves_sign_and_scale():
    j = Jitter(np.random.default_rng(0), sigma=0.01)
    values = [j.apply(1.0) for _ in range(200)]
    assert all(v > 0 for v in values)
    assert abs(np.mean(values) - 1.0) < 0.01


def test_jitter_zero_duration_unchanged():
    j = Jitter(np.random.default_rng(0), sigma=0.5)
    assert j.apply(0.0) == 0.0


def test_negative_sigma_rejected():
    with pytest.raises(ValueError):
        Jitter(np.random.default_rng(0), sigma=-0.1)
