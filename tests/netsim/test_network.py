"""Unit tests for the fabric contention models."""

import pytest

from repro.netsim import (
    Cluster,
    CrossbarFabric,
    Node,
    Recv,
    Send,
    SharedMediumFabric,
    SwitchedFabric,
    constant_rate,
    make_fabric,
)


def build(fabric_factory, n_nodes=4):
    cluster = Cluster(fabric_factory, seed=0)
    nodes = [
        cluster.add_node(Node(cluster.engine, i, constant_rate(1e9)))
        for i in range(n_nodes)
    ]
    return cluster, nodes


def sink(ctx, count, tag=1):
    for _ in range(count):
        yield Recv(tag=tag)


def shooter(ctx, dest, nbytes, tag=1):
    yield Send(dest, nbytes=nbytes, tag=tag)


# ----------------------------------------------------------------------
def test_make_fabric_kinds():
    cluster, _ = build(lambda e: SwitchedFabric(e, 1e-6, 1e6))
    for kind, cls in [
        ("shared", SharedMediumFabric),
        ("switched", SwitchedFabric),
        ("crossbar", CrossbarFabric),
    ]:
        f = make_fabric(kind, cluster.engine, latency=1e-6, bandwidth=1e6)
        assert isinstance(f, cls)
    with pytest.raises(ValueError):
        make_fabric("token-ring", cluster.engine, latency=1e-6, bandwidth=1e6)


def test_fabric_validation():
    cluster, _ = build(lambda e: SwitchedFabric(e, 1e-6, 1e6))
    with pytest.raises(ValueError):
        SwitchedFabric(cluster.engine, latency=-1.0, bandwidth=1e6)
    with pytest.raises(ValueError):
        SwitchedFabric(cluster.engine, latency=1e-6, bandwidth=0.0)


def test_shared_medium_serializes_all_transfers():
    # two disjoint sender/receiver pairs: still serialized on Ethernet
    cluster, nodes = build(lambda e: SharedMediumFabric(e, latency=0.0, bandwidth=1e6))
    r1 = cluster.spawn("r1", nodes[1], sink, 1)
    r2 = cluster.spawn("r2", nodes[3], sink, 1)
    cluster.spawn("s1", nodes[0], shooter, r1.tid, 1e6)
    cluster.spawn("s2", nodes[2], shooter, r2.tid, 1e6)
    t = cluster.run()
    assert t == pytest.approx(2.0)  # 2 x 1 s, serialized


def test_switched_fabric_parallel_disjoint_pairs():
    cluster, nodes = build(lambda e: SwitchedFabric(e, latency=0.0, bandwidth=1e6))
    r1 = cluster.spawn("r1", nodes[1], sink, 1)
    r2 = cluster.spawn("r2", nodes[3], sink, 1)
    cluster.spawn("s1", nodes[0], shooter, r1.tid, 1e6)
    cluster.spawn("s2", nodes[2], shooter, r2.tid, 1e6)
    t = cluster.run()
    assert t == pytest.approx(1.0)  # disjoint ports run concurrently


def test_switched_fabric_receiver_port_contention():
    # two senders into ONE receiver: serialized at the rx port
    cluster, nodes = build(lambda e: SwitchedFabric(e, latency=0.0, bandwidth=1e6))
    r = cluster.spawn("r", nodes[1], sink, 2)
    cluster.spawn("s1", nodes[0], shooter, r.tid, 1e6)
    cluster.spawn("s2", nodes[2], shooter, r.tid, 1e6)
    t = cluster.run()
    assert t == pytest.approx(2.0)


def test_crossbar_sender_can_fan_out_concurrently():
    # crossbar holds only the receiver port; two different receivers
    # served by two senders do not contend anywhere
    cluster, nodes = build(lambda e: CrossbarFabric(e, latency=0.0, bandwidth=1e6))
    r1 = cluster.spawn("r1", nodes[1], sink, 1)
    r2 = cluster.spawn("r2", nodes[2], sink, 1)
    cluster.spawn("s1", nodes[0], shooter, r1.tid, 1e6)
    cluster.spawn("s2", nodes[3], shooter, r2.tid, 1e6)
    t = cluster.run()
    assert t == pytest.approx(1.0)


def test_gather_contention_on_crossbar():
    # the paper's single-client multiple-server pattern: p concurrent
    # returns serialize at the client's receive port
    cluster, nodes = build(lambda e: CrossbarFabric(e, latency=0.0, bandwidth=1e6))
    client = cluster.spawn("client", nodes[0], sink, 3)
    for i in (1, 2, 3):
        cluster.spawn(f"s{i}", nodes[i], shooter, client.tid, 1e6)
    t = cluster.run()
    assert t == pytest.approx(3.0)


def test_overhead_charged_per_message():
    cluster, nodes = build(
        lambda e: SwitchedFabric(e, latency=0.0, bandwidth=1e9, overhead=0.25)
    )
    r = cluster.spawn("r", nodes[1], sink, 4)
    def burst(ctx, dest):
        for _ in range(4):
            yield Send(dest, nbytes=0, tag=1)
    cluster.spawn("s", nodes[0], burst, r.tid)
    t = cluster.run()
    assert t == pytest.approx(1.0)  # 4 x 0.25 s overhead


def test_transfer_statistics():
    cluster, nodes = build(lambda e: SwitchedFabric(e, latency=0.0, bandwidth=1e6))
    r = cluster.spawn("r", nodes[1], sink, 2)
    cluster.spawn("s", nodes[0], lambda ctx, d: (
        (yield Send(d, nbytes=500, tag=1)) or (yield Send(d, nbytes=1500, tag=1))
    ), r.tid)
    cluster.run()
    assert cluster.fabric.messages_transferred == 2
    assert cluster.fabric.bytes_transferred == 2000
