"""Unit tests for FIFO counted resources."""

import pytest

from repro.netsim.engine import Engine
from repro.netsim.resources import Resource


def test_capacity_must_be_positive():
    eng = Engine()
    with pytest.raises(ValueError):
        Resource(eng, capacity=0)


def test_immediate_grant_under_capacity():
    eng = Engine()
    res = Resource(eng, capacity=2)
    grants = []
    res.acquire(lambda: grants.append("a"))
    res.acquire(lambda: grants.append("b"))
    assert grants == ["a", "b"]
    assert res.in_use == 2


def test_waiters_queue_fifo():
    eng = Engine()
    res = Resource(eng, capacity=1)
    order = []
    res.acquire(lambda: order.append("first"))
    res.acquire(lambda: order.append("second"))
    res.acquire(lambda: order.append("third"))
    assert order == ["first"]
    assert res.queue_length == 2
    res.release()
    res.release()  # releases pending grant as well once it runs
    eng.run()
    assert order == ["first", "second", "third"]


def test_release_of_idle_resource_raises():
    eng = Engine()
    res = Resource(eng, capacity=1)
    with pytest.raises(RuntimeError):
        res.release()


def test_use_holds_for_duration():
    eng = Engine()
    res = Resource(eng, capacity=1)
    done_at = []
    res.use(2.0, lambda: done_at.append(eng.now))
    res.use(3.0, lambda: done_at.append(eng.now))
    eng.run()
    # second use starts only after the first releases
    assert done_at == [2.0, 5.0]


def test_utilisation_accounting():
    eng = Engine()
    res = Resource(eng, capacity=1)
    res.use(1.0, lambda: None)
    eng.schedule(4.0, lambda: None)  # extend the horizon to t=4
    eng.run()
    # busy 1s of 4s total
    assert res.utilisation() == pytest.approx(0.25)


def test_concurrent_capacity_two():
    eng = Engine()
    res = Resource(eng, capacity=2)
    done_at = []
    res.use(2.0, lambda: done_at.append(eng.now))
    res.use(2.0, lambda: done_at.append(eng.now))
    res.use(2.0, lambda: done_at.append(eng.now))
    eng.run()
    assert done_at == [2.0, 2.0, 4.0]
