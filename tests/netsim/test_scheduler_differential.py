"""Differential property tests: calendar scheduler vs. heap scheduler.

The calendar queue in ``repro.netsim.engine`` is a performance
replacement for the binary-heap scheduler, kept behind
``Engine(scheduler=...)`` precisely so it can be checked like this:
run the *same randomized event program* on both implementations and
require bit-identical observable behaviour — firing order (including
FIFO order within one timestamp), clocks at every event, horizon
handling, and every public counter.

Programs are generated from seeded ``random.Random`` instances so
failures reproduce exactly; delays are drawn from a small pool to
force heavy timestamp collisions (the case where the two scheduler
data structures differ most).
"""

import random

import pytest

from repro.netsim.engine import SCHEDULERS, Engine

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional dep
    HAVE_HYPOTHESIS = False

#: Delay pool biased towards collisions and zero-delay chains.
DELAYS = (0.0, 0.0, 0.25, 0.5, 0.5, 1.0, 1.0, 1.0, 2.0, 3.5)


def run_program(scheduler: str, seed: int, n_initial: int = 20):
    """Execute one randomized event program; return its full observable trace.

    Every callback records ``(its id, engine.now)`` and may schedule
    follow-up events (nested scheduling is where tie-breaking between
    "old" and "new" events at one instant matters).  The run is split
    across several ``run(until=...)`` horizons drawn from the same rng,
    including redundant past horizons, before a final drain.
    """
    rng = random.Random(seed)
    eng = Engine(scheduler=scheduler)
    trace = []
    budget = [60]  # cap total events so programs terminate

    def make_callback(ident):
        def callback():
            trace.append((ident, eng.now))
            while budget[0] > 0 and rng.random() < 0.4:
                budget[0] -= 1
                child = f"{ident}.{budget[0]}"
                eng.schedule(rng.choice(DELAYS), make_callback(child))

        return callback

    for i in range(n_initial):
        eng.schedule(rng.choice(DELAYS), make_callback(f"e{i}"))

    clocks = []
    for _ in range(rng.randrange(4)):
        clocks.append(eng.run(until=rng.choice((0.5, 1.0, 1.0, 2.0, 6.0))))
    clocks.append(eng.run())

    return {
        "trace": trace,
        "clocks": clocks,
        "now": eng.now,
        "executed": eng.events_executed,
        "scheduled": eng.events_scheduled,
        "max_depth": eng.max_queue_depth,
        "pending": eng.pending(),
    }


@pytest.mark.parametrize("seed", range(25))
def test_calendar_and_heap_traces_identical(seed):
    results = [run_program(s, seed) for s in SCHEDULERS]
    assert results[0] == results[1], (
        f"scheduler divergence for seed={seed}: "
        f"{SCHEDULERS[0]}={results[0]!r} {SCHEDULERS[1]}={results[1]!r}"
    )


@pytest.mark.parametrize("seed", range(10))
def test_differential_under_heavy_collisions(seed):
    # every event lands on one of two timestamps: FIFO-within-instant
    # is the entire ordering contract here
    rng = random.Random(seed)

    def drive(scheduler):
        eng = Engine(scheduler=scheduler)
        fired = []
        rng_local = random.Random(seed)
        for i in range(40):
            t = rng_local.choice((1.0, 2.0))
            eng.schedule(t, lambda i=i: fired.append((i, eng.now)))
        eng.run()
        return fired

    del rng  # only seed matters; each drive re-derives its own stream
    assert drive("calendar") == drive("heap")


if HAVE_HYPOTHESIS:

    @settings(max_examples=40, deadline=None)
    @given(
        delays=st.lists(
            st.sampled_from(DELAYS), min_size=1, max_size=30
        ),
        until=st.sampled_from((None, 0.5, 1.0, 2.0)),
    )
    def test_hypothesis_differential(delays, until):
        def drive(scheduler):
            eng = Engine(scheduler=scheduler)
            fired = []
            for i, d in enumerate(delays):
                eng.schedule(d, lambda i=i: fired.append((i, eng.now)))
            first = eng.run() if until is None else eng.run(until=until)
            final = eng.run()
            return fired, first, final, eng.events_executed

        assert drive("calendar") == drive("heap")
