"""Unit tests for generator-based processes, mailboxes and barriers."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.netsim import (
    ANY,
    Barrier,
    Cluster,
    Compute,
    Node,
    Recv,
    Send,
    SwitchedFabric,
    Timeout,
    constant_rate,
)
from repro.netsim.events import Message
from repro.netsim.process import Mailbox


def make_cluster(n_nodes=2, n_cpus=1):
    cluster = Cluster(
        lambda e: SwitchedFabric(e, latency=1e-3, bandwidth=1e6), seed=1
    )
    nodes = [
        cluster.add_node(Node(cluster.engine, i, constant_rate(1e6), n_cpus=n_cpus))
        for i in range(n_nodes)
    ]
    return cluster, nodes


# ----------------------------------------------------------------------
class TestMailbox:
    def _msg(self, source=1, tag=0):
        return Message(source=source, dest=2, tag=tag, nbytes=0)

    def test_delivery_then_take(self):
        box = Mailbox()
        box.deliver(self._msg(tag=5))
        got = []
        assert box.take(ANY, 5, got.append) is True
        assert got[0].tag == 5

    def test_take_blocks_until_delivery(self):
        box = Mailbox()
        got = []
        assert box.take(ANY, 7, got.append) is False
        box.deliver(self._msg(tag=3))  # wrong tag: buffered
        assert not got
        box.deliver(self._msg(tag=7))
        assert got and got[0].tag == 7

    def test_source_filtering(self):
        box = Mailbox()
        box.deliver(self._msg(source=10, tag=1))
        box.deliver(self._msg(source=20, tag=1))
        got = []
        box.take(20, 1, got.append)
        assert got[0].source == 20
        assert len(box) == 1

    def test_fifo_among_matching(self):
        box = Mailbox()
        m1, m2 = self._msg(tag=1), self._msg(tag=1)
        m1.seq, m2.seq = 1, 2
        box.deliver(m1)
        box.deliver(m2)
        got = []
        box.take(ANY, 1, got.append)
        assert got[0].seq == 1

    def test_double_pending_recv_rejected(self):
        box = Mailbox()
        box.take(ANY, 1, lambda m: None)
        with pytest.raises(SimulationError):
            box.take(ANY, 1, lambda m: None)


# ----------------------------------------------------------------------
class TestProcesses:
    def test_timeout_advances_time(self):
        cluster, nodes = make_cluster()
        seen = {}

        def body(ctx):
            yield Timeout(2.5)
            seen["t"] = ctx.now

        cluster.spawn("p", nodes[0], body)
        cluster.run()
        assert seen["t"] == 2.5

    def test_compute_seconds(self):
        cluster, nodes = make_cluster()

        def body(ctx):
            yield Compute(seconds=1.5)

        cluster.spawn("p", nodes[0], body)
        assert cluster.run() == 1.5

    def test_compute_flops_uses_rate(self):
        cluster, nodes = make_cluster()

        def body(ctx):
            yield Compute(flops=2e6)  # at 1 MFlop/s

        cluster.spawn("p", nodes[0], body)
        assert cluster.run() == pytest.approx(2.0)

    def test_cpu_contention_serializes(self):
        cluster, nodes = make_cluster(n_cpus=1)
        done = {}

        def body(ctx):
            yield Compute(seconds=1.0)
            done[ctx.name] = ctx.now

        cluster.spawn("a", nodes[0], body)
        cluster.spawn("b", nodes[0], body)
        cluster.run()
        assert sorted(done.values()) == [1.0, 2.0]

    def test_two_cpus_run_concurrently(self):
        cluster, nodes = make_cluster(n_cpus=2)
        done = {}

        def body(ctx):
            yield Compute(seconds=1.0)
            done[ctx.name] = ctx.now

        cluster.spawn("a", nodes[0], body)
        cluster.spawn("b", nodes[0], body)
        cluster.run()
        assert list(done.values()) == [1.0, 1.0]

    def test_send_recv_roundtrip_payload(self):
        cluster, nodes = make_cluster()
        got = {}

        def receiver(ctx):
            msg = yield Recv(tag=9)
            got["payload"] = msg.payload
            got["source"] = msg.source

        def sender(ctx, dest):
            yield Send(dest, nbytes=100, tag=9, payload={"x": 42})

        r = cluster.spawn("r", nodes[1], receiver)
        s = cluster.spawn("s", nodes[0], sender, r.tid)
        cluster.run()
        assert got["payload"] == {"x": 42}
        assert got["source"] == s.tid

    def test_message_latency_and_bandwidth(self):
        cluster, nodes = make_cluster()
        arrival = {}

        def receiver(ctx):
            yield Recv(tag=1)
            arrival["t"] = ctx.now

        def sender(ctx, dest):
            yield Send(dest, nbytes=1e6, tag=1)

        r = cluster.spawn("r", nodes[1], receiver)
        cluster.spawn("s", nodes[0], sender, r.tid)
        cluster.run()
        # 1 MB at 1 MB/s + 1 ms latency
        assert arrival["t"] == pytest.approx(1.001)

    def test_barrier_releases_together(self):
        cluster, nodes = make_cluster()
        release = {}

        def body(ctx, delay):
            yield Timeout(delay)
            yield Barrier("b", count=2, cost=0.5)
            release[ctx.name] = ctx.now

        cluster.spawn("fast", nodes[0], body, 1.0)
        cluster.spawn("slow", nodes[1], body, 3.0)
        cluster.run()
        assert release["fast"] == release["slow"] == pytest.approx(3.5)

    def test_barrier_traces_idle_and_sync(self):
        cluster, nodes = make_cluster()

        def body(ctx, delay):
            yield Timeout(delay)
            yield Barrier("b", count=2, cost=0.5)

        cluster.spawn("fast", nodes[0], body, 1.0)
        cluster.spawn("slow", nodes[1], body, 3.0)
        cluster.run()
        per = cluster.tracer.by_process()
        assert per["fast"]["idle"] == pytest.approx(2.0)
        assert per["fast"]["sync"] == pytest.approx(0.5)
        assert per["slow"].get("idle", 0.0) == pytest.approx(0.0)

    def test_barrier_overflow_detected(self):
        cluster, nodes = make_cluster()

        def body(ctx):
            yield Barrier("b", count=1, cost=0.0)
            yield Barrier("b", count=1, cost=0.0)

        cluster.spawn("p", nodes[0], body)
        cluster.run()  # generations separate reuse of the same name

    def test_missing_sender_deadlocks(self):
        cluster, nodes = make_cluster()

        def body(ctx):
            yield Recv(tag=404)

        cluster.spawn("p", nodes[0], body)
        with pytest.raises(DeadlockError):
            cluster.run()

    def test_process_return_value_captured(self):
        cluster, nodes = make_cluster()

        def body(ctx):
            yield Timeout(1.0)
            return "done"

        proc = cluster.spawn("p", nodes[0], body)
        cluster.run()
        assert proc.finished and proc.result == "done"

    def test_process_exception_surfaces(self):
        cluster, nodes = make_cluster()

        def body(ctx):
            yield Timeout(1.0)
            raise ValueError("app bug")

        cluster.spawn("p", nodes[0], body)
        with pytest.raises(SimulationError, match="raised"):
            cluster.run()

    def test_unknown_request_rejected(self):
        cluster, nodes = make_cluster()

        def body(ctx):
            yield "not-a-request"

        cluster.spawn("p", nodes[0], body)
        with pytest.raises(SimulationError, match="unsupported"):
            cluster.run()

    def test_compute_validation(self):
        with pytest.raises(ValueError):
            Compute()
        with pytest.raises(ValueError):
            Compute(seconds=1.0, flops=1.0)
        with pytest.raises(ValueError):
            Compute(seconds=-1.0)

    def test_messages_between_same_node_use_local_path(self):
        cluster, nodes = make_cluster()
        arrival = {}

        def receiver(ctx):
            yield Recv(tag=1)
            arrival["t"] = ctx.now

        def sender(ctx, dest):
            yield Send(dest, nbytes=1e6, tag=1)

        r = cluster.spawn("r", nodes[0], receiver)
        cluster.spawn("s", nodes[0], sender, r.tid)
        cluster.run()
        # local path defaults to 10x bandwidth, 10x lower latency
        assert arrival["t"] == pytest.approx(0.1001)
