"""Unit tests for seed-deterministic fault injection."""

import pytest

from repro.errors import FaultError
from repro.netsim import (
    Cluster,
    Node,
    RecvTimeout,
    SwitchedFabric,
    constant_rate,
)
from repro.netsim.faults import FaultPlan, FaultSpec, NodeCrash, NodeSlowdown
from repro.netsim.rng import RngRegistry
from repro.pvm import PvmSystem


def make_cluster(n_nodes=2, latency=1e-3, bandwidth=1e6, seed=0):
    cluster = Cluster(
        lambda e: SwitchedFabric(e, latency=latency, bandwidth=bandwidth),
        seed=seed,
    )
    nodes = [
        cluster.add_node(Node(cluster.engine, i, constant_rate(1e6)))
        for i in range(n_nodes)
    ]
    return cluster, nodes


# ---------------------------------------------------------------------------
# FaultSpec: validation, parsing, serialization
# ---------------------------------------------------------------------------

def test_default_spec_injects_nothing():
    spec = FaultSpec()
    assert not spec.enabled


def test_each_fault_kind_enables_the_spec():
    assert FaultSpec(drop=0.1).enabled
    assert FaultSpec(delay=0.1).enabled
    assert FaultSpec(outage_rate=0.5).enabled
    assert FaultSpec(crashes=(NodeCrash(1, 2.0),)).enabled
    assert FaultSpec(slowdowns=(NodeSlowdown(1, 0.0, 1.0, 2.0),)).enabled
    # resilience knobs alone do not make a spec faulted
    assert not FaultSpec(rpc_timeout=0.5, rpc_max_retries=2).enabled


@pytest.mark.parametrize(
    "kwargs",
    [
        {"drop": 1.0},
        {"drop": -0.1},
        {"delay": 1.5},
        {"delay_scale": -1.0},
        {"retransmit_rto": 0.0},
        {"rpc_timeout": -2.0},
        {"rpc_max_retries": -1},
        {"death_threshold": 0},
    ],
)
def test_invalid_spec_fields_raise(kwargs):
    with pytest.raises(FaultError):
        FaultSpec(**kwargs)


def test_invalid_crash_and_slowdown_events_raise():
    with pytest.raises(FaultError):
        NodeCrash(-1, 1.0)
    with pytest.raises(FaultError):
        NodeCrash(0, -1.0)
    with pytest.raises(FaultError):
        NodeSlowdown(0, 0.0, 0.0, 2.0)
    with pytest.raises(FaultError):
        NodeSlowdown(0, 0.0, 1.0, 0.5)


def test_parse_full_grammar():
    spec = FaultSpec.parse(
        "drop=0.01, delay=0.05, delay_scale=0.2, outage_rate=0.1,"
        "outage_duration=0.4, detect=0.02, rto=0.3, timeout=2.5,"
        "retries=4, backoff=0.1, backoff_cap=0.8, jitter=0.5, deaths=2,"
        "crash=3@1.5, crash=1@0.25, slowdown=2@0.5+2.0x4"
    )
    assert spec.drop == 0.01
    assert spec.delay == 0.05
    assert spec.delay_scale == 0.2
    assert spec.outage_rate == 0.1
    assert spec.outage_duration == 0.4
    assert spec.detection_latency == 0.02
    assert spec.retransmit_rto == 0.3
    assert spec.rpc_timeout == 2.5
    assert spec.rpc_max_retries == 4
    assert spec.backoff_base == 0.1
    assert spec.backoff_cap == 0.8
    assert spec.backoff_jitter == 0.5
    assert spec.death_threshold == 2
    assert spec.crashes == (NodeCrash(3, 1.5), NodeCrash(1, 0.25))
    assert spec.slowdowns == (NodeSlowdown(2, 0.5, 2.0, 4.0),)


def test_parse_rejects_unknown_and_malformed_items():
    with pytest.raises(FaultError, match="unknown chaos key"):
        FaultSpec.parse("dorp=0.1")
    with pytest.raises(FaultError, match="key=value"):
        FaultSpec.parse("drop")
    with pytest.raises(FaultError, match="cannot parse"):
        FaultSpec.parse("crash=three@1.5")


def test_as_dict_is_stable_and_json_plain():
    import json

    spec = FaultSpec.parse("drop=0.01,crash=2@1.5,slowdown=0@0.1+1.0x2")
    d1, d2 = spec.as_dict(), spec.as_dict()
    assert d1 == d2
    assert d1["crashes"] == [[2, 1.5]]
    assert d1["slowdowns"] == [[0, 0.1, 1.0, 2.0]]
    json.dumps(d1)  # must serialize without a custom encoder


# ---------------------------------------------------------------------------
# FaultPlan: determinism and fault arithmetic
# ---------------------------------------------------------------------------

def penalty_sequence(spec, seed, n=64):
    cluster, nodes = make_cluster()
    plan = FaultPlan(spec, RngRegistry(seed))
    return [
        plan.transfer_penalty(0.01 * i, nodes[0], nodes[1], 100.0)
        for i in range(n)
    ]


def test_fault_plan_is_seed_deterministic():
    spec = FaultSpec(drop=0.2, delay=0.3, outage_rate=0.5, outage_duration=0.1)
    assert penalty_sequence(spec, seed=7) == penalty_sequence(spec, seed=7)
    assert penalty_sequence(spec, seed=7) != penalty_sequence(spec, seed=8)


def test_zero_fault_plan_charges_nothing():
    assert penalty_sequence(FaultSpec(), seed=0) == [0.0] * 64


def test_drop_penalty_follows_rto_backoff():
    # drop -> retransmit-delay, never silent loss: k consecutive losses
    # cost rto * (2^k - 1) extra seconds
    spec = FaultSpec(drop=0.5, retransmit_rto=0.1)
    plan = FaultPlan(spec, RngRegistry(3))
    cluster, nodes = make_cluster()
    penalties = [
        plan.transfer_penalty(0.0, nodes[0], nodes[1], 10.0) for _ in range(200)
    ]
    assert plan.drops > 0
    allowed = {spec.retransmit_rto * (2**k - 1) for k in range(33)}
    for p in penalties:
        assert min(abs(p - a) for a in allowed) < 1e-12


def test_install_skips_crashes_on_absent_nodes():
    cluster, nodes = make_cluster(n_nodes=2)
    spec = FaultSpec(crashes=(NodeCrash(17, 0.5),))
    FaultPlan(spec, cluster.rng).install(cluster)
    cluster.engine.run()  # no event may blow up on the missing node
    assert all(not n.crashed for n in cluster.nodes)


# ---------------------------------------------------------------------------
# recv deadlines and crash delivery through the stack
# ---------------------------------------------------------------------------

def test_recv_timeout_returns_recv_timeout_marker():
    cluster, nodes = make_cluster()
    pvm = PvmSystem(cluster)
    seen = {}

    def body(task):
        msg = yield from task.recv(source=99, timeout=0.75)
        seen["msg"] = msg
        seen["when"] = task.now

    pvm.spawn("waiter", nodes[0], body)
    pvm.run()
    assert isinstance(seen["msg"], RecvTimeout)
    assert seen["when"] == pytest.approx(0.75)


def test_trecv_delivers_message_that_arrives_in_time():
    cluster, nodes = make_cluster()
    pvm = PvmSystem(cluster)
    seen = {}

    def sender(task, dest):
        yield from task.delay(0.2)
        yield from task.send(dest, 5, nbytes=10, payload="hi")

    def receiver(task):
        msg = yield from task.trecv(source=None, tag=5, timeout=2.0)
        seen["payload"] = msg.payload

    rp = pvm.spawn("rx", nodes[0], receiver)
    pvm.spawn("tx", nodes[1], sender, rp.tid)
    pvm.run()
    assert seen["payload"] == "hi"


def test_crash_node_kills_processes_and_fires_listeners():
    cluster, nodes = make_cluster(n_nodes=2)
    pvm = PvmSystem(cluster)
    deaths = []
    cluster.add_death_listener(lambda proc: deaths.append(proc.name))

    def victim(task):
        yield from task.delay(100.0)

    def survivor(task):
        yield from task.delay(0.1)

    pvm.spawn("victim", nodes[1], victim)
    pvm.spawn("survivor", nodes[0], survivor)
    cluster.engine.schedule_at(
        0.5, lambda: cluster.crash_node(1, detection_latency=0.05)
    )
    cluster.engine.run()
    assert deaths == ["victim"]
    assert cluster.node(1).crashed


def test_send_to_crashed_node_is_dead_lettered():
    cluster, nodes = make_cluster(n_nodes=2)
    pvm = PvmSystem(cluster)

    def victim(task):
        yield from task.delay(100.0)

    def talker(task, dest):
        yield from task.delay(1.0)  # after the crash below
        yield from task.send(dest, 7, nbytes=10, payload="lost")

    vp = pvm.spawn("victim", nodes[1], victim)
    pvm.spawn("talker", nodes[0], talker, vp.tid)
    cluster.engine.schedule_at(0.5, lambda: cluster.crash_node(1))
    cluster.engine.run()
    assert cluster.metrics.counters["faults.dead_letters"].value >= 1
