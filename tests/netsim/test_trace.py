"""Unit tests for event tracing."""

import pytest

from repro.netsim.trace import Tracer


def test_record_and_totals():
    tr = Tracer()
    tr.record("p0", "compute", 0.0, 2.0)
    tr.record("p0", "compute", 3.0, 4.0)
    tr.record("p1", "comm", 0.0, 1.5)
    assert tr.by_category() == {"compute": 3.0, "comm": 1.5}
    per = tr.by_process()
    assert per["p0"]["compute"] == 3.0
    assert per["p1"]["comm"] == 1.5


def test_invalid_interval_rejected():
    tr = Tracer()
    with pytest.raises(ValueError):
        tr.record("p", "x", 2.0, 1.0)


def test_disabled_tracer_records_nothing():
    tr = Tracer(enabled=False)
    tr.record("p", "x", 0.0, 1.0)
    assert tr.records == []


def test_interval_filtering():
    tr = Tracer()
    tr.record("p0", "a", 0.0, 1.0)
    tr.record("p0", "b", 1.0, 2.0)
    tr.record("p1", "a", 0.0, 1.0)
    assert len(tr.intervals(proc="p0")) == 2
    assert len(tr.intervals(category="a")) == 2
    assert len(tr.intervals(proc="p1", category="b")) == 0


def test_span_and_makespan():
    tr = Tracer()
    assert tr.span() == (0.0, 0.0)
    tr.record("p", "a", 1.0, 2.0)
    tr.record("p", "b", 0.5, 1.2)
    assert tr.span() == (0.5, 2.0)
    assert tr.makespan() == pytest.approx(1.5)


def test_gantt_renders_rows():
    tr = Tracer()
    tr.record("alpha", "compute", 0.0, 1.0)
    tr.record("beta", "idle", 0.0, 1.0)
    art = tr.gantt(width=10)
    lines = art.splitlines()
    assert len(lines) == 2
    assert "c" in lines[0]  # compute dominates alpha's row
    assert "i" in lines[1]


def test_gantt_empty():
    assert Tracer().gantt() == "(empty trace)"


def test_gantt_category_filter():
    tr = Tracer()
    tr.record("p", "compute", 0.0, 1.0)
    tr.record("p", "idle", 1.0, 2.0)
    art = tr.gantt(width=10, categories=["idle"])
    assert "c" not in art.splitlines()[0].split("|")[1]
