"""Unit tests for the discrete-event engine.

The whole module runs once per scheduler (``calendar`` and ``heap``):
the two implementations must be observationally identical — same
firing order, same clocks, same counters — which is also pinned
adversarially by ``test_scheduler_differential.py``.
"""

import pytest

from repro.errors import DeadlockError, PastEventError, SimulationError
from repro.netsim.engine import SCHEDULERS, Engine


@pytest.fixture(params=SCHEDULERS)
def make_engine(request):
    """Factory for an Engine of the parametrized scheduler kind."""

    def _make():
        return Engine(scheduler=request.param)

    return _make


def test_default_scheduler_is_calendar():
    assert Engine().scheduler == "calendar"


def test_unknown_scheduler_rejected():
    with pytest.raises(SimulationError, match="unknown scheduler"):
        Engine(scheduler="fifo")


def test_time_starts_at_zero(make_engine):
    assert make_engine().now == 0.0


def test_events_fire_in_time_order(make_engine):
    eng = make_engine()
    fired = []
    eng.schedule(2.0, lambda: fired.append("late"))
    eng.schedule(1.0, lambda: fired.append("early"))
    eng.schedule(1.5, lambda: fired.append("middle"))
    eng.run()
    assert fired == ["early", "middle", "late"]


def test_same_time_events_fire_in_schedule_order(make_engine):
    eng = make_engine()
    fired = []
    for i in range(10):
        eng.schedule(1.0, lambda i=i: fired.append(i))
    eng.run()
    assert fired == list(range(10))


def test_now_advances_to_event_time(make_engine):
    eng = make_engine()
    seen = []
    eng.schedule(3.25, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [3.25]
    assert eng.now == 3.25


def test_negative_delay_rejected(make_engine):
    eng = make_engine()
    with pytest.raises(SimulationError):
        eng.schedule(-0.1, lambda: None)


def test_run_until_stops_early(make_engine):
    eng = make_engine()
    fired = []
    eng.schedule(1.0, lambda: fired.append(1))
    eng.schedule(5.0, lambda: fired.append(5))
    t = eng.run(until=2.0)
    assert fired == [1]
    assert t == 2.0
    assert eng.pending() == 1
    eng.run()
    assert fired == [1, 5]


def test_nested_scheduling_from_callbacks(make_engine):
    eng = make_engine()
    fired = []

    def outer():
        fired.append(("outer", eng.now))
        eng.schedule(1.0, inner)

    def inner():
        fired.append(("inner", eng.now))

    eng.schedule(1.0, outer)
    eng.run()
    assert fired == [("outer", 1.0), ("inner", 2.0)]


def test_schedule_at_absolute_time(make_engine):
    eng = make_engine()
    seen = []
    eng.schedule(1.0, lambda: eng.schedule_at(4.0, lambda: seen.append(eng.now)))
    eng.run()
    assert seen == [4.0]


def test_schedule_at_past_raises_dedicated_error(make_engine):
    eng = make_engine()
    eng.schedule(2.0, lambda: None)
    eng.run()
    with pytest.raises(PastEventError, match=r"t=1\.0.*now=2\.0") as excinfo:
        eng.schedule_at(1.0, lambda: None)
    assert excinfo.value.time == 1.0
    assert excinfo.value.now == 2.0


def test_schedule_at_current_time_allowed(make_engine):
    eng = make_engine()
    fired = []
    eng.schedule(1.0, lambda: eng.schedule_at(eng.now, lambda: fired.append(eng.now)))
    eng.run()
    assert fired == [1.0]


def test_events_executed_counter(make_engine):
    eng = make_engine()
    for _ in range(5):
        eng.schedule(1.0, lambda: None)
    eng.run()
    assert eng.events_executed == 5


def test_events_scheduled_counts_all_schedules(make_engine):
    eng = make_engine()
    eng.schedule(1.0, lambda: eng.schedule(0.5, lambda: None))
    eng.schedule(1.0, lambda: None)
    eng.run()
    assert eng.events_scheduled == 3
    assert eng.events_executed == 3


def test_run_all_raises_on_blocked_processes(make_engine):
    eng = make_engine()
    eng.blocked_processes = 1
    with pytest.raises(DeadlockError):
        eng.run_all()


def test_reentrant_run_rejected(make_engine):
    eng = make_engine()
    errors = []

    def recurse():
        try:
            eng.run()
        except SimulationError as exc:
            errors.append(exc)

    eng.schedule(0.0, recurse)
    eng.run()
    assert len(errors) == 1


def test_zero_delay_events_fire_at_current_time(make_engine):
    eng = make_engine()
    times = []
    eng.schedule(1.0, lambda: eng.schedule(0.0, lambda: times.append(eng.now)))
    eng.run()
    assert times == [1.0]


def test_run_until_advances_clock_when_queue_drains_early(make_engine):
    # regression: the clock must land on `until` even when no event
    # exists beyond it — run(until=t) used to return the last event time
    eng = make_engine()
    eng.schedule(1.0, lambda: None)
    assert eng.run(until=5.0) == 5.0
    assert eng.now == 5.0


def test_run_until_on_empty_queue_advances_clock(make_engine):
    eng = make_engine()
    assert eng.run(until=2.5) == 2.5
    assert eng.now == 2.5


def test_run_until_result_independent_of_later_events(make_engine):
    # the two queues below must stop at the same time: the presence of
    # an event after the horizon may not change the returned clock
    with_later = make_engine()
    with_later.schedule(1.0, lambda: None)
    with_later.schedule(9.0, lambda: None)
    without_later = make_engine()
    without_later.schedule(1.0, lambda: None)
    assert with_later.run(until=3.0) == without_later.run(until=3.0) == 3.0


def test_run_until_in_the_past_does_not_rewind_clock(make_engine):
    eng = make_engine()
    eng.schedule(2.0, lambda: None)
    eng.schedule(10.0, lambda: None)
    assert eng.run(until=3.0) == 3.0
    # a second run with an earlier horizon must not go backwards
    assert eng.run(until=1.0) == 3.0
    assert eng.now == 3.0


def test_event_exactly_at_until_fires_before_clock_parks(make_engine):
    # regression: `time > until` is the stop condition, not `>=` — an
    # event scheduled exactly on the horizon belongs to the run
    eng = make_engine()
    fired = []
    eng.schedule(2.0, lambda: fired.append(eng.now))
    assert eng.run(until=2.0) == 2.0
    assert fired == [2.0]
    assert eng.pending() == 0


def test_zero_delay_chain_at_until_completes(make_engine):
    # zero-delay follow-ups scheduled *by* the at-horizon event are at
    # the same instant, hence still inside the horizon
    eng = make_engine()
    fired = []
    eng.schedule(2.0, lambda: eng.schedule(0.0, lambda: fired.append(eng.now)))
    eng.run(until=2.0)
    assert fired == [2.0]


def test_second_run_with_earlier_until_identical_across_schedulers():
    # regression: both schedulers must treat a redundant earlier horizon
    # as the same no-op, leaving queue contents and counters untouched
    def drive(kind):
        eng = Engine(scheduler=kind)
        fired = []
        for d in (1.0, 2.0, 2.0, 4.0):
            eng.schedule(d, lambda d=d: fired.append((d, eng.now)))
        t1 = eng.run(until=3.0)
        t2 = eng.run(until=1.0)  # earlier than the clock: no-op
        t3 = eng.run()
        return fired, (t1, t2, t3), eng.events_executed, eng.pending()

    assert drive("calendar") == drive("heap")


def test_callback_exception_preserves_remaining_events(make_engine):
    # a raising callback must not orphan later events at the same
    # instant: the engine stays consistent and a subsequent run()
    # executes the remainder in the original order
    eng = make_engine()
    fired = []

    def boom():
        raise RuntimeError("app bug")

    eng.schedule(1.0, lambda: fired.append("a"))
    eng.schedule(1.0, boom)
    eng.schedule(1.0, lambda: fired.append("b"))
    eng.schedule(2.0, lambda: fired.append("c"))
    with pytest.raises(RuntimeError):
        eng.run()
    assert fired == ["a"]
    assert eng.pending() == 2
    eng.run()
    assert fired == ["a", "b", "c"]


def test_run_all_reports_blocked_process_count(make_engine):
    eng = make_engine()
    eng.blocked_processes = 2
    with pytest.raises(DeadlockError, match="2 process"):
        eng.run_all()


def test_max_queue_depth_identical_across_schedulers():
    def drive(kind):
        eng = Engine(scheduler=kind)
        for d in (3.0, 1.0, 1.0, 2.0, 2.0, 2.0):
            eng.schedule(d, lambda: None)
        eng.run()
        return eng.max_queue_depth

    assert drive("calendar") == drive("heap") == 6
