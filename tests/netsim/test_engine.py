"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import DeadlockError, PastEventError, SimulationError
from repro.netsim.engine import Engine


def test_time_starts_at_zero():
    assert Engine().now == 0.0


def test_events_fire_in_time_order():
    eng = Engine()
    fired = []
    eng.schedule(2.0, lambda: fired.append("late"))
    eng.schedule(1.0, lambda: fired.append("early"))
    eng.schedule(1.5, lambda: fired.append("middle"))
    eng.run()
    assert fired == ["early", "middle", "late"]


def test_same_time_events_fire_in_schedule_order():
    eng = Engine()
    fired = []
    for i in range(10):
        eng.schedule(1.0, lambda i=i: fired.append(i))
    eng.run()
    assert fired == list(range(10))


def test_now_advances_to_event_time():
    eng = Engine()
    seen = []
    eng.schedule(3.25, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [3.25]
    assert eng.now == 3.25


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(-0.1, lambda: None)


def test_run_until_stops_early():
    eng = Engine()
    fired = []
    eng.schedule(1.0, lambda: fired.append(1))
    eng.schedule(5.0, lambda: fired.append(5))
    t = eng.run(until=2.0)
    assert fired == [1]
    assert t == 2.0
    assert eng.pending() == 1
    eng.run()
    assert fired == [1, 5]


def test_nested_scheduling_from_callbacks():
    eng = Engine()
    fired = []

    def outer():
        fired.append(("outer", eng.now))
        eng.schedule(1.0, inner)

    def inner():
        fired.append(("inner", eng.now))

    eng.schedule(1.0, outer)
    eng.run()
    assert fired == [("outer", 1.0), ("inner", 2.0)]


def test_schedule_at_absolute_time():
    eng = Engine()
    seen = []
    eng.schedule(1.0, lambda: eng.schedule_at(4.0, lambda: seen.append(eng.now)))
    eng.run()
    assert seen == [4.0]


def test_schedule_at_past_raises_dedicated_error():
    eng = Engine()
    eng.schedule(2.0, lambda: None)
    eng.run()
    with pytest.raises(PastEventError, match=r"t=1\.0.*now=2\.0") as excinfo:
        eng.schedule_at(1.0, lambda: None)
    assert excinfo.value.time == 1.0
    assert excinfo.value.now == 2.0


def test_schedule_at_current_time_allowed():
    eng = Engine()
    fired = []
    eng.schedule(1.0, lambda: eng.schedule_at(eng.now, lambda: fired.append(eng.now)))
    eng.run()
    assert fired == [1.0]


def test_events_executed_counter():
    eng = Engine()
    for _ in range(5):
        eng.schedule(1.0, lambda: None)
    eng.run()
    assert eng.events_executed == 5


def test_run_all_raises_on_blocked_processes():
    eng = Engine()
    eng.blocked_processes = 1
    with pytest.raises(DeadlockError):
        eng.run_all()


def test_reentrant_run_rejected():
    eng = Engine()
    errors = []

    def recurse():
        try:
            eng.run()
        except SimulationError as exc:
            errors.append(exc)

    eng.schedule(0.0, recurse)
    eng.run()
    assert len(errors) == 1


def test_zero_delay_events_fire_at_current_time():
    eng = Engine()
    times = []
    eng.schedule(1.0, lambda: eng.schedule(0.0, lambda: times.append(eng.now)))
    eng.run()
    assert times == [1.0]


def test_run_until_advances_clock_when_queue_drains_early():
    # regression: the clock must land on `until` even when no event
    # exists beyond it — run(until=t) used to return the last event time
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    assert eng.run(until=5.0) == 5.0
    assert eng.now == 5.0


def test_run_until_on_empty_queue_advances_clock():
    eng = Engine()
    assert eng.run(until=2.5) == 2.5
    assert eng.now == 2.5


def test_run_until_result_independent_of_later_events():
    # the two queues below must stop at the same time: the presence of
    # an event after the horizon may not change the returned clock
    with_later = Engine()
    with_later.schedule(1.0, lambda: None)
    with_later.schedule(9.0, lambda: None)
    without_later = Engine()
    without_later.schedule(1.0, lambda: None)
    assert with_later.run(until=3.0) == without_later.run(until=3.0) == 3.0


def test_run_until_in_the_past_does_not_rewind_clock():
    eng = Engine()
    eng.schedule(2.0, lambda: None)
    eng.schedule(10.0, lambda: None)
    assert eng.run(until=3.0) == 3.0
    # a second run with an earlier horizon must not go backwards
    assert eng.run(until=1.0) == 3.0
    assert eng.now == 3.0


def test_run_all_reports_blocked_process_count():
    eng = Engine()
    eng.blocked_processes = 2
    with pytest.raises(DeadlockError, match="2 process"):
        eng.run_all()
