"""Unit tests for efficiency / isoefficiency analysis."""

import pytest

from repro.core.isoefficiency import (
    efficiency,
    isoefficiency_curve,
    isoefficiency_size,
    scaled_complex,
)
from repro.core.model import OpalPerformanceModel
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.errors import ModelError
from repro.opal.complexes import MEDIUM
from repro.platforms import CRAY_J90, CRAY_T3E


def app(**kw):
    defaults = dict(molecule=MEDIUM, steps=10, cutoff=10.0)
    defaults.update(kw)
    return ApplicationParams(**defaults)


@pytest.fixture
def j90_model():
    return OpalPerformanceModel(ModelPlatformParams.from_spec(CRAY_J90))


@pytest.fixture
def t3e_model():
    return OpalPerformanceModel(ModelPlatformParams.from_spec(CRAY_T3E))


def test_scaled_complex_preserves_shape():
    doubled = scaled_complex(MEDIUM, 2.0)
    assert doubled.n == pytest.approx(2 * MEDIUM.n, rel=0.01)
    assert doubled.gamma == pytest.approx(MEDIUM.gamma, abs=0.01)
    assert doubled.density == MEDIUM.density
    with pytest.raises(ModelError):
        scaled_complex(MEDIUM, 0.0)


def test_efficiency_bounds(j90_model):
    e1 = efficiency(j90_model, app(servers=1))
    assert e1 == pytest.approx(1.0)
    e7 = efficiency(j90_model, app(servers=7))
    assert 0.0 < e7 < 1.0


def test_efficiency_increases_with_problem_size(j90_model):
    small = efficiency(j90_model, app(servers=4))
    big = efficiency(
        j90_model, app(servers=4, molecule=scaled_complex(MEDIUM, 8.0))
    )
    assert big > small


def test_isoefficiency_point_meets_target(j90_model):
    point = isoefficiency_size(j90_model, app(), servers=4, target=0.5)
    assert point.n_required is not None
    mol = scaled_complex(MEDIUM, point.scale_factor)
    e = efficiency(j90_model, app(servers=4, molecule=mol))
    assert e == pytest.approx(0.5, abs=0.02)


def test_isoefficiency_grows_with_p(j90_model):
    curve = isoefficiency_curve(j90_model, app(), servers=(2, 4, 7), target=0.5)
    sizes = [pt.n_required for pt in curve]
    assert all(s is not None for s in sizes)
    assert sizes[0] < sizes[1] < sizes[2]


def test_t3e_needs_smaller_problems_than_j90(j90_model, t3e_model):
    # better communication -> gentler isoefficiency function
    j = isoefficiency_size(j90_model, app(), servers=7, target=0.5)
    t = isoefficiency_size(t3e_model, app(), servers=7, target=0.5)
    assert t.n_required < j.n_required


def test_unreachable_target_returns_none(j90_model):
    point = isoefficiency_size(
        j90_model, app(), servers=64, target=0.95, max_scale=2.0
    )
    assert point.n_required is None


def test_validation(j90_model):
    with pytest.raises(ModelError):
        isoefficiency_size(j90_model, app(), servers=4, target=1.5)
    with pytest.raises(ModelError):
        isoefficiency_size(j90_model, app(), servers=0)
