"""Unit tests for the space complexity model (Section 2.6)."""

import pytest

from repro.core.memhier import MemoryHierarchy
from repro.core.space import SpaceModel
from repro.errors import ModelError
from repro.opal.complexes import LARGE, MEDIUM


def test_pair_list_matches_paper_large_example():
    # the paper prints ~160'000'000 bytes for the 6290-center example
    model = SpaceModel(LARGE)
    assert model.pair_list_total() == pytest.approx(160e6, rel=0.10)


def test_pair_list_scales_down_with_servers():
    model = SpaceModel(MEDIUM)
    assert model.pair_list_per_server(4) == model.pair_list_total() / 4
    with pytest.raises(ModelError):
        model.pair_list_per_server(0)


def test_coordinates_and_gradients_linear():
    model = SpaceModel(MEDIUM)
    assert model.coordinates() == 24 * MEDIUM.n
    assert model.gradients() == 24 * MEDIUM.n


def test_interaction_tables_megabyte_order():
    # the paper prints ~3'000'000 bytes for the large example
    model = SpaceModel(LARGE)
    assert 5e5 < model.interaction_tables() < 1e7


def test_interaction_tables_do_not_scale_with_servers():
    model = SpaceModel(LARGE)
    ws1 = model.server_working_set(1)
    ws8 = model.server_working_set(8)
    # only the pair list shrinks
    assert ws1 - ws8 == pytest.approx(
        model.pair_list_total() * (1 - 1 / 8), rel=1e-9
    )


def test_energy_values_constant():
    assert SpaceModel(MEDIUM).energy_values() == 16.0


def test_table_keys():
    t = SpaceModel(MEDIUM).table(servers=2)
    assert set(t) == {
        "pair list",
        "atom coordinates",
        "atom gradients",
        "atom interactions",
        "energy values",
        "per-server pair list",
    }


def test_memory_regimes():
    mem = MemoryHierarchy(base_rate=32e6, cache_bytes=256e3, core_bytes=64e6)
    model = SpaceModel(LARGE)
    # one server holding the whole large pair list spills out of core
    assert model.regime(mem, 1) == "out-of-core"
    assert not model.fits_in_core(mem, 1)
    # enough servers shrink the per-server share into core
    p_min = model.min_servers_in_core(mem)
    assert p_min is not None and p_min > 1
    assert model.fits_in_core(mem, p_min)


def test_min_servers_in_core_none_when_impossible():
    mem = MemoryHierarchy(base_rate=32e6, cache_bytes=1e3, core_bytes=1e5)
    model = SpaceModel(LARGE)
    # the replicated global tables alone exceed core: no p helps
    assert model.min_servers_in_core(mem, p_max=64) is None


def test_client_working_set_small():
    model = SpaceModel(LARGE)
    assert model.client_working_set() < 1e6
