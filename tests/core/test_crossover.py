"""Unit tests for crossover and optimal-server analysis."""

import pytest

from repro.core.crossover import (
    communication_fraction,
    optimal_servers,
    update_nbint_crossover_n,
)
from repro.core.model import OpalPerformanceModel
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.opal.complexes import MEDIUM
from repro.platforms import CRAY_J90, FAST_COPS


@pytest.fixture
def j90_model():
    return OpalPerformanceModel(ModelPlatformParams.from_spec(CRAY_J90))


def test_crossover_beyond_practical_sizes(j90_model):
    # the paper: "crossover happens for unrealistic numbers of water
    # molecules or protein atoms"
    app = ApplicationParams(molecule=MEDIUM, cutoff=10.0, update_interval=1)
    n_cross = update_nbint_crossover_n(j90_model, app)
    assert n_cross is not None
    assert n_cross > 5 * MEDIUM.n


def test_no_crossover_without_cutoff(j90_model):
    # both terms quadratic, energy dominates at any n: never crosses
    app = ApplicationParams(molecule=MEDIUM, cutoff=None, update_interval=1)
    assert update_nbint_crossover_n(j90_model, app, n_max=10**6) is None


def test_reducing_update_frequency_pushes_crossover_out(j90_model):
    app1 = ApplicationParams(molecule=MEDIUM, cutoff=10.0, update_interval=1)
    app10 = ApplicationParams(molecule=MEDIUM, cutoff=10.0, update_interval=10)
    c1 = update_nbint_crossover_n(j90_model, app1)
    c10 = update_nbint_crossover_n(j90_model, app10, n_max=100_000_000)
    assert c10 is None or c10 > c1


def test_optimal_servers_j90_cutoff_near_three(j90_model):
    # the paper: "no benefit in putting more than three processors at
    # work" for J90/slow CoPs with effective cutoff
    app = ApplicationParams(molecule=MEDIUM, steps=10, cutoff=10.0)
    assert 1 <= optimal_servers(j90_model, app) <= 3


def test_optimal_servers_fast_cops_higher():
    model = OpalPerformanceModel(ModelPlatformParams.from_spec(FAST_COPS))
    app = ApplicationParams(molecule=MEDIUM, steps=10, cutoff=10.0)
    j90 = OpalPerformanceModel(ModelPlatformParams.from_spec(CRAY_J90))
    assert optimal_servers(model, app) > optimal_servers(j90, app)


def test_optimal_servers_no_cutoff_large(j90_model):
    app = ApplicationParams(molecule=MEDIUM, steps=10, cutoff=None)
    assert optimal_servers(j90_model, app, p_max=64) >= 7


def test_communication_fraction_monotone_in_p(j90_model):
    app = ApplicationParams(molecule=MEDIUM, steps=10, cutoff=10.0)
    fracs = [
        communication_fraction(j90_model, app.with_(servers=p)) for p in (1, 3, 7)
    ]
    assert fracs[0] < fracs[1] < fracs[2]
    assert 0 < fracs[0] < 1
