"""Unit tests for the time breakdown structure."""

import pytest

from repro.core.breakdown import TimeBreakdown


def test_total_is_component_sum():
    b = TimeBreakdown(update=1, nbint=2, seq_comp=3, comm=4, sync=5, idle=6)
    assert b.par_comp == 3
    assert b.total == 21


def test_negative_component_rejected():
    with pytest.raises(ValueError):
        TimeBreakdown(update=-1.0)


def test_as_dict_merged_and_full():
    b = TimeBreakdown(update=1, nbint=2, comm=3)
    full = b.as_dict()
    assert full["update"] == 1 and full["nbint"] == 2
    merged = b.as_dict(merge_par=True)
    assert merged["par_comp"] == 3
    assert "update" not in merged


def test_fractions_sum_to_one():
    b = TimeBreakdown(update=1, nbint=1, seq_comp=1, comm=1, sync=1, idle=1)
    assert sum(b.fractions().values()) == pytest.approx(1.0)


def test_fractions_of_zero_breakdown():
    assert all(v == 0.0 for v in TimeBreakdown().fractions().values())


def test_addition_and_scaling():
    a = TimeBreakdown(update=1, comm=2)
    b = TimeBreakdown(update=3, sync=1)
    c = a + b
    assert c.update == 4 and c.comm == 2 and c.sync == 1
    assert c.scaled(0.5).update == 2


def test_mean():
    a = TimeBreakdown(update=1)
    b = TimeBreakdown(update=3)
    assert TimeBreakdown.mean([a, b]).update == 2
    with pytest.raises(ValueError):
        TimeBreakdown.mean([])


def test_category_names():
    assert TimeBreakdown.category_names() == (
        "update", "nbint", "seq_comp", "comm", "sync", "idle",
    )
    assert TimeBreakdown.category_names(merge_par=True)[0] == "par_comp"
