"""Unit tests for speedup/efficiency/saturation metrics."""

import pytest

from repro.core.speedup import (
    amdahl_bound,
    compare_platforms,
    efficiency_curve,
    saturation_point,
    slows_down,
    speedup_curve,
)
from repro.errors import ModelError


def test_speedup_curve_basics():
    assert speedup_curve([10.0, 5.0, 2.5]) == [1.0, 2.0, 4.0]


def test_speedup_validation():
    with pytest.raises(ModelError):
        speedup_curve([])
    with pytest.raises(ModelError):
        speedup_curve([0.0, 1.0])
    with pytest.raises(ModelError):
        speedup_curve([1.0, -1.0])


def test_efficiency_curve():
    eff = efficiency_curve([10.0, 5.0, 2.5], [1, 2, 4])
    assert eff == pytest.approx([1.0, 1.0, 1.0])
    eff2 = efficiency_curve([10.0, 10.0], [1, 2])
    assert eff2[1] == pytest.approx(0.5)


def test_efficiency_length_mismatch():
    with pytest.raises(ModelError):
        efficiency_curve([1.0], [1, 2])


def test_saturation_point():
    # J90-with-cutoff shape: best at 2-3 then worse
    times = [6.1, 5.4, 6.2, 7.2, 8.5]
    assert saturation_point(times, [1, 2, 3, 4, 5]) == 2


def test_slows_down():
    assert slows_down([5.0, 4.0, 4.5])
    assert not slows_down([5.0, 4.0, 3.9])
    assert not slows_down([5.0])


def test_compare_platforms_sorted_by_best_time():
    curves = {"fast": [4.0, 2.0], "slow": [10.0, 6.0]}
    rows = compare_platforms(curves, [1, 2])
    assert rows[0][0] == "fast"
    assert rows[0][1] == 2.0
    assert rows[1][3] == 2  # slow saturates at p=2


def test_compare_platforms_length_check():
    with pytest.raises(ModelError):
        compare_platforms({"x": [1.0]}, [1, 2])


def test_amdahl_bound():
    assert amdahl_bound(0.0, 8) == pytest.approx(8.0)
    assert amdahl_bound(1.0, 8) == pytest.approx(1.0)
    assert amdahl_bound(0.1, 10**6) == pytest.approx(10.0, rel=1e-4)
    with pytest.raises(ModelError):
        amdahl_bound(1.5, 2)
    with pytest.raises(ModelError):
        amdahl_bound(0.5, 0)
