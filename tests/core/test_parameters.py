"""Unit tests for application/platform model parameters."""

import math

import pytest

from repro.core.parameters import (
    ApplicationParams,
    ModelPlatformParams,
    energy_pair_work,
    update_pair_work,
)
from repro.errors import ModelError
from repro.opal import costs
from repro.opal.complexes import MEDIUM
from repro.platforms import CRAY_J90


def test_defaults_and_symbols():
    app = ApplicationParams(molecule=MEDIUM)
    assert app.s == 10 and app.p == 1
    assert app.n == MEDIUM.n
    assert app.gamma == MEDIUM.gamma
    assert app.alpha == 24


def test_update_rate_is_reciprocal_interval():
    # DESIGN.md notation fix: u in the formulas is updates per step
    assert ApplicationParams(molecule=MEDIUM, update_interval=1).update_rate == 1.0
    assert ApplicationParams(molecule=MEDIUM, update_interval=10).update_rate == 0.1


def test_validation():
    with pytest.raises(ModelError):
        ApplicationParams(molecule=MEDIUM, steps=0)
    with pytest.raises(ModelError):
        ApplicationParams(molecule=MEDIUM, servers=0)
    with pytest.raises(ModelError):
        ApplicationParams(molecule=MEDIUM, update_interval=0)
    with pytest.raises(ModelError):
        ApplicationParams(molecule=MEDIUM, cutoff=-2.0)


def test_with_copies():
    app = ApplicationParams(molecule=MEDIUM, servers=2)
    app7 = app.with_(servers=7)
    assert app7.servers == 7 and app.servers == 2


def test_n_tilde_passthrough():
    app = ApplicationParams(molecule=MEDIUM, cutoff=None)
    assert math.isinf(app.n_tilde)
    assert not ApplicationParams(molecule=MEDIUM, cutoff=60.0).cutoff_effective
    assert ApplicationParams(molecule=MEDIUM, cutoff=10.0).cutoff_effective


# ----------------------------------------------------------------------
def test_platform_params_validation():
    with pytest.raises(ModelError):
        ModelPlatformParams("x", a1=0.0, b1=0, a2=0, a3=0, a4=0, b5=0)
    with pytest.raises(ModelError):
        ModelPlatformParams("x", a1=1.0, b1=-1, a2=0, a3=0, a4=0, b5=0)


def test_from_spec_uses_table_data():
    mp = ModelPlatformParams.from_spec(CRAY_J90)
    assert mp.a1 == CRAY_J90.net_bw
    assert mp.b1 == CRAY_J90.net_latency
    assert mp.b5 == CRAY_J90.sync_cost
    assert mp.a3 == pytest.approx(costs.NB_PAIR_FLOPS / CRAY_J90.cpu_rate)


def test_compute_rate_roundtrip():
    mp = ModelPlatformParams.from_spec(CRAY_J90)
    assert mp.compute_rate_mflops() == pytest.approx(CRAY_J90.cpu_rate / 1e6)


def test_scaled_compute():
    mp = ModelPlatformParams.from_spec(CRAY_J90)
    slow = mp.scaled_compute(2.0)
    assert slow.a2 == 2 * mp.a2 and slow.a3 == 2 * mp.a3 and slow.a4 == 2 * mp.a4
    assert slow.a1 == mp.a1  # communication untouched
    with pytest.raises(ModelError):
        mp.scaled_compute(0.0)


# ----------------------------------------------------------------------
def test_update_pair_work_matches_eq3_form():
    n, gamma = 4289, 2714 / 4289
    g = 1 - 2 * gamma
    assert update_pair_work(n, gamma) == pytest.approx((g * g * n * n - g * n) / 2)


def test_update_pair_work_floors_at_linear():
    # gamma = 0.5 makes the quadratic term vanish; at least a linear scan
    assert update_pair_work(1000, 0.5) == 1000.0


def test_energy_pair_work_branches():
    n = 1000
    all_pairs = n * (n - 1) / 2
    assert energy_pair_work(n, math.inf) == all_pairs
    assert energy_pair_work(n, 50.0) == 50.0 * n
    # n~ above (n-1)/2 saturates to the quadratic branch
    assert energy_pair_work(n, 1e9) == all_pairs


def test_energy_pair_work_continuity_near_crossover():
    n = 1001
    n_tilde = (n - 1) / 2.0
    assert energy_pair_work(n, n_tilde) == pytest.approx(n * (n - 1) / 2)
