"""Unit tests for the analytical model equations (2)-(10)."""

import pytest

from repro.core.model import OpalPerformanceModel
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.opal.complexes import LARGE, MEDIUM


@pytest.fixture
def platform():
    # round numbers for hand-checkable expectations
    return ModelPlatformParams(
        name="toy", a1=30e6, b1=1e-3, a2=1e-7, a3=5e-7, a4=1e-6, b5=2e-3
    )


@pytest.fixture
def model(platform):
    return OpalPerformanceModel(platform)


def app(**kw):
    defaults = dict(molecule=MEDIUM, steps=10, servers=2, cutoff=None)
    defaults.update(kw)
    return ApplicationParams(**defaults)


# -- eq. (3): update time ------------------------------------------------
def test_update_time_scales_inverse_p(model):
    t1 = model.t_update(app(servers=1))
    t4 = model.t_update(app(servers=4))
    assert t1 / t4 == pytest.approx(4.0)


def test_update_time_proportional_to_update_rate(model):
    full = model.t_update(app(update_interval=1))
    partial = model.t_update(app(update_interval=10))
    assert full / partial == pytest.approx(10.0)


def test_update_time_quadratic_in_n(model):
    # same gamma, doubled n -> ~4x update work
    base = MEDIUM
    double = base.__class__(
        "double", base.protein_atoms * 2, base.waters * 2, base.density
    )
    t1 = model.t_update(app(molecule=base))
    t2 = model.t_update(app(molecule=double))
    assert t2 / t1 == pytest.approx(4.0, rel=0.01)


# -- eq. (4): energy evaluation time --------------------------------------
def test_nbint_quadratic_without_cutoff(model, platform):
    a = app(servers=1, cutoff=None)
    expected = platform.a3 * 10 * a.n * (a.n - 1) / 2
    assert model.t_nbint(a) == pytest.approx(expected)


def test_nbint_linear_with_cutoff(model, platform):
    a = app(servers=1, cutoff=10.0)
    expected = platform.a3 * 10 * a.n_tilde * a.n
    assert model.t_nbint(a) == pytest.approx(expected)


def test_ineffective_cutoff_equals_no_cutoff(model):
    assert model.t_nbint(app(cutoff=60.0)) == model.t_nbint(app(cutoff=None))


def test_par_comp_is_sum(model):
    a = app()
    assert model.t_par_comp(a) == pytest.approx(
        model.t_update(a) + model.t_nbint(a)
    )


# -- eq. (5): sequential time ---------------------------------------------
def test_seq_comp_linear_in_s_and_n(model, platform):
    a = app(steps=7)
    assert model.t_seq_comp(a) == pytest.approx(platform.a4 * 7 * a.n)
    # independent of p
    assert model.t_seq_comp(app(servers=7)) == model.t_seq_comp(app(servers=1))


# -- eqs. (6)-(9): communication -------------------------------------------
def test_comm_components(model, platform):
    a = app()
    per_msg = (a.alpha / platform.a1) * a.n + platform.b1
    assert model.t_call(a) == pytest.approx(per_msg)
    assert model.t_return_upd(a) == platform.b1
    assert model.t_return_nbi(a) == pytest.approx(per_msg)


def test_comm_closed_form_matches_components(model, platform):
    # s * (p alpha/a1 (u+2) n + 2 p b1 (u+1)) must equal the sum of the
    # four per-step RPC components times s and p
    a = app(servers=3, update_interval=1)
    u = a.update_rate
    per_step_per_server = (
        u * (model.t_call(a) + model.t_return_upd(a))
        + model.t_call(a)
        + model.t_return_nbi(a)
    )
    assert model.t_comm(a) == pytest.approx(a.s * a.p * per_step_per_server)


def test_comm_linear_in_p(model):
    assert model.t_comm(app(servers=6)) == pytest.approx(
        2 * model.t_comm(app(servers=3))
    )


def test_partial_update_reduces_comm(model):
    assert model.t_comm(app(update_interval=10)) < model.t_comm(
        app(update_interval=1)
    )


# -- eq. (10): synchronization ----------------------------------------------
def test_sync_formula(model, platform):
    a = app(update_interval=1)
    assert model.t_sync(a) == pytest.approx(2 * 10 * 2 * platform.b5)
    a10 = app(update_interval=10)
    assert model.t_sync(a10) == pytest.approx(2 * 10 * 1.1 * platform.b5)


def test_sync_independent_of_p_and_n(model):
    assert model.t_sync(app(servers=7)) == model.t_sync(app(servers=1))
    assert model.t_sync(app(molecule=LARGE)) == model.t_sync(app(molecule=MEDIUM))


# -- composite ---------------------------------------------------------------
def test_breakdown_total_is_prediction(model):
    a = app()
    b = model.breakdown(a)
    assert b.idle == 0.0
    assert model.predict_total(a) == pytest.approx(b.total)


def test_execution_times_curve(model):
    times = model.execution_times(app(), range(1, 8))
    assert len(times) == 7
    # no-cutoff run is compute bound: monotone decreasing
    assert all(a > b for a, b in zip(times, times[1:]))


def test_execution_times_invalid_p(model):
    import pytest as _pytest

    with _pytest.raises(Exception):
        model.execution_times(app(), [0])


def test_communication_bound_transition(model):
    # with cutoff the code becomes communication bound at some p
    a = app(cutoff=10.0, servers=1)
    p_star = model.communication_bound_at(a, max_servers=64)
    assert 1 < p_star <= 64
    # without cutoff it stays compute bound much longer
    assert model.communication_bound_at(app(cutoff=None), 64) > p_star


def test_larger_problem_stays_compute_bound_longer(model):
    p_med = model.communication_bound_at(app(molecule=MEDIUM, cutoff=10.0), 64)
    p_lar = model.communication_bound_at(app(molecule=LARGE, cutoff=10.0), 64)
    assert p_lar >= p_med
