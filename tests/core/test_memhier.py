"""Unit tests for the working-set rate model."""

import pytest

from repro.core.memhier import (
    PENTIUM_IN_CACHE_FACTOR,
    PENTIUM_OUT_OF_CORE_FACTOR,
    MemoryHierarchy,
)
from repro.errors import PlatformError


@pytest.fixture
def pentium():
    # the paper's Pentium 200: 32 MFlop/s in core
    return MemoryHierarchy(base_rate=32e6, cache_bytes=256e3, core_bytes=64e6)


def test_paper_pentium_rates(pentium):
    # Section 2.6 table: 35 / 32 / 8 MFlop/s at 50K / 8M / 120M
    assert pentium.rate(50e3) == pytest.approx(35e6, rel=0.01)
    assert pentium.rate(8e6) == pytest.approx(32e6)
    assert pentium.rate(120e6) == pytest.approx(8e6)


def test_paper_relative_factors():
    assert PENTIUM_IN_CACHE_FACTOR == pytest.approx(1.09, abs=0.005)
    assert PENTIUM_OUT_OF_CORE_FACTOR == pytest.approx(0.25)


def test_regimes(pentium):
    assert pentium.regime(10e3) == "cache"
    assert pentium.regime(256e3) == "cache"
    assert pentium.regime(1e6) == "core"
    assert pentium.regime(64e6) == "core"
    assert pentium.regime(65e6) == "out-of-core"
    assert pentium.regime(None) == "core"


def test_negative_working_set_rejected(pentium):
    with pytest.raises(PlatformError):
        pentium.regime(-1.0)


def test_vector_machine_without_cache():
    j90ish = MemoryHierarchy(
        base_rate=52e6, cache_bytes=0.0, cache_factor=1.0, core_bytes=2e9
    )
    assert j90ish.rate(1e3) == j90ish.rate(1e9) == 52e6


def test_validation():
    with pytest.raises(PlatformError):
        MemoryHierarchy(base_rate=0.0)
    with pytest.raises(PlatformError):
        MemoryHierarchy(base_rate=1.0, cache_bytes=100.0, core_bytes=10.0)
    with pytest.raises(PlatformError):
        MemoryHierarchy(base_rate=1.0, cache_factor=0.5)
    with pytest.raises(PlatformError):
        MemoryHierarchy(base_rate=1.0, out_of_core_factor=0.0)


def test_as_rate_model_adapter(pentium):
    model = pentium.as_rate_model()
    assert model(8e6) == pentium.rate(8e6)
