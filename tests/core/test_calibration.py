"""Unit tests for least-squares model calibration."""

import pytest

from repro.core.calibration import calibrate, residual_table
from repro.core.model import OpalPerformanceModel
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.errors import CalibrationError
from repro.opal.complexes import LARGE, MEDIUM, SMALL


TRUE = ModelPlatformParams(
    name="truth", a1=3e6, b1=0.01, a2=2.3e-7, a3=6.7e-7, a4=1.7e-6, b5=0.01
)


def synthetic_observations(noise=0.0, seed=0):
    """Breakdowns generated from a known model (optionally noisy)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    model = OpalPerformanceModel(TRUE)
    obs = []
    for mol in (SMALL, MEDIUM, LARGE):
        for cutoff in (None, 10.0):
            for interval in (1, 10):
                for p in (1, 3, 5, 7):
                    app = ApplicationParams(
                        molecule=mol,
                        steps=10,
                        servers=p,
                        cutoff=cutoff,
                        update_interval=interval,
                    )
                    b = model.breakdown(app)
                    if noise:
                        b = b.scaled(1.0 + noise * rng.standard_normal())
                    obs.append((app, b))
    return obs


def test_exact_recovery_from_noiseless_data():
    result = calibrate(synthetic_observations())
    p = result.params
    assert p.a1 == pytest.approx(TRUE.a1, rel=1e-6)
    assert p.b1 == pytest.approx(TRUE.b1, rel=1e-6)
    assert p.a2 == pytest.approx(TRUE.a2, rel=1e-6)
    assert p.a3 == pytest.approx(TRUE.a3, rel=1e-6)
    assert p.a4 == pytest.approx(TRUE.a4, rel=1e-6)
    assert p.b5 == pytest.approx(TRUE.b5, rel=1e-6)
    assert all(r2 > 0.999999 for r2 in result.r2.values())
    assert result.mean_relative_error() < 1e-9


def test_noisy_recovery_stays_close():
    result = calibrate(synthetic_observations(noise=0.02, seed=1))
    assert result.params.a3 == pytest.approx(TRUE.a3, rel=0.02)
    assert result.mean_relative_error() < 0.05


def test_too_few_observations_rejected():
    obs = synthetic_observations()[:2]
    with pytest.raises(CalibrationError):
        calibrate(obs)


def test_residual_table_structure():
    obs = synthetic_observations()
    result = calibrate(obs)
    rows = residual_table(result, obs)
    assert len(rows) == len(obs)
    row = rows[0]
    for key in ("n", "p", "cutoff", "measured", "predicted", "difference",
                "relative_error"):
        assert key in row
    assert abs(row["difference"]) < 1e-6


def test_calibrated_model_property():
    result = calibrate(synthetic_observations())
    model = result.model
    app = ApplicationParams(molecule=MEDIUM, servers=4, cutoff=10.0)
    assert model.predict_total(app) > 0


def test_simulator_calibration_close_to_spec(j90):
    """Calibrating against simulated J90 runs recovers Table 1/2 data."""
    from repro.experiments import ExperimentRunner, reduced_design

    runner = ExperimentRunner(j90, repetitions=1)
    obs = runner.observations(reduced_design())
    result = calibrate(obs, name="j90-measured")
    spec_params = ModelPlatformParams.from_spec(j90)
    assert result.params.a1 == pytest.approx(spec_params.a1, rel=0.05)
    assert result.params.a3 == pytest.approx(spec_params.a3, rel=0.05)
    assert result.params.a2 == pytest.approx(spec_params.a2, rel=0.10)
    # the paper's "excellent fit"
    assert result.mean_relative_error() < 0.08
