"""Unit tests for the imbalance-aware extended model."""

import pytest

from repro.core.extended import ImbalanceAwareModel, residual_improvement
from repro.core.model import OpalPerformanceModel
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.errors import ModelError
from repro.opal.complexes import MEDIUM
from repro.platforms import CRAY_J90


@pytest.fixture
def params():
    return ModelPlatformParams.from_spec(CRAY_J90)


def app(**kw):
    defaults = dict(molecule=MEDIUM, steps=10, servers=4, cutoff=None)
    defaults.update(kw)
    return ApplicationParams(**defaults)


def test_validation(params):
    with pytest.raises(ModelError):
        ImbalanceAwareModel(params, defect=1.5)


def test_zero_defect_equals_basic_model(params):
    basic = OpalPerformanceModel(params)
    ext = ImbalanceAwareModel(params, defect=0.0)
    for p in (1, 2, 4, 7):
        a = app(servers=p)
        assert ext.predict_total(a) == pytest.approx(basic.predict_total(a))
        assert ext.breakdown(a).idle == 0.0


def test_idle_only_on_even_p(params):
    ext = ImbalanceAwareModel(params, defect=0.1)
    assert ext.t_idle(app(servers=3)) == 0.0
    assert ext.t_idle(app(servers=4)) > 0.0
    assert ext.breakdown(app(servers=4)).idle == pytest.approx(
        0.1 * ext.t_par_comp(app(servers=4))
    )


def test_extended_total_exceeds_basic_on_even_p(params):
    basic = OpalPerformanceModel(params)
    ext = ImbalanceAwareModel(params, defect=0.1)
    a = app(servers=6)
    assert ext.predict_total(a) > basic.predict_total(a)


def test_extended_reduces_even_p_residuals_against_simulation(params):
    """Feed the anomaly back into the model: even-p fit must improve."""
    from repro.opal.parallel import run_parallel_opal

    observations = []
    for p in range(1, 8):
        a = app(servers=p)
        r = run_parallel_opal(a, CRAY_J90)
        observations.append((a, r.breakdown))

    basic = OpalPerformanceModel(params)
    ext = ImbalanceAwareModel(params, defect=0.1)
    errs = residual_improvement(basic, ext, observations)
    assert errs["extended_even"] < errs["basic_even"] / 2
    # and it does not damage the odd-p fit
    assert errs["extended_odd"] <= errs["basic_odd"] + 0.01
