"""Unit tests for bootstrap uncertainty quantification."""

import pytest

from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.core.uncertainty import bootstrap_calibration
from repro.errors import CalibrationError
from repro.experiments import ExperimentRunner, reduced_design
from repro.opal.complexes import MEDIUM
from repro.platforms import CRAY_J90


@pytest.fixture(scope="module")
def observations():
    runner = ExperimentRunner(CRAY_J90, jitter_sigma=0.01, seed=2)
    return runner.observations(reduced_design())


@pytest.fixture(scope="module")
def result(observations):
    return bootstrap_calibration(observations, n_bootstrap=60, seed=1)


def test_estimates_near_truth(result):
    truth = ModelPlatformParams.from_spec(CRAY_J90)
    # strongly identified parameters land within a fraction of a percent
    assert result.intervals["a1"].contains(truth.a1)
    assert result.intervals["b5"].contains(truth.b5)
    for name in ("a2", "a3", "a4"):
        iv = result.intervals[name]
        assert abs(iv.estimate - getattr(truth, name)) / getattr(truth, name) < 0.005
    # b1 fits LOW structurally: part of the message latency hides behind
    # the accounting barriers and is attributed to sync/idle (see
    # EXPERIMENTS.md FIG4 notes) — the bootstrap cannot repair a bias
    assert result.intervals["b1"].upper < truth.b1


def test_bootstrap_measures_resampling_not_realized_noise(result):
    """The interval half-widths reflect design resampling; the one
    realized jitter offset (~0.1%) is a bias outside them.  This is the
    expected statistical behaviour, asserted so nobody 'fixes' it."""
    truth = ModelPlatformParams.from_spec(CRAY_J90)
    iv = result.intervals["a3"]
    realized_offset = abs(iv.estimate - truth.a3) / truth.a3
    assert realized_offset < 0.005
    # the halfwidth stays on the same order as the realized offset
    # (factor depends on the per-cell seed realization; the decorrelated
    # content-hash seeds shrink the offset relative to the old shared
    # seed sequence)
    assert iv.relative_halfwidth < realized_offset * 4


def test_intervals_ordered_and_tight(result):
    for iv in result.intervals.values():
        assert iv.lower <= iv.estimate <= iv.upper
    # the design identifies the compute parameters tightly
    assert result.intervals["a3"].relative_halfwidth < 0.05
    assert result.intervals["a1"].relative_halfwidth < 0.05


def test_prediction_band_brackets_point(result):
    app = ApplicationParams(molecule=MEDIUM, steps=10, servers=5, cutoff=10.0)
    point, lower, upper = result.predict_band(app)
    assert lower <= point <= upper
    assert (upper - lower) / point < 0.2  # the paper's "good certainty"


def test_band_coverage_parameter(result):
    app = ApplicationParams(molecule=MEDIUM, steps=10, servers=3, cutoff=None)
    _, lo95, hi95 = result.predict_band(app, coverage=0.95)
    _, lo50, hi50 = result.predict_band(app, coverage=0.50)
    assert lo95 <= lo50 <= hi50 <= hi95
    with pytest.raises(CalibrationError):
        result.predict_band(app, coverage=1.5)


def test_validation(observations):
    with pytest.raises(CalibrationError):
        bootstrap_calibration(observations[:4])
    with pytest.raises(CalibrationError):
        bootstrap_calibration(observations, n_bootstrap=5)
    with pytest.raises(CalibrationError):
        bootstrap_calibration(observations, coverage=0.0)
