"""Unit tests for cross-platform prediction."""

import pytest

from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.core.prediction import (
    WhatIfStudy,
    cost_effectiveness,
    predict_platforms,
    predict_series,
)
from repro.errors import ModelError
from repro.opal.complexes import MEDIUM
from repro.platforms import ALL_PLATFORMS, CRAY_J90, FAST_COPS


def app(**kw):
    defaults = dict(molecule=MEDIUM, steps=10, cutoff=10.0)
    defaults.update(kw)
    return ApplicationParams(**defaults)


def test_series_shapes():
    s = predict_series(ModelPlatformParams.from_spec(CRAY_J90), app())
    assert len(s.times) == len(s.speedups) == 7
    assert s.speedups[0] == 1.0
    assert s.best_time == min(s.times)


def test_empty_server_range_rejected():
    with pytest.raises(ModelError):
        predict_series(ModelPlatformParams.from_spec(CRAY_J90), app(), servers=[])


def test_predict_platforms_accepts_specs_and_params():
    series = predict_platforms(
        [CRAY_J90, ModelPlatformParams.from_spec(FAST_COPS)], app()
    )
    assert set(series) == {"j90", "fast-cops"}


def test_j90_cutoff_saturates_early():
    s = predict_series(ModelPlatformParams.from_spec(CRAY_J90), app())
    assert s.saturation <= 3
    assert s.slowdown_beyond_saturation()


def test_fast_cops_beats_j90_absolute():
    series = predict_platforms(ALL_PLATFORMS, app())
    assert series["fast-cops"].best_time < series["j90"].best_time


def test_cost_effectiveness_ranking():
    series = predict_platforms(ALL_PLATFORMS, app())
    costs = {p.name: p.approx_cost_kusd for p in ALL_PLATFORMS}
    rows = cost_effectiveness(series, costs)
    assert len(rows) == 5
    # the clusters of PCs dominate the big irons on time x cost
    assert rows[0].platform in ("slow-cops", "smp-cops", "fast-cops")
    assert rows[0].time_cost_product <= rows[-1].time_cost_product


def test_cost_effectiveness_skips_unknown_cost():
    series = predict_platforms([CRAY_J90], app())
    assert cost_effectiveness(series, {}) == []


def test_whatif_a1_improvement_helps_j90():
    base = ModelPlatformParams.from_spec(CRAY_J90)
    study = WhatIfStudy(base, app())
    # Section 3.1: Sciddle developers measured 7 MB/s for synthetic RPC;
    # a middleware fix would scale a1 by ~2.33
    out = study.vary("a1", [1.0, 7.0 / 3.0])
    assert out[7.0 / 3.0].best_time < out[1.0].best_time
    assert out[7.0 / 3.0].saturation >= out[1.0].saturation


def test_whatif_validation():
    study = WhatIfStudy(ModelPlatformParams.from_spec(CRAY_J90), app())
    with pytest.raises(ModelError):
        study.vary("warp_factor", [1.0])
    with pytest.raises(ModelError):
        study.vary("a1", [0.0])
