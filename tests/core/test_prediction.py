"""Unit tests for cross-platform prediction."""

import pytest

from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.core.prediction import (
    WhatIfStudy,
    cost_effectiveness,
    predict_platforms,
    predict_series,
)
from repro.errors import ModelError
from repro.opal.complexes import MEDIUM
from repro.platforms import ALL_PLATFORMS, CRAY_J90, FAST_COPS


def app(**kw):
    defaults = dict(molecule=MEDIUM, steps=10, cutoff=10.0)
    defaults.update(kw)
    return ApplicationParams(**defaults)


def test_series_shapes():
    s = predict_series(ModelPlatformParams.from_spec(CRAY_J90), app())
    assert len(s.times) == len(s.speedups) == 7
    assert s.speedups[0] == 1.0
    assert s.best_time == min(s.times)


def test_empty_server_range_rejected():
    with pytest.raises(ModelError):
        predict_series(ModelPlatformParams.from_spec(CRAY_J90), app(), servers=[])


def test_predict_platforms_accepts_specs_and_params():
    series = predict_platforms(
        [CRAY_J90, ModelPlatformParams.from_spec(FAST_COPS)], app()
    )
    assert set(series) == {"j90", "fast-cops"}


def test_j90_cutoff_saturates_early():
    s = predict_series(ModelPlatformParams.from_spec(CRAY_J90), app())
    assert s.saturation <= 3
    assert s.slowdown_beyond_saturation()


def test_fast_cops_beats_j90_absolute():
    series = predict_platforms(ALL_PLATFORMS, app())
    assert series["fast-cops"].best_time < series["j90"].best_time


def test_cost_effectiveness_ranking():
    series = predict_platforms(ALL_PLATFORMS, app())
    costs = {p.name: p.approx_cost_kusd for p in ALL_PLATFORMS}
    rows = cost_effectiveness(series, costs)
    assert len(rows) == 5
    # the clusters of PCs dominate the big irons on time x cost
    assert rows[0].platform in ("slow-cops", "smp-cops", "fast-cops")
    assert rows[0].time_cost_product <= rows[-1].time_cost_product


def test_cost_effectiveness_skips_unknown_cost():
    series = predict_platforms([CRAY_J90], app())
    assert cost_effectiveness(series, {}) == []


def test_whatif_a1_improvement_helps_j90():
    base = ModelPlatformParams.from_spec(CRAY_J90)
    study = WhatIfStudy(base, app())
    # Section 3.1: Sciddle developers measured 7 MB/s for synthetic RPC;
    # a middleware fix would scale a1 by ~2.33
    out = study.vary("a1", [1.0, 7.0 / 3.0])
    assert out[7.0 / 3.0].best_time < out[1.0].best_time
    assert out[7.0 / 3.0].saturation >= out[1.0].saturation


def test_whatif_validation():
    study = WhatIfStudy(ModelPlatformParams.from_spec(CRAY_J90), app())
    with pytest.raises(ModelError):
        study.vary("warp_factor", [1.0])
    with pytest.raises(ModelError):
        study.vary("a1", [0.0])


def test_sweep_hoists_invariant_workload_terms(monkeypatch):
    """Regression: a server sweep computes the per-cell invariants once.

    predict_series used to recompute n_tilde and the pair workloads for
    every server count (and predict_platforms for every platform) even
    though neither depends on p; the memoized workload_terms hoists
    them, so one (molecule, cutoff) cell pays exactly one evaluation.
    """
    from repro.core import parameters as P
    from repro.opal.complexes import ComplexSpec

    calls = {"n_tilde": 0, "update": 0, "energy": 0}
    real_n_tilde = ComplexSpec.n_tilde
    real_update = P.update_pair_work
    real_energy = P.energy_pair_work

    def counting_n_tilde(self, cutoff):
        calls["n_tilde"] += 1
        return real_n_tilde(self, cutoff)

    def counting_update(n, gamma):
        calls["update"] += 1
        return real_update(n, gamma)

    def counting_energy(n, n_tilde):
        calls["energy"] += 1
        return real_energy(n, n_tilde)

    monkeypatch.setattr(ComplexSpec, "n_tilde", counting_n_tilde)
    monkeypatch.setattr(P, "update_pair_work", counting_update)
    monkeypatch.setattr(P, "energy_pair_work", counting_energy)
    P.workload_terms.cache_clear()
    try:
        series = predict_platforms(list(ALL_PLATFORMS), app(), range(1, 8))
    finally:
        P.workload_terms.cache_clear()  # drop entries built from the mocks

    assert len(series) == len(ALL_PLATFORMS)
    # one cell -> one evaluation of each invariant, across the whole
    # 7-server x all-platforms sweep
    assert calls == {"n_tilde": 1, "update": 1, "energy": 1}


def test_workload_terms_match_direct_evaluation():
    from repro.core.parameters import (
        energy_pair_work,
        update_pair_work,
        workload_terms,
    )

    terms = workload_terms(MEDIUM, 10.0)
    assert terms.n == MEDIUM.n
    assert terms.gamma == MEDIUM.gamma
    assert terms.n_tilde == MEDIUM.n_tilde(10.0)
    assert terms.update_pairs == update_pair_work(MEDIUM.n, MEDIUM.gamma)
    assert terms.energy_pairs == energy_pair_work(MEDIUM.n, terms.n_tilde)
