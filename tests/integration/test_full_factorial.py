"""The paper's complete 84-experiment campaign, run end to end.

The published charts use the reduced design; the paper states the data
"was achieved with a full factorial design of 84 experiments".  We run
all 84 on the simulated J90 and check the global properties the paper
reports from them.
"""

import numpy as np
import pytest

from repro.core.calibration import calibrate, residual_table
from repro.experiments import ExperimentRunner, full_design
from repro.platforms import CRAY_J90


@pytest.fixture(scope="module")
def records():
    runner = ExperimentRunner(CRAY_J90, jitter_sigma=0.004, seed=11)
    return runner.run_design(full_design())


def test_all_84_cases_complete(records):
    assert len(records) == 84
    assert all(r.breakdown.total > 0 for r in records)


def test_calibration_on_full_design(records):
    observations = [r.observation() for r in records]
    result = calibrate(observations, name="j90-full-84")
    # the full design is strictly more informative than the fraction
    assert result.mean_relative_error() < 0.06
    assert all(r2 > 0.999 for r2 in result.r2.values())
    rows = residual_table(result, observations)
    rel = np.array([abs(r["relative_error"]) for r in rows])
    assert np.percentile(rel, 90) < 0.10


def test_problem_size_ordering_everywhere(records):
    """Larger complexes never run faster at identical settings."""
    by_key = {
        (r.case.molecule.name, r.case.servers, r.case.cutoff,
         r.case.update_interval): r.breakdown.total
        for r in records
    }
    for servers in range(1, 8):
        for cutoff in (None, 10.0):
            for interval in (1, 10):
                small = by_key[("small", servers, cutoff, interval)]
                medium = by_key[("medium", servers, cutoff, interval)]
                large = by_key[("large", servers, cutoff, interval)]
                assert small < medium < large


def test_cutoff_always_helps(records):
    by_key = {
        (r.case.molecule.name, r.case.servers, r.case.cutoff,
         r.case.update_interval): r.breakdown.total
        for r in records
    }
    for name in ("small", "medium", "large"):
        for servers in range(1, 8):
            for interval in (1, 10):
                with_cut = by_key[(name, servers, 10.0, interval)]
                without = by_key[(name, servers, None, interval)]
                assert with_cut <= without * 1.001


def test_even_p_idle_excess_is_systematic(records):
    """The anomaly holds across the whole campaign, not one chart."""
    idle_by_parity = {0: [], 1: []}
    for r in records:
        if r.case.cutoff is None and r.case.servers >= 2:
            frac = r.breakdown.idle / r.breakdown.total
            idle_by_parity[r.case.servers % 2].append(frac)
    even = np.mean(idle_by_parity[0])
    odd = np.mean(idle_by_parity[1])
    assert even > 2.5 * odd
