"""Failure injection: the simulator must fail loudly, never hang or lie."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.netsim import Cluster, Node, Recv, Send, SwitchedFabric, Timeout, constant_rate
from repro.pvm import PvmSystem
from repro.sciddle import RpcReply, SciddleClient, SciddleInterface, SciddleServer


def make_cluster(n_nodes=3):
    cluster = Cluster(lambda e: SwitchedFabric(e, 1e-4, 1e7), seed=0)
    nodes = [
        cluster.add_node(Node(cluster.engine, i, constant_rate(1e8)))
        for i in range(n_nodes)
    ]
    return cluster, nodes


def test_client_waiting_on_crashed_server_deadlocks_visibly():
    cluster, nodes = make_cluster()
    pvm = PvmSystem(cluster)
    iface = SciddleInterface("t")
    iface.procedure("work")

    def dying_handler(task, args):
        yield from task.compute(seconds=0.1)
        raise RuntimeError("server segfault")

    def server_body(task):
        server = SciddleServer(task, iface)
        server.bind("work", dying_handler)
        yield from server.run()

    def client_body(task, tid):
        client = SciddleClient(task, iface, [tid])
        h = yield from client.call_async(tid, "work", nbytes=100)
        yield from client.wait(h)

    sp = pvm.spawn("server", nodes[1], server_body)
    pvm.spawn("client", nodes[0], client_body, sp.tid)
    # the crash surfaces as a SimulationError naming the failing process
    with pytest.raises(SimulationError, match="segfault"):
        pvm.run()


def test_message_to_nonexistent_tid_fails_fast():
    cluster, nodes = make_cluster()

    def body(ctx):
        yield Send(999, nbytes=10, tag=1)

    cluster.spawn("p", nodes[0], body)
    with pytest.raises(SimulationError, match="unknown task id"):
        cluster.run()


def test_partial_barrier_is_a_deadlock_not_a_hang():
    cluster, nodes = make_cluster()

    from repro.netsim import Barrier

    def member(ctx):
        yield Barrier("b", count=3, cost=0.0)  # only 2 will arrive

    cluster.spawn("a", nodes[0], member)
    cluster.spawn("b", nodes[1], member)
    with pytest.raises(DeadlockError):
        cluster.run()


def test_mismatched_tags_deadlock():
    cluster, nodes = make_cluster()

    def receiver(ctx):
        yield Recv(tag=7)

    def sender(ctx, dest):
        yield Send(dest, nbytes=10, tag=8)  # wrong tag

    r = cluster.spawn("r", nodes[1], receiver)
    cluster.spawn("s", nodes[0], sender, r.tid)
    with pytest.raises(DeadlockError):
        cluster.run()


def test_failure_in_one_process_reports_its_name():
    cluster, nodes = make_cluster()

    def healthy(ctx):
        yield Timeout(1.0)

    def broken(ctx):
        yield Timeout(0.5)
        raise ValueError("numerical blowup")

    cluster.spawn("healthy", nodes[0], healthy)
    cluster.spawn("broken", nodes[1], broken)
    with pytest.raises(SimulationError, match="broken"):
        cluster.run()
    assert cluster.failures[0][0] == "broken"


def test_server_shutdown_before_outstanding_call_deadlocks():
    cluster, nodes = make_cluster()
    pvm = PvmSystem(cluster)
    iface = SciddleInterface("t")
    iface.procedure("work")

    def handler(task, args):
        yield from task.compute(seconds=0.01)
        return RpcReply()

    def server_body(task):
        server = SciddleServer(task, iface)
        server.bind("work", handler)
        yield from server.run()

    def client_body(task, tid):
        client = SciddleClient(task, iface, [tid])
        yield from client.shutdown()
        # call after shutdown: nobody is listening
        h = yield from client.call_async(tid, "work", nbytes=10)
        yield from client.wait(h)

    sp = pvm.spawn("server", nodes[1], server_body)
    pvm.spawn("client", nodes[0], client_body, sp.tid)
    with pytest.raises(DeadlockError):
        pvm.run()


def test_negative_time_request_rejected_at_yield():
    cluster, nodes = make_cluster()

    def body(ctx):
        yield Timeout(-1.0)

    with pytest.raises(Exception):
        cluster.spawn("p", nodes[0], body)
        cluster.run()
