"""End-to-end integration: measure -> calibrate -> predict, as the paper does."""

import pytest

from repro.core.calibration import calibrate
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.core.prediction import predict_series
from repro.experiments import ExperimentRunner, reduced_design
from repro.opal.complexes import MEDIUM, SMALL
from repro.opal.parallel import run_parallel_opal
from repro.platforms import CRAY_J90, FAST_COPS, extract_model_params


@pytest.fixture(scope="module")
def j90_calibration():
    runner = ExperimentRunner(CRAY_J90, repetitions=1)
    obs = runner.observations(reduced_design())
    return calibrate(obs, name="j90-calibrated"), obs


def test_full_pipeline_fit_quality(j90_calibration):
    result, obs = j90_calibration
    # Section 2.5: "The overall fit of the model to the measurement ...
    # is excellent"
    assert result.mean_relative_error() < 0.08
    assert all(r2 > 0.95 for r2 in result.r2.values())


def test_calibrated_model_predicts_unseen_configuration(j90_calibration):
    result, _ = j90_calibration
    # a configuration NOT in the reduced design (p=4, small, cutoff,
    # partial update)
    app = ApplicationParams(
        molecule=SMALL, steps=10, servers=4, cutoff=10.0, update_interval=10
    )
    measured = run_parallel_opal(app, CRAY_J90).wall_time
    predicted = result.model.predict_total(app)
    assert predicted == pytest.approx(measured, rel=0.15)


def test_microbenchmark_route_agrees_with_calibration_route(j90_calibration):
    result, _ = j90_calibration
    micro = extract_model_params(CRAY_J90)
    assert micro.a3 == pytest.approx(result.params.a3, rel=0.05)
    assert micro.a1 == pytest.approx(result.params.a1, rel=0.05)


def test_cross_platform_prediction_validated_by_simulation():
    """The paper predicts platforms it never measured; we CAN measure
    them (the simulator runs anywhere) and check the prediction."""
    app = ApplicationParams(molecule=MEDIUM, steps=10, cutoff=10.0)
    series = predict_series(
        ModelPlatformParams.from_spec(FAST_COPS), app, servers=(1, 3, 5, 7)
    )
    for p, predicted in zip((1, 3, 5, 7), series.times):
        measured = run_parallel_opal(app.with_(servers=p), FAST_COPS).wall_time
        assert predicted == pytest.approx(measured, rel=0.25), f"p={p}"


def test_counted_flops_differ_across_platforms_for_same_result():
    """Section 3.2's surprise: identical computation, different counts."""
    app = ApplicationParams(molecule=SMALL, steps=3, servers=2, cutoff=10.0)
    j90 = run_parallel_opal(app, CRAY_J90)
    pc = run_parallel_opal(app, FAST_COPS)
    assert j90.flops_counted > 1.4 * pc.flops_counted
