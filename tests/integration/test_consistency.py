"""Cross-layer consistency: the instrumentation layers must agree.

The paper's methodology rests on trusting the middleware-level
accounting; these tests verify that every independent observation
channel of the simulator (phase accountants, hardware counters, the
event trace, the fabric statistics, the result breakdown) tells one
coherent story for the same run.
"""

import numpy as np
import pytest

from repro.core.parameters import ApplicationParams
from repro.opal import costs
from repro.opal.complexes import SMALL
from repro.opal.parallel import run_parallel_opal
from repro.opal.workload import OpalWorkload
from repro.platforms import CRAY_J90, FAST_COPS


@pytest.fixture(scope="module")
def run():
    app = ApplicationParams(molecule=SMALL, steps=4, servers=3, cutoff=10.0)
    return run_parallel_opal(app, FAST_COPS, keep_cluster=True), app


def test_breakdown_is_additive_to_wall(run):
    result, _ = run
    assert result.breakdown.total == pytest.approx(result.wall_time, rel=1e-9)


def test_counters_match_workload_flops(run):
    result, app = run
    w = OpalWorkload(app)
    algo = sum(n.hpm.flops_algorithmic for n in result.cluster.nodes)
    assert algo == pytest.approx(w.total_algorithmic_flops(), rel=1e-9)
    counted = sum(n.hpm.flops_counted for n in result.cluster.nodes)
    assert counted == pytest.approx(
        w.total_algorithmic_flops() * FAST_COPS.flop_inflation, rel=1e-9
    )


def test_counter_busy_equals_trace_compute(run):
    result, _ = run
    trace_compute = result.cluster.tracer.by_category().get("compute", 0.0)
    hpm_busy = sum(n.hpm.busy_seconds for n in result.cluster.nodes)
    assert hpm_busy == pytest.approx(trace_compute, rel=1e-9)


def test_accountant_compute_equals_counter_busy_per_server(run):
    result, _ = run
    # per-server accountant seconds (update + energy) must equal the
    # compute intervals its node's counters accumulated
    per_proc = result.cluster.tracer.by_process()
    for i, (upd, nbi) in enumerate(
        zip(result.server_update_seconds, result.server_energy_seconds)
    ):
        trace = per_proc[f"server{i}"].get("compute", 0.0)
        assert upd + nbi == pytest.approx(trace, rel=1e-9)


def test_fabric_messages_match_protocol(run):
    result, app = run
    w = OpalWorkload(app)
    p, s = app.p, app.s
    updates = w.updates_total
    expected = (
        updates * p  # update calls
        + updates * p  # update acks
        + s * p  # energy calls
        + s * p  # energy returns
        + 2 * p  # shutdown + acks
    )
    assert result.cluster.fabric.messages_transferred == expected


def test_server_compute_seconds_match_flop_shares(run):
    result, app = run
    w = OpalWorkload(app)
    rate = FAST_COPS.cpu_rate
    expected_energy = w.server_energy_flops() * app.s / rate
    assert np.allclose(result.server_energy_seconds, expected_energy, rtol=1e-9)
    expected_update = w.server_update_flops() * w.updates_total / rate
    assert np.allclose(result.server_update_seconds, expected_update, rtol=1e-9)


def test_sync_seconds_equal_barrier_count_times_cost():
    app = ApplicationParams(molecule=SMALL, steps=5, servers=2, cutoff=None)
    result = run_parallel_opal(app, CRAY_J90)
    # 4 barriers per full-update step (2 update + 2 energy)
    assert result.breakdown.sync == pytest.approx(
        4 * app.steps * CRAY_J90.sync_cost, rel=1e-9
    )


def test_comm_phases_sum_to_breakdown_comm(run):
    result, _ = run
    acct_comm = sum(
        v for k, v in result.client_phases.items() if k.startswith("comm:")
    )
    assert acct_comm == pytest.approx(result.breakdown.comm, rel=1e-9)


def test_energy_pair_totals_conserved_across_servers(run):
    result, app = run
    w = OpalWorkload(app)
    per_server_secs = np.asarray(result.server_energy_seconds)
    total_pairs = per_server_secs.sum() * FAST_COPS.cpu_rate / (
        costs.NB_PAIR_FLOPS * app.s
    )
    assert total_pairs == pytest.approx(w.energy_pairs_total, rel=1e-9)
