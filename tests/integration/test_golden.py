"""Golden regression values for the deterministic artifacts.

The model predictions and Table 1/2 reconstructions are exact functions
of catalog constants; these tests pin their current values so that any
future change to costs, platform data or equations is a *conscious*
decision (update the goldens alongside DESIGN/EXPERIMENTS notes).
"""

import pytest

from repro.core.model import OpalPerformanceModel
from repro.core.parameters import ApplicationParams, ModelPlatformParams
from repro.opal.complexes import LARGE, MEDIUM, SMALL
from repro.platforms import get_platform

#: predicted t_OPAL [s] for (platform, molecule, cutoff, p), 10 steps,
#: full update — regenerate with scripts in this file's docstring
GOLDEN_TOTALS = {
    ("j90", "medium", None, 1): 64.072,
    ("j90", "medium", None, 7): 19.360,
    ("j90", "medium", 10.0, 1): 7.705,
    ("j90", "medium", 10.0, 2): 6.233,
    ("j90", "medium", 10.0, 7): 11.308,
    ("t3e", "medium", 10.0, 7): 1.616,
    ("fast-cops", "medium", 10.0, 7): 1.434,
    ("smp-cops", "medium", 10.0, 7): 2.910,
    ("slow-cops", "medium", 10.0, 7): 11.865,
    ("j90", "large", None, 1): 137.826,
    ("fast-cops", "large", 10.0, 7): 2.323,
}

MOLECULES = {"small": SMALL, "medium": MEDIUM, "large": LARGE}


@pytest.mark.parametrize(
    "key,expected", sorted(GOLDEN_TOTALS.items(), key=lambda kv: str(kv[0]))
)
def test_golden_prediction(key, expected):
    platform, molecule, cutoff, p = key
    model = OpalPerformanceModel(
        ModelPlatformParams.from_spec(get_platform(platform))
    )
    app = ApplicationParams(
        molecule=MOLECULES[molecule], steps=10, servers=p, cutoff=cutoff
    )
    assert model.predict_total(app) == pytest.approx(expected, abs=0.002)


def test_golden_complex_statistics():
    assert (MEDIUM.n, LARGE.n, SMALL.n) == (4289, 6289, 1000)
    assert MEDIUM.n_tilde(10.0) == pytest.approx(188.50, abs=0.01)
    assert LARGE.n_tilde(10.0) == pytest.approx(188.50, abs=0.01)


def test_golden_j90_model_parameters():
    mp = ModelPlatformParams.from_spec(get_platform("j90"))
    assert mp.a1 == 3e6
    assert mp.b1 == pytest.approx(0.010)
    assert mp.a2 == pytest.approx(5.691e-8, rel=1e-3)
    assert mp.a3 == pytest.approx(6.721e-7, rel=1e-3)
    assert mp.a4 == pytest.approx(1.707e-6, rel=1e-3)
    assert mp.b5 == pytest.approx(0.010)


def test_golden_simulated_run():
    """One full simulated run is bit-stable (no jitter, fixed seed)."""
    from repro.opal.parallel import run_parallel_opal

    app = ApplicationParams(molecule=MEDIUM, steps=10, servers=4, cutoff=10.0)
    r = run_parallel_opal(app, get_platform("j90"), seed=0)
    assert r.wall_time == pytest.approx(7.5082, abs=0.01)
    assert r.breakdown.idle == pytest.approx(0.2832, abs=0.03)
