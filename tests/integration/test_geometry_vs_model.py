"""Cross-validation: the analytic workload model vs real geometry.

The performance model's pair counts are analytic (eqs. (3)/(4) with the
paper's n~ convention); the physics engine counts *actual* pairs on
synthesized coordinates.  These tests pin down how the two relate, so
the convention is an asserted fact rather than folklore.
"""

import pytest

from repro.opal.complexes import ComplexSpec
from repro.opal.pairlist import PairListBuilder
from repro.opal.system import build_system


def measured_pairs_per_center(spec: ComplexSpec, cutoff: float, seed: int = 0):
    sys_ = build_system(spec, seed=seed)
    pairs = PairListBuilder(cutoff=cutoff).build(sys_.coords)
    return len(pairs) / sys_.n


@pytest.mark.parametrize("cutoff", [6.0, 9.0])
def test_n_tilde_is_twice_the_physical_pair_count(cutoff):
    """The paper's n~ (full neighbour count) is ~2x the stored pairs.

    For a uniform system, physical pairs per center = density * 4/3 pi
    c^3 / 2 (each pair counted once) = n~ / 2.  Finite-box boundary
    effects reduce the measured count further (atoms near the wall see
    truncated spheres), so the measured/n~ ratio sits somewhat below 0.5.
    """
    spec = ComplexSpec("geo", protein_atoms=150, waters=650, density=0.04)
    measured = measured_pairs_per_center(spec, cutoff)
    n_tilde = spec.n_tilde(cutoff)
    ratio = measured / n_tilde
    assert 0.25 < ratio < 0.55, f"cutoff={cutoff}: ratio {ratio}"


def test_pair_count_scales_with_cutoff_cubed():
    spec = ComplexSpec("geo", protein_atoms=150, waters=650, density=0.04)
    small = measured_pairs_per_center(spec, 5.0)
    large = measured_pairs_per_center(spec, 10.0)
    # volume scaling (8x) damped by boundary truncation
    assert 4.0 < large / small < 9.0


def test_pair_count_scales_with_density():
    lo = ComplexSpec("lo", protein_atoms=100, waters=400, density=0.03)
    hi = ComplexSpec("hi", protein_atoms=100, waters=400, density=0.06)
    p_lo = measured_pairs_per_center(lo, 7.0)
    p_hi = measured_pairs_per_center(hi, 7.0)
    assert 1.5 < p_hi / p_lo < 2.6  # ~linear in density


def test_no_cutoff_measured_equals_model_exactly():
    """Without a cutoff the model and geometry agree exactly:
    n(n-1)/2 pairs minus the bonded exclusions."""
    spec = ComplexSpec("geo", protein_atoms=40, waters=160, density=0.04)
    sys_ = build_system(spec, seed=1)
    pairs = PairListBuilder(
        cutoff=None, exclusions=sys_.topology.excluded_pairs()
    ).build(sys_.coords)
    n = sys_.n
    assert len(pairs) == n * (n - 1) // 2 - len(sys_.topology.excluded_pairs())


def test_effective_vs_ineffective_cutoff_on_real_geometry():
    """The paper's 10 A / 60 A contrast holds on actual coordinates."""
    spec = ComplexSpec("geo", protein_atoms=150, waters=650, density=0.04)
    sys_ = build_system(spec, seed=2)
    all_pairs = sys_.n * (sys_.n - 1) // 2
    effective = len(PairListBuilder(cutoff=10.0).build(sys_.coords))
    ineffective = len(PairListBuilder(cutoff=60.0).build(sys_.coords))
    assert effective < 0.5 * all_pairs
    assert ineffective > 0.95 * all_pairs
