"""The paper's qualitative claims, asserted against our reproduction.

Each test cites the claim it checks; together these are the acceptance
criteria in EXPERIMENTS.md.
"""

import pytest

from repro.core.parameters import ApplicationParams
from repro.core.prediction import predict_platforms
from repro.core.speedup import slows_down
from repro.opal.complexes import LARGE, MEDIUM
from repro.opal.parallel import run_parallel_opal
from repro.platforms import ALL_PLATFORMS, CRAY_J90

SERVERS = tuple(range(1, 8))


@pytest.fixture(scope="module")
def medium_cutoff_series():
    app = ApplicationParams(molecule=MEDIUM, steps=10, cutoff=10.0)
    return predict_platforms(ALL_PLATFORMS, app, SERVERS)


@pytest.fixture(scope="module")
def medium_nocutoff_series():
    app = ApplicationParams(molecule=MEDIUM, steps=10, cutoff=None)
    return predict_platforms(ALL_PLATFORMS, app, SERVERS)


@pytest.fixture(scope="module")
def large_cutoff_series():
    app = ApplicationParams(molecule=LARGE, steps=10, cutoff=10.0)
    return predict_platforms(ALL_PLATFORMS, app, SERVERS)


def test_no_cutoff_is_compute_bound_everywhere(medium_nocutoff_series):
    """'the basic application without cut-off is entirely compute bound
    and therefore parallelizes well regardless of the system'"""
    for name, s in medium_nocutoff_series.items():
        assert not slows_down(list(s.times)), name
        assert s.speedups[-1] > 2.5, name


def test_cutoff_turns_j90_and_slow_cops_over(medium_cutoff_series):
    """'the execution time of the Cray J90 and the slow CoPs ... is
    increasing rather than decreasing' beyond ~3 processors"""
    for name in ("j90", "slow-cops"):
        s = medium_cutoff_series[name]
        assert s.saturation <= 3, name
        assert slows_down(list(s.times)), name
        # speed-up turns into slow-down (Chart 5d)
        assert s.speedups[-1] < 1.0, name


def test_good_networks_keep_scaling(medium_cutoff_series):
    """'For the platforms with the better communication systems we can
    scale the application nicely to 7 processors'"""
    for name in ("t3e", "smp-cops", "fast-cops"):
        s = medium_cutoff_series[name]
        assert s.saturation >= 5, name
        assert s.speedups[4] > 2.0, name


def test_t3e_best_speedup_but_not_best_time(medium_cutoff_series):
    """'while the Cray T3E has by few the best speed-up, it still ends
    behind Fast and SMP CoPs for seven servers'"""
    sp7 = {name: s.speedups[-1] for name, s in medium_cutoff_series.items()}
    assert max(sp7, key=sp7.get) == "t3e"
    t7 = {name: s.times[-1] for name, s in medium_cutoff_series.items()}
    assert t7["fast-cops"] < t7["t3e"]


def test_cops_match_or_beat_j90(medium_cutoff_series, medium_nocutoff_series):
    """'a well designed cluster of PCs achieves similar if not better
    performance than the J90 vector processors currently used'"""
    for series in (medium_cutoff_series, medium_nocutoff_series):
        assert series["fast-cops"].best_time < series["j90"].best_time
        assert series["smp-cops"].best_time < series["j90"].best_time * 1.1


def test_larger_problem_pushes_breakdown_outwards(
    medium_cutoff_series, large_cutoff_series
):
    """'the increase of the computation due to a larger problem size
    moves the point of the break down further outwards'"""
    for name in ("j90", "slow-cops", "smp-cops", "fast-cops", "t3e"):
        assert (
            large_cutoff_series[name].saturation
            >= medium_cutoff_series[name].saturation
        ), name


def test_larger_problem_better_speedups():
    """Figures 6b vs 5b: 'slightly better speed-ups' for the large size."""
    for cutoff in (None,):
        med = predict_platforms(
            ALL_PLATFORMS,
            ApplicationParams(molecule=MEDIUM, steps=10, cutoff=cutoff),
            SERVERS,
        )
        lar = predict_platforms(
            ALL_PLATFORMS,
            ApplicationParams(molecule=LARGE, steps=10, cutoff=cutoff),
            SERVERS,
        )
        for name in med:
            assert lar[name].speedups[-1] >= med[name].speedups[-1] - 1e-9


def test_even_p_load_imbalance_anomaly_measured():
    """'our instrumentation reveals a load balancing problem for runs
    with an even numbers of processors'"""
    app = ApplicationParams(molecule=MEDIUM, steps=5, cutoff=None)
    idle = {}
    for p in (3, 4, 5, 6):
        r = run_parallel_opal(app.with_(servers=p), CRAY_J90)
        idle[p] = r.breakdown.idle / r.breakdown.total
    assert idle[4] > 2 * idle[3]
    assert idle[6] > 2 * idle[5]


def test_communication_small_fraction_without_cutoff():
    """Fig 1a: 'the communication time increases about linear with the
    number of servers, but its overall contribution remains small, even
    for seven servers'"""
    app = ApplicationParams(molecule=MEDIUM, steps=5, cutoff=None)
    comm = []
    for p in (1, 4, 7):
        r = run_parallel_opal(app.with_(servers=p), CRAY_J90)
        comm.append(r.breakdown.comm)
        assert r.breakdown.comm / r.breakdown.total < 0.5
    assert comm[0] < comm[1] < comm[2]
    # roughly linear growth in p
    assert comm[2] / comm[0] == pytest.approx(7.0, rel=0.15)


def test_update_frequency_matters_only_with_cutoff():
    """Fig 1b vs 1d: 'the lower update frequency does not affect the
    overall performance much [without cutoff]' but 'leads to a notable
    difference ... with small cut-off radii'"""
    base = ApplicationParams(molecule=MEDIUM, steps=10, servers=3)
    def ratio(cutoff):
        full = run_parallel_opal(base.with_(cutoff=cutoff, update_interval=1), CRAY_J90)
        part = run_parallel_opal(base.with_(cutoff=cutoff, update_interval=10), CRAY_J90)
        return full.wall_time / part.wall_time

    assert ratio(None) < 1.15  # barely matters without cutoff
    assert ratio(10.0) > 1.3  # notable with the effective cutoff


def test_overlap_sacrifice_below_five_percent():
    """Section 3.3: 'we happily accept a small slowdown (less than 5%)
    over the overlapped application'.

    The sacrifice grows with the number of serialized returns the
    barriers expose, so we check the paper's bound at modest server
    counts and a looser one at seven servers (see EXPERIMENTS.md).
    """
    def slowdown(p, molecule):
        app = ApplicationParams(molecule=molecule, steps=5, servers=p, cutoff=None)
        acc = run_parallel_opal(app, CRAY_J90, sync_mode="accounted")
        ovl = run_parallel_opal(app, CRAY_J90, sync_mode="overlapped")
        return (acc.wall_time - ovl.wall_time) / ovl.wall_time

    assert 0.0 <= slowdown(2, LARGE) < 0.05
    assert slowdown(7, LARGE) < 0.15
