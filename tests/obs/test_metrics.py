"""Metrics registry: counters, gauges, histograms, lossless merging."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import merge_registries


class TestPrimitives:
    def test_counter_is_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("rpcs")
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_counter_is_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_gauge_tracks_extrema(self):
        g = MetricsRegistry().gauge("depth")
        for v in (3.0, 1.0, 7.0):
            g.set(v)
        assert (g.value, g.min, g.max, g.samples) == (7.0, 1.0, 7.0, 3)

    def test_unset_gauge_snapshots_clean(self):
        g = MetricsRegistry().gauge("depth")
        assert g.as_dict() == {"value": 0.0, "min": 0.0, "max": 0.0, "samples": 0}

    def test_histogram_summary(self):
        h = MetricsRegistry().histogram("wall")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(2.0)
        assert (h.min, h.max) == (1.0, 3.0)


class TestMerging:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("events").inc(10)
        reg.gauge("depth").set(5.0)
        reg.histogram("wall").observe(2.0)
        return reg

    def test_merge_payload_adds_counters_and_histograms(self):
        a, b = self._registry(), self._registry()
        a.merge_payload(b.as_dict())
        assert a.counter("events").value == 20
        assert a.histogram("wall").count == 2
        assert a.histogram("wall").total == pytest.approx(4.0)

    def test_merge_keeps_gauge_extrema(self):
        a = MetricsRegistry()
        a.gauge("depth").set(3.0)
        b = MetricsRegistry()
        b.gauge("depth").set(9.0)
        merge_registries(a, b)
        g = a.gauge("depth")
        assert (g.value, g.min, g.max, g.samples) == (9.0, 3.0, 9.0, 2)

    def test_merge_none_is_noop(self):
        a = self._registry()
        merge_registries(a, None)
        assert a.counter("events").value == 10

    def test_as_dict_round_trips_exactly(self):
        a = self._registry()
        b = MetricsRegistry()
        b.merge_payload(a.as_dict())
        assert b.as_dict() == a.as_dict()

    def test_render_mentions_every_metric(self):
        text = self._registry().render()
        for name in ("events", "depth", "wall"):
            assert name in text
