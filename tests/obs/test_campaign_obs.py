"""Acceptance: a full campaign exports one coherent merged trace.

The issue's bar: ``run_campaign`` over the small complex with an
``ObsSession`` attached must produce a single Chrome trace-event file
whose per-category totals agree with ``SpanTracer.by_category()`` to
within 1e-9, containing at least one flow edge per Sciddle RPC, plus a
measured-vs-model residual report — and ``python -m repro.obs
summarize`` must accept the file.
"""

import pytest

from repro.experiments import run_campaign
from repro.obs import ObsSession
from repro.obs.cli import main as obs_main
from repro.obs.export import count_flow_events, read_chrome_totals
from repro.opal import SMALL
from repro.platforms import CRAY_J90, FAST_COPS


@pytest.fixture(scope="module")
def observed_campaign():
    obs = ObsSession(label="campaign")
    report = run_campaign(
        reference=CRAY_J90,
        candidates=[FAST_COPS],
        molecule=SMALL,
        probe_repetitions=2,
        servers=(1, 2),
        obs=obs,
    )
    return obs, report


def test_campaign_is_fully_captured(observed_campaign):
    obs, report = observed_campaign
    # every simulated run (probe + design cells) landed in the session
    assert len(obs.runs) >= report.simulations_run > 0
    assert any(run.startswith("probe:") for run in obs.runs)
    assert len(obs.tracer.spans) > 0
    assert obs.tracer.open_spans() == 0


def test_merged_chrome_export_matches_by_category(observed_campaign, tmp_path):
    obs, _report = observed_campaign
    path = tmp_path / "campaign.trace.json"
    obs.export_chrome(path)
    exported = read_chrome_totals(path)
    expected = obs.tracer.by_category()
    assert set(exported) == set(expected)
    for category, seconds in expected.items():
        assert abs(exported[category] - seconds) <= 1e-9


def test_at_least_one_flow_edge_per_rpc(observed_campaign, tmp_path):
    obs, _report = observed_campaign
    path = tmp_path / "campaign.trace.json"
    obs.export_chrome(path)
    rpcs = obs.metrics.counter("sciddle.rpcs_issued").value
    assert rpcs > 0
    assert count_flow_events(path) >= rpcs


def test_calibrated_model_report_is_attached(observed_campaign):
    obs, report = observed_campaign
    assert obs.model_params is not None
    assert obs.model_params == report.calibration.params
    text = obs.model_report()
    assert "measured vs model" in text
    assert "mean absolute drift per response variable" in text
    assert "verdict:" in text


def test_summarize_cli_accepts_the_export(observed_campaign, tmp_path, capsys):
    obs, _report = observed_campaign
    path = tmp_path / "campaign.trace.json"
    obs.export_chrome(path)
    assert obs_main(["summarize", str(path)]) == 0
    out = capsys.readouterr().out
    assert "chrome trace-event json" in out
    assert "response-variable rollup" in out


def test_parallel_campaign_capture_matches_serial(tmp_path):
    kwargs = dict(
        reference=CRAY_J90,
        candidates=[FAST_COPS],
        molecule=SMALL,
        probe_repetitions=2,
        servers=(1, 2),
    )
    serial, pooled = ObsSession("serial"), ObsSession("pooled")
    run_campaign(obs=serial, **kwargs)
    run_campaign(obs=pooled, workers=2, **kwargs)
    # identical runs in identical (design) order, whatever order the
    # pool's cells happened to complete in
    assert serial.runs == pooled.runs
    assert serial.tracer.by_category() == pytest.approx(
        pooled.tracer.by_category()
    )
    assert len(serial.tracer.flows) == len(pooled.tracer.flows)
