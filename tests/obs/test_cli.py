"""python -m repro.obs: summarize / convert / diff exit codes and output."""

import json

import pytest

from repro.obs import MetricsRegistry, SpanTracer, write_chrome_trace, write_jsonl
from repro.obs.cli import main


@pytest.fixture
def traces(tmp_path):
    tr = SpanTracer()
    tr.record("client", "compute", 0.0, 1.0)
    tr.record("client", "send", 1.0, 1.25)
    tr.record("server0", "recv_wait", 0.0, 1.25)
    tr.flow(1, "client", 1.25, "server0", 1.3, nbytes=64.0)
    reg = MetricsRegistry()
    reg.counter("sciddle.rpcs_issued").inc(1)
    jsonl = tmp_path / "t.trace.jsonl"
    chrome = tmp_path / "t.trace.json"
    write_jsonl(tr, jsonl, metrics=reg)
    write_chrome_trace(tr, chrome, metrics=reg)
    return tr, jsonl, chrome


class TestSummarize:
    def test_jsonl_exits_zero(self, traces, capsys):
        _tr, jsonl, _chrome = traces
        assert main(["summarize", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "spans: 3" in out and "flows: 1" in out
        assert "response-variable rollup" in out
        assert "sciddle.rpcs_issued" in out

    def test_chrome_exits_zero(self, traces, capsys):
        _tr, _jsonl, chrome = traces
        assert main(["summarize", str(chrome)]) == 0
        out = capsys.readouterr().out
        assert "chrome trace-event json" in out
        assert "spans: 3" in out and "flows: 1" in out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["summarize", str(tmp_path / "nope.json")]) == 2
        assert "no such trace file" in capsys.readouterr().out


class TestConvert:
    def test_jsonl_to_chrome_preserves_totals(self, traces, tmp_path, capsys):
        tr, jsonl, _chrome = traces
        out_path = tmp_path / "converted.trace.json"
        assert main(["convert", str(jsonl), str(out_path)]) == 0
        assert "wrote" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        totals = {}
        for event in document["traceEvents"]:
            if event.get("ph") == "X":
                cat = event["cat"]
                totals[cat] = totals.get(cat, 0.0) + event["dur"] / 1e6
        for category, seconds in tr.by_category().items():
            assert abs(totals[category] - seconds) <= 1e-9

    def test_chrome_input_is_rejected(self, traces, tmp_path, capsys):
        _tr, _jsonl, chrome = traces
        code = main(["convert", str(chrome), str(tmp_path / "x.json")])
        assert code == 2
        assert "lossy" in capsys.readouterr().out


class TestDiff:
    def test_identical_formats_agree(self, traces, capsys):
        _tr, jsonl, chrome = traces
        assert main(["diff", str(jsonl), str(chrome)]) == 0
        assert "agree within tolerance" in capsys.readouterr().out

    def test_drift_beyond_tolerance_exits_one(self, traces, tmp_path, capsys):
        tr, jsonl, _chrome = traces
        drifted = SpanTracer()
        for s in tr.spans:
            drifted.record(s.proc, s.category, s.start, s.end + 1e-6)
        other = tmp_path / "drifted.trace.jsonl"
        write_jsonl(drifted, other)
        assert main(["diff", str(jsonl), str(other)]) == 1
        assert "traces differ" in capsys.readouterr().out

    def test_tolerance_flag_loosens_the_gate(self, traces, tmp_path):
        tr, jsonl, _chrome = traces
        drifted = SpanTracer()
        for s in tr.spans:
            drifted.record(s.proc, s.category, s.start, s.end + 1e-6)
        other = tmp_path / "drifted.trace.jsonl"
        write_jsonl(drifted, other)
        assert main(["diff", str(jsonl), str(other), "--tolerance", "1e-3"]) == 0
