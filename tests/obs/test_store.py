"""TelemetryStore: append/scan round trips, atomicity, bit-identity."""

import json

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.obs.store import SCHEMA, TelemetryStore


def test_append_scan_roundtrip_preserves_dtypes(tmp_path):
    store = TelemetryStore(tmp_path)
    sid = store.append(
        "cells",
        {
            "servers": [1, 2, 4],
            "total_s": [1.5, 0.9, 0.6],
            "run": ["a", "b", "c"],
        },
    )
    assert sid == "seg-000001"
    table = store.scan("cells")
    assert table["servers"].dtype.kind == "i"
    assert table["total_s"].dtype.kind == "f"
    assert table["run"].dtype.kind == "U"
    assert list(table["servers"]) == [1, 2, 4]
    assert list(table["run"]) == ["a", "b", "c"]


def test_scan_concatenates_segments_in_append_order(tmp_path):
    store = TelemetryStore(tmp_path)
    store.append("serve", {"reply_s": [1.0, 2.0]})
    store.append("serve", {"reply_s": [3.0]})
    assert list(store.scan("serve")["reply_s"]) == [1.0, 2.0, 3.0]
    assert store.rows("serve") == 3
    assert len(store) == 2
    assert store.version == 2


def test_first_segment_fixes_the_column_set(tmp_path):
    store = TelemetryStore(tmp_path)
    store.append("cells", {"servers": [1], "total_s": [2.0]})
    with pytest.raises(TelemetryError, match="has columns"):
        store.append("cells", {"servers": [2]})


def test_ragged_segment_rejected(tmp_path):
    with pytest.raises(TelemetryError, match="ragged"):
        TelemetryStore(tmp_path).append("cells", {"a": [1], "b": [1, 2]})


def test_invalid_names_rejected(tmp_path):
    store = TelemetryStore(tmp_path)
    with pytest.raises(TelemetryError, match="invalid dataset"):
        store.append("Cells", {"a": [1]})
    with pytest.raises(TelemetryError, match="invalid column"):
        store.append("cells", {"bad.name": [1]})


def test_scan_of_missing_dataset_is_an_error(tmp_path):
    store = TelemetryStore(tmp_path)
    store.append("cells", {"a": [1]})
    with pytest.raises(TelemetryError, match="no dataset"):
        store.scan("serve")


def test_reopen_sees_all_segments(tmp_path):
    TelemetryStore(tmp_path).append("cells", {"a": [1, 2]})
    again = TelemetryStore(tmp_path)
    assert again.rows("cells") == 2
    assert again.datasets() == ["cells"]
    assert again.columns("cells") == ["a"]


def test_foreign_manifest_refused(tmp_path):
    (tmp_path / "manifest.json").write_text(json.dumps({"schema": "other/9"}))
    with pytest.raises(TelemetryError, match="schema tag"):
        TelemetryStore(tmp_path)


def test_manifest_is_schema_tagged(tmp_path):
    store = TelemetryStore(tmp_path)
    store.append("cells", {"a": [1]})
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert manifest["schema"] == SCHEMA
    assert manifest["segments"][0]["dataset"] == "cells"
    # no temp droppings from the atomic write protocol
    assert list(tmp_path.glob(".*.tmp")) == []
    assert list(tmp_path.glob("tmp-*")) == []


def test_segment_meta_rides_in_the_manifest(tmp_path):
    store = TelemetryStore(tmp_path)
    store.append("bench", {"value": [1.0]}, meta={"experiment": "PERF_x"})
    (entry,) = store.segments("bench")
    assert entry["meta"] == {"experiment": "PERF_x"}


def test_same_appends_bit_identical_digest(tmp_path):
    columns = {"reply_s": [0.1, 0.2, 0.3], "status": [0, 0, 1]}
    a = TelemetryStore(tmp_path / "a")
    b = TelemetryStore(tmp_path / "b")
    for store in (a, b):
        store.append("serve", columns)
        store.append("serve", columns)
    assert a.content_digest() == b.content_digest()
    b.append("serve", columns)
    assert a.content_digest() != b.content_digest()


def test_read_segment_columns_subset(tmp_path):
    store = TelemetryStore(tmp_path)
    sid = store.append("cells", {"a": [1], "b": [2.0]})
    out = store.read_segment(sid, columns=["b"])
    assert set(out) == {"b"}
    with pytest.raises(TelemetryError, match="no column"):
        store.read_segment(sid, columns=["z"])
    with pytest.raises(TelemetryError, match="no segment"):
        store.read_segment("seg-999999")


def test_bool_columns_land_as_ints(tmp_path):
    store = TelemetryStore(tmp_path)
    store.append("cells", {"flag": [True, False]})
    col = store.scan("cells")["flag"]
    assert col.dtype == np.int64
    assert list(col) == [1, 0]
