"""Exporters: Chrome trace round-trip fidelity and JSONL losslessness."""

import json

import pytest

from repro.obs import MetricsRegistry, SpanTracer
from repro.obs.export import (
    count_flow_events,
    load_jsonl,
    read_chrome_totals,
    read_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


def make_tracer():
    tr = SpanTracer()
    outer = tr.begin("client", "comm:call_nbi", time=0.0)
    tr.record("client", "send", 0.0, 0.125, detail="tag=900")
    tr.end("client", time=1.0)
    tr.record("server0", "compute", 0.2, 0.7)
    tr.record("server0", "recv_wait", 0.0, 0.2)
    tr.flow(1, "client", 0.125, "server0", 0.2, nbytes=64.0, tag=900)
    tr.flow(2, "server0", 0.7, "client", 0.9, nbytes=1024.0, tag=10_001)
    assert outer == 1
    return tr


class TestChrome:
    def test_totals_agree_with_by_category_to_1e9(self, tmp_path):
        tr = make_tracer()
        path = tmp_path / "t.trace.json"
        write_chrome_trace(tr, path)
        exported = read_chrome_totals(path)
        expected = tr.by_category()
        assert set(exported) == set(expected)
        for category, seconds in expected.items():
            assert abs(exported[category] - seconds) <= 1e-9

    def test_flow_events_pair_up(self, tmp_path):
        tr = make_tracer()
        path = tmp_path / "t.trace.json"
        write_chrome_trace(tr, path)
        assert count_flow_events(path) == len(tr.flows) == 2

    def test_timestamps_are_simulated_microseconds(self, tmp_path):
        tr = SpanTracer()
        tr.record("p0", "compute", 1.5, 2.0)
        path = tmp_path / "t.trace.json"
        write_chrome_trace(tr, path)
        (event,) = [
            e
            for e in read_chrome_trace(path)["traceEvents"]
            if e.get("ph") == "X"
        ]
        assert event["ts"] == pytest.approx(1.5e6)
        assert event["dur"] == pytest.approx(0.5e6)

    def test_track_metadata_names_runs_and_procs(self, tmp_path):
        tr = make_tracer()
        host = SpanTracer()
        host.absorb(tr, run="run-a")
        host.absorb(tr, run="run-b")
        path = tmp_path / "t.trace.json"
        write_chrome_trace(host, path)
        events = read_chrome_trace(path)["traceEvents"]
        process_names = {
            e["args"]["name"] for e in events if e["name"] == "process_name"
        }
        thread_names = {
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        }
        assert process_names == {"run-a", "run-b"}
        assert thread_names == {"client", "server0"}

    def test_metrics_ride_along_in_other_data(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("sciddle.rpcs_issued").inc(5)
        path = tmp_path / "t.trace.json"
        write_chrome_trace(make_tracer(), path, metrics=reg)
        doc = read_chrome_trace(path)
        counters = doc["otherData"]["metrics"]["counters"]
        assert counters["sciddle.rpcs_issued"]["value"] == 5

    def test_bare_list_form_is_accepted(self, tmp_path):
        path = tmp_path / "bare.json"
        events = [{"ph": "X", "cat": "compute", "ts": 0.0, "dur": 1e6}]
        path.write_text(json.dumps(events))
        assert read_chrome_totals(path) == {"compute": pytest.approx(1.0)}


class TestJsonl:
    def test_round_trip_is_lossless(self, tmp_path):
        tr = make_tracer()
        reg = MetricsRegistry()
        reg.counter("events").inc(3)
        path = tmp_path / "t.trace.jsonl"
        lines = write_jsonl(tr, path, metrics=reg)
        # meta + spans + flows + metrics
        assert lines == 1 + len(tr.spans) + len(tr.flows) + 1
        loaded, metrics = load_jsonl(path)
        assert loaded.spans == tr.spans
        assert loaded.flows == tr.flows
        assert metrics.counter("events").value == 3

    def test_loaded_tracer_keeps_allocating_fresh_sids(self, tmp_path):
        tr = make_tracer()
        path = tmp_path / "t.trace.jsonl"
        write_jsonl(tr, path)
        loaded, _metrics = load_jsonl(path)
        new = loaded.record("p9", "compute", 0.0, 1.0)
        assert new.sid > max(s.sid for s in tr.spans)

    def test_jsonl_then_chrome_preserves_totals(self, tmp_path):
        tr = make_tracer()
        jsonl = tmp_path / "t.trace.jsonl"
        chrome = tmp_path / "t.trace.json"
        write_jsonl(tr, jsonl)
        loaded, _metrics = load_jsonl(jsonl)
        write_chrome_trace(loaded, chrome)
        exported = read_chrome_totals(chrome)
        for category, seconds in tr.by_category().items():
            assert abs(exported[category] - seconds) <= 1e-9
