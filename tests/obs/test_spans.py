"""Span tracer semantics: nesting, balance, rollup, merging."""

import pytest

from repro.obs import MODEL_CATEGORIES, SpanTracer, response_variable


class TestRecording:
    def test_record_appends_complete_span(self):
        tr = SpanTracer()
        span = tr.record("p0", "compute", 1.0, 3.5, detail="nbi")
        assert span.duration == 2.5
        assert span.label == "compute"
        assert tr.spans == [span]

    def test_record_rejects_negative_interval(self):
        tr = SpanTracer()
        with pytest.raises(ValueError, match="ends before it starts"):
            tr.record("p0", "compute", 2.0, 1.0)

    def test_disabled_tracer_records_nothing(self):
        tr = SpanTracer(enabled=False)
        assert tr.record("p0", "compute", 0.0, 1.0) is None
        assert tr.begin("p0", "compute", time=0.0) == 0
        assert tr.end("p0", time=1.0) is None
        assert tr.flow(1, "a", 0.0, "b", 1.0) is None
        assert tr.spans == [] and tr.flows == []


class TestNesting:
    def test_begin_end_balance(self):
        tr = SpanTracer()
        sid = tr.begin("p0", "comm:call_nbi", time=0.0)
        assert tr.open_spans() == 1
        span = tr.end("p0", time=2.0)
        assert tr.open_spans() == 0
        assert span.sid == sid and span.duration == 2.0

    def test_record_nests_under_open_bracket(self):
        tr = SpanTracer()
        outer = tr.begin("p0", "comm:call_nbi", time=0.0)
        child = tr.record("p0", "send", 0.1, 0.4)
        tr.end("p0", time=1.0)
        assert child.parent == outer
        assert [s.sid for s in tr.children(outer)] == [child.sid]

    def test_brackets_nest_per_process(self):
        tr = SpanTracer()
        outer = tr.begin("p0", "service:nbi", time=0.0)
        inner = tr.begin("p0", "compute", time=0.2)
        other = tr.begin("p1", "compute", time=0.0)  # separate stack
        inner_span = tr.end("p0", time=0.8)
        outer_span = tr.end("p0", time=1.0)
        assert inner_span.parent == outer
        assert outer_span.parent is None
        assert tr.open_spans("p1") == 1 and tr.open_spans() == 1
        assert tr.end("p1", time=0.5).sid == other

    def test_end_without_open_span_raises(self):  # simlint: disable=P203
        tr = SpanTracer()
        with pytest.raises(ValueError, match="no span is open"):
            tr.end("p0", time=1.0)

    def test_end_category_mismatch_raises(self):
        tr = SpanTracer()
        tr.begin("p0", "compute", time=0.0)
        with pytest.raises(ValueError, match="is open"):
            tr.end("p0", time=1.0, category="sync")

    def test_end_before_start_raises(self):
        tr = SpanTracer()
        tr.begin("p0", "compute", time=5.0)
        with pytest.raises(ValueError, match="ends before it starts"):
            tr.end("p0", time=4.0)

    def test_scope_context_manager_balances(self):
        clock = iter([0.0, 2.0])
        tr = SpanTracer(clock=lambda: next(clock))
        with tr.scope("p0", "sync", name="phase-barrier"):
            assert tr.open_spans("p0") == 1
        assert tr.open_spans() == 0
        assert tr.spans[0].name == "phase-barrier"
        assert tr.spans[0].duration == 2.0

    def test_begin_without_clock_or_time_raises(self):  # simlint: disable=P203
        tr = SpanTracer()
        with pytest.raises(ValueError, match="clock"):
            tr.begin("p0", "compute")


class TestRollup:
    def test_every_model_category_is_covered(self):
        for category in MODEL_CATEGORIES:
            assert response_variable(category) in MODEL_CATEGORIES

    @pytest.mark.parametrize(
        "category,variable",
        [
            ("compute", "par_comp"),
            ("service:return_nbi", "par_comp"),
            ("send", "comm"),
            ("recv", "comm"),
            ("comm:call_nbi", "comm"),
            ("reply:nbi", "comm"),
            ("sync", "sync"),
            ("idle", "idle"),
            ("recv_wait", "idle"),
            ("cpu_wait", "idle"),
            ("seq_comp", "seq_comp"),
        ],
    )
    def test_rollup_table(self, category, variable):
        assert response_variable(category) == variable

    def test_unknown_category_is_unattributed(self):
        assert response_variable("frobnicate") is None

    def test_by_response_variable_keeps_other_bucket(self):
        tr = SpanTracer()
        tr.record("p0", "compute", 0.0, 1.0)
        tr.record("p0", "frobnicate", 1.0, 1.5)
        rollup = tr.by_response_variable()
        assert rollup["par_comp"] == pytest.approx(1.0)
        assert rollup["(other)"] == pytest.approx(0.5)
        # nothing disappears: rollup total == category total
        assert sum(rollup.values()) == pytest.approx(sum(tr.by_category().values()))


class TestAggregationAndMerge:
    def _filled(self):
        tr = SpanTracer()
        tr.record("p0", "compute", 0.0, 1.0)
        tr.record("p1", "compute", 0.0, 2.0)
        tr.record("p0", "send", 1.0, 1.25)
        tr.flow(7, "p0", 1.25, "p1", 1.5, nbytes=64.0, tag=900)
        return tr

    def test_by_process_and_bounds(self):
        tr = self._filled()
        per = tr.by_process()
        assert per["p0"] == {"compute": 1.0, "send": 0.25}
        assert tr.span_bounds() == (0.0, 2.0)
        assert tr.procs() == ["p0", "p1"]

    def test_flow_rejects_time_travel(self):
        tr = SpanTracer()
        with pytest.raises(ValueError, match="arrives before it departs"):
            tr.flow(1, "a", 2.0, "b", 1.0)

    def test_absorb_remaps_sids_and_stamps_run(self):
        host = SpanTracer()
        host.record("x", "compute", 0.0, 1.0)
        donor = SpanTracer()
        parent = donor.begin("p0", "service:nbi", time=0.0)
        donor.record("p0", "compute", 0.1, 0.9)
        donor.end("p0", time=1.0)
        donor.flow(3, "p0", 0.5, "p1", 0.6)
        host.absorb(donor, run="run-a")

        copied = [s for s in host.spans if s.run == "run-a"]
        assert len(copied) == 2
        child = next(s for s in copied if s.category == "compute")
        outer = next(s for s in copied if s.category == "service:nbi")
        # parent link survives the sid remap, ids stay unique in the host
        assert child.parent == outer.sid and outer.sid != parent
        assert len({s.sid for s in host.spans}) == len(host.spans)
        assert host.flows[-1].run == "run-a"
        assert host.runs() == ["", "run-a"]

    def test_absorb_merges_totals_additively(self):
        host, donor = self._filled(), self._filled()
        before = host.by_category()
        host.absorb(donor, run="b")
        after = host.by_category()
        for category, seconds in before.items():
            assert after[category] == pytest.approx(2 * seconds)
