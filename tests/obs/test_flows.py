"""Causal flow edges emitted by real simulated message deliveries."""

import pytest

from repro.netsim import (
    Cluster,
    Node,
    Recv,
    Send,
    SwitchedFabric,
    constant_rate,
)


def make_cluster():
    cluster = Cluster(
        lambda e: SwitchedFabric(e, latency=1e-3, bandwidth=1e6), seed=1
    )
    nodes = [
        cluster.add_node(Node(cluster.engine, i, constant_rate(1e6), n_cpus=1))
        for i in range(2)
    ]
    return cluster, nodes


class TestFlowPairing:
    def test_send_recv_emits_one_edge(self):
        cluster, nodes = make_cluster()

        def receiver(ctx):
            yield Recv(tag=9)

        def sender(ctx, dest):
            yield Send(dest, nbytes=100, tag=9)

        r = cluster.spawn("rx", nodes[1], receiver)
        cluster.spawn("tx", nodes[0], sender, r.tid)
        cluster.run()

        (edge,) = cluster.tracer.flows
        assert edge.src_proc == "tx" and edge.dst_proc == "rx"
        assert edge.nbytes == 100 and edge.tag == 9
        # departure at send time, arrival when the Recv completes:
        # 100 B at 1 MB/s + 1 ms wire latency
        assert edge.src_time == pytest.approx(0.0)
        assert edge.dst_time == pytest.approx(1.1e-3)
        assert edge.dst_time >= edge.src_time

    def test_ping_pong_pairs_every_message(self):
        cluster, nodes = make_cluster()
        rounds = 3

        def ponger(ctx):
            for _ in range(rounds):
                msg = yield Recv(tag=1)
                yield Send(msg.source, nbytes=10, tag=2)

        def pinger(ctx, dest):
            for _ in range(rounds):
                yield Send(dest, nbytes=10, tag=1)
                yield Recv(tag=2)

        pong = cluster.spawn("pong", nodes[1], ponger)
        cluster.spawn("ping", nodes[0], pinger, pong.tid)
        cluster.run()

        edges = cluster.tracer.flows
        assert len(edges) == 2 * rounds
        there = [e for e in edges if (e.src_proc, e.dst_proc) == ("ping", "pong")]
        back = [e for e in edges if (e.src_proc, e.dst_proc) == ("pong", "ping")]
        assert len(there) == len(back) == rounds
        # message ids are unique and each edge respects causality
        assert len({e.fid for e in edges}) == len(edges)
        for e in edges:
            assert e.dst_time >= e.src_time

    def test_untraced_cluster_emits_no_edges(self):
        cluster, nodes = make_cluster()
        cluster.tracer.enabled = False

        def receiver(ctx):
            yield Recv(tag=9)

        def sender(ctx, dest):
            yield Send(dest, nbytes=100, tag=9)

        r = cluster.spawn("rx", nodes[1], receiver)
        cluster.spawn("tx", nodes[0], sender, r.tid)
        cluster.run()
        assert cluster.tracer.flows == []
