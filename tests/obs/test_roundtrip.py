"""Acceptance: campaign and serve telemetry round-trip through the store.

The issue's bar, end to end: a chaos campaign ingested via
``run_campaign(store_dir=...)`` must be queryable back out with
aggregates that equal the residual report's own numbers to 1e-9;
serial and pooled campaigns must append bit-identical stores
(``content_digest``); drift detection must stay quiet on clean
replayed history and flag a perturbed calibration; and a loadgen run
ingested next to the flight-recorder rows must reproduce its own
client-side statistics.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments import ExperimentCase, ExperimentRunner, run_campaign
from repro.netsim.faults import FaultSpec
from repro.obs.ingest import ingest_records
from repro.obs.monitor import residual_drift
from repro.obs.query import run_query
from repro.obs.report import join_residuals
from repro.obs.store import TelemetryStore
from repro.opal.complexes import SMALL
from repro.platforms import CRAY_J90, FAST_COPS

CHAOS = FaultSpec.parse("drop=0.01,delay=0.02,delay_scale=0.05,timeout=5")

DESIGN = [
    ExperimentCase(molecule=SMALL, servers=p, cutoff=10.0, update_interval=1)
    for p in (1, 2, 3)
]

CAMPAIGN = dict(
    reference=CRAY_J90,
    candidates=[FAST_COPS],
    molecule=SMALL,
    design=list(DESIGN),
    probe_repetitions=2,
    servers=(1, 2),
    faults=CHAOS,
)


@pytest.fixture(scope="module")
def campaign_store(tmp_path_factory):
    root = tmp_path_factory.mktemp("campaign-store")
    report = run_campaign(store_dir=root, **CAMPAIGN)
    return TelemetryStore(root), report


def test_cells_match_the_measured_records(campaign_store):
    store, _report = campaign_store
    # the campaign runner is deterministic: replaying the design gives
    # the exact records the campaign measured and ingested
    records = ExperimentRunner(CRAY_J90, faults=CHAOS).run_design(DESIGN)
    table = store.scan("cells")
    assert store.rows("cells") == len(records)
    for i, record in enumerate(records):
        assert table["run"][i] == record.case.label
        assert table["total_s"][i] == record.breakdown.total
        assert table["wall_mean"][i] == record.wall_stats.mean


def test_query_reproduces_residual_report_per_cell(campaign_store):
    store, report = campaign_store
    records = ExperimentRunner(CRAY_J90, faults=CHAOS).run_design(DESIGN)
    residuals = join_residuals(
        [(r.case.label, r.app, r.breakdown) for r in records],
        report.calibration.params,
    )
    by_run = {}
    for res in residuals:
        by_run.setdefault(res.run, []).append(abs(res.relative))
    assert by_run  # the join produced per-cell rows to compare against
    for run, values in by_run.items():
        result = run_query(
            store,
            "residuals",
            where=f"run=={run}",
            agg="mean(relative), count()",
        )
        assert result.aggregates["count()"] == float(len(values))
        # |relative| == relative is NOT guaranteed; aggregate the column
        table = store.scan("residuals")
        mask = table["run"] == run
        assert abs(
            float(np.mean(np.abs(table["relative"][mask])))
            - float(np.mean(values))
        ) <= 1e-9


def test_serial_and_pooled_ingestion_bit_identical(tmp_path):
    serial_root = tmp_path / "serial"
    pooled_root = tmp_path / "pooled"
    run_campaign(store_dir=serial_root, **CAMPAIGN)
    run_campaign(store_dir=pooled_root, workers=2, **CAMPAIGN)
    serial = TelemetryStore(serial_root)
    pooled = TelemetryStore(pooled_root)
    assert serial.content_digest() == pooled.content_digest()


def test_drift_quiet_on_clean_history_flags_perturbed(campaign_store, tmp_path):
    _store, report = campaign_store
    records = ExperimentRunner(CRAY_J90, faults=CHAOS).run_design(DESIGN)
    params = report.calibration.params

    store = TelemetryStore(tmp_path / "drift")
    for _ in range(4):
        ingest_records(store, records, params=params)
    clean = residual_drift(store)
    assert clean.ok, [v.as_dict() for v in clean.flagged]

    # a silently perturbed calibration (comm rate halved) must flag the
    # communication variable once its batches arrive
    perturbed = dataclasses.replace(params, a1=params.a1 / 2)
    for _ in range(2):
        ingest_records(store, records, params=perturbed)
    drifted = residual_drift(store)
    assert not drifted.ok
    assert "comm" in {v.variable for v in drifted.flagged}


def test_store_carries_campaign_meta(campaign_store):
    store, _report = campaign_store
    (cells_entry,) = store.segments("cells")
    assert cells_entry["meta"]["campaign"] == CRAY_J90.name
    assert cells_entry["meta"]["seed"] == 0
    assert set(store.datasets()) == {"cells", "residuals"}
