"""ObsSession: the obs= hook, payload transport, model report."""

import pytest

from repro import ApplicationParams, ModelPlatformParams
from repro.obs import ObsSession, run_label
from repro.obs.session import app_from_dict, app_to_dict
from repro.opal import SMALL, run_parallel_opal
from repro.platforms import CRAY_J90


def small_app(**overrides):
    kwargs = dict(molecule=SMALL, steps=3, servers=2, cutoff=None)
    kwargs.update(overrides)
    return ApplicationParams(**kwargs)


@pytest.fixture(scope="module")
def captured():
    """One observed Opal run shared by the read-only assertions."""
    obs = ObsSession(label="t")
    result = run_parallel_opal(small_app(), CRAY_J90, obs=obs, run_label="demo")
    return obs, result


class TestRunLabel:
    def test_label_encodes_the_cell(self):
        label = run_label("j90", small_app(cutoff=10.0), seed=7)
        assert label == "j90/small/p2/u1/cut10/s3/seed7"

    def test_rep_suffix_and_no_cutoff(self):
        label = run_label("j90", small_app(), seed=0, rep=2)
        assert label.endswith("/cutnone/s3/seed0/r2")

    def test_app_round_trips_through_dict(self):
        app = small_app(cutoff=10.0)
        assert app_from_dict(app_to_dict(app)) == app


class TestAbsorbOpalRun:
    def test_spans_and_flows_are_captured(self, captured):
        obs, _result = captured
        assert obs.runs == ["demo"]
        assert all(s.run == "demo" for s in obs.tracer.spans)
        assert len(obs.tracer.spans) > 0
        # every Sciddle RPC produced at least one causal edge
        rpcs = obs.metrics.counter("sciddle.rpcs_issued").value
        assert rpcs > 0
        assert len(obs.tracer.flows) >= rpcs

    def test_metrics_are_harvested_across_the_stack(self, captured):
        obs, result = captured
        m = obs.metrics
        assert m.counter("netsim.events_executed").value > 0
        assert m.counter("netsim.barrier_arrivals").value > 0
        assert m.counter("sciddle.calls_served").value > 0
        assert m.counter("hpm.flops_counted").value == result.flops_counted
        assert m.counter("opal.runs").value == 1
        assert m.histogram("opal.wall_time").mean == pytest.approx(
            result.wall_time
        )

    def test_phase_spans_nest_kernel_records(self, captured):
        obs, _result = captured
        with_parent = [s for s in obs.tracer.spans if s.parent is not None]
        assert with_parent, "accountant phase brackets should nest kernel spans"
        sids = {s.sid for s in obs.tracer.spans}
        assert all(s.parent in sids for s in with_parent)

    def test_default_label_is_derived_when_not_given(self):
        obs = ObsSession()
        run_parallel_opal(small_app(), CRAY_J90, obs=obs)
        assert obs.runs == [run_label("j90", small_app(), seed=0)]

    def test_unobserved_run_is_unchanged(self, captured):
        _obs, observed = captured
        plain = run_parallel_opal(small_app(), CRAY_J90)
        assert plain.wall_time == observed.wall_time
        assert plain.breakdown.as_dict() == observed.breakdown.as_dict()


class TestPayloadTransport:
    def test_round_trip_preserves_everything(self, captured):
        obs, _result = captured
        clone = ObsSession(label="clone")
        clone.absorb_payload(obs.to_payload())
        assert clone.runs == obs.runs
        assert len(clone.tracer.spans) == len(obs.tracer.spans)
        assert len(clone.tracer.flows) == len(obs.tracer.flows)
        assert clone.tracer.by_category() == pytest.approx(
            obs.tracer.by_category()
        )
        assert clone.metrics.as_dict() == obs.metrics.as_dict()
        assert clone.run_rows[0][1] == obs.run_rows[0][1]
        assert clone.run_rows[0][2].as_dict() == obs.run_rows[0][2].as_dict()

    def test_empty_payload_is_noop(self):
        obs = ObsSession()
        obs.absorb_payload(None)
        obs.absorb_payload({})
        assert obs.runs == [] and obs.tracer.spans == []


class TestModelReport:
    def test_report_requires_params(self, captured):
        obs, _result = captured
        assert "no model parameters" in ObsSession().model_report()
        fresh = ObsSession()
        fresh.set_model_params(ModelPlatformParams.from_spec(CRAY_J90))
        assert "no runs absorbed" in fresh.model_report()

    def test_report_joins_measured_against_model(self, captured):
        obs, _result = captured
        obs.set_model_params(ModelPlatformParams.from_spec(CRAY_J90))
        report = obs.model_report()
        assert "measured vs model" in report
        assert "run: demo" in report
        for variable in ("seq_comp", "comm", "sync"):
            assert variable in report
        assert "verdict:" in report

    def test_summary_mentions_counts_and_categories(self, captured):
        obs, _result = captured
        text = obs.summary()
        assert "1 run(s)" in text
        assert "response-variable rollup" in text
        assert "comm" in text
