"""SLO window evaluation and EWMA/CUSUM drift detection."""

import json

import pytest

from repro.errors import TelemetryError
from repro.obs.monitor import (
    STATUS_OK,
    STATUS_SHED_RATE,
    SloBudget,
    detect_drift,
    evaluate_slo,
    residual_drift,
)
from repro.obs.query import percentile
from repro.obs.store import TelemetryStore


def serve_rows(store, reply_s, status=None, depth=None):
    n = len(reply_s)
    store.append(
        "serve",
        {
            "t_admit": [float(i) for i in range(n)],
            "reply_s": reply_s,
            "status": status or [STATUS_OK] * n,
            "depth": depth or [1] * n,
        },
    )


# ----------------------------------------------------------------------
# budgets
# ----------------------------------------------------------------------
def test_budget_from_file_roundtrip(tmp_path):
    path = tmp_path / "budget.json"
    path.write_text(json.dumps({"schema": "repro-slo/1", "p99_s": 0.5}))
    budget = SloBudget.from_file(path)
    assert budget.p99_s == 0.5
    assert budget.p50_s is None
    assert budget.as_dict()["p99_s"] == 0.5


def test_budget_rejects_foreign_schema(tmp_path):
    path = tmp_path / "budget.json"
    path.write_text(json.dumps({"p99_s": 0.5}))
    with pytest.raises(TelemetryError, match="schema tag"):
        SloBudget.from_file(path)
    with pytest.raises(TelemetryError, match="unreadable"):
        SloBudget.from_file(tmp_path / "missing.json")


# ----------------------------------------------------------------------
# SLO windows
# ----------------------------------------------------------------------
def test_clean_history_within_budget_passes(tmp_path):
    store = TelemetryStore(tmp_path)
    serve_rows(store, [0.010] * 50)
    report = evaluate_slo(store, SloBudget(p50_s=0.02, p99_s=0.05), window=20)
    assert report.ok
    assert report.windows  # a short history still yields verdicts
    assert all(w.p99_s == 0.010 for w in report.windows)


def test_latency_breach_is_window_local(tmp_path):
    store = TelemetryStore(tmp_path)
    # first 40 requests fast, last 10 slow: only trailing windows breach
    serve_rows(store, [0.010] * 40 + [0.500] * 10)
    report = evaluate_slo(store, SloBudget(p99_s=0.05), window=10, step=10)
    assert not report.ok
    breached = report.breached
    assert breached and all(w.index >= 4 for w in breached)
    assert any("p99" in b for w in breached for b in w.breaches)


def test_shed_fraction_and_queue_depth_budgets(tmp_path):
    store = TelemetryStore(tmp_path)
    serve_rows(
        store,
        [0.01, 0.0, 0.01, 0.01],
        status=[STATUS_OK, STATUS_SHED_RATE, STATUS_OK, STATUS_OK],
        depth=[1, 900, 2, 1],
    )
    report = evaluate_slo(
        store, SloBudget(shed_fraction=0.10, queue_depth=512), window=4
    )
    (window,) = report.windows
    assert window.shed_fraction == 0.25
    assert window.max_queue_depth == 900
    assert len(window.breaches) == 2
    # sheds never reply: their reply_s must not poison the quantiles
    assert window.p50_s == 0.01


def test_windows_order_by_admission_time(tmp_path):
    store = TelemetryStore(tmp_path)
    # appended out of order; t_admit sorting must reunite the burst
    store.append(
        "serve",
        {
            "t_admit": [3.0, 1.0, 2.0, 0.0],
            "reply_s": [0.4, 0.01, 0.01, 0.01],
            "status": [STATUS_OK] * 4,
            "depth": [1] * 4,
        },
    )
    report = evaluate_slo(store, SloBudget(p99_s=0.05), window=3, step=3)
    # the first window is the three early arrivals, not the append head
    assert report.windows[0].p99_s == 0.01
    assert not report.ok  # the late 0.4s request breaches its window


def test_report_shapes(tmp_path):
    store = TelemetryStore(tmp_path)
    serve_rows(store, [0.01] * 4)
    report = evaluate_slo(store, SloBudget(p99_s=0.05), window=4)
    payload = report.as_dict()
    assert payload["schema"] == "repro-slo-report/1"
    assert payload["ok"] is True
    assert "SLO verdict" in report.render()
    with pytest.raises(TelemetryError, match="window"):
        evaluate_slo(store, SloBudget(), window=0)


def test_window_quantiles_use_shared_percentile(tmp_path):
    store = TelemetryStore(tmp_path)
    values = [0.001 * (i + 1) for i in range(32)]
    serve_rows(store, values)
    report = evaluate_slo(store, SloBudget(), window=32)
    assert report.windows[0].p99_s == percentile(values, 0.99)


# ----------------------------------------------------------------------
# drift
# ----------------------------------------------------------------------
def test_detect_drift_quiet_on_constant_history():
    outcome = detect_drift([0.02] * 8)
    assert outcome["flagged"] == 0.0
    assert outcome["ewma_z"] == 0.0
    assert outcome["cusum"] == 0.0


def test_detect_drift_flags_step_change():
    outcome = detect_drift([0.02] * 4 + [0.2] * 4)
    assert outcome["flagged"] == 1.0
    assert "ewma_z" in outcome["reason"] or "cusum" in outcome["reason"]


def test_detect_drift_flags_slow_ramp():
    series = [0.02 + 0.004 * i for i in range(12)]
    outcome = detect_drift(series, burn=3)
    assert outcome["flagged"] == 1.0


def test_detect_drift_short_history_is_quiet():
    assert detect_drift([])["flagged"] == 0.0
    assert detect_drift([0.5])["flagged"] == 0.0
    assert detect_drift([0.5, 0.6])["flagged"] == 0.0  # all burn-in


def test_residual_drift_per_variable(tmp_path):
    store = TelemetryStore(tmp_path)
    # three clean batches, then a 10x regression in one variable only
    for batch in range(4):
        drifted = batch == 3
        store.append(
            "residuals",
            {
                "variable": ["comm", "comm", "update", "update"],
                "relative": [
                    0.20 if drifted else 0.02,
                    0.22 if drifted else 0.02,
                    0.01,
                    0.01,
                ],
                "batch": [batch] * 4,
            },
        )
    report = residual_drift(store, burn=3)
    flagged = {v.variable for v in report.flagged}
    assert flagged == {"comm"}
    assert not report.ok
    payload = report.as_dict()
    assert payload["schema"] == "repro-drift-report/1"
    assert "DRIFT" in report.render()
