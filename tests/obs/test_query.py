"""The query engine: where parsing, aggregates, group-by, projection."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.obs.query import (
    parse_aggs,
    parse_where,
    percentile,
    run_query,
)
from repro.obs.store import TelemetryStore


@pytest.fixture
def store(tmp_path):
    s = TelemetryStore(tmp_path)
    s.append(
        "cells",
        {
            "servers": [1, 2, 4, 8],
            "total_s": [8.0, 4.5, 2.5, 1.5],
            "cutoff": [10.0, float("nan"), 10.0, float("nan")],
            "run": ["a", "b", "c", "d"],
        },
    )
    return s


def test_percentile_is_nearest_rank():
    values = [3.0, 1.0, 2.0, 4.0]
    assert percentile(values, 0.50) == 3.0  # round(0.5 * 3) == 2
    assert percentile(values, 0.99) == 4.0
    assert percentile(values, 0.0) == 1.0
    assert percentile([], 0.99) == 0.0


def test_where_conjunction_and_comma_both_split():
    for text in ("servers>=2 and total_s<4.5", "servers>=2, total_s<4.5"):
        clauses = parse_where(text)
        assert [(c.column, c.op, c.value) for c in clauses] == [
            ("servers", ">=", 2),
            ("total_s", "<", 4.5),
        ]


def test_where_bad_clause_raises():
    with pytest.raises(TelemetryError, match="unparseable where"):
        parse_where("servers ~ 3")


def test_agg_parsing_and_validation():
    aggs = parse_aggs("count(), p99(total_s)")
    assert [(a.func, a.column) for a in aggs] == [("count", ""), ("p99", "total_s")]
    with pytest.raises(TelemetryError, match="unknown aggregate"):
        parse_aggs("median(total_s)")
    with pytest.raises(TelemetryError, match="needs a column"):
        parse_aggs("mean()")


def test_filter_and_aggregate(store):
    result = run_query(
        store, "cells", where="servers>=2", agg="count(), mean(total_s)"
    )
    assert result.matched == 3
    assert result.aggregates["count()"] == 3.0
    assert result.aggregates["mean(total_s)"] == pytest.approx((4.5 + 2.5 + 1.5) / 3)


def test_nan_literal_matches_missing_cells(store):
    assert run_query(store, "cells", where="cutoff==none").matched == 2
    assert run_query(store, "cells", where="cutoff!=none").matched == 2
    with pytest.raises(TelemetryError, match="float column"):
        run_query(store, "cells", where="servers==none")


def test_string_equality(store):
    result = run_query(store, "cells", where="run==c", agg="max(servers)")
    assert result.aggregates["max(servers)"] == 4.0


def test_dataset_prefix_is_stripped(store):
    result = run_query(store, "cells", where="cell.servers>=4", agg="count()")
    assert result.aggregates["count()"] == 2.0


def test_unknown_column_names_the_alternatives(store):
    with pytest.raises(TelemetryError, match="no column"):
        run_query(store, "cells", where="nope==1")


def test_group_by(store):
    result = run_query(store, "cells", agg="count(), min(total_s)", by="cutoff")
    # NaN cutoffs group separately from 10.0
    assert len(result.groups) >= 2
    keyed = dict(result.groups)
    assert keyed["10.0"]["count()"] == 2.0
    assert keyed["10.0"]["min(total_s)"] == 2.5


def test_projection_with_select_and_limit(store):
    result = run_query(
        store, "cells", select=["run", "total_s"], limit=2
    )
    assert list(result.table) == ["run", "total_s"]
    assert result.table["run"] == ["a", "b"]
    assert result.table["total_s"] == [8.0, 4.5]


def test_aggregate_on_string_column_is_an_error(store):
    with pytest.raises(TelemetryError, match="not numeric"):
        run_query(store, "cells", agg="mean(run)")


def test_quantile_aggregate_uses_shared_percentile(store):
    result = run_query(store, "cells", agg="p50(total_s)")
    table = store.scan("cells")
    assert result.aggregates["p50(total_s)"] == percentile(table["total_s"], 0.50)


def test_empty_match_aggregates_to_zero(store):
    result = run_query(store, "cells", where="servers>100", agg="p99(total_s), count()")
    assert result.matched == 0
    assert result.aggregates["count()"] == 0.0
    assert result.aggregates["p99(total_s)"] == 0.0


def test_render_and_as_dict_cover_both_shapes(store):
    flat = run_query(store, "cells", agg="count()")
    assert "count()" in flat.render()
    assert flat.as_dict()["aggregates"]["count()"] == 4.0
    rows = run_query(store, "cells", select=["run"])
    assert rows.as_dict()["rows"]["run"] == ["a", "b", "c", "d"]
    assert "run" in rows.render()
