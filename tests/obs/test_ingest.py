"""Ingestion adapters: cache, trace rollups, bench emissions, loadgen."""

import json

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.experiments import ExperimentCase, ExperimentRunner
from repro.obs import ObsSession, write_jsonl
from repro.obs.ingest import (
    ingest_bench_dir,
    ingest_bench_payload,
    ingest_records,
    ingest_trace_jsonl,
)
from repro.obs.report import RESPONSE_VARIABLES
from repro.obs.store import TelemetryStore
from repro.opal.complexes import SMALL
from repro.platforms import CRAY_J90
from repro.serve.loadgen import LoadgenReport


@pytest.fixture(scope="module")
def records():
    design = [
        ExperimentCase(molecule=SMALL, servers=p, cutoff=10.0, update_interval=1)
        for p in (1, 2, 3)
    ]
    return ExperimentRunner(CRAY_J90).run_design(design)


def test_ingest_records_cells_shape(tmp_path, records):
    store = TelemetryStore(tmp_path)
    segments = ingest_records(store, records)
    assert len(segments) == 1  # no params -> no residuals
    table = store.scan("cells")
    assert store.rows("cells") == len(records)
    assert list(table["servers"]) == [1, 2, 3]
    for variable in RESPONSE_VARIABLES:
        assert variable in table
    assert table["total_s"][0] == pytest.approx(records[0].breakdown.total)
    assert list(table["batch"]) == [0, 0, 0]


def test_ingest_records_with_params_adds_residuals(tmp_path, records):
    from repro.core.calibration import calibrate

    params = calibrate([r.observation() for r in records]).params
    store = TelemetryStore(tmp_path)
    ingest_records(store, records, params=params)
    table = store.scan("residuals")
    assert store.rows("residuals") == len(records) * len(RESPONSE_VARIABLES)
    assert set(np.unique(table["variable"])) == set(RESPONSE_VARIABLES)
    # the batch counter advances per ingest
    ingest_records(store, records, params=params)
    assert set(np.unique(store.scan("residuals")["batch"])) == {0, 1}


def test_ingest_records_refuses_empty(tmp_path):
    with pytest.raises(TelemetryError, match="empty"):
        ingest_records(TelemetryStore(tmp_path), [])


def test_ingest_trace_rollup_matches_by_category(tmp_path):
    obs = ObsSession(label="unit")
    runner = ExperimentRunner(CRAY_J90, obs=obs)
    case = ExperimentCase(molecule=SMALL, servers=2, cutoff=10.0, update_interval=1)
    runner.run_design([case])
    path = tmp_path / "trace.jsonl"
    write_jsonl(obs.tracer, path, metrics=obs.metrics)

    store = TelemetryStore(tmp_path / "store")
    ingest_trace_jsonl(store, path)
    table = store.scan("spans")
    by_category = obs.tracer.by_category()
    for category, seconds in by_category.items():
        mask = table["category"] == category
        assert float(np.sum(table["total_s"][mask])) == pytest.approx(
            seconds, abs=1e-9
        )


def test_ingest_bench_payload_and_dir(tmp_path):
    payload = {
        "schema": "repro-bench/1",
        "experiment": "PERF_x",
        "records": [
            {"name": "a", "metric": "rate", "value": 10.0, "units": "events/s"}
        ],
    }
    (tmp_path / "PERF_x.json").write_text(json.dumps(payload))
    (tmp_path / "foreign.json").write_text(json.dumps({"schema": "other/1"}))
    (tmp_path / "torn.json").write_text("{nope")

    store = TelemetryStore(tmp_path / "store")
    segments = ingest_bench_dir(store, tmp_path)
    assert len(segments) == 1  # foreign + torn files skipped, not fatal
    (entry,) = store.segments("bench")
    assert entry["meta"]["experiment"] == "PERF_x"
    table = store.scan("bench")
    assert list(table["value"]) == [10.0]

    with pytest.raises(TelemetryError, match="not a bench payload"):
        ingest_bench_payload(store, {"schema": "other/1"})
    with pytest.raises(TelemetryError, match="no bench emissions"):
        ingest_bench_dir(TelemetryStore(tmp_path / "s2"), tmp_path / "empty")


def test_ingest_loadgen_report(tmp_path):
    report = LoadgenReport(sent=3, ok=3, latencies=[0.01, 0.02, 0.03])
    report.wall = 0.5
    store = TelemetryStore(tmp_path)
    report.ingest_into(store, meta={"campaign": "unit"})
    table = store.scan("loadgen")
    assert list(table["latency_s"]) == [0.01, 0.02, 0.03]
    (entry,) = store.segments("loadgen")
    assert entry["meta"]["ok"] == 3
    assert entry["meta"]["campaign"] == "unit"

    with pytest.raises(TelemetryError, match="no recorded latencies"):
        LoadgenReport().ingest_into(store)
    bad = LoadgenReport(latencies=[float("nan")])
    with pytest.raises(TelemetryError, match="non-finite"):
        bad.ingest_into(store)
