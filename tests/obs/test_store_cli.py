"""python -m repro.obs query/slo/drift/ingest and diff --fail-on-drift."""

import json

import pytest

from repro.obs import MetricsRegistry, SpanTracer, write_jsonl
from repro.obs.cli import main
from repro.obs.monitor import STATUS_OK
from repro.obs.store import TelemetryStore


@pytest.fixture
def serve_store(tmp_path):
    store = TelemetryStore(tmp_path / "store")
    n = 16
    store.append(
        "serve",
        {
            "t_admit": [float(i) for i in range(n)],
            "reply_s": [0.010] * (n - 1) + [0.900],
            "status": [STATUS_OK] * n,
            "depth": [2] * n,
        },
    )
    return tmp_path / "store"


def budget_file(tmp_path, **kwargs):
    path = tmp_path / "budget.json"
    path.write_text(json.dumps({"schema": "repro-slo/1", **kwargs}))
    return path


# ----------------------------------------------------------------------
# query
# ----------------------------------------------------------------------
def test_query_aggregate_json(serve_store, capsys):
    rc = main(
        [
            "query", str(serve_store), "serve",
            "--where", "status==0",
            "--agg", "count(), p99(reply_s)",
            "--json",
        ]
    )
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["matched"] == 16
    assert payload["aggregates"]["count()"] == 16.0


def test_query_renders_rows(serve_store, capsys):
    assert main(["query", str(serve_store), "serve", "--limit", "2"]) == 0
    out = capsys.readouterr().out
    assert "matched rows: 16" in out


def test_query_bad_where_exits_two(serve_store, capsys):
    assert main(["query", str(serve_store), "serve", "--where", "x~1"]) == 2
    assert "error:" in capsys.readouterr().out


def test_query_missing_store_exits_two(tmp_path, capsys):
    assert main(["query", str(tmp_path / "nope"), "serve"]) == 2
    assert "no telemetry store" in capsys.readouterr().out


# ----------------------------------------------------------------------
# slo
# ----------------------------------------------------------------------
def test_slo_within_budget_exits_zero(serve_store, tmp_path, capsys):
    budget = budget_file(tmp_path, p99_s=1.0)
    assert main(["slo", str(serve_store), str(budget)]) == 0
    assert "OK" in capsys.readouterr().out


def test_slo_breach_exits_one(serve_store, tmp_path, capsys):
    budget = budget_file(tmp_path, p99_s=0.05)
    assert main(["slo", str(serve_store), str(budget), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["schema"] == "repro-slo-report/1"


def test_slo_bad_budget_exits_two(serve_store, tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"p99_s": 1.0}))
    assert main(["slo", str(serve_store), str(bad)]) == 2
    assert "error:" in capsys.readouterr().out


# ----------------------------------------------------------------------
# drift
# ----------------------------------------------------------------------
def residual_store(tmp_path, drifted):
    store = TelemetryStore(tmp_path / "residuals")
    for batch in range(5):
        value = 0.3 if (drifted and batch >= 3) else 0.02
        store.append(
            "residuals",
            {
                "variable": ["comm", "update"],
                "relative": [value, 0.01],
                "batch": [batch, batch],
            },
        )
    return tmp_path / "residuals"


def test_drift_quiet_exits_zero(tmp_path, capsys):
    root = residual_store(tmp_path, drifted=False)
    assert main(["drift", str(root)]) == 0
    assert "quiet" in capsys.readouterr().out


def test_drift_flagged_exits_one(tmp_path, capsys):
    root = residual_store(tmp_path, drifted=True)
    assert main(["drift", str(root), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    flagged = [v for v in payload["variables"] if v["flagged"]]
    assert [v["variable"] for v in flagged] == ["comm"]


# ----------------------------------------------------------------------
# ingest
# ----------------------------------------------------------------------
def test_ingest_bench_dir(tmp_path, capsys):
    payload = {
        "schema": "repro-bench/1",
        "experiment": "PERF_x",
        "records": [{"name": "a", "metric": "m", "value": 1.0, "units": "s"}],
    }
    src = tmp_path / "out"
    src.mkdir()
    (src / "PERF_x.json").write_text(json.dumps(payload))
    root = tmp_path / "store"
    assert main(["ingest", str(root), "bench", str(src)]) == 0
    assert "bench:1" in capsys.readouterr().out
    assert TelemetryStore(root).rows("bench") == 1


def test_ingest_trace(tmp_path, capsys):
    tracer = SpanTracer()
    tracer.record("client", "compute", 0.0, 1.0)
    trace = tmp_path / "t.trace.jsonl"
    write_jsonl(tracer, trace, metrics=MetricsRegistry())
    root = tmp_path / "store"
    assert main(["ingest", str(root), "trace", str(trace)]) == 0
    assert TelemetryStore(root).rows("spans") == 1


def test_ingest_error_exits_two(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["ingest", str(tmp_path / "s"), "bench", str(empty)]) == 2
    assert "error:" in capsys.readouterr().out


# ----------------------------------------------------------------------
# diff --fail-on-drift
# ----------------------------------------------------------------------
def trace_file(tmp_path, name, comm_seconds):
    tracer = SpanTracer()
    tracer.record("client", "compute", 0.0, 1.0)
    tracer.record("client", "send", 1.0, 1.0 + comm_seconds)
    path = tmp_path / name
    write_jsonl(tracer, path, metrics=MetricsRegistry())
    return path


def test_diff_fail_on_drift_flags_shifted_variable(tmp_path, capsys):
    a = trace_file(tmp_path, "a.trace.jsonl", comm_seconds=0.25)
    b = trace_file(tmp_path, "b.trace.jsonl", comm_seconds=0.50)
    rc = main(
        ["diff", str(a), str(b), "--tolerance", "10", "--fail-on-drift"]
    )
    out = capsys.readouterr().out
    assert rc == 1
    assert "residual drift flagged on: comm" in out


def test_diff_fail_on_drift_quiet_on_identical(tmp_path, capsys):
    a = trace_file(tmp_path, "a.trace.jsonl", comm_seconds=0.25)
    b = trace_file(tmp_path, "b.trace.jsonl", comm_seconds=0.25)
    rc = main(["diff", str(a), str(b), "--fail-on-drift"])
    assert rc == 0
    assert "traces agree" in capsys.readouterr().out


def test_diff_without_flag_ignores_drift(tmp_path):
    a = trace_file(tmp_path, "a.trace.jsonl", comm_seconds=0.25)
    b = trace_file(tmp_path, "b.trace.jsonl", comm_seconds=0.50)
    assert main(["diff", str(a), str(b), "--tolerance", "10"]) == 0
