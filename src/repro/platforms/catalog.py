"""The five platforms of the paper (Section 4, Tables 1 and 2).

Every number here is traceable to the paper:

* single-node kernel execution times and counted MFlop from Table 1
  (the per-CPU *algorithmic* rate is ``325.80 MFlop / exec time``, the
  flop inflation is ``counted MFlop / 325.80``, normalizing to the best
  compiler per Section 4.1);
* peak/observed bandwidth and observed latency from Table 2;
* the interconnect contention kind from the platform descriptions
  (shared 100BaseT Ethernet -> shared medium; SCI / Myrinet -> switched;
  J90 crossbar + PVM/Sciddle -> crossbar with no fast local path, which
  encodes "the disastrously low communication performance for the J90"
  being a middleware property, not a hardware one).

Synchronization costs (b5) and memory-tier sizes are not tabulated in
the paper; we use latency-scale barrier costs and period-typical memory
configurations, and the calibration machinery treats them as free
parameters anyway.  ``approx_cost_kusd`` are our rough 1998 list-price
estimates supporting the paper's cost-effectiveness discussion.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.memhier import MemoryHierarchy
from ..errors import PlatformError
from ..opal import costs
from ..units import MBYTE, msec, usec
from .spec import PlatformSpec

#: Algorithmic flops of the Table 1 kernel (best-compiler count).
_KF = costs.KERNEL_FLOPS

#: Table 1 single-node kernel execution times [s] and counted flops [flop].
TABLE1_MEASUREMENTS = {
    "t3e": (9.56, 811.71e6),
    "j90": (6.18, 497.55e6),
    "slow-cops": (10.00, 327.40e6),
    "smp-cops": (5.00, 327.40e6),
    "fast-cops": (4.85, 325.80e6),
}


def _cpu_rate(name: str, cpus: int = 1) -> float:
    """Per-CPU algorithmic rate implied by the Table 1 kernel run."""
    time, _counted = TABLE1_MEASUREMENTS[name]
    return _KF / time / cpus


def _inflation(name: str) -> float:
    _time, counted = TABLE1_MEASUREMENTS[name]
    return counted / _KF


CRAY_J90 = PlatformSpec(
    name="j90",
    label="Cray J90 Classic (100 MHz)",
    clock_mhz=100,
    cpu_rate=_cpu_rate("j90"),
    flop_inflation=_inflation("j90"),
    cpus_per_node=1,  # modelled as one PVM endpoint per vector CPU
    max_nodes=8,
    memory=MemoryHierarchy(
        base_rate=_cpu_rate("j90"),
        cache_bytes=0.0,  # vector memory system, no data cache
        cache_factor=1.0,
        core_bytes=2e9,
        out_of_core_factor=0.10,
    ),
    net_kind="crossbar",
    net_peak_bw=2000 * MBYTE,
    net_bw=3 * MBYTE,  # PVM/Sciddle observed (Table 2)
    net_latency=msec(10),
    sync_cost=msec(10),
    fast_local_path=False,  # middleware ignores the shared memory
    approx_cost_kusd=1500,
    notes="reference platform; communication limited by PVM/Sciddle stack",
)

CRAY_T3E = PlatformSpec(
    name="t3e",
    label="Cray T3E-900 (450 MHz, MPI)",
    clock_mhz=450,
    cpu_rate=_cpu_rate("t3e"),
    flop_inflation=_inflation("t3e"),
    cpus_per_node=1,
    max_nodes=128,
    memory=MemoryHierarchy(
        base_rate=_cpu_rate("t3e"),
        cache_bytes=96e3,
        cache_factor=1.05,
        core_bytes=128e6,
        out_of_core_factor=0.25,
    ),
    net_kind="switched",
    net_peak_bw=350 * MBYTE,
    net_bw=100 * MBYTE,
    net_latency=usec(12),
    sync_cost=usec(25),
    approx_cost_kusd=2500,
    notes='the "big iron" MPP comparison point',
)

SLOW_COPS = PlatformSpec(
    name="slow-cops",
    label="slow CoPs (200 MHz Pentium Pro, shared 100BaseT)",
    clock_mhz=200,
    cpu_rate=_cpu_rate("slow-cops"),
    flop_inflation=_inflation("slow-cops"),
    cpus_per_node=1,
    max_nodes=32,
    memory=MemoryHierarchy(
        base_rate=_cpu_rate("slow-cops"),
        cache_bytes=256e3,
        core_bytes=64e6,
    ),
    net_kind="shared",
    net_peak_bw=10 * MBYTE,
    net_bw=3 * MBYTE,
    net_latency=msec(10),
    sync_cost=msec(10),
    approx_cost_kusd=40,
    notes="lowest-cost cluster, shared Ethernet segment",
)

SMP_COPS = PlatformSpec(
    name="smp-cops",
    label="SMP CoPs (twin 200 MHz Pentium Pro, SCI)",
    clock_mhz=200,
    cpu_rate=_cpu_rate("smp-cops", cpus=2),
    flop_inflation=_inflation("smp-cops"),
    cpus_per_node=2,
    max_nodes=16,
    memory=MemoryHierarchy(
        base_rate=_cpu_rate("smp-cops", cpus=2),
        cache_bytes=256e3,
        core_bytes=128e6,
    ),
    net_kind="switched",
    net_peak_bw=50 * MBYTE,
    net_bw=15 * MBYTE,
    net_latency=usec(25),
    sync_cost=usec(50),
    approx_cost_kusd=75,
    notes="twin-CPU nodes, SCI shared-memory interconnect",
)

FAST_COPS = PlatformSpec(
    name="fast-cops",
    label="fast CoPs (400 MHz Pentium Pro, switched Myrinet)",
    clock_mhz=400,
    cpu_rate=_cpu_rate("fast-cops"),
    flop_inflation=_inflation("fast-cops"),
    cpus_per_node=1,
    max_nodes=32,
    memory=MemoryHierarchy(
        base_rate=_cpu_rate("fast-cops"),
        cache_bytes=512e3,
        core_bytes=128e6,
    ),
    net_kind="switched",
    net_peak_bw=125 * MBYTE,
    net_bw=30 * MBYTE,
    net_latency=usec(15),
    sync_cost=usec(30),
    approx_cost_kusd=120,
    notes="single fast CPUs, fully switched Gigabit/s Myrinet",
)

CRAY_J90_CLUSTER = PlatformSpec(
    name="j90-cluster",
    label="Cluster of 4 Cray J90s over HIPPI (extension)",
    clock_mhz=100,
    cpu_rate=_cpu_rate("j90"),
    flop_inflation=_inflation("j90"),
    cpus_per_node=8,  # one PVM endpoint per CPU, eight per box
    max_nodes=4,
    memory=MemoryHierarchy(
        base_rate=_cpu_rate("j90"),
        cache_bytes=0.0,
        cache_factor=1.0,
        core_bytes=2e9,
        out_of_core_factor=0.10,
    ),
    net_kind="switched",
    net_peak_bw=100 * MBYTE,  # HIPPI link rate
    net_bw=10 * MBYTE,  # network PVM over HIPPI, observed
    net_latency=msec(2),
    sync_cost=msec(10),
    # in-box path: shared-memory PVM — the paper's measured 3 MB/s and
    # 10 ms apply INSIDE the machine; the middleware wastes the crossbar
    local_bw=3 * MBYTE,
    local_latency=msec(3),
    approx_cost_kusd=6000,
    notes=(
        "the deployment the Opal developers 'certainly had plans' for "
        "(Section 3.1); not part of the paper's measured set"
    ),
)

#: All platforms in the paper's Table 1 order.
ALL_PLATFORMS: List[PlatformSpec] = [
    CRAY_T3E,
    CRAY_J90,
    SLOW_COPS,
    SMP_COPS,
    FAST_COPS,
]

#: Extension platforms beyond the paper's measured set.
EXTENDED_PLATFORMS: List[PlatformSpec] = [CRAY_J90_CLUSTER]

PLATFORMS: Dict[str, PlatformSpec] = {
    p.name: p for p in ALL_PLATFORMS + EXTENDED_PLATFORMS
}

#: The reference platform the model is calibrated on.
REFERENCE_PLATFORM = CRAY_J90


def get_platform(name: str) -> PlatformSpec:
    """Look up a platform by name ('j90', 't3e', 'slow-cops', ...)."""
    try:
        return PLATFORMS[name]
    except KeyError:
        raise PlatformError(
            f"unknown platform {name!r}; available: {sorted(PLATFORMS)}"
        ) from None
