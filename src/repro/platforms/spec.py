"""Platform specifications.

A :class:`PlatformSpec` carries exactly the "standard performance data"
the paper extracts for each candidate machine (Section 4.1, Tables 1 and
2): node compute characteristics (algorithmic rate, flop inflation,
memory tiers, CPUs per node) and interconnect characteristics (peak and
observed bandwidth, observed latency, contention kind), plus the
synchronization cost entering the model's ``b5``.

All rates are stored in SI units (flop/s, byte/s, seconds).  The
``*_mflops`` / ``*_mbps`` constructors in :mod:`repro.platforms.catalog`
convert from the paper's table units.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..core.memhier import MemoryHierarchy
from ..errors import PlatformError
from ..netsim import Cluster, Engine, Fabric, Jitter, Node, make_fabric


@dataclass(frozen=True)
class PlatformSpec:
    """Everything needed to simulate one parallel machine and to derive
    the analytical model's platform parameters for it."""

    name: str
    label: str
    #: CPU clock in MHz (documentation only; rates are explicit).
    clock_mhz: float
    #: Algorithmic (best-compiler-normalized) flop/s of ONE CPU, in core.
    cpu_rate: float
    #: Hardware-counted flop per algorithmic flop (Table 1 anomaly).
    flop_inflation: float
    #: CPUs per node (2 for the twin-Pentium SMP CoPs).
    cpus_per_node: int
    #: Maximum number of nodes we may instantiate.
    max_nodes: int
    #: Memory hierarchy of one node.
    memory: MemoryHierarchy
    #: Interconnect contention kind: 'shared' | 'switched' | 'crossbar'.
    net_kind: str
    #: Hardware peak bandwidth, byte/s (reported, not simulated).
    net_peak_bw: float
    #: Observed end-to-end bandwidth, byte/s (simulated; model's a1).
    net_bw: float
    #: Observed per-message latency, seconds (model's b1).
    net_latency: float
    #: Fraction of net_latency that is sender-side software overhead
    #: (occupies the contended resource); the rest is wire latency.
    overhead_fraction: float = 0.7
    #: Process synchronization cost, seconds (model's b5).
    sync_cost: float = 0.0
    #: True when intra-node messages bypass the slow network stack.
    fast_local_path: bool = True
    #: Explicit intra-node message path (byte/s, seconds); overrides the
    #: fast_local_path heuristic when set.  Used for machines where the
    #: in-box middleware path has its own measured character (e.g. the
    #: J90 cluster: shared-memory PVM in the box, HIPPI network PVM
    #: between boxes).
    local_bw: Optional[float] = None
    local_latency: Optional[float] = None
    #: Rough acquisition cost in k$ (our estimate, for the paper's
    #: "most cost effective platform" discussion; not from the paper).
    approx_cost_kusd: Optional[float] = None
    notes: str = ""

    def __post_init__(self) -> None:
        if self.cpu_rate <= 0:
            raise PlatformError(f"{self.name}: cpu_rate must be positive")
        if self.flop_inflation < 1.0:
            raise PlatformError(
                f"{self.name}: flop_inflation below 1 would mean the hardware "
                "counted fewer operations than the best compiler executes"
            )
        if self.cpus_per_node < 1 or self.max_nodes < 1:
            raise PlatformError(f"{self.name}: need at least one CPU and node")
        if self.net_kind not in ("shared", "switched", "crossbar"):
            raise PlatformError(f"{self.name}: bad net_kind {self.net_kind!r}")
        if not 0.0 <= self.overhead_fraction <= 1.0:
            raise PlatformError(f"{self.name}: overhead_fraction must be in [0,1]")
        if self.net_bw <= 0 or self.net_peak_bw <= 0:
            raise PlatformError(f"{self.name}: bandwidths must be positive")
        if self.net_bw > self.net_peak_bw:
            raise PlatformError(f"{self.name}: observed bandwidth above hw peak")
        if self.net_latency < 0 or self.sync_cost < 0:
            raise PlatformError(f"{self.name}: times must be >= 0")

    # ------------------------------------------------------------------
    @property
    def total_cpus(self) -> int:
        """CPUs across all nodes."""
        return self.cpus_per_node * self.max_nodes

    @property
    def net_overhead(self) -> float:
        """Sender-side software overhead per message, seconds."""
        return self.net_latency * self.overhead_fraction

    @property
    def net_wire_latency(self) -> float:
        """Propagation component of the observed latency, seconds."""
        return self.net_latency * (1.0 - self.overhead_fraction)

    def node_rate(self) -> float:
        """Aggregate in-core algorithmic rate of one full node, flop/s."""
        return self.cpu_rate * self.cpus_per_node

    # ------------------------------------------------------------------
    def make_fabric(self, engine: Engine) -> Fabric:
        """Instantiate the interconnect model for this platform."""
        kwargs = {}
        if self.local_bw is not None:
            kwargs["local_bandwidth"] = self.local_bw
        if self.local_latency is not None:
            kwargs["local_latency"] = self.local_latency
        if not self.fast_local_path and self.local_bw is None:
            # e.g. PVM on the J90: intra-machine messages still pay the
            # full middleware path.
            kwargs["local_latency"] = self.net_wire_latency
            kwargs["local_bandwidth"] = self.net_bw
        return make_fabric(
            self.net_kind,
            engine,
            latency=self.net_wire_latency,
            bandwidth=self.net_bw,
            overhead=self.net_overhead,
            **kwargs,
        )

    def build_cluster(
        self,
        n_processes: int,
        seed: int = 0,
        jitter_sigma: float = 0.0,
        trace: bool = True,
    ) -> Cluster:
        """A cluster with enough nodes for ``n_processes`` processes.

        Processes are meant to be placed one per CPU in node-major order
        (see :meth:`place`); this builds ``ceil(n/cpus_per_node)`` nodes.
        """
        n_nodes = -(-n_processes // self.cpus_per_node)
        if n_nodes > self.max_nodes:
            raise PlatformError(
                f"{self.name}: {n_processes} processes need {n_nodes} nodes "
                f"but only {self.max_nodes} exist"
            )
        cluster = Cluster(self.make_fabric, seed=seed, trace=trace)
        for i in range(n_nodes):
            jitter = (
                Jitter(cluster.rng.stream(f"jitter/node{i}"), jitter_sigma)
                if jitter_sigma > 0
                else None
            )
            cluster.add_node(
                Node(
                    cluster.engine,
                    node_id=i,
                    rate_model=self.memory.as_rate_model(),
                    n_cpus=self.cpus_per_node,
                    flop_inflation=self.flop_inflation,
                    jitter=jitter,
                    name=f"{self.name}-n{i}",
                )
            )
        return cluster

    def place(self, cluster: Cluster, index: int) -> Node:
        """Node hosting the ``index``-th process (node-major placement)."""
        return cluster.nodes[index // self.cpus_per_node]

    def with_(self, **changes) -> "PlatformSpec":
        """A modified copy (for what-if studies and ablations)."""
        return replace(self, **changes)
