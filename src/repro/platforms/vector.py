"""Vector processor performance model (Hockney r_inf / n_1/2).

Section 2.6: "On the Cray J90 systems a similar study [to the PC cache
study] could be made by turning vectorization off and on" — though the
paper declines, because "vectorization is no real system design option,
since every J90 CPU can vectorize.  It would be stupid to turn it off."
We build the study anyway (bench_ablation_vectorization.py): it shows
*how much* of the J90's compute rate is the vector pipelines, i.e. what
the machine would be without them, and how the rate depends on the
vector length the application presents.

The classic two-parameter Hockney model:

    r(n) = r_inf / (1 + n_1/2 / n)

``r_inf`` is the asymptotic rate for infinite vectors and ``n_1/2`` the
vector length achieving half of it.  Opal's inner loops stream over
pair lists (thousands of elements), so the J90 operates near r_inf; a
scalar machine is the n -> small limit plus the scalar issue rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import PlatformError


@dataclass(frozen=True)
class VectorModel:
    """Hockney vector performance characteristics of one CPU."""

    #: asymptotic vector rate, flop/s
    r_inf: float
    #: half-performance vector length
    n_half: float
    #: rate with vectorization disabled (scalar issue), flop/s
    scalar_rate: float

    def __post_init__(self) -> None:
        if self.r_inf <= 0 or self.scalar_rate <= 0:
            raise PlatformError("rates must be positive")
        if self.n_half < 0:
            raise PlatformError("n_half must be >= 0")
        if self.scalar_rate > self.r_inf:
            raise PlatformError("scalar rate above the vector asymptote")

    # ------------------------------------------------------------------
    def rate(self, vector_length: float, vectorized: bool = True) -> float:
        """Sustained rate at the given vector length, flop/s."""
        if vector_length <= 0:
            raise PlatformError("vector length must be positive")
        if not vectorized:
            return self.scalar_rate
        return max(
            self.r_inf / (1.0 + self.n_half / vector_length), self.scalar_rate
        )

    def speedup_over_scalar(self, vector_length: float) -> float:
        """Vector/scalar rate ratio at one vector length."""
        return self.rate(vector_length) / self.scalar_rate

    def break_even_length(self) -> float:
        """Vector length at which vectorizing starts to pay off."""
        if self.scalar_rate >= self.r_inf:
            return math.inf
        return self.n_half / (self.r_inf / self.scalar_rate - 1.0)

    # ------------------------------------------------------------------
    @classmethod
    def calibrated(
        cls,
        observed_rate: float,
        reference_length: float,
        n_half: float,
        vector_speedup: float,
    ) -> "VectorModel":
        """Build a model from an observed rate at a known vector length.

        ``observed_rate`` is e.g. the Table 1 kernel rate, measured at
        vector lengths around ``reference_length``; ``vector_speedup``
        the machine's typical vector/scalar ratio.
        """
        if reference_length <= 0 or vector_speedup < 1:
            raise PlatformError("bad calibration inputs")
        r_inf = observed_rate * (1.0 + n_half / reference_length)
        return cls(
            r_inf=r_inf,
            n_half=n_half,
            scalar_rate=observed_rate / vector_speedup,
        )


#: The Cray J90 CPU: Table 1 kernel rate 52.7 algorithmic MFlop/s at
#: Opal's long streaming loops (reference length ~1000 elements), the
#: J90's documented-order n_1/2 (~35) and a typical ~7x vector speedup.
J90_VECTOR = VectorModel.calibrated(
    observed_rate=52.72e6, reference_length=1000.0, n_half=35.0, vector_speedup=7.0
)
