"""Platform models, catalog and parameter-extraction microbenchmarks."""

from .catalog import (
    ALL_PLATFORMS,
    CRAY_J90_CLUSTER,
    EXTENDED_PLATFORMS,
    CRAY_J90,
    CRAY_T3E,
    FAST_COPS,
    PLATFORMS,
    REFERENCE_PLATFORM,
    SLOW_COPS,
    SMP_COPS,
    TABLE1_MEASUREMENTS,
    get_platform,
)
from .microbench import (
    KernelResult,
    PingPongResult,
    barrier_bench,
    extract_model_params,
    kernel_bench,
    ping_pong,
)
from .spec import PlatformSpec
from .vector import J90_VECTOR, VectorModel
from .tables import Table1Row, Table2Row, format_table1, format_table2, table1, table2

__all__ = [
    "ALL_PLATFORMS",
    "CRAY_J90_CLUSTER",
    "EXTENDED_PLATFORMS",
    "CRAY_J90",
    "CRAY_T3E",
    "FAST_COPS",
    "KernelResult",
    "PLATFORMS",
    "PingPongResult",
    "J90_VECTOR",
    "PlatformSpec",
    "REFERENCE_PLATFORM",
    "SLOW_COPS",
    "SMP_COPS",
    "TABLE1_MEASUREMENTS",
    "Table1Row",
    "VectorModel",
    "Table2Row",
    "barrier_bench",
    "extract_model_params",
    "format_table1",
    "format_table2",
    "get_platform",
    "kernel_bench",
    "ping_pong",
    "table1",
    "table2",
]
