"""Simulated microbenchmarks for platform-parameter extraction.

Section 4.1: "For each new platform we determine the key parameters by
the execution of a few microbenchmarks, verified against published
performance figures."  The three benchmarks here run as real programs on
the simulated platform (they exercise the same fabric/CPU models the
full application does) and *extract* the model's platform parameters:

* :func:`ping_pong` -> communication rate ``a1`` and overhead ``b1``
  from a linear fit of half-round-trip time vs message size;
* :func:`kernel_bench` -> the single-node Table 1 row (execution time,
  counted MFlop, rates) from running the isolated Opal energy kernel;
* :func:`barrier_bench` -> synchronization cost ``b5``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.parameters import ModelPlatformParams
from ..errors import PlatformError
from ..netsim import Barrier, Compute, Recv, Send
from ..opal import costs
from .spec import PlatformSpec

#: Message sizes used for the a1/b1 fit (bytes): spans the paper's
#: coordinate messages (alpha*n ~ 24 KB .. 150 KB).
DEFAULT_PING_SIZES = (0, 1_000, 10_000, 50_000, 100_000, 200_000)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PingPongResult:
    """Linear model of one-way message time: t(m) = b1 + m / a1."""

    sizes: Tuple[int, ...]
    times: Tuple[float, ...]
    a1: float  # byte/s
    b1: float  # s

    def time_for(self, nbytes: float) -> float:
        """Modelled one-way time for a message of ``nbytes``."""
        return self.b1 + nbytes / self.a1


def ping_pong(
    spec: PlatformSpec,
    sizes: Sequence[int] = DEFAULT_PING_SIZES,
    reps: int = 4,
) -> PingPongResult:
    """Measure one-way message time between two distinct nodes."""
    if len(sizes) < 2:
        raise PlatformError("need at least two message sizes for the fit")
    # two processes on different nodes
    n_procs = spec.cpus_per_node + 1
    cluster = spec.build_cluster(n_procs, trace=False)
    node_a = spec.place(cluster, 0)
    node_b = spec.place(cluster, spec.cpus_per_node)
    results: List[float] = []

    def ponger(ctx):
        while True:
            msg = yield Recv(tag=1)
            if msg.payload == "stop":
                return
            yield Send(msg.source, nbytes=msg.nbytes, tag=2)

    def pinger(ctx, peer):
        for size in sizes:
            t0 = ctx.now
            for _ in range(reps):
                yield Send(peer, nbytes=size, tag=1)
                yield Recv(source=peer, tag=2)
            # half round trip = one-way time
            results.append((ctx.now - t0) / reps / 2.0)
        yield Send(peer, nbytes=0, tag=1, payload="stop")

    pong = cluster.spawn("ponger", node_b, ponger)
    cluster.spawn("pinger", node_a, pinger, pong.tid)
    cluster.run()

    x = np.asarray(sizes, dtype=float)
    y = np.asarray(results, dtype=float)
    slope, intercept = np.polyfit(x, y, 1)
    if slope <= 0:
        raise PlatformError(f"{spec.name}: non-positive bandwidth fit")
    return PingPongResult(tuple(sizes), tuple(y), a1=1.0 / slope, b1=max(intercept, 0.0))


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KernelResult:
    """One Table 1 row, before normalization against the reference."""

    platform: str
    exec_time: float  # s, wall clock on one full node
    flops_counted: float  # hardware-counted flop
    flops_algorithmic: float

    @property
    def rate(self) -> float:
        """Counted computation rate, flop/s (Table 1 column 4)."""
        return self.flops_counted / self.exec_time

    @property
    def algorithmic_rate(self) -> float:
        """Best-compiler-normalized rate, flop/s."""
        return self.flops_algorithmic / self.exec_time


def kernel_bench(spec: PlatformSpec, working_set: float = 8e6) -> KernelResult:
    """Run the isolated Opal kernel on one node (all CPUs of the node).

    The kernel is one no-cutoff non-bonded energy evaluation of the
    medium complex: 9,195,616 pairs, 325.80 algorithmic MFlop, split
    evenly over the node's CPUs (which is how the twin-CPU SMP CoPs node
    posts its 5.00 s in Table 1).
    """
    cluster = spec.build_cluster(spec.cpus_per_node, trace=False)
    node = cluster.nodes[0]
    share = costs.KERNEL_FLOPS / spec.cpus_per_node

    def worker(ctx):
        yield Compute(flops=share, working_set=working_set)

    for i in range(spec.cpus_per_node):
        cluster.spawn(f"kernel{i}", node, worker)
    t = cluster.run()
    snap = node.hpm.snapshot()
    return KernelResult(
        platform=spec.name,
        exec_time=t,
        flops_counted=snap.flops_counted,
        flops_algorithmic=snap.flops_algorithmic,
    )


# ----------------------------------------------------------------------
def barrier_bench(spec: PlatformSpec, n_procs: int = 4, reps: int = 10) -> float:
    """Measure the per-barrier synchronization cost (model's b5)."""
    if n_procs < 2:
        raise PlatformError("barrier bench needs at least two processes")
    cluster = spec.build_cluster(n_procs, trace=False)

    def member(ctx):
        for r in range(reps):
            yield Barrier(f"bb{r}", count=n_procs, cost=spec.sync_cost)

    for i in range(n_procs):
        cluster.spawn(f"m{i}", spec.place(cluster, i), member)
    t = cluster.run()
    return t / reps


# ----------------------------------------------------------------------
def extract_model_params(spec: PlatformSpec) -> ModelPlatformParams:
    """Derive the analytical model's platform parameters by measurement.

    This is the full Section 4.1 pipeline: ping-pong for a1/b1, the Opal
    kernel for the compute coefficients (a2, a3, a4 scale with the
    measured algorithmic rate of one CPU), a barrier bench for b5.
    """
    pp = ping_pong(spec)
    kr = kernel_bench(spec)
    cpu_rate = kr.algorithmic_rate / spec.cpus_per_node
    b5 = barrier_bench(spec)
    return ModelPlatformParams(
        name=spec.name,
        a1=pp.a1,
        b1=pp.b1,
        a2=costs.UPDATE_PAIR_FLOPS / cpu_rate,
        a3=costs.NB_PAIR_FLOPS / cpu_rate,
        a4=costs.SEQ_ATOM_FLOPS / cpu_rate,
        b5=b5,
    )
