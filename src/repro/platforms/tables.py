"""Regenerate the paper's Tables 1 and 2 from simulated microbenchmarks.

Table 1 normalization (Section 4.1): the differing hardware flop counts
for identical results are eliminated "by assuming that the best compiler
(i.e. the PGI compiler for the PCs) is setting a lower bound for the
computation" — relative time is each platform's counted flops over the
reference count, and the adjusted rate divides the counted rate by it.

Note: the paper prints 138% relative time for the T3E, which is
inconsistent with its own adjusted rate (52 = 85 / 1.63, and
811.71/497.55 = 163%); we compute the self-consistent value.  See
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..units import MICROSECOND, MILLISECOND, to_mbyte_per_s, to_mflop_per_s
from .catalog import ALL_PLATFORMS, REFERENCE_PLATFORM
from .microbench import KernelResult, PingPongResult, kernel_bench, ping_pong
from .spec import PlatformSpec


@dataclass(frozen=True)
class Table1Row:
    """Computation-speed parameters of one platform (paper's Table 1)."""

    platform: str
    label: str
    exec_time: float  # s, single node
    mflop_counted: float
    rate_mflops: float  # counted MFlop/s
    relative_time_pct: float  # counted flops / reference counted flops
    adjusted_rate_mflops: float  # rate / relative

    def formatted(self) -> str:
        """The row rendered in Table 1 layout."""
        return (
            f"{self.label:<48s} {self.exec_time:7.2f} {self.mflop_counted:9.2f} "
            f"{self.rate_mflops:7.1f} {self.relative_time_pct:7.0f} "
            f"{self.adjusted_rate_mflops:9.1f}"
        )


def table1(
    platforms: Optional[Sequence[PlatformSpec]] = None,
    reference: PlatformSpec = REFERENCE_PLATFORM,
) -> List[Table1Row]:
    """Run the kernel microbenchmark everywhere and normalize."""
    platforms = list(ALL_PLATFORMS) if platforms is None else list(platforms)
    ref_result: KernelResult = kernel_bench(reference)
    rows = []
    for spec in platforms:
        r = kernel_bench(spec)
        relative = r.flops_counted / ref_result.flops_counted
        rate = to_mflop_per_s(r.rate)
        rows.append(
            Table1Row(
                platform=spec.name,
                label=spec.label,
                exec_time=r.exec_time,
                mflop_counted=to_mflop_per_s(r.flops_counted),
                rate_mflops=rate,
                relative_time_pct=100.0 * relative,
                adjusted_rate_mflops=rate / relative,
            )
        )
    return rows


@dataclass(frozen=True)
class Table2Row:
    """Communication-speed parameters of one platform (paper's Table 2)."""

    platform: str
    label: str
    peak_mbps: float
    observed_mbps: float
    latency_s: float

    def formatted(self) -> str:
        """The row rendered in Table 2 layout."""
        if self.latency_s >= MILLISECOND:
            lat = f"{self.latency_s / MILLISECOND:6.1f} ms"
        else:
            lat = f"{self.latency_s / MICROSECOND:6.1f} us"
        return (
            f"{self.label:<48s} {self.peak_mbps:7.0f} "
            f"{self.observed_mbps:9.1f} {lat}"
        )


def table2(
    platforms: Optional[Sequence[PlatformSpec]] = None,
    measured: bool = True,
) -> List[Table2Row]:
    """Peak (from spec) and observed (from ping-pong) communication data."""
    platforms = list(ALL_PLATFORMS) if platforms is None else list(platforms)
    rows = []
    for spec in platforms:
        if measured:
            pp: PingPongResult = ping_pong(spec)
            observed_bw, latency = pp.a1, pp.b1
        else:
            observed_bw, latency = spec.net_bw, spec.net_latency
        rows.append(
            Table2Row(
                platform=spec.name,
                label=spec.label,
                peak_mbps=to_mbyte_per_s(spec.net_peak_bw),
                observed_mbps=to_mbyte_per_s(observed_bw),
                latency_s=latency,
            )
        )
    return rows


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render Table 1 rows with the paper's column layout."""
    header = (
        f"{'MPP node type':<48s} {'t[s]':>7s} {'MFlOp':>9s} "
        f"{'MFl/s':>7s} {'rel%':>7s} {'adj MFl/s':>9s}"
    )
    return "\n".join([header] + [r.formatted() for r in rows])


def format_table2(rows: Sequence[Table2Row]) -> str:
    """Render Table 2 rows with the paper's column layout."""
    header = (
        f"{'MPP node type':<48s} {'peak':>7s} {'observed':>9s} {'latency':>9s}"
    )
    return "\n".join([header] + [r.formatted() for r in rows])
