"""Network fabric models.

The paper's platforms differ in their interconnect in exactly the ways
that matter to the model's ``a1`` (effective rate) and ``b1`` (per
message overhead):

* the Cray J90 runs PVM/Sciddle over a crossbar, but the middleware stack
  limits the *observed* rate to ~3 MByte/s with ~10 ms overhead;
* slow CoPs share a single 100BaseT Ethernet segment (a contended
  medium);
* SMP CoPs use SCI, fast CoPs use switched Myrinet (per-port contention
  only);
* the T3E has a fast MPI with 100 MByte/s observed and 12 us latency.

All fabrics use a cut-through transfer model: a message holds its
bottleneck resource set for ``overhead + nbytes/bandwidth`` seconds (the
sender is blocked for that long — PVM's pack/send path is sender-side
bandwidth limited), and is delivered to the destination mailbox one wire
``latency`` later.  Contention is expressed purely through *which*
resources a transfer must hold:

=====================  ==========================================
fabric                 held resources
=====================  ==========================================
SharedMediumFabric     the single shared medium
SwitchedFabric         sender tx port and receiver rx port
CrossbarFabric         receiver rx port only
=====================  ==========================================

Because acquisition is ordered tx-before-rx and the tx/rx pools are
disjoint, multi-resource holds cannot deadlock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence, Tuple

from .engine import Engine
from .resources import Resource

if TYPE_CHECKING:  # imported for annotations only; no runtime cycle
    from .faults import FaultPlan
    from .node import Node


class Fabric:
    """Base transfer-time model; subclasses choose the contended resources."""

    def __init__(
        self,
        engine: Engine,
        latency: float,
        bandwidth: float,
        overhead: float = 0.0,
        local_latency: Optional[float] = None,
        local_bandwidth: Optional[float] = None,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0 or overhead < 0:
            raise ValueError("latency and overhead must be >= 0")
        self.engine = engine
        self.latency = latency
        self.bandwidth = bandwidth
        self.overhead = overhead
        #: intra-node message path (e.g. the second CPU of an SMP node);
        #: defaults to a 10x faster, 10x lower-latency path.
        self.local_latency = latency / 10 if local_latency is None else local_latency
        self.local_bandwidth = (
            bandwidth * 10 if local_bandwidth is None else local_bandwidth
        )
        self.messages_transferred = 0
        self.bytes_transferred = 0.0
        #: optional fault plan consulted per transfer (see netsim.faults);
        #: None leaves the delivery arithmetic exactly as modelled
        self.faults: Optional["FaultPlan"] = None

    # ------------------------------------------------------------------
    def occupancy(self, nbytes: float) -> float:
        """Time the bottleneck resources are held for one message."""
        return self.overhead + nbytes / self.bandwidth

    def path_resources(self, src: Node, dst: Node) -> Sequence[Resource]:
        """The contended resources one transfer must hold."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def transfer(
        self,
        src: Node,
        dst: Node,
        nbytes: float,
        on_injected: Callable[[], None],
        on_delivered: Callable[[], None],
    ) -> None:
        """Move ``nbytes`` from ``src`` to ``dst`` in virtual time.

        ``on_injected`` fires when the sender may proceed;
        ``on_delivered`` fires when the message reaches the destination
        mailbox.
        """
        self.messages_transferred += 1
        self.bytes_transferred += nbytes

        if src is dst:
            hold = self.overhead + nbytes / self.local_bandwidth
            self.engine.schedule(hold, on_injected)
            self.engine.schedule(hold + self.local_latency, on_delivered)
            return

        resources = self.path_resources(src, dst)
        hold = self.overhead + nbytes / self.bandwidth  # occupancy(), inlined
        # Fault fates are drawn at injection time, in message order, so a
        # fixed seed yields one deterministic fault schedule.  Drops and
        # delay spikes manifest as extra delivery latency (the transport
        # retransmits); only a crashed destination truly loses messages
        # (the cluster dead-letters those on delivery).
        penalty = 0.0
        if self.faults is not None:
            penalty = self.faults.transfer_penalty(self.engine.now, src, dst, nbytes)

        engine = self.engine

        def _finish() -> None:
            # Resource.release, inlined: two releases bracket every
            # simulated transfer.  Waiter hand-off still goes through a
            # fresh zero-delay event, exactly as release() does.
            now = engine._now
            for r in reversed(resources):
                in_use = r._in_use
                if in_use <= 0:
                    raise RuntimeError(f"release of idle resource {r.name!r}")
                r._busy_time += in_use * (now - r._last_change)
                r._last_change = now
                r._in_use = in_use - 1
                if r._waiters:
                    r._in_use = in_use
                    engine.schedule(0.0, r._waiters.popleft())
            on_injected()

        # Fast path: every resource free right now.  Grabbing them inline
        # is exactly what the acquire chain would do (each acquire calls
        # its grant callback immediately), minus one call per hop; the
        # slot bookkeeping below mirrors Resource.acquire for the
        # uncontended case (a free slot contributes nothing to the
        # busy-time integral, so only the timestamp advances).
        for r in resources:
            if r._in_use >= r.capacity:
                break
        else:
            now = engine._now
            for r in resources:
                in_use = r._in_use
                if in_use:
                    r._busy_time += in_use * (now - r._last_change)
                r._last_change = now
                r._in_use = in_use + 1
            engine.schedule(hold, _finish)
            engine.schedule(hold + self.latency + penalty, on_delivered)
            return

        def acquire_chain(i: int) -> None:
            if i == len(resources):
                engine.schedule(hold, _finish)
                engine.schedule(hold + self.latency + penalty, on_delivered)
                return
            resources[i].acquire(lambda: acquire_chain(i + 1))

        acquire_chain(0)


class SharedMediumFabric(Fabric):
    """A single contended medium (shared Ethernet segment)."""

    def __init__(
        self, engine: Engine, latency: float, bandwidth: float, **kw: float
    ) -> None:
        super().__init__(engine, latency, bandwidth, **kw)
        self.medium = Resource(engine, capacity=1, name="shared-medium")

    def path_resources(self, src: Node, dst: Node) -> Tuple[Resource]:
        """The single shared medium."""
        return (self.medium,)


class SwitchedFabric(Fabric):
    """Full-duplex switched network (Myrinet, SCI): per-port contention."""

    def path_resources(self, src: Node, dst: Node) -> Tuple[Resource, Resource]:
        """Sender tx port and receiver rx port."""
        return (src.tx, dst.rx)


class CrossbarFabric(Fabric):
    """Non-blocking crossbar / memory system: receiver port contention only.

    This matches the paper's observation that the barriers "merely expose
    the contention of single client multiple server communication" — the
    client's receive port is the serialization point.
    """

    def path_resources(self, src: Node, dst: Node) -> Tuple[Resource]:
        """Receiver rx port only."""
        return (dst.rx,)


FABRIC_KINDS = {
    "shared": SharedMediumFabric,
    "switched": SwitchedFabric,
    "crossbar": CrossbarFabric,
}


def make_fabric(
    kind: str, engine: Engine, latency: float, bandwidth: float, **kw: float
) -> Fabric:
    """Instantiate a fabric by kind name (``shared``/``switched``/``crossbar``)."""
    try:
        cls = FABRIC_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown fabric kind {kind!r}; expected one of {sorted(FABRIC_KINDS)}"
        ) from None
    return cls(engine, latency, bandwidth, **kw)
