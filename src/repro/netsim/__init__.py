"""Discrete-event cluster simulator substrate.

This package replaces the hardware the paper measured (Cray J90/T3E,
Pentium clusters) with a deterministic discrete-event model: an event
engine, generator-based processes, contention-accurate network fabrics
and nodes with memory-hierarchy-aware compute rates and hardware
performance counters.
"""

from .cluster import Cluster, ProcContext
from .engine import Engine
from .events import ANY, Barrier, Compute, Message, Recv, RecvTimeout, Send, Timeout
from .faults import FaultPlan, FaultSpec, NodeCrash, NodeSlowdown
from .network import (
    CrossbarFabric,
    Fabric,
    SharedMediumFabric,
    SwitchedFabric,
    make_fabric,
)
from .node import Node, RateModel, constant_rate
from .process import BarrierManager, Mailbox, SimProcess
from .resources import Resource
from .rng import Jitter, RngRegistry, RngStreams, derive_seed, spawn_generator
from .trace import FlowEdge, Span, Tracer, TraceRecord

__all__ = [
    "ANY",
    "Barrier",
    "BarrierManager",
    "Cluster",
    "Compute",
    "CrossbarFabric",
    "Engine",
    "Fabric",
    "FaultPlan",
    "FaultSpec",
    "FlowEdge",
    "NodeCrash",
    "NodeSlowdown",
    "RecvTimeout",
    "Span",
    "Jitter",
    "Mailbox",
    "Message",
    "Node",
    "ProcContext",
    "RateModel",
    "Recv",
    "Resource",
    "RngRegistry",
    "RngStreams",
    "derive_seed",
    "spawn_generator",
    "Send",
    "SharedMediumFabric",
    "SimProcess",
    "SwitchedFabric",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "constant_rate",
    "make_fabric",
]
