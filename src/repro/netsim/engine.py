"""Discrete-event simulation kernel.

A minimal, dependency-free event engine in the style of SimPy, tuned for
the message-passing cluster models in this package.  The engine owns a
binary heap of ``(time, seq, callback)`` entries; determinism is
guaranteed by the tie-breaking sequence number — two events scheduled for
the same instant fire in scheduling order.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from ..errors import DeadlockError, PastEventError, SimulationError


class Engine:
    """Event queue and virtual clock.

    The engine knows nothing about processes, networks or CPUs; those are
    layered on top (see :mod:`repro.netsim.process` and
    :mod:`repro.netsim.network`).
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        #: number of processes currently blocked on an external condition
        #: (mailbox, barrier, resource); used for deadlock detection.
        self.blocked_processes = 0
        self.events_executed = 0
        self.events_scheduled = 0
        #: high-water mark of the event queue length (obs metric)
        self.max_queue_depth = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, callback))
        self.events_scheduled += 1
        if len(self._queue) > self.max_queue_depth:
            self.max_queue_depth = len(self._queue)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute virtual ``time``.

        Raises :class:`~repro.errors.PastEventError` when ``time`` lies
        before the current clock, naming both instants — far easier to
        act on than the relative ``delay=-x`` complaint ``schedule``
        would otherwise produce.
        """
        if time < self._now:
            raise PastEventError(time, self._now)
        self.schedule(time - self._now, callback)

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the queue drains or ``until`` is reached.

        Returns the virtual time at which execution stopped.  With a
        horizon, the clock always lands exactly on ``until`` (never
        before it, even when the queue drains early; never after it) —
        except when ``until`` already lies in the past, in which case
        the clock stays put rather than run backwards.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        try:
            while self._queue:
                time, _seq, callback = self._queue[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._queue)
                if time < self._now:
                    raise SimulationError("event queue time went backwards")
                self._now = time
                self.events_executed += 1
                callback()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now

    def run_all(self) -> float:
        """Run to quiescence and fail loudly if processes remain blocked.

        This is the right call for closed workloads (a parallel program
        that must terminate): a drained queue with blocked processes is a
        deadlock, e.g. a ``Recv`` whose matching ``Send`` never happened.
        """
        t = self.run()
        if self.blocked_processes > 0:
            raise DeadlockError(
                f"event queue drained with {self.blocked_processes} process(es) "
                "still blocked (missing message or barrier member?)"
            )
        return t

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
