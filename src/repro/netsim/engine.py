"""Discrete-event simulation kernel.

A minimal, dependency-free event engine in the style of SimPy, tuned for
the message-passing cluster models in this package.  Two interchangeable
schedulers are provided:

``calendar`` (the default)
    An array-backed calendar queue: events are bucketed by time instant
    (a dict mapping each pending timestamp to a Python-list bucket) and
    a small binary heap orders only the *distinct* timestamps.  Within a
    bucket events drain FIFO, which — because the engine hands out
    monotonically increasing sequence numbers at scheduling time — is
    exactly the ``(time, seq)`` order of the classic heap.  Message
    passing workloads schedule many events at identical instants
    (barrier releases, zero-delay resumes, same-hold transfers), so the
    heap shrinks from one entry per event to one entry per instant and
    the per-event cost drops to a dict lookup plus a list append.

``heap``
    The original binary heap of ``(time, seq, callback)`` entries, kept
    for differential testing: both schedulers must produce bit-identical
    event orderings (see ``tests/netsim/test_engine.py`` and the
    randomized differential property test).

Determinism is guaranteed by the tie-breaking sequence number — two
events scheduled for the same instant fire in scheduling order under
either scheduler.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import DeadlockError, PastEventError, SimulationError

#: Scheduler implementations selectable via ``Engine(scheduler=...)``.
SCHEDULERS = ("calendar", "heap")


class Engine:
    """Event queue and virtual clock.

    The engine knows nothing about processes, networks or CPUs; those are
    layered on top (see :mod:`repro.netsim.process` and
    :mod:`repro.netsim.network`).
    """

    __slots__ = (
        "scheduler",
        "_calendar",
        "_queue",
        "_buckets",
        "_times",
        "_pending",
        "_seq",
        "_now",
        "_running",
        "blocked_processes",
        "events_executed",
        "max_queue_depth",
    )

    def __init__(self, scheduler: str = "calendar") -> None:
        if scheduler not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}"
            )
        self.scheduler = scheduler
        self._calendar = scheduler == "calendar"
        # heap path: one (time, seq, callback) entry per event
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        # calendar path: bucket per pending instant + heap of instants
        self._buckets: Dict[float, List[Callable[[], None]]] = {}
        self._times: List[float] = []
        self._pending = 0
        self._seq = 0
        self._now = 0.0
        self._running = False
        #: number of processes currently blocked on an external condition
        #: (mailbox, barrier, resource); used for deadlock detection.
        self.blocked_processes = 0
        self.events_executed = 0
        #: high-water mark of the event queue length (obs metric)
        self.max_queue_depth = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (the sequence counter)."""
        return self._seq

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        time = self._now + delay
        if self._calendar:
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = [callback]
                heappush(self._times, time)
            else:
                bucket.append(callback)
            self._pending += 1
            depth = self._pending
        else:
            heappush(self._queue, (time, self._seq, callback))
            depth = len(self._queue)
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute virtual ``time``.

        Raises :class:`~repro.errors.PastEventError` when ``time`` lies
        before the current clock, naming both instants — far easier to
        act on than the relative ``delay=-x`` complaint ``schedule``
        would otherwise produce.
        """
        if time < self._now:
            raise PastEventError(time, self._now)
        self.schedule(time - self._now, callback)

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the queue drains or ``until`` is reached.

        Returns the virtual time at which execution stopped.  With a
        horizon, the clock always lands exactly on ``until`` (never
        before it, even when the queue drains early; never after it) —
        except when ``until`` already lies in the past, in which case
        the clock stays put rather than run backwards.  An event
        scheduled exactly *at* ``until`` fires before the clock parks
        on the horizon.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        try:
            if self._calendar:
                self._run_calendar(until)
            else:
                self._run_heap(until)
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now

    def _run_heap(self, until: Optional[float]) -> None:
        queue = self._queue
        while queue:
            time, _seq, callback = queue[0]
            if until is not None and time > until:
                break
            heappop(queue)
            if time < self._now:
                raise SimulationError("event queue time went backwards")
            self._now = time
            self.events_executed += 1
            callback()

    def _run_calendar(self, until: Optional[float]) -> None:
        times = self._times
        buckets = self._buckets
        horizon = float("inf") if until is None else until
        while times:
            time = times[0]
            if time > horizon:
                break
            if time < self._now:
                raise SimulationError("event queue time went backwards")
            self._now = time
            bucket = buckets[time]
            # Drain with the list iterator: a callback scheduling a
            # zero-delay event appends to this same bucket and the
            # iterator picks it up in-order, so FIFO-within-instant
            # equals the heap's (time, seq) order.  ``i`` advances
            # before each invocation so an executed-but-raising
            # callback is not replayed by the trim below.
            i = 0
            try:
                for callback in bucket:
                    i += 1
                    self._pending -= 1
                    callback()
            finally:
                # Counted in bulk per bucket; a raising callback still
                # counts as executed (the heap path increments before
                # invoking), and nothing reads the counter mid-run.
                self.events_executed += i
                if i < len(bucket):  # callback raised mid-bucket
                    buckets[time] = bucket[i:]
                else:
                    del buckets[time]
                    heappop(times)

    def run_all(self) -> float:
        """Run to quiescence and fail loudly if processes remain blocked.

        This is the right call for closed workloads (a parallel program
        that must terminate): a drained queue with blocked processes is a
        deadlock, e.g. a ``Recv`` whose matching ``Send`` never happened.
        """
        t = self.run()
        if self.blocked_processes > 0:
            raise DeadlockError(
                f"event queue drained with {self.blocked_processes} process(es) "
                "still blocked (missing message or barrier member?)"
            )
        return t

    def pending(self) -> int:
        """Number of events still queued."""
        if self._calendar:
            return self._pending
        return len(self._queue)
