"""Seed-deterministic fault injection for simulated runs.

The paper measured on real, imperfect platforms — a shared Ethernet
segment drops and delays frames, a timeshared J90 slows down under
load, nodes crash.  This module perturbs a simulated cluster the same
way, *deterministically*: every stochastic draw comes from named
:class:`~repro.netsim.rng.RngRegistry` streams, so one seed yields one
fault schedule, bit for bit, serial or pooled.

Two layers:

:class:`FaultSpec`
    the pure, frozen *design factor*: drop/delay probabilities, outage
    process, crash and slowdown events, plus the resilience knobs the
    Sciddle retry layer derives its :class:`RetryPolicy` from.  It
    parses from the CLI ``--chaos`` grammar and serializes stably for
    cache keys.
:class:`FaultPlan`
    one realisation of a spec against one cluster: it attaches to the
    fabric (message fates), schedules node crashes and slowdown
    windows on the engine, and counts what it injected.

Message-loss semantics follow PVM-over-TCP: a dropped frame is
retransmitted by the transport, so the *application* observes an extra
delay of ``rto * (2^k - 1)`` for ``k`` consecutive losses, never a
silently missing message.  Genuinely lost messages happen only when
the destination node crashed — the cluster dead-letters them — which
keeps faulted runs deadlock-free: barriers shrink via the crash
notification path instead of waiting forever.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from ..errors import FaultError
from .rng import RngRegistry

if TYPE_CHECKING:  # imported for annotations only; no runtime cycle
    from .cluster import Cluster
    from .node import Node

#: Cap on consecutive simulated retransmissions of one message; bounds
#: the exponential backoff walk for pathological drop rates.
MAX_RETRANSMITS = 32


@dataclass(frozen=True)
class NodeCrash:
    """Kill every process on ``node`` at virtual time ``time``."""

    node: int
    time: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultError(f"crash node must be >= 0, got {self.node}")
        if self.time < 0:
            raise FaultError(f"crash time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class NodeSlowdown:
    """Scale compute durations on ``node`` by ``factor`` for a window."""

    node: int
    start: float
    duration: float
    factor: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultError(f"slowdown node must be >= 0, got {self.node}")
        if self.start < 0 or self.duration <= 0:
            raise FaultError(
                f"slowdown window must satisfy start >= 0, duration > 0, "
                f"got start={self.start} duration={self.duration}"
            )
        if self.factor < 1.0:
            raise FaultError(f"slowdown factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class FaultSpec:
    """A chaos scenario as a pure design factor.

    All fields have safe defaults; a default-constructed spec injects
    nothing (``enabled`` is False) and exists only to carry resilience
    knobs.  Probabilities must stay strictly below 1.
    """

    #: per-transmission probability a message copy is lost (and
    #: retransmitted after an RTO backoff)
    drop: float = 0.0
    #: probability a message suffers an extra delay spike
    delay: float = 0.0
    #: mean of the exponential delay-spike distribution [s]
    delay_scale: float = 0.1
    #: link outages per second of virtual time (Poisson process)
    outage_rate: float = 0.0
    #: duration of each link outage [s]
    outage_duration: float = 0.5
    #: node crash events
    crashes: Tuple[NodeCrash, ...] = ()
    #: node slowdown windows
    slowdowns: Tuple[NodeSlowdown, ...] = ()
    #: crash-to-notification latency (the pvm_notify analogue) [s]
    detection_latency: float = 0.05
    #: base retransmission timeout for dropped message copies [s]
    retransmit_rto: float = 0.1
    # ---- resilience knobs (consumed by sciddle.resilient) ------------
    #: per-attempt RPC reply deadline [s]
    rpc_timeout: float = 30.0
    #: resend attempts before an RPC wait gives up
    rpc_max_retries: int = 5
    #: first retry backoff [s]; doubles per attempt
    backoff_base: float = 0.05
    #: backoff ceiling [s]
    backoff_cap: float = 1.0
    #: fractional jitter applied to each backoff (RNG-registry stream)
    backoff_jitter: float = 0.25
    #: consecutive timeouts before a server is declared dead
    death_threshold: int = 3

    def __post_init__(self) -> None:
        for name in ("drop", "delay"):
            p = float(getattr(self, name))
            if not 0.0 <= p < 1.0:
                raise FaultError(f"{name} must be a probability in [0, 1), got {p}")
        for name in (
            "delay_scale",
            "outage_rate",
            "outage_duration",
            "detection_latency",
            "backoff_jitter",
        ):
            v = float(getattr(self, name))
            if v < 0 or not math.isfinite(v):
                raise FaultError(f"{name} must be finite and >= 0, got {v}")
        for name in ("retransmit_rto", "rpc_timeout", "backoff_base", "backoff_cap"):
            v = float(getattr(self, name))
            if v <= 0 or not math.isfinite(v):
                raise FaultError(f"{name} must be finite and > 0, got {v}")
        if self.rpc_max_retries < 0:
            raise FaultError("rpc_max_retries must be >= 0")
        if self.death_threshold < 1:
            raise FaultError("death_threshold must be >= 1")
        if self.outage_rate > 0 and self.outage_duration <= 0:
            raise FaultError("outage_duration must be > 0 when outage_rate is set")

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether this spec injects any fault at all."""
        return bool(
            self.drop > 0
            or self.delay > 0
            or self.outage_rate > 0
            or self.crashes
            or self.slowdowns
        )

    def as_dict(self) -> Dict[str, object]:
        """Stable plain-data form (cache keys, reports, JSON)."""
        out: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "crashes":
                value = [[c.node, c.time] for c in self.crashes]
            elif f.name == "slowdowns":
                value = [
                    [s.node, s.start, s.duration, s.factor] for s in self.slowdowns
                ]
            out[f.name] = value
        return out

    # ------------------------------------------------------------------
    #: ``--chaos`` grammar: short key -> spec field (scalar floats/ints)
    _PARSE_KEYS = {
        "drop": "drop",
        "delay": "delay",
        "delay_scale": "delay_scale",
        "outage_rate": "outage_rate",
        "outage_duration": "outage_duration",
        "detect": "detection_latency",
        "rto": "retransmit_rto",
        "timeout": "rpc_timeout",
        "retries": "rpc_max_retries",
        "backoff": "backoff_base",
        "backoff_cap": "backoff_cap",
        "jitter": "backoff_jitter",
        "deaths": "death_threshold",
    }

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the CLI chaos grammar into a spec.

        Comma-separated ``key=value`` items, e.g.::

            drop=0.01,delay=0.05,delay_scale=0.2,timeout=0.5,
            crash=3@1.5,slowdown=2@0.5+2.0x4

        ``crash=NODE@TIME`` and ``slowdown=NODE@START+DURATIONxFACTOR``
        may repeat.  Unknown keys raise :class:`FaultError`.
        """
        kwargs: Dict[str, Union[float, int]] = {}
        crashes: List[NodeCrash] = []
        slowdowns: List[NodeSlowdown] = []
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise FaultError(f"chaos item {item!r} is not key=value")
            key, _, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key == "crash":
                    node_s, _, time_s = value.partition("@")
                    crashes.append(NodeCrash(int(node_s), float(time_s)))
                elif key == "slowdown":
                    node_s, _, window = value.partition("@")
                    start_s, _, rest = window.partition("+")
                    dur_s, _, factor_s = rest.partition("x")
                    slowdowns.append(
                        NodeSlowdown(
                            int(node_s), float(start_s), float(dur_s), float(factor_s)
                        )
                    )
                elif key in cls._PARSE_KEYS:
                    field_name = cls._PARSE_KEYS[key]
                    if field_name in ("rpc_max_retries", "death_threshold"):
                        kwargs[field_name] = int(value)
                    else:
                        kwargs[field_name] = float(value)
                else:
                    raise FaultError(
                        f"unknown chaos key {key!r}; expected one of "
                        f"{sorted(cls._PARSE_KEYS)} plus crash=, slowdown="
                    )
            except (TypeError, ValueError) as exc:
                raise FaultError(f"cannot parse chaos item {item!r}: {exc}") from None
        return cls(
            crashes=tuple(crashes), slowdowns=tuple(slowdowns), **kwargs  # type: ignore[arg-type]
        )


class FaultPlan:
    """One seed-deterministic realisation of a :class:`FaultSpec`.

    Draws from the registry streams ``faults/messages`` (per-message
    drop and delay fates, in message order) and ``faults/outages`` (the
    outage renewal process).  Usable standalone for unit tests;
    :meth:`install` attaches it to a cluster's fabric, engine and
    nodes.
    """

    def __init__(self, spec: FaultSpec, rng: RngRegistry) -> None:
        self.spec = spec
        self._msg_stream = rng.stream("faults/messages")
        self._outage_stream = rng.stream("faults/outages")
        if spec.outage_rate > 0:
            start = float(self._outage_stream.exponential(1.0 / spec.outage_rate))
            self._outage_start = start
            self._outage_end = start + spec.outage_duration
        else:
            self._outage_start = math.inf
            self._outage_end = math.inf
        self.drops = 0
        self.delays = 0
        self.outage_hits = 0
        self.crashes_fired = 0
        self._cluster: Optional["Cluster"] = None

    # ------------------------------------------------------------------
    def _advance_outages(self, now: float) -> None:
        rate = self.spec.outage_rate
        while self._outage_end <= now:
            gap = float(self._outage_stream.exponential(1.0 / rate))
            self._outage_start = self._outage_end + gap
            self._outage_end = self._outage_start + self.spec.outage_duration

    def _fault_span(self, detail: str) -> None:
        if self._cluster is not None:
            now = self._cluster.engine.now
            self._cluster.tracer.record("fabric", "fault", now, now, detail=detail)

    def _count(self, metric: str, amount: float = 1.0) -> None:
        if self._cluster is not None:
            self._cluster.metrics.counter(metric).inc(amount)

    def transfer_penalty(self, now: float, src: "Node", dst: "Node", nbytes: float) -> float:
        """Extra delivery delay for one message injected at ``now``.

        Draw order per message is fixed (drop walk, then delay spike,
        then outage check) so the fate sequence depends only on the
        message order, which the engine makes deterministic.
        """
        spec = self.spec
        extra = 0.0
        if spec.drop > 0.0:
            k = 0
            while (
                k < MAX_RETRANSMITS and float(self._msg_stream.random()) < spec.drop
            ):
                k += 1
            if k:
                self.drops += k
                extra += spec.retransmit_rto * float(2**k - 1)
                self._count("faults.drops", k)
                self._fault_span(f"drop x{k} {src.name}->{dst.name}")
        if spec.delay > 0.0:
            if float(self._msg_stream.random()) < spec.delay:
                spike = float(self._msg_stream.exponential(spec.delay_scale))
                extra += spike
                self.delays += 1
                self._count("faults.delays")
                self._fault_span(f"delay +{spike:.4f}s {src.name}->{dst.name}")
        if spec.outage_rate > 0.0:
            self._advance_outages(now)
            if self._outage_start <= now < self._outage_end:
                wait = self._outage_end - now
                extra += wait
                self.outage_hits += 1
                self._count("faults.outage_hits")
                self._fault_span(f"outage +{wait:.4f}s {src.name}->{dst.name}")
        return extra

    # ------------------------------------------------------------------
    def install(self, cluster: "Cluster") -> None:
        """Attach this plan to a cluster (after its nodes exist).

        Crash events targeting node ids the cluster does not have are
        skipped — a campaign-wide crash spec may name a rank that only
        large cells possess.
        """
        self._cluster = cluster
        cluster.fabric.faults = self
        node_ids = {n.node_id for n in cluster.nodes}
        for sd in self.spec.slowdowns:
            if sd.node in node_ids:
                cluster.node(sd.node).add_slowdown(
                    sd.start, sd.start + sd.duration, sd.factor
                )
        for crash in self.spec.crashes:
            if crash.node not in node_ids:
                continue

            def _fire(event: NodeCrash = crash) -> None:
                self.crashes_fired += 1
                cluster.crash_node(
                    event.node,
                    detection_latency=self.spec.detection_latency,
                    reason="fault",
                )

            cluster.engine.schedule_at(
                max(crash.time, cluster.engine.now), _fire
            )
