"""Cluster assembly: engine + nodes + fabric + process/message plumbing.

:class:`Cluster` is the façade the message-passing layers build on.  It
owns the engine, the tracer, the barrier manager, the task-id namespace
and per-task mailboxes; everything above it (PVM, Sciddle, Opal) only
sees ``spawn`` / ``run`` / the request vocabulary of
:mod:`repro.netsim.events`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

from ..errors import SimulationError
from ..obs.metrics import MetricsRegistry
from .engine import Engine
from .events import Message
from .network import Fabric
from .node import Node
from .process import BarrierManager, Mailbox, SimProcess
from .rng import RngRegistry
from .trace import Tracer


class ProcContext:
    """Handle passed as first argument to every process generator."""

    def __init__(self, cluster: "Cluster", proc: SimProcess) -> None:
        self._cluster = cluster
        self._proc = proc

    @property
    def now(self) -> float:
        """Current virtual time (valid whenever the generator is running)."""
        return self._cluster.engine.now

    @property
    def tid(self) -> int:
        """This process's task id."""
        return self._proc.tid

    @property
    def name(self) -> str:
        """This process's display name."""
        return self._proc.name

    @property
    def node(self) -> Node:
        """The node this process runs on."""
        return self._proc.node

    @property
    def cluster(self) -> "Cluster":
        """The owning cluster."""
        return self._cluster

    def trace(self, category: str, start: float, end: float, detail: str = "") -> None:
        """Emit an application-level trace record for this process."""
        self._proc.trace(category, start, end, detail)


class Cluster:
    """A simulated parallel machine."""

    def __init__(
        self,
        fabric_factory: Callable[[Engine], Fabric],
        seed: int = 0,
        trace: bool = True,
    ) -> None:
        self.engine = Engine()
        self.tracer = Tracer(enabled=trace, clock=lambda: self.engine.now)
        #: run-local metrics fed by the middleware layers; harvested by
        #: :meth:`repro.obs.ObsSession.absorb_opal_run`.
        self.metrics = MetricsRegistry()
        self.barriers = BarrierManager(self.engine)
        self.rng = RngRegistry(seed)
        self.fabric = fabric_factory(self.engine)
        self.nodes: List[Node] = []
        self._procs_by_tid: Dict[int, SimProcess] = {}
        self._mailboxes: Dict[int, Mailbox] = {}
        self._next_tid = 1
        self._msg_seq = 0
        self.failures: List[tuple] = []
        #: callbacks fired (after the detection latency) for each
        #: process killed by a node crash — the pvm_notify analogue
        self._death_listeners: List[Callable[[SimProcess], None]] = []

    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Register a node with the cluster."""
        self.nodes.append(node)
        return node

    def node(self, node_id: int) -> Node:
        """Look a node up by id."""
        for n in self.nodes:
            if n.node_id == node_id:
                return n
        raise SimulationError(f"no node with id {node_id}")

    # ------------------------------------------------------------------
    def spawn(
        self,
        name: str,
        node: Node,
        genfunc: Callable[..., Generator],
        *args: Any,
        **kwargs: Any,
    ) -> SimProcess:
        """Create and start a process running ``genfunc(ctx, *args)``."""
        tid = self._next_tid
        self._next_tid += 1
        proc = SimProcess(self, name, tid, node, gen=None)  # type: ignore[arg-type]
        ctx = ProcContext(self, proc)
        proc._gen = genfunc(ctx, *args, **kwargs)
        self._procs_by_tid[tid] = proc
        mailbox = Mailbox()
        self._mailboxes[tid] = mailbox
        proc._mailbox = mailbox
        proc.start()
        return proc

    def process_by_tid(self, tid: int) -> SimProcess:
        """Resolve a task id to its process."""
        try:
            return self._procs_by_tid[tid]
        except KeyError:
            raise SimulationError(f"unknown task id {tid}") from None

    def mailbox_of(self, tid: int) -> Mailbox:
        """The mailbox of one task id."""
        return self._mailboxes[tid]

    def next_msg_seq(self) -> int:
        """Next FIFO sequence number for a message."""
        self._msg_seq += 1
        return self._msg_seq

    def deliver(self, proc: SimProcess, msg: Message) -> None:
        """Deliver a message into a process's mailbox.

        Messages addressed to a finished (in particular: crashed)
        process are dead-lettered — dropped and counted — instead of
        piling up in a mailbox nobody will ever read.
        """
        if proc.finished:
            self.metrics.counter("faults.dead_letters").inc()
            return
        mailbox = proc._mailbox
        if mailbox is None:
            mailbox = self._mailboxes[proc.tid]
        mailbox.deliver(msg)

    # ------------------------------------------------------------------
    def add_death_listener(self, listener: Callable[[SimProcess], None]) -> None:
        """Register a callback fired once per process killed by
        :meth:`crash_node`, after the spec's detection latency."""
        self._death_listeners.append(listener)

    def crash_node(
        self, node_id: int, detection_latency: float = 0.0, reason: str = "crash"
    ) -> List[SimProcess]:
        """Kill every live process on a node, as a fault event.

        The victims die *now* (generators closed, mailbox waiters and
        barrier arrivals withdrawn, in-flight messages to them
        dead-lettered); ``detection_latency`` seconds later the death
        listeners fire and waiting barriers are re-checked against
        their (possibly shrunk) live counts.  Returns the victims.
        """
        node = self.node(node_id)
        node.crashed = True
        victims = [
            p
            for p in self._procs_by_tid.values()
            if p.node is node and not p.finished
        ]
        for proc in victims:
            proc.kill(reason)
        if victims:
            self.metrics.counter("faults.crashes").inc()

        def _notify() -> None:
            for proc in victims:
                for listener in list(self._death_listeners):
                    listener(proc)
            self.barriers.recheck()

        self.engine.schedule(max(detection_latency, 0.0), _notify)
        return victims

    # ------------------------------------------------------------------
    def _process_finished(self, proc: SimProcess) -> None:
        pass

    def _process_failed(self, proc: SimProcess, exc: BaseException) -> None:
        self.failures.append((proc.name, exc))
        raise SimulationError(f"process {proc.name!r} raised: {exc}") from exc

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation; returns the final virtual time."""
        if until is None:
            return self.engine.run_all()
        return self.engine.run(until)
