"""Generator-based simulated processes.

A process body is a Python generator function taking a
:class:`ProcContext` first argument.  It yields request objects from
:mod:`repro.netsim.events`; the runner executes them in virtual time and
resumes the generator with the result (e.g. the received
:class:`~repro.netsim.events.Message`).

Example
-------
>>> def pinger(ctx, peer_tid):
...     yield Send(peer_tid, nbytes=1024, tag=7)
...     msg = yield Recv(source=peer_tid)
...     ctx.log("got reply at", ctx.now)
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from ..errors import SimulationError
from .engine import Engine
from .events import ANY, Barrier, Compute, Message, Recv, RecvTimeout, Send, Timeout


class Mailbox:
    """Per-process FIFO of delivered messages with (source, tag) matching."""

    def __init__(self) -> None:
        self._messages: Deque[Message] = deque()
        self._pending: Optional[Tuple[Optional[int], Optional[int], Callable[[Message], None]]] = None

    @staticmethod
    def _matches(msg: Message, source: Optional[int], tag: Optional[int]) -> bool:
        return (source is ANY or msg.source == source) and (
            tag is ANY or msg.tag == tag
        )

    def deliver(self, msg: Message) -> None:
        """Hand a message to the waiting receiver or buffer it."""
        if self._pending is not None:
            source, tag, resume = self._pending
            if self._matches(msg, source, tag):
                self._pending = None
                resume(msg)
                return
        self._messages.append(msg)

    def take(
        self,
        source: Optional[int],
        tag: Optional[int],
        resume: Callable[[Message], None],
    ) -> bool:
        """Consume the first matching message, or register a waiter.

        Returns ``True`` if a message was immediately available.
        """
        for i, msg in enumerate(self._messages):
            if self._matches(msg, source, tag):
                del self._messages[i]
                resume(msg)
                return True
        if self._pending is not None:
            raise SimulationError("process already has an outstanding Recv")
        self._pending = (source, tag, resume)
        return False

    def cancel_pending(self) -> None:
        """Drop the registered waiter (recv deadline expiry, process kill).

        Messages arriving afterwards buffer normally.
        """
        self._pending = None

    def __len__(self) -> int:
        return len(self._messages)


class BarrierManager:
    """Named rendezvous points shared across all processes of a cluster.

    Release semantics follow the paper's accounting model: each arriving
    process is *idle* from its own arrival until the last arrival, then
    all members are *synchronizing* for ``cost`` seconds, after which all
    resume simultaneously.

    Fault tolerance hooks: a *count provider* maps a barrier-name prefix
    to a live group size (so a crashed member stops being expected),
    :meth:`purge` removes a killed process's arrivals, and
    :meth:`recheck` re-evaluates waiting groups after either changed —
    the cluster calls both when a crash notification fires.
    """

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._waiting: Dict[str, List[Tuple[float, "SimProcess"]]] = {}
        self._generation: Dict[str, int] = {}
        self._counts: Dict[str, int] = {}
        self._costs: Dict[str, float] = {}
        self._providers: List[Tuple[str, Callable[[], int]]] = []
        self.arrivals = 0
        self.releases = 0

    def set_count_provider(self, prefix: str, provider: Callable[[], int]) -> None:
        """Barriers whose name starts with ``prefix`` expect
        ``provider()`` members instead of the count they were yielded
        with — the hook that lets a group shrink when members die."""
        self._providers.append((prefix, provider))

    def _expected(self, key: str) -> int:
        name = key.rsplit("#", 1)[0]
        for prefix, provider in self._providers:
            if name.startswith(prefix):
                return max(int(provider()), 1)
        return self._counts[key]

    def arrive(self, name: str, count: int, cost: float, proc: "SimProcess") -> None:
        """Register one arrival; release everyone on the last."""
        key = f"{name}#{self._generation.get(name, 0)}"
        group = self._waiting.setdefault(key, [])
        group.append((self.engine.now, proc))
        self.arrivals += 1
        self._counts[key] = count
        self._costs[key] = cost
        self._maybe_release(key)

    def _maybe_release(self, key: str) -> None:
        group = self._waiting.get(key)
        if not group:
            return
        expected = self._expected(key)
        if len(group) > expected:
            name = key.rsplit("#", 1)[0]
            raise SimulationError(
                f"barrier {name!r} overflow: {len(group)} arrivals "
                f"for count={expected}"
            )
        if len(group) == expected:
            name = key.rsplit("#", 1)[0]
            cost = self._costs[key]
            self._generation[name] = self._generation.get(name, 0) + 1
            del self._waiting[key]
            del self._counts[key]
            del self._costs[key]
            self.releases += 1
            last_arrival = self.engine.now
            release = last_arrival + cost
            for arrived_at, member in group:
                member.trace("idle", arrived_at, last_arrival, detail=name)
                member.trace("sync", last_arrival, release, detail=name)
                self.engine.schedule_at(release, member.make_resume(None))

    def purge(self, proc: "SimProcess") -> None:
        """Remove a (killed) process's arrivals from all waiting groups."""
        for key in list(self._waiting):
            group = self._waiting[key]
            filtered = [(t, member) for t, member in group if member is not proc]
            if len(filtered) != len(group):
                if filtered:
                    self._waiting[key] = filtered
                else:
                    del self._waiting[key]
                    del self._counts[key]
                    del self._costs[key]

    def recheck(self) -> None:
        """Release any waiting group its (possibly shrunk) count now
        satisfies; called after a crash notification."""
        for key in list(self._waiting):
            self._maybe_release(key)


class SimProcess:
    """Runner wrapping one application generator."""

    def __init__(
        self,
        cluster: "Cluster",  # noqa: F821 - forward ref, see cluster.py
        name: str,
        tid: int,
        node: "Node",  # noqa: F821
        gen: Generator,
    ) -> None:
        self.cluster = cluster
        self.name = name
        self.tid = tid
        self.node = node
        self._gen = gen
        self.finished = False
        self.killed = False
        self.failed: Optional[BaseException] = None
        self.result: Any = None
        self._blocked = False

    # ------------------------------------------------------------------
    @property
    def engine(self) -> Engine:
        """The owning engine."""
        return self.cluster.engine

    def trace(self, category: str, start: float, end: float, detail: str = "") -> None:
        """Emit a trace record attributed to this process."""
        self.cluster.tracer.record(self.name, category, start, end, detail)

    def make_resume(self, value: Any) -> Callable[[], None]:
        """A zero-arg callback resuming this process with ``value``."""

        def _resume() -> None:
            self._unblock()
            self._step(value)

        return _resume

    def _block(self) -> None:
        if not self._blocked:
            self._blocked = True
            self.engine.blocked_processes += 1

    def _unblock(self) -> None:
        if self._blocked:
            self._blocked = False
            self.engine.blocked_processes -= 1

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first step of the generator at t(now)."""
        self.engine.schedule(0.0, lambda: self._step(None))

    def kill(self, reason: str = "") -> None:
        """Terminate this process immediately (node crash).

        The generator is closed, the process unblocked (so the engine's
        deadlock check does not count it), and its mailbox waiter and
        barrier arrivals are withdrawn.  Idempotent; a finished process
        is left alone.
        """
        if self.finished:
            return
        self.finished = True
        self.killed = True
        try:
            self._gen.close()
        except RuntimeError:  # generator swallowed GeneratorExit
            pass
        self._unblock()
        self.cluster.mailbox_of(self.tid).cancel_pending()
        self.cluster.barriers.purge(self)
        now = self.engine.now
        self.trace("fault", now, now, detail=f"killed:{reason}" if reason else "killed")

    def _step(self, value: Any) -> None:
        if self.finished:  # killed while an old resume event was in flight
            return
        try:
            request = self._gen.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = getattr(stop, "value", None)
            self.cluster._process_finished(self)
            return
        except BaseException as exc:  # surface app bugs with process context
            self.finished = True
            self.failed = exc
            self.cluster._process_failed(self, exc)
            return
        self._dispatch(request)

    # ------------------------------------------------------------------
    def _dispatch(self, request: Any) -> None:
        if isinstance(request, Timeout):
            start = self.engine.now
            self.trace("sleep", start, start + request.delay)
            self.engine.schedule(request.delay, lambda: self._step(None))
        elif isinstance(request, Compute):
            self._do_compute(request)
        elif isinstance(request, Send):
            self._do_send(request)
        elif isinstance(request, Recv):
            self._do_recv(request)
        elif isinstance(request, Barrier):
            self._block()
            self.cluster.barriers.arrive(
                request.name, request.count, request.cost, self
            )
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported request {request!r}"
            )

    def _do_compute(self, request: Compute) -> None:
        node = self.node
        duration, flops = node.compute_duration(request)
        start_wait = self.engine.now
        self._block()

        def _granted() -> None:
            if self.finished:  # killed while waiting for the CPU
                node.cpus.release()
                return
            start = self.engine.now
            if start > start_wait:
                self.trace("cpu_wait", start_wait, start)

            def _finish() -> None:
                node.cpus.release()
                if self.finished:  # killed mid-compute
                    return
                node.hpm.add(flops=flops, busy=duration)
                self.trace("compute", start, self.engine.now)
                self._unblock()
                self._step(None)

            self.engine.schedule(duration, _finish)

        node.cpus.acquire(_granted)

    def _do_send(self, request: Send) -> None:
        start = self.engine.now
        self._block()
        dest_proc = self.cluster.process_by_tid(request.dest)
        msg = Message(
            source=self.tid,
            dest=request.dest,
            tag=request.tag,
            nbytes=request.nbytes,
            payload=request.payload,
            sent_at=start,
            seq=self.cluster.next_msg_seq(),
        )

        def _injected() -> None:
            self.trace("send", start, self.engine.now, detail=f"tag={request.tag}")
            self._unblock()
            self._step(None)

        def _delivered() -> None:
            msg.delivered_at = self.engine.now
            self.cluster.deliver(dest_proc, msg)

        self.cluster.fabric.transfer(
            self.node, dest_proc.node, request.nbytes, _injected, _delivered
        )

    def _do_recv(self, request: Recv) -> None:
        start = self.engine.now
        mailbox = self.cluster.mailbox_of(self.tid)
        self._block()
        state = {"done": False}

        def _resume(msg: Message) -> None:
            if self.finished:  # killed while waiting
                return
            state["done"] = True
            now = self.engine.now
            if now > start:
                self.trace("recv_wait", start, now, detail=f"tag={msg.tag}")
            # Causal edge: the sender's injection instant to this
            # receive completion.  Every PVM send/recv — and therefore
            # every Sciddle RPC leg — lands here exactly once.
            try:
                src_name = self.cluster.process_by_tid(msg.source).name
            except SimulationError:
                src_name = f"tid{msg.source}"
            self.cluster.tracer.flow(
                fid=msg.seq,
                src_proc=src_name,
                src_time=msg.sent_at,
                dst_proc=self.name,
                dst_time=now,
                nbytes=msg.nbytes,
                tag=msg.tag,
            )
            self._unblock()
            # Resume in a fresh event so delivery callbacks unwind first.
            self.engine.schedule(0.0, lambda: self._step(msg))

        satisfied = mailbox.take(request.source, request.tag, _resume)
        if request.timeout is None or satisfied or state["done"]:
            return

        deadline = request.timeout

        def _expire() -> None:
            # No-op if the message arrived (or the process died) first;
            # the expired timer event is harmless.
            if state["done"] or self.finished:
                return
            state["done"] = True
            mailbox.cancel_pending()
            now = self.engine.now
            if now > start:
                self.trace("recv_wait", start, now, detail="timeout")
            self._unblock()
            result = RecvTimeout(
                source=request.source, tag=request.tag, timeout=deadline, at=now
            )
            self.engine.schedule(0.0, lambda: self._step(result))

        self.engine.schedule(deadline, _expire)
