"""Generator-based simulated processes.

A process body is a Python generator function taking a
:class:`ProcContext` first argument.  It yields request objects from
:mod:`repro.netsim.events`; the runner executes them in virtual time and
resumes the generator with the result (e.g. the received
:class:`~repro.netsim.events.Message`).

Example
-------
>>> def pinger(ctx, peer_tid):
...     yield Send(peer_tid, nbytes=1024, tag=7)
...     msg = yield Recv(source=peer_tid)
...     ctx.log("got reply at", ctx.now)
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from ..errors import SimulationError
from .engine import Engine
from .events import ANY, Barrier, Compute, Message, Recv, RecvTimeout, Send, Timeout


class Mailbox:
    """Per-process FIFO of delivered messages with (source, tag) matching."""

    __slots__ = ("_messages", "_pending")

    def __init__(self) -> None:
        self._messages: Deque[Message] = deque()
        self._pending: Optional[Tuple[Optional[int], Optional[int], Callable[[Message], None]]] = None

    @staticmethod
    def _matches(msg: Message, source: Optional[int], tag: Optional[int]) -> bool:
        return (source is ANY or msg.source == source) and (
            tag is ANY or msg.tag == tag
        )

    def deliver(self, msg: Message) -> None:
        """Hand a message to the waiting receiver or buffer it."""
        if self._pending is not None:
            source, tag, resume = self._pending
            # _matches(), inlined: one delivery per simulated message
            if (source is ANY or msg.source == source) and (
                tag is ANY or msg.tag == tag
            ):
                self._pending = None
                resume(msg)
                return
        self._messages.append(msg)

    def take(
        self,
        source: Optional[int],
        tag: Optional[int],
        resume: Callable[[Message], None],
    ) -> bool:
        """Consume the first matching message, or register a waiter.

        Returns ``True`` if a message was immediately available.
        """
        for i, msg in enumerate(self._messages):
            if (source is ANY or msg.source == source) and (
                tag is ANY or msg.tag == tag
            ):
                del self._messages[i]
                resume(msg)
                return True
        if self._pending is not None:
            raise SimulationError("process already has an outstanding Recv")
        self._pending = (source, tag, resume)
        return False

    def cancel_pending(self) -> None:
        """Drop the registered waiter (recv deadline expiry, process kill).

        Messages arriving afterwards buffer normally.
        """
        self._pending = None

    def __len__(self) -> int:
        return len(self._messages)


class BarrierManager:
    """Named rendezvous points shared across all processes of a cluster.

    Release semantics follow the paper's accounting model: each arriving
    process is *idle* from its own arrival until the last arrival, then
    all members are *synchronizing* for ``cost`` seconds, after which all
    resume simultaneously.

    Fault tolerance hooks: a *count provider* maps a barrier-name prefix
    to a live group size (so a crashed member stops being expected),
    :meth:`purge` removes a killed process's arrivals, and
    :meth:`recheck` re-evaluates waiting groups after either changed —
    the cluster calls both when a crash notification fires.
    """

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._waiting: Dict[str, List[Tuple[float, "SimProcess"]]] = {}
        self._generation: Dict[str, int] = {}
        self._counts: Dict[str, int] = {}
        self._costs: Dict[str, float] = {}
        self._providers: List[Tuple[str, Callable[[], int]]] = []
        self.arrivals = 0
        self.releases = 0

    def set_count_provider(self, prefix: str, provider: Callable[[], int]) -> None:
        """Barriers whose name starts with ``prefix`` expect
        ``provider()`` members instead of the count they were yielded
        with — the hook that lets a group shrink when members die."""
        self._providers.append((prefix, provider))

    def _expected(self, key: str) -> int:
        name = key.rsplit("#", 1)[0]
        for prefix, provider in self._providers:
            if name.startswith(prefix):
                return max(int(provider()), 1)
        return self._counts[key]

    def arrive(self, name: str, count: int, cost: float, proc: "SimProcess") -> None:
        """Register one arrival; release everyone on the last."""
        key = f"{name}#{self._generation.get(name, 0)}"
        group = self._waiting.setdefault(key, [])
        group.append((self.engine.now, proc))
        self.arrivals += 1
        self._counts[key] = count
        self._costs[key] = cost
        self._maybe_release(key)

    def _maybe_release(self, key: str) -> None:
        group = self._waiting.get(key)
        if not group:
            return
        expected = self._expected(key)
        if len(group) > expected:
            name = key.rsplit("#", 1)[0]
            raise SimulationError(
                f"barrier {name!r} overflow: {len(group)} arrivals "
                f"for count={expected}"
            )
        if len(group) == expected:
            name = key.rsplit("#", 1)[0]
            cost = self._costs[key]
            self._generation[name] = self._generation.get(name, 0) + 1
            del self._waiting[key]
            del self._counts[key]
            del self._costs[key]
            self.releases += 1
            last_arrival = self.engine.now
            release = last_arrival + cost
            for arrived_at, member in group:
                member.trace("idle", arrived_at, last_arrival, detail=name)
                member.trace("sync", last_arrival, release, detail=name)
                self.engine.schedule_at(release, member.make_resume(None))

    def purge(self, proc: "SimProcess") -> None:
        """Remove a (killed) process's arrivals from all waiting groups."""
        for key in list(self._waiting):
            group = self._waiting[key]
            filtered = [(t, member) for t, member in group if member is not proc]
            if len(filtered) != len(group):
                if filtered:
                    self._waiting[key] = filtered
                else:
                    del self._waiting[key]
                    del self._counts[key]
                    del self._costs[key]

    def recheck(self) -> None:
        """Release any waiting group its (possibly shrunk) count now
        satisfies; called after a crash notification."""
        for key in list(self._waiting):
            self._maybe_release(key)


class SimProcess:
    """Runner wrapping one application generator."""

    __slots__ = (
        "cluster",
        "name",
        "tid",
        "node",
        "_gen",
        "finished",
        "killed",
        "failed",
        "result",
        "_blocked",
        "engine",
        "_tracer",
        "_mailbox",
    )

    def __init__(
        self,
        cluster: "Cluster",  # noqa: F821 - forward ref, see cluster.py
        name: str,
        tid: int,
        node: "Node",  # noqa: F821
        gen: Generator,
    ) -> None:
        self.cluster = cluster
        self.name = name
        self.tid = tid
        self.node = node
        self._gen = gen
        self.finished = False
        self.killed = False
        self.failed: Optional[BaseException] = None
        self.result: Any = None
        self._blocked = False
        #: cached collaborators — these are on the per-event hot path,
        #: so the attribute chases are paid once at spawn time
        self.engine: Engine = cluster.engine
        self._tracer = cluster.tracer
        #: this process's mailbox; wired by Cluster.spawn right after
        #: construction (the mailbox registry owns the instance)
        self._mailbox: Optional[Mailbox] = None

    # ------------------------------------------------------------------
    def trace(self, category: str, start: float, end: float, detail: str = "") -> None:
        """Emit a trace record attributed to this process."""
        self._tracer.record(self.name, category, start, end, detail)

    def make_resume(self, value: Any) -> Callable[[], None]:
        """A zero-arg callback resuming this process with ``value``."""

        def _resume() -> None:
            self._unblock()
            self._step(value)

        return _resume

    def _block(self) -> None:
        if not self._blocked:
            self._blocked = True
            self.engine.blocked_processes += 1

    def _unblock(self) -> None:
        if self._blocked:
            self._blocked = False
            self.engine.blocked_processes -= 1

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first step of the generator at t(now)."""
        self.engine.schedule(0.0, lambda: self._step(None))

    def kill(self, reason: str = "") -> None:
        """Terminate this process immediately (node crash).

        The generator is closed, the process unblocked (so the engine's
        deadlock check does not count it), and its mailbox waiter and
        barrier arrivals are withdrawn.  Idempotent; a finished process
        is left alone.
        """
        if self.finished:
            return
        self.finished = True
        self.killed = True
        try:
            self._gen.close()
        except RuntimeError:  # generator swallowed GeneratorExit
            pass
        self._unblock()
        self.cluster.mailbox_of(self.tid).cancel_pending()
        self.cluster.barriers.purge(self)
        now = self.engine.now
        self.trace("fault", now, now, detail=f"killed:{reason}" if reason else "killed")

    def _step(self, value: Any) -> None:
        if self.finished:  # killed while an old resume event was in flight
            return
        try:
            request = self._gen.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = getattr(stop, "value", None)
            self.cluster._process_finished(self)
            return
        except BaseException as exc:  # surface app bugs with process context
            self.finished = True
            self.failed = exc
            self.cluster._process_failed(self, exc)
            return
        # Dispatch, inlined (one per event).  Exact-type checks first:
        # the request vocabulary is closed and the event classes are
        # slotted finals in practice, so `is` beats the isinstance
        # chain on the per-event hot path.  The isinstance fallback
        # keeps subclasses working.
        cls = request.__class__
        if cls is Send or isinstance(request, Send):
            self._do_send(request)
        elif cls is Recv or isinstance(request, Recv):
            self._do_recv(request)
        elif cls is Compute or isinstance(request, Compute):
            self._do_compute(request)
        elif cls is Barrier or isinstance(request, Barrier):
            self._block()
            self.cluster.barriers.arrive(
                request.name, request.count, request.cost, self
            )
        elif cls is Timeout or isinstance(request, Timeout):
            if self._tracer.enabled:
                start = self.engine.now
                self.trace("sleep", start, start + request.delay)
            self.engine.schedule(request.delay, lambda: self._step(None))
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported request {request!r}"
            )

    def _do_compute(self, request: Compute) -> None:
        node = self.node
        engine = self.engine
        duration, flops = node.compute_duration(request)
        start_wait = engine.now
        self._block()

        def _granted() -> None:
            if self.finished:  # killed while waiting for the CPU
                node.cpus.release()
                return
            start = engine.now
            if start > start_wait:
                self.trace("cpu_wait", start_wait, start)

            def _finish() -> None:
                node.cpus.release()
                if self.finished:  # killed mid-compute
                    return
                node.hpm.add(flops=flops, busy=duration)
                if self._tracer.enabled:
                    self.trace("compute", start, engine.now)
                self._unblock()
                self._step(None)

            engine.schedule(duration, _finish)

        node.cpus.acquire(_granted)

    def _do_send(self, request: Send) -> None:
        cluster = self.cluster
        engine = self.engine
        start = engine._now
        if not self._blocked:
            self._blocked = True
            engine.blocked_processes += 1
        dest_proc = cluster._procs_by_tid.get(request.dest)
        if dest_proc is None:
            dest_proc = cluster.process_by_tid(request.dest)  # raises
        dest_mailbox = dest_proc._mailbox
        # next_msg_seq(), inlined (one per simulated message)
        cluster._msg_seq = seq = cluster._msg_seq + 1
        msg = Message(
            source=self.tid,
            dest=request.dest,
            tag=request.tag,
            nbytes=request.nbytes,
            payload=request.payload,
            sent_at=start,
            seq=seq,
        )

        def _injected() -> None:
            if self._tracer.enabled:
                self.trace("send", start, engine.now, detail=f"tag={request.tag}")
            if self._blocked:
                self._blocked = False
                engine.blocked_processes -= 1
            self._step(None)

        def _delivered() -> None:
            # Cluster.deliver, inlined (one per simulated message).
            msg.delivered_at = engine._now
            if dest_proc.finished:
                cluster.metrics.counter("faults.dead_letters").inc()
                return
            if dest_mailbox is not None:
                dest_mailbox.deliver(msg)
            else:  # spawned outside Cluster.spawn (tests)
                cluster.mailbox_of(dest_proc.tid).deliver(msg)

        cluster.fabric.transfer(
            self.node, dest_proc.node, request.nbytes, _injected, _delivered
        )

    def _do_recv(self, request: Recv) -> None:
        engine = self.engine
        start = engine._now
        mailbox = self._mailbox
        if mailbox is None:  # spawned outside Cluster.spawn (tests)
            mailbox = self.cluster.mailbox_of(self.tid)
        if not self._blocked:
            self._blocked = True
            engine.blocked_processes += 1
        # The shared completion flag is only needed to adjudicate the
        # message-vs-deadline race, so the common untimed receive skips
        # the allocation entirely.
        state = None if request.timeout is None else {"done": False}

        def _resume(msg: Message) -> None:
            if self.finished:  # killed while waiting
                return
            if state is not None:
                state["done"] = True
            now = engine._now
            if self._tracer.enabled:
                if now > start:
                    self.trace("recv_wait", start, now, detail=f"tag={msg.tag}")
                # Causal edge: the sender's injection instant to this
                # receive completion.  Every PVM send/recv — and therefore
                # every Sciddle RPC leg — lands here exactly once.
                try:
                    src_name = self.cluster.process_by_tid(msg.source).name
                except SimulationError:
                    src_name = f"tid{msg.source}"
                self._tracer.flow(
                    fid=msg.seq,
                    src_proc=src_name,
                    src_time=msg.sent_at,
                    dst_proc=self.name,
                    dst_time=now,
                    nbytes=msg.nbytes,
                    tag=msg.tag,
                )
            if self._blocked:
                self._blocked = False
                engine.blocked_processes -= 1
            # Resume in a fresh event so delivery callbacks unwind first.
            engine.schedule(0.0, lambda: self._step(msg))

        satisfied = mailbox.take(request.source, request.tag, _resume)
        if state is None or satisfied or state["done"]:
            return

        deadline = request.timeout

        def _expire() -> None:
            # No-op if the message arrived (or the process died) first;
            # the expired timer event is harmless.
            if state["done"] or self.finished:
                return
            state["done"] = True
            mailbox.cancel_pending()
            now = self.engine.now
            if now > start:
                self.trace("recv_wait", start, now, detail="timeout")
            self._unblock()
            result = RecvTimeout(
                source=request.source, tag=request.tag, timeout=deadline, at=now
            )
            self.engine.schedule(0.0, lambda: self._step(result))

        self.engine.schedule(deadline, _expire)
