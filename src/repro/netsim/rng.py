"""Deterministic random-number streams for simulated runs.

Every stochastic element of a simulation (compute-time jitter per node,
workload randomization, measurement repetition) draws from its own named
stream spawned from one root seed, so that runs are exactly reproducible
and adding a new consumer never perturbs existing streams.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngStreams:
    """A registry of independent, named :class:`numpy.random.Generator`."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream key is derived from (root seed, crc32(name)) so stream
        identity depends only on the name, not on creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            child = np.random.SeedSequence([self.seed, zlib.crc32(name.encode())])
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen


class Jitter:
    """Multiplicative log-normal duration noise.

    ``sigma`` is the log-space standard deviation; 0 disables noise and
    makes runs bit-deterministic.  The paper reports "low variability and
    good reproducibility" on the dedicated J90 — a fraction of a percent —
    so the experiment runner uses small sigmas (default 0.004).
    """

    def __init__(self, rng: np.random.Generator, sigma: float = 0.0) -> None:
        if sigma < 0:
            raise ValueError("jitter sigma must be >= 0")
        self._rng = rng
        self.sigma = sigma

    def apply(self, duration: float) -> float:
        """Multiply ``duration`` by one log-normal noise draw."""
        if self.sigma == 0.0 or duration == 0.0:
            return duration
        return float(duration * np.exp(self.sigma * self._rng.standard_normal()))
