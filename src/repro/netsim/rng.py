"""Deterministic random-number streams for simulated runs.

Every stochastic element of a simulation (compute-time jitter per node,
workload randomization, measurement repetition) draws from its own named
stream spawned from one root seed, so that runs are exactly reproducible
and adding a new consumer never perturbs existing streams.

:func:`derive_seed` is the single place a (root seed, stream name) pair
turns into seed material; every consumer — the cached
:class:`RngRegistry` streams and the one-shot :func:`spawn_generator`
generators alike — goes through it, so no module hand-rolls its own
seed arithmetic (simlint rule D106 rejects hard-coded seed literals).
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


def derive_seed(root_seed: int, name: str) -> np.random.SeedSequence:
    """Seed material for the stream ``name`` under ``root_seed``.

    The key is ``(root seed, crc32(name))`` so stream identity depends
    only on the name, never on creation order or a caller-invented
    constant.
    """
    return np.random.SeedSequence([int(root_seed), zlib.crc32(name.encode())])


def spawn_generator(root_seed: int, name: str) -> np.random.Generator:
    """A fresh generator for ``name`` under ``root_seed``.

    Unlike :meth:`RngRegistry.stream` this does not cache: calling it
    twice with the same arguments restarts the identical stream.  Use it
    where a computation must be re-derivable on demand (e.g. the
    workload's noisy per-server shares, recomputed per accessor call).
    """
    return np.random.default_rng(derive_seed(root_seed, name))


class RngRegistry:
    """A registry of independent, named :class:`numpy.random.Generator`.

    This is the package's one sanctioned source of simulation
    randomness: components ask for ``registry.stream("jitter/node3")``
    and never construct generators from ad-hoc seed expressions.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream key comes from :func:`derive_seed`, so stream
        identity depends only on the name, not on creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            gen = spawn_generator(self.seed, name)
            self._streams[name] = gen
        return gen


#: Backwards-compatible alias; the class was named RngStreams before the
#: registry became the package-wide seed-derivation authority.
RngStreams = RngRegistry


class Jitter:
    """Multiplicative log-normal duration noise.

    ``sigma`` is the log-space standard deviation; 0 disables noise and
    makes runs bit-deterministic.  The paper reports "low variability and
    good reproducibility" on the dedicated J90 — a fraction of a percent —
    so the experiment runner uses small sigmas (default 0.004).
    """

    def __init__(self, rng: np.random.Generator, sigma: float = 0.0) -> None:
        if sigma < 0:
            raise ValueError("jitter sigma must be >= 0")
        self._rng = rng
        self.sigma = sigma

    def apply(self, duration: float) -> float:
        """Multiply ``duration`` by one log-normal noise draw."""
        if self.sigma == 0.0 or duration == 0.0:
            return duration
        return float(duration * np.exp(self.sigma * self._rng.standard_normal()))
