"""FIFO counted resources for the simulator.

CPUs, NIC transmit ports and shared network media are all modelled as
:class:`Resource` instances: a fixed number of slots plus a FIFO queue of
waiters.  A holder occupies a slot for a caller-computed duration; the
grant/release discipline yields exact queueing behaviour (work-conserving,
non-preemptive), which is the behaviour the paper's contention argument in
Section 3.3 relies on ("the barriers do not cause but merely expose the
contention of single client multiple server communication").
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque

from .engine import Engine


class Resource:
    """A counted resource with FIFO admission."""

    __slots__ = (
        "engine",
        "capacity",
        "name",
        "_in_use",
        "_waiters",
        "_busy_time",
        "_last_change",
    )

    def __init__(self, engine: Engine, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("Resource capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Callable[[], None]] = deque()
        #: cumulative busy time integral, for utilisation statistics
        self._busy_time = 0.0
        self._last_change = 0.0

    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Slots currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Requests waiting for a slot."""
        return len(self._waiters)

    def free(self) -> bool:
        """Whether a slot is available right now (no queueing implied)."""
        return self._in_use < self.capacity

    def _account(self) -> None:
        now = self.engine._now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def utilisation(self) -> float:
        """Busy slot-seconds accumulated so far, divided by capacity*now."""
        self._account()
        now = self.engine.now
        if now <= 0:
            return 0.0
        return self._busy_time / (self.capacity * now)

    # ------------------------------------------------------------------
    def acquire(self, granted: Callable[[], None]) -> None:
        """Request a slot; ``granted`` is called (possibly immediately)
        once a slot is assigned.  The holder must call :meth:`release`."""
        in_use = self._in_use
        if in_use < self.capacity:
            # _account() inlined: acquire/release bracket every simulated
            # transfer and compute grant, so the call overhead adds up.
            # A fully idle resource contributes nothing to the busy-time
            # integral, so only the timestamp needs to advance.
            now = self.engine._now
            if in_use:
                self._busy_time += in_use * (now - self._last_change)
            self._last_change = now
            self._in_use = in_use + 1
            granted()
        else:
            self._waiters.append(granted)

    def release(self) -> None:
        """Return a slot; the longest-waiting requester is granted next."""
        in_use = self._in_use
        if in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        now = self.engine._now
        self._busy_time += in_use * (now - self._last_change)
        self._last_change = now
        self._in_use = in_use - 1
        if self._waiters:
            nxt = self._waiters.popleft()
            self._in_use += 1
            # Grant in a fresh event so the releaser finishes its step first
            # and same-time grants remain FIFO-deterministic.
            self.engine.schedule(0.0, nxt)

    def use(self, duration: float, done: Callable[[], None]) -> None:
        """Convenience: acquire, hold for ``duration``, release, call ``done``."""

        def _granted() -> None:
            def _finish() -> None:
                self.release()
                done()

            self.engine.schedule(duration, _finish)

        self.acquire(_granted)
