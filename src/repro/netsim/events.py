"""Request objects yielded by simulated processes.

A simulated process is a Python generator.  It interacts with the
discrete-event engine by yielding one of the request objects defined in
this module; the engine performs the requested operation in virtual time
and resumes the generator with the operation's result (if any).

The vocabulary is deliberately small — it is exactly what a message
passing runtime like PVM needs:

``Timeout``
    advance virtual time unconditionally (sleep).
``Compute``
    occupy one CPU of the owning node for a workload expressed either in
    seconds or in floating point operations (converted through the node's
    memory-hierarchy-aware rate model).
``Send``
    inject a message into the fabric.  The sender blocks for the
    *injection* time (per-message overhead plus size over bandwidth on the
    contended resource); delivery happens one latency later.
``Recv``
    block until a message matching ``(source, tag)`` is in the process
    mailbox; wildcards supported.  With ``timeout=`` the wait is bounded
    (the ``pvm_trecv`` analogue): if nothing matched within the deadline
    the process resumes with a :class:`RecvTimeout` instead of a
    :class:`Message`.
``Barrier``
    block until all members of a barrier group arrived; everyone is
    released ``cost`` seconds after the last arrival.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

#: Wildcard value accepted by :class:`Recv` for ``source`` and ``tag``.
ANY = None


@dataclass(frozen=True, slots=True)
class Timeout:
    """Sleep for ``delay`` seconds of virtual time."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"Timeout delay must be >= 0, got {self.delay}")


@dataclass(frozen=True, slots=True)
class Compute:
    """Occupy a CPU of the owning node.

    Exactly one of ``seconds`` or ``flops`` must be given.  When ``flops``
    is given the duration is ``flops / node.effective_rate(working_set)``,
    which routes the request through the node's memory-hierarchy model,
    and the node's hardware performance counters are advanced.
    """

    seconds: Optional[float] = None
    flops: Optional[float] = None
    working_set: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.seconds is None) == (self.flops is None):
            raise ValueError("Compute requires exactly one of seconds= or flops=")
        if self.seconds is not None and self.seconds < 0:
            raise ValueError("Compute seconds must be >= 0")
        if self.flops is not None and self.flops < 0:
            raise ValueError("Compute flops must be >= 0")


@dataclass(frozen=True, slots=True)
class Send:
    """Inject a message of ``nbytes`` for task ``dest`` into the fabric."""

    dest: int
    nbytes: float
    tag: int = 0
    payload: Any = None

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("Send nbytes must be >= 0")


@dataclass(frozen=True, slots=True)
class Recv:
    """Block until a matching message arrives; resumes with a Message.

    ``timeout=None`` blocks forever (classic ``pvm_recv``); a finite
    ``timeout`` bounds the wait and resumes with :class:`RecvTimeout`
    if the deadline expires first.
    """

    source: Optional[int] = ANY
    tag: Optional[int] = ANY
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout < 0:
            raise ValueError(f"Recv timeout must be >= 0, got {self.timeout}")


@dataclass(frozen=True, slots=True)
class RecvTimeout:
    """Resumption value of a :class:`Recv` whose deadline expired.

    Echoes the receive's match pattern and deadline; ``at`` is the
    virtual time the deadline fired.
    """

    source: Optional[int] = ANY
    tag: Optional[int] = ANY
    timeout: float = 0.0
    at: float = 0.0


@dataclass(frozen=True, slots=True)
class Barrier:
    """Block on the named barrier until ``count`` processes arrived."""

    name: str
    count: int
    cost: float = 0.0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("Barrier count must be >= 1")
        if self.cost < 0:
            raise ValueError("Barrier cost must be >= 0")


@dataclass(slots=True)
class Message:
    """A delivered message, handed to the process that issued ``Recv``.

    Slotted: one is allocated per simulated send, which makes its
    construction part of the engine's per-event budget.
    """

    source: int
    dest: int
    tag: int
    nbytes: float
    payload: Any = None
    sent_at: float = 0.0
    delivered_at: float = 0.0
    #: monotonically increasing per-engine sequence, preserves FIFO order
    seq: int = field(default=0, compare=False)
