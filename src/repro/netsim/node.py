"""Compute nodes: CPUs, NIC ports, counters and a rate model.

A node bundles everything the process runner needs to execute a
:class:`~repro.netsim.events.Compute` request:

* a counted CPU resource (capacity = number of processors, e.g. 2 for the
  twin-Pentium SMP CoPs nodes);
* a rate model mapping (flops, working set) to a duration, which is where
  the memory hierarchy of Section 2.6 (in cache / in core / out of core)
  enters the simulation;
* an :class:`~repro.hpm.HpmCounter` bank with the platform's flop
  inflation;
* NIC tx/rx port resources used by the fabric contention models.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..hpm import HpmCounter
from .engine import Engine
from .events import Compute
from .resources import Resource
from .rng import Jitter

#: A rate model maps an optional working-set size in bytes to flop/s.
RateModel = Callable[[Optional[float]], float]


def constant_rate(flops_per_second: float) -> RateModel:
    """A rate model that ignores the working set."""
    if flops_per_second <= 0:
        raise ValueError("rate must be positive")

    def model(working_set: Optional[float]) -> float:
        return flops_per_second

    return model


class Node:
    """One machine (or SMP board) of the simulated cluster."""

    def __init__(
        self,
        engine: Engine,
        node_id: int,
        rate_model: RateModel,
        n_cpus: int = 1,
        flop_inflation: float = 1.0,
        jitter: Optional[Jitter] = None,
        name: Optional[str] = None,
    ) -> None:
        if n_cpus < 1:
            raise ValueError("a node needs at least one CPU")
        self.engine = engine
        self.node_id = node_id
        self.name = name if name is not None else f"node{node_id}"
        self.rate_model = rate_model
        self.n_cpus = n_cpus
        self.cpus = Resource(engine, capacity=n_cpus, name=f"{self.name}.cpu")
        self.tx = Resource(engine, capacity=1, name=f"{self.name}.tx")
        self.rx = Resource(engine, capacity=1, name=f"{self.name}.rx")
        self.hpm = HpmCounter(flop_inflation=flop_inflation)
        self.jitter = jitter
        #: fault-injection state: timeshared/overloaded windows scaling
        #: compute durations, and whether the node has crashed
        self.slowdowns: List[Tuple[float, float, float]] = []
        self.crashed = False

    def add_slowdown(self, start: float, end: float, factor: float) -> None:
        """Scale compute durations by ``factor`` for requests issued in
        ``[start, end)`` of virtual time (a timesharing burst)."""
        if end <= start:
            raise ValueError("slowdown window must have end > start")
        if factor < 1.0:
            raise ValueError("slowdown factor must be >= 1")
        self.slowdowns.append((start, end, factor))

    def effective_rate(self, working_set: Optional[float] = None) -> float:
        """Flop/s the node sustains at the given working-set size."""
        return self.rate_model(working_set)

    def compute_duration(self, request: Compute) -> Tuple[float, float]:
        """Resolve a compute request to (duration seconds, algorithmic flops)."""
        if request.seconds is not None:
            duration = request.seconds
            flops = 0.0
        else:
            flops = float(request.flops)
            rate = self.effective_rate(request.working_set)
            duration = flops / rate
        if self.jitter is not None:
            duration = self.jitter.apply(duration)
        if self.slowdowns:
            now = self.engine.now
            for start, end, factor in self.slowdowns:
                if start <= now < end:
                    duration *= factor
        return duration, flops

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} cpus={self.n_cpus}>"
