"""Event tracing for simulated runs.

The tracer is the simulator-side half of the paper's instrumentation
story: middleware and application layers emit begin/end records for
phases (compute, send, recv, barrier wait, idle) and the analysis code
reduces a trace to the per-category time breakdown the paper measures
(Sections 2.4 and 3).

Since the :mod:`repro.obs` observability layer landed, the real
machinery lives in :class:`repro.obs.spans.SpanTracer`: hierarchical
begin/end spans, causal flow edges between sender and receiver, and
model response-variable rollups.  :class:`Tracer` is the thin
netsim-facing view of it, preserving the original flat-record API
(``records``, ``intervals``, ``span()``, ``makespan``, ``gantt``) that
the analysis and hpm code was written against.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..obs.spans import FlowEdge, Span, SpanTracer

#: Spans are the trace records now; the old name stays importable.
TraceRecord = Span

__all__ = ["FlowEdge", "Span", "TraceRecord", "Tracer"]


class Tracer(SpanTracer):
    """Accumulates :class:`TraceRecord` entries for one simulated run.

    A :class:`~repro.obs.spans.SpanTracer` whose ``records`` attribute
    aliases the span list, so existing reductions keep working while
    span hierarchy and flow edges accumulate alongside.
    """

    def __init__(
        self, enabled: bool = True, clock: Optional[Callable[[], float]] = None
    ) -> None:
        super().__init__(enabled=enabled, clock=clock)

    @property
    def records(self) -> List[Span]:
        """The recorded spans (legacy name)."""
        return self.spans

    def intervals(
        self, proc: Optional[str] = None, category: Optional[str] = None
    ) -> List[Span]:
        """Filtered view of the raw records."""
        return [
            r
            for r in self.spans
            if (proc is None or r.proc == proc)
            and (category is None or r.category == category)
        ]

    def span(self) -> Tuple[float, float]:
        """(earliest start, latest end) over all records."""
        return self.span_bounds()

    def makespan(self) -> float:
        """Duration from the earliest start to the latest end."""
        lo, hi = self.span_bounds()
        return hi - lo

    # ------------------------------------------------------------------
    def gantt(self, width: int = 72, categories: Optional[Iterable[str]] = None) -> str:
        """Render a coarse ASCII Gantt chart of the trace.

        Each process gets one row; each column is a time bucket labelled
        with the first letter of the category that dominates the bucket.
        Useful for eyeballing load imbalance (the paper's even-p anomaly
        shows up as long runs of idle on half the servers).
        """
        lo, hi = self.span_bounds()
        if hi <= lo:
            return "(empty trace)"
        wanted = set(categories) if categories is not None else None
        # One pass to group by process: the old per-row rescan cost
        # O(processes x records) on big traces.
        per_proc: Dict[str, List[Span]] = {}
        for r in self.spans:
            if wanted is not None and r.category not in wanted:
                continue
            per_proc.setdefault(r.proc, []).append(r)
        procs = sorted({r.proc for r in self.spans})
        dt = (hi - lo) / width
        lines = []
        for p in procs:
            buckets: List[Dict[str, float]] = [{} for _ in range(width)]
            for r in per_proc.get(p, ()):
                b0 = int((r.start - lo) / dt)
                b1 = int((r.end - lo) / dt)
                for b in range(max(b0, 0), min(b1 + 1, width)):
                    cell_lo = lo + b * dt
                    cell_hi = cell_lo + dt
                    overlap = min(r.end, cell_hi) - max(r.start, cell_lo)
                    if overlap > 0:
                        buckets[b][r.category] = (
                            buckets[b].get(r.category, 0.0) + overlap
                        )
            row = "".join(
                max(cell, key=cell.__getitem__)[0] if cell else "."
                for cell in buckets
            )
            lines.append(f"{p:>12s} |{row}|")
        return "\n".join(lines)
