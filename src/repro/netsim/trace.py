"""Event tracing for simulated runs.

The tracer is the simulator-side half of the paper's instrumentation
story: middleware and application layers emit begin/end records for
phases (compute, send, recv, barrier wait, idle) and the analysis code
reduces a trace to the per-category time breakdown the paper measures
(Sections 2.4 and 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One phase interval observed on one process."""

    proc: str
    category: str
    start: float
    end: float
    detail: str = ""

    @property
    def duration(self) -> float:
        """end - start, seconds."""
        return self.end - self.start


class Tracer:
    """Accumulates :class:`TraceRecord` entries for one simulated run."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[TraceRecord] = []

    def record(
        self, proc: str, category: str, start: float, end: float, detail: str = ""
    ) -> None:
        """Append one phase interval (no-op when disabled)."""
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"trace interval ends before it starts: {start}..{end}")
        self.records.append(TraceRecord(proc, category, start, end, detail))

    # ------------------------------------------------------------------
    def by_category(self) -> Dict[str, float]:
        """Total duration per category across all processes."""
        out: Dict[str, float] = {}
        for r in self.records:
            out[r.category] = out.get(r.category, 0.0) + r.duration
        return out

    def by_process(self) -> Dict[str, Dict[str, float]]:
        """Per-process totals per category."""
        out: Dict[str, Dict[str, float]] = {}
        for r in self.records:
            out.setdefault(r.proc, {})
            out[r.proc][r.category] = out[r.proc].get(r.category, 0.0) + r.duration
        return out

    def intervals(
        self, proc: Optional[str] = None, category: Optional[str] = None
    ) -> List[TraceRecord]:
        """Filtered view of the raw records."""
        return [
            r
            for r in self.records
            if (proc is None or r.proc == proc)
            and (category is None or r.category == category)
        ]

    def span(self) -> Tuple[float, float]:
        """(earliest start, latest end) over all records."""
        if not self.records:
            return (0.0, 0.0)
        return (
            min(r.start for r in self.records),
            max(r.end for r in self.records),
        )

    def makespan(self) -> float:
        """Duration from the earliest start to the latest end."""
        lo, hi = self.span()
        return hi - lo

    # ------------------------------------------------------------------
    def gantt(self, width: int = 72, categories: Optional[Iterable[str]] = None) -> str:
        """Render a coarse ASCII Gantt chart of the trace.

        Each process gets one row; each column is a time bucket labelled
        with the first letter of the category that dominates the bucket.
        Useful for eyeballing load imbalance (the paper's even-p anomaly
        shows up as long runs of idle on half the servers).
        """
        lo, hi = self.span()
        if hi <= lo:
            return "(empty trace)"
        wanted = set(categories) if categories is not None else None
        procs = sorted({r.proc for r in self.records})
        dt = (hi - lo) / width
        lines = []
        for p in procs:
            buckets = [{} for _ in range(width)]
            for r in self.records:
                if r.proc != p:
                    continue
                if wanted is not None and r.category not in wanted:
                    continue
                b0 = int((r.start - lo) / dt)
                b1 = int((r.end - lo) / dt)
                for b in range(max(b0, 0), min(b1 + 1, width)):
                    cell_lo = lo + b * dt
                    cell_hi = cell_lo + dt
                    overlap = min(r.end, cell_hi) - max(r.start, cell_lo)
                    if overlap > 0:
                        buckets[b][r.category] = (
                            buckets[b].get(r.category, 0.0) + overlap
                        )
            row = "".join(
                max(cell, key=cell.get)[0] if cell else "." for cell in buckets
            )
            lines.append(f"{p:>12s} |{row}|")
        return "\n".join(lines)
