"""Command line entry point: ``python -m repro <command>``.

Commands
--------
``predict``   predicted time/speedup curves for one complex on all platforms
``measure``   simulated measured breakdown on the reference J90
``calibrate`` run the reduced design and fit the model
``tables``    regenerate Tables 1 and 2
``platforms`` list the platform catalog
"""

from __future__ import annotations

import argparse
import sys

from . import __version__


def _add_execution(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run design cells over N worker processes (default: serial)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="reuse simulated cells from this on-disk result cache",
    )


def _add_chaos(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="inject faults and run with the resilient middleware; SPEC is "
        "comma-separated key=value pairs, e.g. "
        "'drop=0.01,delay=0.05,crash=2@1.5,timeout=5' "
        "(see docs/ROBUSTNESS.md for the full grammar)",
    )


def _parse_chaos(args):
    spec = getattr(args, "chaos", None)
    if spec is None:
        return None
    from .netsim import FaultSpec

    return FaultSpec.parse(spec)


def _add_trace_out(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace-out",
        default=None,
        help="export a merged observability trace of every simulated run "
        "(.json = Chrome/Perfetto trace events, .jsonl = lossless dump)",
    )


def _make_obs(args):
    if getattr(args, "trace_out", None) is None:
        return None
    from .obs import ObsSession

    return ObsSession(label=args.command)


def _finish_obs(args, obs) -> None:
    if obs is None:
        return
    path = args.trace_out
    if str(path).endswith(".jsonl"):
        obs.export_jsonl(path)
    else:
        obs.export_chrome(path)
    print()
    print(obs.summary())
    if obs.model_params is not None:
        print()
        print(obs.model_report())
    print(f"\ntrace written to {path}")


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--molecule",
        choices=("small", "medium", "large"),
        default="medium",
        help="named molecular complex (default: medium)",
    )
    p.add_argument(
        "--cutoff",
        type=float,
        default=None,
        help="cutoff radius in Angstrom (default: none = fully accurate)",
    )
    p.add_argument(
        "--update-interval",
        type=int,
        default=1,
        help="steps between pair-list updates (default: 1 = full update)",
    )
    p.add_argument("--steps", type=int, default=10, help="simulation steps")
    p.add_argument(
        "--servers", type=int, default=7, help="maximum server count (default 7)"
    )


def cmd_predict(args) -> int:
    from .analysis import curve_table
    from .core.parameters import ApplicationParams
    from .core.prediction import predict_platforms
    from .opal.complexes import get_complex
    from .platforms import ALL_PLATFORMS

    app = ApplicationParams(
        molecule=get_complex(args.molecule),
        steps=args.steps,
        cutoff=args.cutoff,
        update_interval=args.update_interval,
    )
    servers = tuple(range(1, args.servers + 1))
    series = predict_platforms(ALL_PLATFORMS, app, servers)
    print(
        curve_table(
            {n: s.times for n, s in series.items()},
            servers,
            f"predicted execution time [s] — {args.molecule}, "
            f"cutoff={args.cutoff}, update 1/{args.update_interval}",
        )
    )
    print()
    print(
        curve_table(
            {n: s.speedups for n, s in series.items()},
            servers,
            "relative speedup",
            value_format="9.2f",
        )
    )
    return 0


def cmd_measure(args) -> int:
    from .analysis import breakdown_table
    from .core.parameters import ApplicationParams
    from .opal.complexes import get_complex
    from .opal.parallel import run_parallel_opal
    from .platforms import get_platform

    platform = get_platform(args.platform)
    faults = _parse_chaos(args)
    obs = _make_obs(args)
    rows = {}
    degraded = {}
    for p in range(1, args.servers + 1):
        app = ApplicationParams(
            molecule=get_complex(args.molecule),
            steps=args.steps,
            servers=p,
            cutoff=args.cutoff,
            update_interval=args.update_interval,
        )
        result = run_parallel_opal(app, platform, obs=obs, faults=faults)
        rows[p] = result.breakdown
        if result.servers_failed:
            degraded[p] = result
    title = (
        f"measured breakdown on {platform.label} "
        f"({args.molecule}, cutoff={args.cutoff})"
    )
    if faults is not None:
        title += " [chaos]"
    print(breakdown_table(rows, title=title))
    for p, result in degraded.items():
        print(
            f"  p={p}: degraded — servers {result.servers_failed} died, "
            f"{result.failovers} failover(s), {result.rpc_retries} RPC "
            f"retries, {result.rpc_timeouts} timeouts"
        )
    _finish_obs(args, obs)
    return 0


def cmd_calibrate(args) -> int:
    from .core.calibration import calibrate
    from .experiments import ExperimentRunner, export_jsonl, reduced_design
    from .platforms import get_platform

    platform = get_platform(args.platform)
    runner = ExperimentRunner(
        platform, workers=args.workers, cache_dir=args.cache_dir
    )
    design = reduced_design()
    records = runner.run_design(design)
    if args.export_jsonl:
        n = export_jsonl(records, args.export_jsonl)
        print(f"wrote {n} cell records to {args.export_jsonl}")
    observations = [r.observation() for r in records]
    result = calibrate(observations, name=f"{platform.name}-fit")
    p = result.params
    print(f"calibrated on {len(observations)} simulated experiments:")
    print(f"  a1 = {p.a1 / 1e6:.3f} MByte/s    b1 = {p.b1 * 1e3:.3f} ms")
    print(f"  a2 = {p.a2:.3e} s    a3 = {p.a3:.3e} s    a4 = {p.a4:.3e} s")
    print(f"  b5 = {p.b5 * 1e3:.3f} ms")
    print(f"  mean relative error: {100 * result.mean_relative_error():.2f}%")
    print(f"  simulations executed: {runner.simulations_run}", end="")
    if runner.cache_stats is not None:
        print(f" (cache: {runner.cache_stats})", end="")
    print()
    return 0


def cmd_campaign(args) -> int:
    if args.workload != "opal":
        return _cmd_workload_campaign(args)
    from .experiments import render_campaign, run_campaign
    from .opal.complexes import get_complex
    from .platforms import ALL_PLATFORMS, get_platform

    obs = _make_obs(args)
    report = run_campaign(
        reference=get_platform(args.platform),
        candidates=list(ALL_PLATFORMS),
        molecule=get_complex(args.molecule),
        servers=tuple(range(1, args.servers + 1)),
        workers=args.workers,
        cache_dir=args.cache_dir,
        obs=obs,
        faults=_parse_chaos(args),
    )
    print(render_campaign(report))
    _finish_obs(args, obs)
    return 0


def _cmd_workload_campaign(args) -> int:
    """``campaign --workload collective|hpl``: the family-generic study."""
    from .platforms import ALL_PLATFORMS, get_platform
    from .workloads import load_spec_data, parse_spec
    from .workloads.campaign import render_workload_campaign, run_workload_campaign

    base_spec = None
    if args.spec is not None:
        data = load_spec_data(args.spec)
        base_spec = parse_spec(data, family=args.workload)
    reference = get_platform(args.platform)
    report = run_workload_campaign(
        args.workload,
        reference,
        base_spec=base_spec,
        servers=tuple(range(1, args.servers + 1)),
        candidates=[p for p in ALL_PLATFORMS if p.name != reference.name],
        workers=args.workers,
        cache_dir=args.cache_dir,
        faults=_parse_chaos(args),
        store_dir=args.store_out,
    )
    print(render_workload_campaign(report))
    return 0


def cmd_tables(args) -> int:
    from .platforms import format_table1, format_table2, table1, table2

    print(format_table1(table1()))
    print()
    print(format_table2(table2()))
    return 0


def cmd_platforms(args) -> int:
    from .platforms import ALL_PLATFORMS

    for spec in ALL_PLATFORMS:
        print(f"{spec.name:<10s} {spec.label}")
        print(
            f"            {spec.cpus_per_node} cpu/node x {spec.max_nodes} nodes, "
            f"{spec.cpu_rate / 1e6:.1f} MFlop/s/cpu, "
            f"net {spec.net_bw / 1e6:.0f} MB/s {spec.net_kind}"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Taufer & Stricker (SC 1998) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("predict", help="model-predicted curves, all platforms")
    _add_common(p)
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("measure", help="simulated measured breakdown")
    _add_common(p)
    p.add_argument("--platform", default="j90")
    _add_chaos(p)
    _add_trace_out(p)
    p.set_defaults(func=cmd_measure)

    p = sub.add_parser("calibrate", help="run the reduced design and fit")
    p.add_argument("--platform", default="j90")
    p.add_argument(
        "--export-jsonl",
        default=None,
        help="also write per-cell records as JSON lines to this path",
    )
    _add_execution(p)
    p.set_defaults(func=cmd_calibrate)

    p = sub.add_parser(
        "campaign", help="the full measure-calibrate-predict study"
    )
    p.add_argument("--platform", default="j90", help="reference platform")
    p.add_argument("--workload", default="opal",
                   help="workload family to campaign over (default opal; "
                   "see 'python -m repro campaign --workload collective')")
    p.add_argument("--spec", default=None, metavar="FILE",
                   help="base spec file (.json/.toml) for non-opal families; "
                   "the family's factorial design varies around it")
    p.add_argument("--store-out", default=None, metavar="DIR",
                   help="ingest cells and residuals into the telemetry "
                   "store at DIR (non-opal families)")
    p.add_argument("--molecule", choices=("small", "medium", "large"),
                   default="medium")
    p.add_argument("--servers", type=int, default=7)
    _add_execution(p)
    _add_chaos(p)
    _add_trace_out(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("tables", help="regenerate Tables 1 and 2")
    p.set_defaults(func=cmd_tables)

    p = sub.add_parser("platforms", help="list the platform catalog")
    p.set_defaults(func=cmd_platforms)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
