"""Parameter sensitivity: which platform parameter dominates where.

The conclusion of the paper turns on a qualitative sensitivity claim:
without cutoff Opal is "entirely compute bound ... regardless of the
system"; with cutoff it becomes "a communication critical application
that requires a strong memory and communication system".  Elasticities
make this exact: the relative change of predicted execution time per
relative change of each platform parameter,

    E_theta = d log t / d log theta

evaluated by central differences.  An elasticity of 0.8 for a3 means
"a 10% faster energy kernel buys ~8% runtime"; the sum over all
parameters is ~1 (t is homogeneous of degree one in the times).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..core.model import OpalPerformanceModel
from ..core.parameters import ApplicationParams, ModelPlatformParams
from ..errors import ModelError

#: The tunable platform parameters of the model.
PARAMETERS = ("a1", "b1", "a2", "a3", "a4", "b5")


@dataclass(frozen=True)
class SensitivityReport:
    """Elasticities of t_OPAL at one configuration."""

    platform: str
    app_label: str
    elasticities: Dict[str, float]

    def dominant(self) -> str:
        """Parameter with the largest |elasticity|."""
        return max(self.elasticities, key=lambda k: abs(self.elasticities[k]))

    def compute_share(self) -> float:
        """Combined |elasticity| of the compute parameters (a2, a3, a4)."""
        return sum(abs(self.elasticities[k]) for k in ("a2", "a3", "a4"))

    def communication_share(self) -> float:
        """Combined |elasticity| of communication/sync (a1, b1, b5)."""
        return sum(abs(self.elasticities[k]) for k in ("a1", "b1", "b5"))


def elasticity(
    params: ModelPlatformParams,
    app: ApplicationParams,
    parameter: str,
    rel_step: float = 1e-4,
) -> float:
    """d log t / d log theta by central differences."""
    if parameter not in PARAMETERS:
        raise ModelError(f"unknown parameter {parameter!r}")
    base_value = getattr(params, parameter)
    if base_value <= 0:
        return 0.0  # a zero-cost parameter cannot matter locally
    up = OpalPerformanceModel(
        params.with_(**{parameter: base_value * (1 + rel_step)})
    ).predict_total(app)
    down = OpalPerformanceModel(
        params.with_(**{parameter: base_value * (1 - rel_step)})
    ).predict_total(app)
    base = OpalPerformanceModel(params).predict_total(app)
    return (up - down) / (2.0 * rel_step * base)


def sensitivity_report(
    params: ModelPlatformParams, app: ApplicationParams
) -> SensitivityReport:
    """Elasticities of all six parameters at one configuration."""
    label = (
        f"{app.molecule.name}/p={app.p}/"
        f"cutoff={'none' if app.cutoff is None else app.cutoff}"
    )
    return SensitivityReport(
        platform=params.name,
        app_label=label,
        elasticities={
            name: elasticity(params, app, name) for name in PARAMETERS
        },
    )


def sensitivity_sweep(
    params: ModelPlatformParams,
    app: ApplicationParams,
    servers: Sequence[int],
) -> Dict[int, SensitivityReport]:
    """Reports across a server-count sweep (the regime transition)."""
    return {
        p: sensitivity_report(params, app.with_(servers=p)) for p in servers
    }
