"""ASCII rendering of tables, breakdown charts and curve families.

Every benchmark regenerating a paper artifact prints through these
helpers so the output reads like the paper's tables and charts
(stacked-bar breakdowns become per-category columns; the execution-time
and speedup charts become aligned series).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.breakdown import TimeBreakdown


def format_row(values: Sequence, widths: Sequence[int]) -> str:
    """Format one table row with per-column widths."""
    cells = []
    for v, w in zip(values, widths):
        if isinstance(v, float):
            cells.append(f"{v:{w}.3f}")
        else:
            cells.append(f"{str(v):>{w}s}")
    return " ".join(cells)


def breakdown_table(
    rows: Dict[int, TimeBreakdown],
    title: str = "",
    merge_par: bool = False,
) -> str:
    """Per-server-count breakdown table (one Figure 1/2 panel)."""
    cats = TimeBreakdown.category_names(merge_par=merge_par)
    widths = [4] + [9] * (len(cats) + 1)
    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(["p"] + list(cats) + ["total"], widths))
    for p in sorted(rows):
        b = rows[p]
        vals = [b.as_dict(merge_par=merge_par)[c] for c in cats]
        lines.append(format_row([p] + vals + [b.total], widths))
    return "\n".join(lines)


def curve_table(
    series: Dict[str, Sequence[float]],
    servers: Sequence[int],
    title: str = "",
    value_format: str = "9.3f",
) -> str:
    """Aligned multi-platform curves (Figure 5/6 panels)."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'platform':<14s}" + "".join(f"{f'p={p}':>10s}" for p in servers)
    lines.append(header)
    for name, values in series.items():
        if len(values) != len(servers):
            raise ValueError(f"series {name!r} length mismatch")
        lines.append(
            f"{name:<14s}" + "".join(f"{v:{value_format}} " for v in values)
        )
    return "\n".join(lines)


def stacked_bar(
    breakdown: TimeBreakdown, width: int = 60, merge_par: bool = True
) -> str:
    """One breakdown rendered as a proportional character bar."""
    total = breakdown.total
    if total <= 0:
        return "(zero)"
    symbols = {
        "par_comp": "#",
        "update": "#",
        "nbint": "%",
        "seq_comp": "s",
        "comm": "=",
        "sync": "+",
        "idle": ".",
    }
    bar = ""
    for cat, val in breakdown.as_dict(merge_par=merge_par).items():
        bar += symbols.get(cat, "?") * int(round(width * val / total))
    return f"|{bar:<{width}s}| {total:9.3f}s"


def breakdown_chart(
    rows: Dict[int, TimeBreakdown], title: str = "", width: int = 60
) -> str:
    """A whole Figure 1/2 panel as stacked character bars.

    Bars are scaled to the panel's longest run so relative sizes read
    like the paper's charts ('#'=parallel comp, 's'=sequential,
    '='=comm, '+'=sync, '.'=idle).
    """
    lines = [title] if title else []
    t_max = max(b.total for b in rows.values())
    for p in sorted(rows):
        b = rows[p]
        w = max(int(round(width * b.total / t_max)), 1)
        lines.append(f"p={p} {stacked_bar(b, width=w)}")
    return "\n".join(lines)


def residuals_table(rows: List[Dict[str, float]], title: str = "") -> str:
    """Measured-vs-predicted rows (Figure 4)."""
    lines = [title] if title else []
    lines.append(
        f"{'n':>6s} {'p':>3s} {'cutoff':>7s} {'upd':>4s} "
        f"{'measured':>10s} {'predicted':>10s} {'diff':>9s} {'rel%':>7s}"
    )
    for r in rows:
        lines.append(
            f"{int(r['n']):6d} {int(r['p']):3d} {r['cutoff']:7.1f} "
            f"{int(r['update_interval']):4d} {r['measured']:10.3f} "
            f"{r['predicted']:10.3f} {r['difference']:9.3f} "
            f"{100*r['relative_error']:7.2f}"
        )
    return "\n".join(lines)
