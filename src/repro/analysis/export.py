"""Export figure/table data to CSV for external plotting.

The paper's charts were (presumably) gnuplot; downstream users will want
the raw series.  Plain ``csv`` writers — no plotting dependencies — with
loaders for round-tripping in tests and notebooks.
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Dict, List, Sequence, Union

from ..core.breakdown import TimeBreakdown
from ..core.prediction import PredictionSeries

PathLike = Union[str, pathlib.Path]


def _write(path: PathLike, rows: List[dict], fieldnames: Sequence[str]) -> None:
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(fieldnames))
        writer.writeheader()
        writer.writerows(rows)


def curves_to_csv(
    series: Dict[str, PredictionSeries], path: PathLike
) -> None:
    """One row per (platform, p): time and speedup columns."""
    rows = []
    for name, s in series.items():
        for p, t, sp in zip(s.servers, s.times, s.speedups):
            rows.append(
                {"platform": name, "servers": p, "time_s": t, "speedup": sp}
            )
    _write(path, rows, ["platform", "servers", "time_s", "speedup"])


def curves_from_csv(path: PathLike) -> Dict[str, Dict[int, dict]]:
    """Load back: {platform: {p: {'time_s':…, 'speedup':…}}}."""
    out: Dict[str, Dict[int, dict]] = {}
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            out.setdefault(row["platform"], {})[int(row["servers"])] = {
                "time_s": float(row["time_s"]),
                "speedup": float(row["speedup"]),
            }
    return out


def breakdowns_to_csv(
    panels: Dict[str, Dict[int, TimeBreakdown]], path: PathLike
) -> None:
    """One row per (panel, p) with all six breakdown categories."""
    cats = TimeBreakdown.category_names()
    rows = []
    for panel, by_p in panels.items():
        for p, b in sorted(by_p.items()):
            row = {"panel": panel, "servers": p, "total": b.total}
            row.update(b.as_dict())
            rows.append(row)
    _write(path, rows, ["panel", "servers", *cats, "total"])


def breakdowns_from_csv(path: PathLike) -> Dict[str, Dict[int, TimeBreakdown]]:
    """Load panels back: {panel: {p: TimeBreakdown}}."""
    cats = TimeBreakdown.category_names()
    out: Dict[str, Dict[int, TimeBreakdown]] = {}
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            b = TimeBreakdown(**{c: float(row[c]) for c in cats})
            out.setdefault(row["panel"], {})[int(row["servers"])] = b
    return out


def residuals_to_csv(rows: List[dict], path: PathLike) -> None:
    """The Figure 4 measured-vs-predicted rows."""
    if not rows:
        raise ValueError("no residual rows to export")
    _write(path, rows, list(rows[0].keys()))


def records_to_jsonl(records, path: PathLike) -> int:
    """Write per-cell ``ExperimentRecord``s as JSON lines; returns the count.

    Thin alias for :func:`repro.experiments.cache.export_jsonl` so the
    analysis layer offers one import site for both CSV and JSONL output.
    """
    from ..experiments.cache import export_jsonl

    return export_jsonl(records, path)


def records_from_jsonl(path: PathLike):
    """Load ``ExperimentRecord``s back from a JSONL file (see above)."""
    from ..experiments.cache import load_jsonl

    return load_jsonl(path)


def to_csv_string(rows: List[dict]) -> str:
    """Render arbitrary homogeneous row dicts as a CSV string."""
    if not rows:
        return ""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buf.getvalue()
