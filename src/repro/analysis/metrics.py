"""Low-level performance indicators (Section 3.3).

"low level indicators like *communication efficiency*, *idle times*,
and *load imbalance* of single parts are much harder to get [than
high-level rates].  The latter metrics are more relevant in the
performance analysis."  With the accounting barriers in place, all
three are directly computable from an :class:`OpalRunResult`; this
module defines them precisely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from ..opal.parallel import OpalRunResult
from ..opal.workload import OpalWorkload


@dataclass(frozen=True)
class RunMetrics:
    """The paper's three hard-to-get indicators plus context."""

    #: achieved payload bandwidth over the comm phases / platform a1
    communication_efficiency: float
    #: fraction of the run spent idle (load-imbalance waits)
    idle_fraction: float
    #: max/mean per-server energy-phase compute time
    load_imbalance: float
    #: fraction of the run spent communicating
    comm_fraction: float
    #: client compute rate proxy: seq seconds / total
    seq_fraction: float

    def healthy(self) -> bool:
        """A run the paper would call well-behaved."""
        return (
            self.idle_fraction < 0.15
            and self.load_imbalance < 1.15
            and self.communication_efficiency > 0.5
        )


def payload_bytes(result: OpalRunResult) -> float:
    """Application payload moved during one run (both directions)."""
    w = OpalWorkload(result.app)
    app = result.app
    updates = w.updates_total
    per_step_calls = app.p * w.coords_nbytes  # energy coords every step
    upd_calls = updates * app.p * w.coords_nbytes
    returns = app.s * app.p * w.result_nbytes
    return app.s * per_step_calls + upd_calls + returns


def run_metrics(result: OpalRunResult, platform) -> RunMetrics:
    """Compute the Section 3.3 indicators for one accounted run.

    ``platform`` is the PlatformSpec the run executed on (its ``net_bw``
    is the a1 reference for communication efficiency).
    """
    if result.sync_mode != "accounted":
        raise ModelError(
            "metrics need an accounted run; overlapped runs conflate the "
            "categories (that is the paper's point)"
        )
    b = result.breakdown
    total = b.total
    if total <= 0:
        raise ModelError("degenerate run with zero wall time")
    comm_seconds = b.comm
    if comm_seconds > 0:
        achieved = payload_bytes(result) / comm_seconds
        comm_eff = min(achieved / platform.net_bw, 1.0)
    else:
        comm_eff = 1.0
    energy = np.asarray(result.server_energy_seconds)
    imbalance = float(energy.max() / energy.mean()) if energy.size and energy.mean() > 0 else 1.0
    return RunMetrics(
        communication_efficiency=comm_eff,
        idle_fraction=b.idle / total,
        load_imbalance=imbalance,
        comm_fraction=comm_seconds / total,
        seq_fraction=b.seq_comp / total,
    )
