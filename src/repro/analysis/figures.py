"""Data generators for every figure of the paper.

Each ``figure*`` function returns the plotted data (dict of series /
per-panel tables); the corresponding benchmark prints it through
:mod:`repro.analysis.report`.  Figures 1/2 and 4 *measure* (simulated
runs on the reference J90); Figures 5/6 *predict* (analytical model with
per-platform parameters).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.breakdown import TimeBreakdown
from ..core.calibration import CalibrationResult, calibrate, residual_table
from ..core.parameters import ApplicationParams
from ..core.prediction import PredictionSeries, predict_platforms
from ..experiments.cases import (
    CUTOFF_EFFECTIVE,
    SERVER_RANGE,
    STEPS,
    ExperimentCase,
    breakdown_chart_cases,
    reduced_design,
)
from ..experiments.runner import ExperimentRunner
from ..opal.complexes import LARGE, MEDIUM, ComplexSpec
from ..platforms.catalog import ALL_PLATFORMS, REFERENCE_PLATFORM


# ----------------------------------------------------------------------
def figure_breakdown(
    molecule: ComplexSpec,
    platform=None,
    servers: Sequence[int] = SERVER_RANGE,
    runner_kwargs: Optional[dict] = None,
) -> Dict[str, Dict[int, TimeBreakdown]]:
    """Figures 1 (medium) / 2 (large): measured breakdown, four panels.

    Returns ``{"a": {p: TimeBreakdown}, "b": ..., "c": ..., "d": ...}``.
    """
    platform = REFERENCE_PLATFORM if platform is None else platform
    runner = ExperimentRunner(platform, **(runner_kwargs or {}))
    panels = breakdown_chart_cases(molecule, servers)
    out: Dict[str, Dict[int, TimeBreakdown]] = {}
    for key, cases in panels.items():
        records = runner.run_design(cases)
        out[key] = {r.case.servers: r.breakdown for r in records}
    return out


PANEL_TITLES = {
    "a": "no cutoff, full update",
    "b": "no cutoff, partial update (1/10)",
    "c": "10 A cutoff, full update",
    "d": "10 A cutoff, partial update (1/10)",
}


# ----------------------------------------------------------------------
def figure3_parameter_space() -> List[ExperimentCase]:
    """Figure 3: the calibration parameter space (the design itself)."""
    from ..experiments.cases import full_design

    return full_design()


# ----------------------------------------------------------------------
def figure4_calibration(
    platform=None,
    design: Optional[List[ExperimentCase]] = None,
    runner_kwargs: Optional[dict] = None,
):
    """Figure 4: measured vs model-predicted wall-clock times.

    Runs the (by default reduced 7*2^(3-1)) design on the reference
    platform, calibrates the model by least squares, and returns
    ``(CalibrationResult, residual rows)``.
    """
    platform = REFERENCE_PLATFORM if platform is None else platform
    design = reduced_design() if design is None else design
    runner = ExperimentRunner(platform, **(runner_kwargs or {}))
    observations = runner.observations(design)
    result: CalibrationResult = calibrate(observations, name=f"{platform.name}-fit")
    rows = residual_table(result, observations)
    return result, rows


# ----------------------------------------------------------------------
def figure_prediction(
    molecule: ComplexSpec,
    platforms=None,
    servers: Sequence[int] = SERVER_RANGE,
    steps: int = STEPS,
    update_interval: int = 1,
) -> Dict[str, Dict[str, PredictionSeries]]:
    """Figures 5 (medium) / 6 (large): predicted time + speedup.

    Returns ``{"no_cutoff": {platform: series}, "cutoff": {...}}`` —
    panels a/b are the ``no_cutoff`` times/speedups, c/d the ``cutoff``
    ones.
    """
    platforms = list(ALL_PLATFORMS) if platforms is None else list(platforms)
    out = {}
    for key, cutoff in (("no_cutoff", None), ("cutoff", CUTOFF_EFFECTIVE)):
        app = ApplicationParams(
            molecule=molecule,
            steps=steps,
            cutoff=cutoff,
            update_interval=update_interval,
        )
        out[key] = predict_platforms(platforms, app, servers)
    return out


def figure5(servers: Sequence[int] = SERVER_RANGE, **kw):
    """Figure 5: medium problem size."""
    return figure_prediction(MEDIUM, servers=servers, **kw)


def figure6(servers: Sequence[int] = SERVER_RANGE, **kw):
    """Figure 6: large problem size."""
    return figure_prediction(LARGE, servers=servers, **kw)
