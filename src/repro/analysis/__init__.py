"""Analysis and reporting: figure-data generators and ASCII rendering."""

from .export import (
    breakdowns_from_csv,
    breakdowns_to_csv,
    curves_from_csv,
    curves_to_csv,
    records_from_jsonl,
    records_to_jsonl,
    residuals_to_csv,
    to_csv_string,
)
from .metrics import RunMetrics, payload_bytes, run_metrics
from .sensitivity import (
    SensitivityReport,
    elasticity,
    sensitivity_report,
    sensitivity_sweep,
)
from .figures import (
    PANEL_TITLES,
    figure3_parameter_space,
    figure4_calibration,
    figure5,
    figure6,
    figure_breakdown,
    figure_prediction,
)
from .report import (
    breakdown_chart,
    breakdown_table,
    curve_table,
    residuals_table,
    stacked_bar,
)

__all__ = [
    "PANEL_TITLES",
    "breakdowns_from_csv",
    "breakdowns_to_csv",
    "breakdown_chart",
    "breakdown_table",
    "curve_table",
    "curves_from_csv",
    "curves_to_csv",
    "figure3_parameter_space",
    "figure4_calibration",
    "figure5",
    "figure6",
    "figure_breakdown",
    "figure_prediction",
    "RunMetrics",
    "SensitivityReport",
    "elasticity",
    "payload_bytes",
    "records_from_jsonl",
    "records_to_jsonl",
    "residuals_table",
    "run_metrics",
    "sensitivity_report",
    "sensitivity_sweep",
    "residuals_to_csv",
    "to_csv_string",
    "stacked_bar",
]
