"""simlint — static verification of the package's own invariants.

The paper's methodology works because measurement is *exact*:
middleware instrumentation separates communication from computation
(Section 3) and the factorial design assumes every cell is reproducible
(Section 4).  simlint machine-checks the source-level invariants that
exactness rests on.  Since v2 it is a *whole-program* analyzer: a
project index (symbol table, import graph, call graph — :mod:`.index`)
feeds interprocedural passes (:mod:`.dataflow`) alongside the per-file
rule pack, with an incremental content-hash cache, a checked-in
baseline, severity profiles and SARIF export.  The rule families:

* **determinism** (``D1xx`` per-file, ``D2xx`` interprocedural) — no
  wall clocks, global RNG state, OS-entropy seeding or
  hash/identity-ordered iteration in simulation code; ``D2xx`` track
  seed literals and wall-clock reads *through* call chains and report
  the witness path;
* **protocol** (``P2xx`` per-file, ``P3xx`` graph) — RPC names resolve
  in the IDL registry, message tags pair up, phase brackets balance,
  receives are driven coroutine-style; ``P3xx`` check the cross-function
  view: reply tags are consumed, called procedures are bound somewhere,
  and timeout-less recv-then-send orders form no wait cycle (deadlock
  candidates);
* **model hygiene** (``M3xx``) — platform coefficients come from the
  equations (2)-(10) registry and unit conversions go through
  :mod:`repro.units`;
* **observability** (``O4xx``) — span tracer ``begin()``/``end()``
  brackets balance (or use the ``scope()`` context manager), so no
  span leaks out of the exported traces;
* **resilience** (``R5xx``) — receives in the Sciddle/Opal layers
  carry ``timeout=`` deadlines, so a lost message or dead peer cannot
  wedge a chaos-campaign run;
* **async hygiene** (``S6xx`` per-file, ``S7xx`` whole-program) — the
  serving layer's event loop is never stalled by blocking calls inside
  ``async def`` bodies, and module-local coroutines are always awaited
  or scheduled rather than silently discarded; ``S701`` follows the
  call graph to find *transitively* blocking calls, ``S702`` (warn
  tier) flags unlocked check-then-await interleavings on shared
  mutable attributes.

Run it with ``python -m repro.lint [paths]`` (exit 1 only on fresh
error-tier findings) or programmatically via :func:`analyze` /
:func:`run_checks`.  Individual findings can be waived inline with
``# simlint: disable=CODE``; known debt lives in
``.simlint-baseline.json`` — see ``docs/LINTING.md`` for rule codes,
tiers, profiles, cache and SARIF usage.
"""

from __future__ import annotations

from .baseline import load_baseline, partition, write_baseline
from .core import (
    Finding,
    GraphRule,
    ProjectRule,
    Rule,
    SourceModule,
    load_module,
)
from .profiles import PROFILES, Profile, get_profile
from .registry import all_rules, get_rule
from .runner import (
    AnalysisResult,
    AnalysisStats,
    analyze,
    iter_python_files,
    load_modules,
    run_checks,
)
from .sarif import to_sarif

# importing the rule package registers every shipped rule
from . import rules as _rules  # noqa: F401

__all__ = [
    "AnalysisResult",
    "AnalysisStats",
    "Finding",
    "GraphRule",
    "PROFILES",
    "Profile",
    "ProjectRule",
    "Rule",
    "SourceModule",
    "all_rules",
    "analyze",
    "get_profile",
    "get_rule",
    "iter_python_files",
    "load_baseline",
    "load_module",
    "load_modules",
    "partition",
    "run_checks",
    "to_sarif",
    "write_baseline",
]
