"""simlint — static verification of the package's own invariants.

The paper's methodology works because measurement is *exact*:
middleware instrumentation separates communication from computation
(Section 3) and the factorial design assumes every cell is reproducible
(Section 4).  simlint machine-checks the source-level invariants that
exactness rests on, in six rule families:

* **determinism** (``D1xx``) — no wall clocks, global RNG state,
  OS-entropy seeding or hash/identity-ordered iteration in simulation
  code;
* **protocol** (``P2xx``) — RPC names resolve in the IDL registry,
  message tags pair up, phase brackets balance, receives are driven
  coroutine-style;
* **model hygiene** (``M3xx``) — platform coefficients come from the
  equations (2)-(10) registry and unit conversions go through
  :mod:`repro.units`;
* **observability** (``O4xx``) — span tracer ``begin()``/``end()``
  brackets balance (or use the ``scope()`` context manager), so no
  span leaks out of the exported traces;
* **resilience** (``R5xx``) — receives in the Sciddle/Opal layers
  carry ``timeout=`` deadlines, so a lost message or dead peer cannot
  wedge a chaos-campaign run;
* **async hygiene** (``S6xx``) — the serving layer's event loop is
  never stalled by blocking calls inside ``async def`` bodies, and
  module-local coroutines are always awaited or scheduled rather than
  silently discarded.

Run it with ``python -m repro.lint [paths]`` (exits non-zero on
findings) or programmatically via :func:`run_checks`.  Individual
findings can be waived inline with ``# simlint: disable=CODE`` — see
``docs/LINTING.md`` for rule codes and rationale.
"""

from __future__ import annotations

from .core import Finding, ProjectRule, Rule, SourceModule, load_module
from .registry import all_rules, get_rule
from .runner import iter_python_files, load_modules, run_checks

# importing the rule modules registers every shipped rule
from . import async_hygiene as _async_hygiene  # noqa: F401
from . import determinism as _determinism  # noqa: F401
from . import hygiene as _hygiene  # noqa: F401
from . import observability as _observability  # noqa: F401
from . import protocol as _protocol  # noqa: F401
from . import resilience as _resilience  # noqa: F401

__all__ = [
    "Finding",
    "Rule",
    "ProjectRule",
    "SourceModule",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "load_module",
    "load_modules",
    "run_checks",
]
