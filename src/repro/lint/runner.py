"""simlint driver: discovery, component scheduling, rule execution.

:func:`analyze` is the full engine: it discovers files, builds the
import graph, splits it into weakly-connected components and runs

* **per-file rules** on each file (cached by content hash),
* **project and graph rules** once per component (cached by the
  component's content-hash fingerprint),

so a warm run re-parses nothing and an edit re-runs the cross-module
passes only for the import-graph slice containing the change.

:func:`run_checks` is the stable convenience wrapper the test suite and
older callers use — same signature and return type as v1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type, Union

from ..errors import LintError
from .cache import AnalysisCache, component_key, config_signature, content_hash
from .core import Finding, GraphRule, ProjectRule, Rule, SourceModule, load_module
from .index import ProjectIndex, build_module_info, resolve_import_edges
from .profiles import Profile
from .registry import all_rules

PathLike = Union[str, Path]


def iter_python_files(paths: Sequence[PathLike]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    # de-duplicate while keeping a deterministic order
    seen = set()
    unique: List[Path] = []
    for f in sorted(files):
        key = f.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def load_modules(paths: Sequence[PathLike]) -> List[SourceModule]:
    """Parse every Python file under ``paths`` into source modules."""
    return [load_module(f, display=str(f)) for f in iter_python_files(paths)]


@dataclass
class AnalysisStats:
    """What one :func:`analyze` run actually had to do."""

    files_total: int = 0
    #: files whose per-file rules re-ran (content changed or cold cache).
    files_checked: int = 0
    components_total: int = 0
    #: components whose cross-module passes re-ran.
    components_reanalyzed: int = 0


@dataclass
class AnalysisResult:
    """Findings plus run statistics."""

    findings: List[Finding] = field(default_factory=list)
    stats: AnalysisStats = field(default_factory=AnalysisStats)


@dataclass
class _FileState:
    path: Path
    display: str
    digest: str
    key: str = ""
    imported_names: List[str] = field(default_factory=list)
    module: Optional[SourceModule] = None
    findings: List[Finding] = field(default_factory=list)

    def ensure_module(self) -> SourceModule:
        if self.module is None:
            self.module = load_module(self.path, display=self.display)
        return self.module


class _UnionFind:
    def __init__(self, keys: Iterable[str]) -> None:
        self.parent = {k: k for k in keys}

    def find(self, k: str) -> str:
        root = k
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[k] != root:
            self.parent[k], k = root, self.parent[k]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _split_rules(
    rule_classes: Iterable[Type[Rule]],
) -> Tuple[List[Type[Rule]], List[Type[ProjectRule]], List[Type[GraphRule]]]:
    per_file: List[Type[Rule]] = []
    project: List[Type[ProjectRule]] = []
    graph: List[Type[GraphRule]] = []
    for cls in rule_classes:
        if issubclass(cls, GraphRule):
            graph.append(cls)
        elif issubclass(cls, ProjectRule):
            project.append(cls)
        else:
            per_file.append(cls)
    return per_file, project, graph


def _filter_suppressed(
    findings: Iterable[Finding], by_display: Dict[str, SourceModule]
) -> List[Finding]:
    return [
        f
        for f in findings
        if f.path not in by_display or not by_display[f.path].is_suppressed(f)
    ]


def _check_file(
    state: _FileState, per_file: List[Type[Rule]], respect_suppressions: bool
) -> List[Finding]:
    module = state.ensure_module()
    findings: List[Finding] = []
    for rule_cls in per_file:
        instance = rule_cls()
        if instance.applies_to(module):
            findings.extend(instance.check(module))
    if respect_suppressions:
        findings = _filter_suppressed(findings, {module.display: module})
    findings.sort(key=lambda f: (f.path, f.line, f.code, f.col))
    return findings


def _check_component(
    states: List[_FileState],
    project: List[Type[ProjectRule]],
    graph: List[Type[GraphRule]],
    respect_suppressions: bool,
) -> List[Finding]:
    modules = [s.ensure_module() for s in states]
    by_display = {m.display: m for m in modules}
    findings: List[Finding] = []
    for project_cls in project:
        instance = project_cls()
        for module in modules:
            if instance.applies_to(module):
                instance.collect(module)
        findings.extend(instance.finalize())
    if graph:
        index = ProjectIndex.build(modules)
        for graph_cls in graph:
            findings.extend(graph_cls().check_index(index))
    if respect_suppressions:
        findings = _filter_suppressed(findings, by_display)
    findings.sort(key=lambda f: (f.path, f.line, f.code, f.col))
    return findings


def analyze(
    paths: Sequence[PathLike],
    rules: Optional[Iterable[Type[Rule]]] = None,
    respect_suppressions: bool = True,
    profile: Optional[Profile] = None,
    cache_dir: Optional[PathLike] = None,
    exclude: Sequence[str] = (),
) -> AnalysisResult:
    """Run the full analysis and return findings plus statistics.

    ``exclude`` drops any discovered file whose POSIX path contains one
    of the given fragments (used to skip rule fixtures).  ``cache_dir``
    opts into the incremental cache; without it every run is cold.
    """
    rule_classes = list(rules) if rules is not None else all_rules()
    per_file, project, graph = _split_rules(rule_classes)
    files = iter_python_files(paths)
    if exclude:
        files = [
            f
            for f in files
            if not any(frag in f.as_posix() for frag in exclude)
        ]

    cache: Optional[AnalysisCache] = None
    if cache_dir is not None:
        signature = config_signature(
            [cls.code for cls in rule_classes],
            profile.name if profile is not None else "strict",
            respect_suppressions,
        )
        cache = AnalysisCache(Path(cache_dir), signature)

    stats = AnalysisStats(files_total=len(files))
    states: List[_FileState] = []
    for path in files:
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from None
        state = _FileState(
            path=path, display=str(path), digest=content_hash(data)
        )
        entry = cache.file_entry(state.display, state.digest) if cache else None
        if entry is not None:
            state.key = str(entry.get("key", ""))
            state.imported_names = [str(n) for n in entry.get("imports", [])]
            state.findings = cache.file_findings(entry)  # type: ignore[union-attr]
        else:
            module = state.ensure_module()
            info = build_module_info(module)
            state.key = info.key
            state.imported_names = sorted(info.imported_names)
            state.findings = _check_file(state, per_file, respect_suppressions)
            stats.files_checked += 1
            if cache is not None:
                cache.record_file(
                    state.display,
                    state.digest,
                    state.key,
                    state.imported_names,
                    state.findings,
                )
        states.append(state)

    # resolve module-key collisions the way the indexer does: first file
    # (in sorted order) keeps the dotted key, later ones use their path
    taken: Set[str] = set()
    for state in states:
        if state.key in taken:
            state.key = str(state.path.resolve())
        taken.add(state.key)

    # weakly-connected components of the import graph
    by_key = {state.key: state for state in states}
    uf = _UnionFind(by_key)
    for state in states:
        for target in resolve_import_edges(
            set(state.imported_names), set(by_key), state.key
        ):
            uf.union(state.key, target)
    groups: Dict[str, List[_FileState]] = {}
    for state in states:
        groups.setdefault(uf.find(state.key), []).append(state)
    components = sorted(
        groups.values(), key=lambda members: min(s.display for s in members)
    )
    stats.components_total = len(components)

    findings: List[Finding] = []
    for state in states:
        findings.extend(state.findings)
    live_components: List[str] = []
    for members in components:
        members = sorted(members, key=lambda s: s.display)
        comp_key = component_key([(s.display, s.digest) for s in members])
        live_components.append(comp_key)
        cached = cache.component_findings(comp_key) if cache else None
        if cached is not None:
            findings.extend(cached)
            continue
        component_findings = _check_component(
            members, project, graph, respect_suppressions
        )
        stats.components_reanalyzed += 1
        if cache is not None:
            cache.record_component(comp_key, component_findings)
        findings.extend(component_findings)

    if cache is not None:
        cache.save([s.display for s in states], live_components)

    if profile is not None:
        findings = profile.apply(findings)
    findings.sort(key=lambda f: (f.path, f.line, f.code, f.col))
    return AnalysisResult(findings=findings, stats=stats)


def run_checks(
    paths: Sequence[PathLike],
    rules: Optional[Iterable[Type[Rule]]] = None,
    respect_suppressions: bool = True,
) -> List[Finding]:
    """Run simlint over ``paths`` and return the surviving findings.

    ``paths`` may mix files and directories.  ``rules`` defaults to every
    registered rule; pass a subset to check specific codes.  Findings on
    lines carrying a matching ``# simlint: disable=CODE`` comment are
    dropped unless ``respect_suppressions`` is False.  The result is
    sorted by (file, line, code).
    """
    return analyze(
        paths, rules=rules, respect_suppressions=respect_suppressions
    ).findings
