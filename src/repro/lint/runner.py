"""simlint driver: file discovery, rule execution, suppression filtering.

:func:`run_checks` is the public entry point — it is what both the
``python -m repro.lint`` CLI and the test suite call.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Type, Union

from ..errors import LintError
from .core import Finding, ProjectRule, Rule, SourceModule, load_module
from .registry import all_rules

PathLike = Union[str, Path]


def iter_python_files(paths: Sequence[PathLike]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    # de-duplicate while keeping a deterministic order
    seen = set()
    unique: List[Path] = []
    for f in sorted(files):
        key = f.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def load_modules(paths: Sequence[PathLike]) -> List[SourceModule]:
    """Parse every Python file under ``paths`` into source modules."""
    return [load_module(f, display=str(f)) for f in iter_python_files(paths)]


def run_checks(
    paths: Sequence[PathLike],
    rules: Optional[Iterable[Type[Rule]]] = None,
    respect_suppressions: bool = True,
) -> List[Finding]:
    """Run simlint over ``paths`` and return the surviving findings.

    ``paths`` may mix files and directories.  ``rules`` defaults to every
    registered rule; pass a subset to check specific codes.  Findings on
    lines carrying a matching ``# simlint: disable=CODE`` comment are
    dropped unless ``respect_suppressions`` is False.  The result is
    sorted by (file, line, code).
    """
    modules = load_modules(paths)
    by_path = {m.display: m for m in modules}
    findings: List[Finding] = []
    for rule_cls in rules if rules is not None else all_rules():
        instance = rule_cls()
        if isinstance(instance, ProjectRule):
            for module in modules:
                if instance.applies_to(module):
                    instance.collect(module)
            findings.extend(instance.finalize())
        else:
            for module in modules:
                if instance.applies_to(module):
                    findings.extend(instance.check(module))
    if respect_suppressions:
        findings = [
            f
            for f in findings
            if f.path not in by_path or not by_path[f.path].is_suppressed(f)
        ]
    findings.sort(key=lambda f: (f.path, f.line, f.code, f.col))
    return findings
