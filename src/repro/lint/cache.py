"""Incremental analysis cache, keyed by file content hashes.

One JSON document (``simlint-cache.json`` under ``--cache-dir``) with:

* a **config signature** — rule codes, profile and suppression mode; a
  mismatch discards the whole cache, so results never leak across
  configurations;
* a **per-file entry** per analyzed file: content hash, module key,
  imported names and the per-file rule findings.  Unchanged files skip
  parsing entirely on warm runs — the import graph is rebuilt from the
  cached key/import lists;
* a **per-component entry** keyed by the hash of the component's sorted
  ``(display, content-hash)`` pairs — the cross-module passes (project
  and graph rules) re-run only for import-graph slices that contain at
  least one changed file.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .core import Finding

CACHE_VERSION = "simlint-cache/1"
CACHE_FILENAME = "simlint-cache.json"


def content_hash(data: bytes) -> str:
    """Hex sha256 of a file's raw bytes — the cache key ingredient."""
    return hashlib.sha256(data).hexdigest()


def config_signature(
    rule_codes: Iterable[str], profile: str, respect_suppressions: bool
) -> str:
    """Digest of the analysis configuration; a mismatch discards the cache."""
    blob = json.dumps(
        {
            "rules": sorted(rule_codes),
            "profile": profile,
            "respect_suppressions": respect_suppressions,
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def component_key(members: Sequence[Tuple[str, str]]) -> str:
    """Identity of one import-graph component: sorted (display, hash)."""
    blob = json.dumps(sorted(members))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _encode(findings: Iterable[Finding]) -> List[List[object]]:
    return [
        [f.path, f.line, f.col, f.code, f.message, f.severity] for f in findings
    ]


def _decode(rows: Iterable[Sequence[object]]) -> List[Finding]:
    return [
        Finding(
            path=str(row[0]),
            line=int(row[1]),  # type: ignore[arg-type]
            col=int(row[2]),  # type: ignore[arg-type]
            code=str(row[3]),
            message=str(row[4]),
            severity=str(row[5]),
        )
        for row in rows
    ]


class AnalysisCache:
    """Load/query/update one cache file; best-effort on read errors."""

    def __init__(self, directory: Path, signature: str) -> None:
        self.path = directory / CACHE_FILENAME
        self.signature = signature
        self.files: Dict[str, Dict[str, object]] = {}
        self.components: Dict[str, List[List[object]]] = {}
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return
        if (
            not isinstance(data, dict)
            or data.get("version") != CACHE_VERSION
            or data.get("config") != self.signature
        ):
            return  # stale layout or different configuration: start cold
        files = data.get("files", {})
        components = data.get("components", {})
        if isinstance(files, dict):
            self.files = files
        if isinstance(components, dict):
            self.components = components

    # -- queries --------------------------------------------------------
    def file_entry(self, display: str, digest: str) -> Optional[Dict[str, object]]:
        """Cached entry for a file, or None on a miss or changed digest."""
        entry = self.files.get(display)
        if entry and entry.get("hash") == digest:
            return entry
        return None

    def file_findings(self, entry: Dict[str, object]) -> List[Finding]:
        """Decode the per-file findings recorded in a cache entry."""
        return _decode(entry.get("findings", []))  # type: ignore[arg-type]

    def component_findings(self, key: str) -> Optional[List[Finding]]:
        """Decode cached component-scope findings, or None on a miss."""
        rows = self.components.get(key)
        return _decode(rows) if rows is not None else None

    # -- updates --------------------------------------------------------
    def record_file(
        self,
        display: str,
        digest: str,
        module_key: str,
        imported_names: Iterable[str],
        findings: Iterable[Finding],
    ) -> None:
        """Store a file's digest, module key, imports and findings."""
        self.files[display] = {
            "hash": digest,
            "key": module_key,
            "imports": sorted(imported_names),
            "findings": _encode(findings),
        }

    def record_component(self, key: str, findings: Iterable[Finding]) -> None:
        """Store the component-scope findings under the component key."""
        self.components[key] = _encode(findings)

    def save(self, live_files: Iterable[str], live_components: Iterable[str]) -> None:
        """Persist, dropping entries for files/components not in this run."""
        keep_f = set(live_files)
        keep_c = set(live_components)
        payload = {
            "version": CACHE_VERSION,
            "config": self.signature,
            "files": {k: v for k, v in self.files.items() if k in keep_f},
            "components": {
                k: v for k, v in self.components.items() if k in keep_c
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        tmp.replace(self.path)
