"""Core data model of simlint: findings, parsed modules, rule base classes.

simlint is a static-analysis pass over this package's *own* source.  The
paper's methodology stands on exact, reproducible measurement; the rules
in :mod:`repro.lint.determinism`, :mod:`repro.lint.protocol` and
:mod:`repro.lint.hygiene` machine-check the invariants that measurement
depends on, so they are enforced on every change instead of being
rediscovered by debugging (see ``docs/LINTING.md``).

This module holds the pieces every rule shares:

* :class:`Finding` — one reported violation (``file:line:code message``);
* :class:`SourceModule` — a parsed file with its AST (parent-annotated),
  import-alias map, package scope and ``# simlint: disable=`` lines;
* :class:`Rule` / :class:`ProjectRule` — the visitor base classes.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..errors import LintError

#: Attribute name used to attach parent links to AST nodes.
_PARENT_ATTR = "_simlint_parent"

#: Inline suppression comment: ``# simlint: disable=CODE[,CODE...]``.
_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s]+)")


#: Finding severity tiers: ``error`` findings gate CI, ``warn`` findings
#: are advisory (printed, counted, budgeted — but never the exit code).
SEVERITIES = ("error", "warn")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    #: ``"error"`` (gates CI) or ``"warn"`` (advisory); kept last with a
    #: default so positional construction stays source-compatible.
    severity: str = "error"

    def format(self) -> str:
        """Render as the CLI's ``file:line:code message`` output line."""
        return f"{self.path}:{self.line}:{self.code} {self.message}"

    @property
    def baseline_key(self) -> str:
        """The ``path::code`` key the baseline file freezes debt under."""
        return f"{self.path}::{self.code}"


@dataclass
class SourceModule:
    """A parsed source file plus everything rules need to inspect it."""

    path: Path
    display: str
    text: str
    tree: ast.Module
    #: dotted-name parts below the ``repro`` package root (e.g.
    #: ``("netsim", "engine")``), or ``None`` for files outside any
    #: ``repro`` directory — those are checked against *every* rule.
    package: Optional[Tuple[str, ...]]
    #: local alias -> absolute dotted name, from import statements.
    imports: Dict[str, str] = field(default_factory=dict)
    #: line number -> set of rule codes disabled on that line.
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def subpackage(self) -> Optional[str]:
        """First package component under ``repro`` (``"netsim"``, ...)."""
        return self.package[0] if self.package else None

    def finding(
        self, node: ast.AST, code: str, message: str, severity: str = "error"
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=self.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
            severity=severity,
        )

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether an inline comment disables this finding's code."""
        return finding.code in self.suppressions.get(finding.line, set())

    def resolve_call(self, node: ast.AST) -> Optional[str]:
        """Absolute dotted name of an attribute/name chain, if derivable.

        ``np.random.default_rng`` with ``import numpy as np`` resolves to
        ``"numpy.random.default_rng"``.  Chains rooted in anything other
        than an imported module alias (``self.engine.now``, locals, ...)
        resolve to ``None`` — rules treat that as "not a module call".
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    """The syntactic parent of ``node`` (annotated at load time)."""
    return getattr(node, _PARENT_ATTR, None)


def receiver_is_tracerish(expr: ast.AST) -> bool:
    """Whether a ``.begin``/``.end`` receiver looks like a span tracer.

    Span brackets (``tracer.begin`` / ``obs.tracer.begin`` / …) belong
    to the observability rules (``O401``); accounting brackets on other
    receivers stay with the protocol rules (``P203``).  The split keys
    off the receiver expression's source text so the two rule families
    never double-report one call site.
    """
    src = ast.unparse(expr).lower()
    return any(key in src for key in ("trace", "span", "obs"))


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    """Map local aliases to absolute dotted names for all imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    # `import numpy.random` binds the root name `numpy`.
                    root = name.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def _collect_suppressions(text: str) -> Dict[int, Set[str]]:
    """Parse ``# simlint: disable=`` comments, keyed by 1-based line."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            codes = {c.strip() for c in m.group(1).split(",") if c.strip()}
            if codes:
                out[lineno] = codes
    return out


def _package_of(path: Path) -> Optional[Tuple[str, ...]]:
    """Dotted-path parts below the last ``repro`` directory, if any."""
    parts = path.resolve().parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            below = parts[i + 1 :]
            if not below:
                return None
            return tuple(below[:-1]) + (Path(below[-1]).stem,)
    return None


def _annotate_parents(tree: ast.Module) -> None:
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            setattr(child, _PARENT_ATTR, parent)


def load_module(path: Path, display: Optional[str] = None) -> SourceModule:
    """Read and parse one source file into a :class:`SourceModule`."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from None
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        raise LintError(f"cannot parse {path}: {exc}") from None
    _annotate_parents(tree)
    return SourceModule(
        path=path,
        display=display if display is not None else str(path),
        text=text,
        tree=tree,
        package=_package_of(path),
        imports=_collect_imports(tree),
        suppressions=_collect_suppressions(text),
    )


class Rule:
    """Base class for a per-file lint rule.

    Subclasses set the class attributes and implement :meth:`check`.
    ``packages=None`` means the rule applies everywhere; otherwise it
    names the top-level ``repro`` subpackages it is scoped to.  Files
    outside any ``repro`` package (fixtures, scratch scripts) are checked
    against every rule.
    """

    #: unique rule code, e.g. ``"D101"``.
    code: str = ""
    #: short kebab-case rule name.
    name: str = ""
    #: one-line summary shown by ``--list-rules`` and the docs.
    summary: str = ""
    #: top-level subpackages the rule is scoped to (None = all files).
    packages: Optional[Tuple[str, ...]] = None
    #: default severity tier of this rule's findings.
    severity: str = "error"

    def applies_to(self, module: SourceModule) -> bool:
        """Whether this rule inspects ``module`` at all."""
        if self.packages is None or module.package is None:
            return True
        return module.subpackage in self.packages

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that needs cross-file state (declared-vs-used registries).

    The runner calls :meth:`collect` once per applicable module, then
    :meth:`finalize` once after all modules were seen.  Cross-module
    passes execute per weakly-connected component of the import graph —
    cross-file coupling is assumed to flow through imports, which is what
    lets the incremental cache re-run only the changed slice.
    """

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Project rules report from :meth:`finalize`, not per file."""
        return iter(())

    def collect(self, module: SourceModule) -> None:
        """Gather per-module facts into rule state."""
        raise NotImplementedError

    def finalize(self) -> Iterator[Finding]:
        """Yield findings derived from the whole-project state."""
        raise NotImplementedError


class GraphRule(Rule):
    """A whole-program rule driven by the project index.

    Instead of per-module visits, the runner hands the rule one
    :class:`repro.lint.index.ProjectIndex` per import-graph component
    (symbol table + call graph over that component's modules) and the
    rule reports from :meth:`check_index`.  ``applies_to`` scoping is the
    rule's own responsibility — interprocedural findings anchor at a call
    site whose module decides the scope, while the witness chain may run
    through helper modules outside it.
    """

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Graph rules report from :meth:`check_index`, not per file."""
        return iter(())

    def check_index(self, index: "ProjectIndex") -> Iterator[Finding]:  # noqa: F821
        """Yield findings derived from one component's project index."""
        raise NotImplementedError
