"""Severity profiles and per-rule budgets.

A profile post-processes finding severities without touching the rules:

* ``strict`` (the default) keeps every rule at its declared tier —
  shipped simulation source is held to the full contract;
* ``relaxed`` demotes the determinism (``D``) and model-hygiene
  (``M``) families to advisory ``warn`` — the right posture for tests,
  benchmarks and examples, where a hard-coded seed is often the point
  while protocol and await-safety violations are still real bugs.

Budgets bound accepted debt per rule code: up to ``N`` ``warn``
findings of a code are tolerated, and every finding of that code beyond
the budget escalates back to ``error`` so the debt cannot silently
grow.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Tuple

from ..errors import LintError
from .core import Finding


@dataclass(frozen=True)
class Profile:
    """One named severity policy."""

    name: str
    #: rule-code prefixes whose findings are demoted to ``warn``.
    demote: Tuple[str, ...] = ()
    #: rule code -> number of ``warn`` findings tolerated before the
    #: overflow escalates to ``error``.
    budgets: Mapping[str, int] = field(default_factory=dict)

    def apply(self, findings: List[Finding]) -> List[Finding]:
        """Return findings with this profile's severities applied."""
        out: List[Finding] = []
        for f in findings:
            if f.severity == "error" and f.code.startswith(self.demote):
                f = replace(f, severity="warn")
            out.append(f)
        if not self.budgets:
            return out
        seen: Dict[str, int] = {}
        final: List[Finding] = []
        for f in out:
            budget = self.budgets.get(f.code)
            if budget is not None and f.severity == "warn":
                seen[f.code] = seen.get(f.code, 0) + 1
                if seen[f.code] > budget:
                    f = replace(f, severity="error")
            final.append(f)
        return final


STRICT = Profile(name="strict")
RELAXED = Profile(name="relaxed", demote=("D", "M"))

PROFILES: Dict[str, Profile] = {p.name: p for p in (STRICT, RELAXED)}


def get_profile(name: str) -> Profile:
    """Look a profile up by name (:class:`LintError` if unknown)."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise LintError(f"unknown profile {name!r} (known: {known})") from None
