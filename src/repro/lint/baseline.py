"""Finding baselines: freezing existing debt without hiding new debt.

A baseline file maps ``path::code`` keys to accepted finding counts.
On every run the surviving findings are partitioned: for each key, up
to the recorded count are *baselined* (reported in SARIF as externally
suppressed, never printed, never the exit code) and everything beyond
is *fresh*.  A fix that removes findings simply leaves baseline slack;
a change that adds one makes it fresh immediately — counts can only be
re-frozen deliberately via ``--write-baseline``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from ..errors import LintError
from .core import Finding

BASELINE_VERSION = "simlint-baseline/1"


def load_baseline(path: Path) -> Dict[str, int]:
    """Read a baseline file into its ``path::code -> count`` map."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise LintError(f"baseline {path} is not valid JSON: {exc}") from None
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise LintError(
            f"baseline {path} has unsupported version "
            f"{data.get('version') if isinstance(data, dict) else data!r} "
            f"(expected {BASELINE_VERSION})"
        )
    entries = data.get("entries", {})
    if not isinstance(entries, dict):
        raise LintError(f"baseline {path}: 'entries' must be an object")
    out: Dict[str, int] = {}
    for key, count in entries.items():
        if not isinstance(count, int) or count < 0:
            raise LintError(f"baseline {path}: bad count for {key!r}")
        out[key] = count
    return out


def write_baseline(path: Path, findings: List[Finding]) -> Dict[str, int]:
    """Freeze the given findings into a baseline file at ``path``."""
    entries: Dict[str, int] = {}
    for f in findings:
        entries[f.baseline_key] = entries.get(f.baseline_key, 0) + 1
    payload = {
        "version": BASELINE_VERSION,
        "entries": {k: entries[k] for k in sorted(entries)},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return entries


def partition(
    findings: List[Finding], entries: Dict[str, int]
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into ``(fresh, baselined)`` against a baseline.

    Findings are consumed in their (already sorted) order: the first
    ``entries[key]`` findings of each key are baselined, the overflow is
    fresh.
    """
    remaining = dict(entries)
    fresh: List[Finding] = []
    baselined: List[Finding] = []
    for f in findings:
        left = remaining.get(f.baseline_key, 0)
        if left > 0:
            remaining[f.baseline_key] = left - 1
            baselined.append(f)
        else:
            fresh.append(f)
    return fresh, baselined
