"""Determinism taint: wall-clock returns and seed-position parameters.

Two fixpoint summaries over the call graph:

* :func:`wallclock_returning` — functions whose return value derives
  from a wall-clock read, directly (``return time.time()``) or through
  another project function (``return stamp()``).  The D202 rule flags
  *calls* to such functions from simulation scope, where the per-file
  D101 rule cannot see the clock.

* :func:`seed_sink_params` — parameters that flow into the seed
  position of ``numpy.random.default_rng`` / ``SeedSequence``, directly
  or by being forwarded into another function's seed-sink parameter.
  The D201 rule flags call sites that pin such a parameter to an
  integer literal — the interprocedural version of D106's hard-coded
  seed ban.

Both summaries map a function's qualname to a witness chain
``[entry, ..., primitive]`` used verbatim in finding messages, so a
report shows the *path* from source to sink instead of one opaque line.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from ..index import ProjectIndex
from ..index.callgraph import own_body_nodes
from ..rules.determinism import _WALLCLOCK_CALLS

#: RNG constructors whose first arguments are seed material.
SEEDED_CALLS = frozenset(
    {"numpy.random.default_rng", "numpy.random.SeedSequence"}
)


def _return_exprs(func_node: ast.AST) -> List[ast.AST]:
    return [
        node.value
        for node in own_body_nodes(func_node)
        if isinstance(node, ast.Return) and node.value is not None
    ]


def wallclock_returning(index: ProjectIndex) -> Dict[str, List[str]]:
    """``qualname -> witness chain`` for wall-clock-returning functions."""
    chains: Dict[str, List[str]] = {}
    # base case: a return expression directly calls a wall-clock primitive
    for func in index.functions():
        for expr in _return_exprs(func.node):
            dotted = next(
                (
                    d
                    for node in ast.walk(expr)
                    if isinstance(node, ast.Call)
                    for d in [func.module.resolve_call(node.func)]
                    if d in _WALLCLOCK_CALLS
                ),
                None,
            )
            if dotted is not None:
                chains[func.qualname] = [func.display, f"{dotted}()"]
                break
    # propagate: a return expression calls a tainted project function
    changed = True
    while changed:
        changed = False
        for qualname, sites in index.calls.items():
            if qualname in chains:
                continue
            caller = sites[0].caller
            return_call_ids = {
                id(node)
                for expr in _return_exprs(caller.node)
                for node in ast.walk(expr)
                if isinstance(node, ast.Call)
            }
            for site in sites:
                tail = chains.get(site.callee.qualname)
                if tail is not None and id(site.call) in return_call_ids:
                    chains[qualname] = [caller.display, *tail]
                    changed = True
                    break
    return chains


def _has_int_literal(expr: ast.AST) -> bool:
    """Same literal test as D106: any non-bool integer constant."""
    return any(
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
        for node in ast.walk(expr)
    )


def _param_names_in(expr: ast.AST, params: Set[str]) -> Set[str]:
    return {
        node.id
        for node in ast.walk(expr)
        if isinstance(node, ast.Name) and node.id in params
    }


def bind_arguments(func, call: ast.Call) -> Dict[str, ast.AST]:
    """Map a call's arguments onto the callee's parameter names.

    Positional arguments follow :meth:`FunctionInfo.positional_params`
    (``self`` already dropped); ``*args``/``**kwargs`` splats are
    skipped — static binding would be a guess.
    """
    bound: Dict[str, ast.AST] = {}
    positional = func.positional_params()
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if i < len(positional):
            bound[positional[i]] = arg
    for kw in call.keywords:
        if kw.arg is not None:
            bound[kw.arg] = kw.value
    return bound


def seed_sink_params(index: ProjectIndex) -> Dict[str, Dict[str, List[str]]]:
    """``qualname -> {param -> witness chain}`` for seed-sink parameters."""
    sinks: Dict[str, Dict[str, List[str]]] = {}
    # base case: a parameter appears inside an RNG constructor's seed args
    for func in index.functions():
        params = func.all_params()
        if not params:
            continue
        for node in own_body_nodes(func.node):
            if not isinstance(node, ast.Call):
                continue
            dotted = func.module.resolve_call(node.func)
            if dotted not in SEEDED_CALLS:
                continue
            for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                for param in sorted(_param_names_in(arg, params)):
                    sinks.setdefault(func.qualname, {}).setdefault(
                        param, [f"{func.display}({param})", f"{dotted}"]
                    )
    # propagate: forwarding a parameter into a callee's seed-sink position
    changed = True
    while changed:
        changed = False
        for qualname, sites in index.calls.items():
            caller = sites[0].caller
            params = caller.all_params()
            if not params:
                continue
            for site in sites:
                callee_sinks = sinks.get(site.callee.qualname)
                if not callee_sinks:
                    continue
                bound = bind_arguments(site.callee, site.call)
                for callee_param, tail in callee_sinks.items():
                    arg = bound.get(callee_param)
                    if arg is None:
                        continue
                    for param in sorted(_param_names_in(arg, params)):
                        mine = sinks.setdefault(qualname, {})
                        if param not in mine:
                            mine[param] = [f"{caller.display}({param})", *tail]
                            changed = True
    return sinks


def literal_seed_calls(index: ProjectIndex):
    """Call sites pinning a seed-sink parameter to an integer literal.

    Yields ``(site, param, chain)`` — the D201 rule applies scoping and
    formats the finding.
    """
    sinks = seed_sink_params(index)
    for qualname in sorted(index.calls):
        for site in index.calls[qualname]:
            callee_sinks = sinks.get(site.callee.qualname)
            if not callee_sinks:
                continue
            bound = bind_arguments(site.callee, site.call)
            for param in sorted(callee_sinks):
                arg = bound.get(param)
                if arg is not None and _has_int_literal(arg):
                    yield site, param, callee_sinks[param]
