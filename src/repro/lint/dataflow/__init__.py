"""Interprocedural dataflow passes over the project index.

Each pass is a pure function from a
:class:`~repro.lint.index.ProjectIndex` to summaries the graph rules
consume:

* :mod:`.taint` — determinism taint: which functions *return* wall-clock
  values, and which parameters flow into RNG seed positions (with the
  witness chain from entry to primitive);
* :mod:`.blocking` — which synchronous functions transitively reach a
  blocking primitive (executor-offload analysis for the serve layer);
* :mod:`.protocolgraph` — the global send/recv/tag/procedure graph:
  bind registries and tag wait-order edges for deadlock detection.

All passes are fixpoint computations over the call graph; chains are
recorded shortest-first so findings cite a minimal witness path.
"""

from __future__ import annotations

from .blocking import blocking_reachable
from .protocolgraph import collect_procedure_graph, tag_wait_cycles
from .taint import seed_sink_params, wallclock_returning

__all__ = [
    "blocking_reachable",
    "collect_procedure_graph",
    "seed_sink_params",
    "tag_wait_cycles",
    "wallclock_returning",
]
