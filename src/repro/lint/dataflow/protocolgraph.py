"""The global protocol graph: procedure bindings and tag wait-ordering.

Feeds the P3xx rules:

* :func:`collect_procedure_graph` — every ``server.bind(name, ...)``
  and every client-side procedure reference (``call_async`` /
  ``call_all``) across the analyzed modules.  P302 reports references
  with no binding anywhere in the import-graph slice.

* :func:`tag_wait_cycles` — the tag *wait-order* digraph: an edge
  ``B -> A`` means some function sends tag ``A`` only after an
  unbounded (timeout-less) receive of tag ``B`` completed.  A cycle in
  that graph is a deadlock candidate: every participant is waiting for
  a message only produced after its own — exactly the send/recv
  matching the MPI deadlock literature checks globally rather than per
  call site.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from ..index import ProjectIndex
from ..index.callgraph import own_body_nodes
from ..index.symbols import FunctionInfo
from ..rules.protocol import _call_arg, _const_str

#: Names that look like PVM tag constants (module convention).
_TAG_NAME_RE = re.compile(r"^_?TAG")


def _tag_names(expr: Optional[ast.AST]) -> Set[str]:
    if expr is None:
        return set()
    return {
        n.id
        for n in ast.walk(expr)
        if isinstance(n, ast.Name) and _TAG_NAME_RE.match(n.id)
    }


def collect_procedure_graph(
    index: ProjectIndex,
) -> Tuple[Dict[str, Tuple[object, ast.Call]], List[Tuple[object, ast.Call, str]]]:
    """``(bindings, references)`` over the whole index.

    ``bindings`` maps a procedure name to its first bind site;
    ``references`` lists client-side calls naming a procedure.  Names
    with a dunder prefix (``__shutdown__``) are runtime-internal and
    skipped on both sides.
    """
    bindings: Dict[str, Tuple[object, ast.Call]] = {}
    references: List[Tuple[object, ast.Call, str]] = []
    for key in sorted(index.modules):
        module = index.modules[key].module
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            ):
                continue
            attr = node.func.attr
            if attr == "bind":
                name = _const_str(_call_arg(node, 0, "name"))
                if name is not None and not name.startswith("__"):
                    bindings.setdefault(name, (module, node))
            elif attr == "call_async":
                name = _const_str(_call_arg(node, 1, "proc"))
                if name is not None and not name.startswith("__"):
                    references.append((module, node, name))
            elif attr == "call_all":
                name = _const_str(_call_arg(node, 0, "proc"))
                if name is not None and not name.startswith("__"):
                    references.append((module, node, name))
    return bindings, references


def _ordered_events(
    func: FunctionInfo,
) -> List[Tuple[Tuple[int, int], str, Set[str], ast.Call]]:
    """Recv/send events of one function body in source order."""
    events = []
    for node in own_body_nodes(func.node):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        kind: Optional[str] = None
        tag_expr: Optional[ast.AST] = None
        bounded = False
        if isinstance(target, ast.Attribute):
            if target.attr == "recv":
                kind = "recv"
                tag_expr = _call_arg(node, 1, "tag")
                timeout = _call_arg(node, 99, "timeout")
                bounded = timeout is not None and not (
                    isinstance(timeout, ast.Constant) and timeout.value is None
                )
            elif target.attr in ("send", "mcast"):
                kind = "send"
                tag_expr = _call_arg(node, 1, "tag")
        elif isinstance(target, ast.Name):
            if target.id == "Recv":
                kind = "recv"
                tag_expr = _call_arg(node, 1, "tag")
                timeout = _call_arg(node, 99, "timeout")
                bounded = timeout is not None and not (
                    isinstance(timeout, ast.Constant) and timeout.value is None
                )
            elif target.id == "Send":
                kind = "send"
                tag_expr = _call_arg(node, 2, "tag")
        if kind is None:
            continue
        tags = _tag_names(tag_expr)
        if not tags:
            continue
        if kind == "recv" and bounded:
            continue  # a deadline breaks any wait cycle through this edge
        events.append(((node.lineno, node.col_offset), kind, tags, node))
    events.sort(key=lambda e: e[0])
    return events


def tag_wait_cycles(
    index: ProjectIndex,
) -> List[Tuple[List[str], List[Tuple[FunctionInfo, ast.Call]]]]:
    """Cycles in the wait-order digraph, with one witness site per edge.

    Returns ``(cycle_tags, witness_sites)`` pairs; ``cycle_tags`` is
    rotated so the lexicographically smallest tag leads, which makes
    reports stable and lets callers de-duplicate rotations.
    """
    #: waited-tag -> sent-tag -> first witness (function, send site)
    edges: Dict[str, Dict[str, Tuple[FunctionInfo, ast.Call]]] = {}
    for func in index.functions():
        waited: Set[str] = set()
        for _, kind, tags, node in _ordered_events(func):
            if kind == "recv":
                waited |= tags
            else:
                for received in sorted(waited):
                    for sent in sorted(tags):
                        if received == sent:
                            continue
                        edges.setdefault(received, {}).setdefault(
                            sent, (func, node)
                        )

    graph = {src: set(dsts) for src, dsts in edges.items()}
    cycles: List[List[str]] = []
    seen: Set[Tuple[str, ...]] = set()

    def dfs(start: str, node: str, path: List[str], visited: Set[str]) -> None:
        for nxt in sorted(graph.get(node, ())):
            if nxt == start:
                canonical = tuple(path)  # start is the cycle's minimum
                if canonical not in seen:
                    seen.add(canonical)
                    cycles.append(list(canonical))
            elif nxt not in visited and nxt > start:
                # only explore nodes > start: every cycle is found from
                # its smallest member exactly once
                visited.add(nxt)
                dfs(start, nxt, path + [nxt], visited)
                visited.discard(nxt)

    for start in sorted(graph):
        dfs(start, start, [start], {start})

    out = []
    for cycle in cycles:
        witnesses = []
        for i, tag in enumerate(cycle):
            nxt = cycle[(i + 1) % len(cycle)]
            witnesses.append(edges[tag][nxt])
        out.append((cycle, witnesses))
    return out
