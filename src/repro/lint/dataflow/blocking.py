"""Blocking-call reachability for the await-safety rules.

S601 bans *direct* blocking calls inside ``async def``; this pass finds
the transitive ones: a coroutine calling a synchronous project function
that — possibly several frames down — performs blocking work (sleeps,
subprocesses, synchronous sockets, file I/O).  The event loop stalls
exactly the same whether the ``open()`` sits in the coroutine or three
sync helpers away.

Reachability propagates through **synchronous** project functions only:
an awaited coroutine runs cooperatively and is its own S601/S701
subject, and a function *reference* handed to ``loop.run_in_executor``
is never a call site, so the executor off-load pattern stays clean by
construction.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from ..index import ProjectIndex
from ..index.callgraph import own_body_nodes
from ..index.symbols import ModuleInfo
from ..rules.async_hygiene import _BLOCKING_CALLS

#: Attribute calls that hit the filesystem synchronously (pathlib et al).
FILE_IO_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)


def _direct_block(info: ModuleInfo, func) -> Optional[str]:
    """Label of a blocking primitive this function calls directly."""
    module = info.module
    for node in own_body_nodes(func.node):
        if not isinstance(node, ast.Call):
            continue
        dotted = module.resolve_call(node.func)
        if dotted in _BLOCKING_CALLS:
            return f"{dotted}()"
        target = node.func
        if (
            isinstance(target, ast.Name)
            and target.id == "open"
            and target.id not in module.imports
            and target.id not in info.functions
        ):
            return "open()"
        if isinstance(target, ast.Attribute) and target.attr in FILE_IO_METHODS:
            return f".{target.attr}()"
    return None


def blocking_reachable(index: ProjectIndex) -> Dict[str, List[str]]:
    """``qualname -> witness chain`` for blocking synchronous functions.

    Chains read ``[entry, ..., primitive]`` and are shortest-first: a
    function reached in round *n* keeps its *n*-hop chain even if longer
    routes exist.
    """
    chains: Dict[str, List[str]] = {}
    for func in index.functions():
        if func.is_async:
            continue
        info = index.module_of(func)
        if info is None:
            continue
        label = _direct_block(info, func)
        if label is not None:
            chains[func.qualname] = [func.display, label]
    changed = True
    while changed:
        changed = False
        for qualname, sites in index.calls.items():
            if qualname in chains:
                continue
            caller = sites[0].caller
            if caller.is_async:
                continue
            for site in sites:
                if site.callee.is_async:
                    continue
                tail = chains.get(site.callee.qualname)
                if tail is not None:
                    chains[qualname] = [caller.display, *tail]
                    changed = True
                    break
    return chains
