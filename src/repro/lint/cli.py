"""Command line front end: ``python -m repro.lint [paths]``.

Prints one ``file:line:code message`` line per *fresh* finding and
exits non-zero only when a fresh **error**-tier finding survives — the
contract the CI ``lint`` job relies on.  Baselined findings
(``--baseline``) are counted on stderr and exported to SARIF as
externally suppressed, but never printed and never the exit code.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..errors import LintError
from .baseline import load_baseline, partition, write_baseline
from .profiles import PROFILES, get_profile
from .registry import all_rules
from .runner import analyze
from .sarif import to_sarif


def _default_paths() -> List[str]:
    """Lint the installed ``repro`` package when no paths are given."""
    return [str(Path(__file__).resolve().parents[1])]


def build_parser() -> argparse.ArgumentParser:
    """The simlint argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "simlint: static verification of determinism, protocol and "
            "model invariants over the repro source (see docs/LINTING.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: the repro package)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule code with its summary and exit",
    )
    parser.add_argument(
        "--no-suppress",
        action="store_true",
        help="report findings even on '# simlint: disable=' lines",
    )
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="strict",
        help=(
            "severity profile: 'strict' keeps declared tiers, 'relaxed' "
            "demotes determinism/model-hygiene findings to warnings "
            "(default: strict)"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "JSON baseline of accepted findings; matching findings are "
            "reported as suppressed instead of failing the run"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="freeze the current findings into FILE and exit 0",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="additionally write a SARIF 2.1.0 report to FILE",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=(
            "enable the incremental cache under DIR: unchanged files are "
            "not re-analyzed, cross-module passes re-run only for changed "
            "import-graph slices"
        ),
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="FRAGMENT",
        help=(
            "skip files whose path contains FRAGMENT (repeatable; e.g. "
            "--exclude tests/lint/fixtures)"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print analysis statistics (files, components, cache reuse)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_cls in all_rules():
            scope = ",".join(rule_cls.packages) if rule_cls.packages else "all"
            tier = f"/{rule_cls.severity}" if rule_cls.severity != "error" else ""
            print(
                f"{rule_cls.code} {rule_cls.name} [{scope}{tier}] — "
                f"{rule_cls.summary}"
            )
        return 0
    paths = args.paths or _default_paths()
    try:
        result = analyze(
            paths,
            respect_suppressions=not args.no_suppress,
            profile=get_profile(args.profile),
            cache_dir=args.cache_dir,
            exclude=args.exclude,
        )
        baseline_entries = (
            load_baseline(Path(args.baseline)) if args.baseline else {}
        )
    except LintError as exc:
        print(f"simlint: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        entries = write_baseline(Path(args.write_baseline), result.findings)
        print(
            f"simlint: wrote baseline {args.write_baseline} "
            f"({sum(entries.values())} finding(s), {len(entries)} key(s))",
            file=sys.stderr,
        )
        return 0

    fresh, baselined = partition(result.findings, baseline_entries)
    for finding in fresh:
        print(finding.format())
    if args.sarif:
        document = to_sarif(fresh, baselined, all_rules())
        Path(args.sarif).write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )
    tail = f", {len(baselined)} baselined" if baselined else ""
    print(f"simlint: {len(fresh)} finding(s){tail}", file=sys.stderr)
    if args.stats:
        s = result.stats
        print(
            f"simlint: stats: {s.files_checked}/{s.files_total} file(s) "
            f"analyzed, {s.components_reanalyzed}/{s.components_total} "
            f"component(s) reanalyzed",
            file=sys.stderr,
        )
    errors = [f for f in fresh if f.severity == "error"]
    return 1 if errors else 0
