"""Command line front end: ``python -m repro.lint [paths]``.

Prints one ``file:line:code message`` line per finding and exits
non-zero when any finding survives suppression — the contract the CI
``lint`` job relies on.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from ..errors import LintError
from .registry import all_rules
from .runner import run_checks


def _default_paths() -> List[str]:
    """Lint the installed ``repro`` package when no paths are given."""
    return [str(Path(__file__).resolve().parents[1])]


def build_parser() -> argparse.ArgumentParser:
    """The simlint argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "simlint: static verification of determinism, protocol and "
            "model invariants over the repro source (see docs/LINTING.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: the repro package)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule code with its summary and exit",
    )
    parser.add_argument(
        "--no-suppress",
        action="store_true",
        help="report findings even on '# simlint: disable=' lines",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_cls in all_rules():
            scope = ",".join(rule_cls.packages) if rule_cls.packages else "all"
            print(f"{rule_cls.code} {rule_cls.name} [{scope}] — {rule_cls.summary}")
        return 0
    paths = args.paths or _default_paths()
    try:
        findings = run_checks(
            paths, respect_suppressions=not args.no_suppress
        )
    except LintError as exc:
        print(f"simlint: error: {exc}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.format())
    print(
        f"simlint: {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0
