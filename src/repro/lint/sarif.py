"""SARIF 2.1.0 export.

One run object, one ``tool.driver`` describing every registered rule,
one result per finding.  Severity maps ``error -> "error"`` and
``warn -> "warning"``; baselined findings carry a
``suppressions: [{"kind": "external"}]`` entry so SARIF viewers (and
GitHub code scanning) show them as acknowledged instead of new.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Type

from .core import Finding, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warn": "warning"}


def _rule_entry(rule_cls: Type[Rule]) -> Dict[str, object]:
    scope = ", ".join(rule_cls.packages) if rule_cls.packages else "all files"
    return {
        "id": rule_cls.code,
        "name": rule_cls.name,
        "shortDescription": {"text": rule_cls.summary},
        "fullDescription": {"text": f"{rule_cls.summary} (scope: {scope})"},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule_cls.severity, "error")
        },
    }


def _result(finding: Finding, baselined: bool) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.code,
        "level": _LEVELS.get(finding.severity, "error"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if baselined:
        result["suppressions"] = [{"kind": "external"}]
    return result


def to_sarif(
    fresh: List[Finding],
    baselined: List[Finding],
    rules: Iterable[Type[Rule]],
) -> Dict[str, object]:
    """Build the SARIF log document for one analysis run."""
    results = [_result(f, False) for f in fresh]
    results += [_result(f, True) for f in baselined]
    results.sort(
        key=lambda r: (
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"],  # type: ignore[index]
            r["locations"][0]["physicalLocation"]["region"]["startLine"],  # type: ignore[index]
            r["ruleId"],
        )
    )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": "docs/LINTING.md",
                        "rules": [
                            _rule_entry(cls)
                            for cls in sorted(rules, key=lambda c: c.code)
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
