"""Call graph: resolving call sites to project functions.

Static resolution is deliberately conservative — an edge exists only
when the target is unambiguous from the source:

* bare names: module-level functions and classes of the same module;
* imported names: the alias map (absolute *and* relative imports) back
  to a function or class of another indexed module;
* ``self.method(...)``: the enclosing class, walking project-resolvable
  base classes;
* ``self.attr.method(...)``: the class inferred for ``attr`` from
  ``self.attr = ClassName(...)`` assignments;
* ``var.method(...)``: a local ``var = ClassName(...)`` in the same
  function;
* constructors resolve to the class's ``__init__``.

Anything else (parameters of unknown type, dynamic dispatch) resolves
to nothing — the interprocedural rules would rather miss an edge than
invent one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set

from .symbols import ClassInfo, FunctionInfo, ModuleInfo, _constructor_candidates


@dataclass
class CallSite:
    """One resolved call edge: ``caller`` invokes ``callee`` at ``call``."""

    caller: FunctionInfo
    call: ast.Call
    callee: FunctionInfo


def own_body_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested definitions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


class Resolver:
    """Cross-module name resolution over a set of indexed modules."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self._by_source = {id(info.module): info for info in modules.values()}

    # -- dotted names --------------------------------------------------
    def module_for(self, dotted: str) -> Optional[ModuleInfo]:
        """Indexed module owning ``dotted``, by longest-prefix match."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            info = self.modules.get(".".join(parts[:cut]))
            if info is not None:
                return info
        return None

    def function_for(self, dotted: str) -> Optional[FunctionInfo]:
        """Project function/constructor a dotted name denotes, if any."""
        owner = self.module_for(dotted)
        if owner is None:
            return None
        rest = dotted[len(owner.key) :].lstrip(".")
        if not rest:
            return None
        if rest in owner.functions:
            return owner.functions[rest]
        if rest in owner.classes:
            return owner.classes[rest].methods.get("__init__")
        return None

    def class_for(self, info: ModuleInfo, name: str) -> Optional[ClassInfo]:
        """Resolve a class name as written in ``info``'s source."""
        if name in info.classes:
            return info.classes[name]
        head, _, tail = name.partition(".")
        dotted = info.imports.get(head)
        if dotted is None:
            return None
        if tail:
            dotted = f"{dotted}.{tail}"
        owner = self.module_for(dotted)
        if owner is None:
            return None
        rest = dotted[len(owner.key) :].lstrip(".")
        return owner.classes.get(rest)

    # -- method lookup with base-class walk ----------------------------
    def method_of(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """Resolve a method by name on a class, walking base classes."""
        seen: Set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            ident = f"{current.module.display}:{current.name}"
            if ident in seen:
                continue
            seen.add(ident)
            if name in current.methods:
                return current.methods[name]
            owner = self._by_source.get(id(current.module))
            if owner is None:
                continue
            for base in current.bases:
                resolved = self.class_for(owner, base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    # -- call-site resolution ------------------------------------------
    def resolve_call_site(
        self,
        info: ModuleInfo,
        func: FunctionInfo,
        call: ast.Call,
        local_types: Dict[str, ClassInfo],
    ) -> Optional[FunctionInfo]:
        """The project function a call targets, or None."""
        target = call.func
        if isinstance(target, ast.Name):
            name = target.id
            if name in info.functions:
                return info.functions[name]
            if name in info.classes:
                return info.classes[name].methods.get("__init__")
            dotted = info.imports.get(name)
            if dotted is not None:
                return self.function_for(dotted)
            return None
        if not isinstance(target, ast.Attribute):
            return None
        receiver = target.value
        # self.method(...) / cls.method(...)
        if (
            isinstance(receiver, ast.Name)
            and receiver.id in ("self", "cls")
            and func.cls is not None
        ):
            cls = info.classes.get(func.cls)
            if cls is not None:
                return self.method_of(cls, target.attr)
            return None
        # self.attr.method(...) via inferred attribute types
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and func.cls is not None
        ):
            cls = info.classes.get(func.cls)
            if cls is not None:
                attr_cls_name = cls.attr_types.get(receiver.attr)
                if attr_cls_name is not None:
                    attr_cls = self.class_for(info, attr_cls_name)
                    if attr_cls is not None:
                        return self.method_of(attr_cls, target.attr)
            return None
        # var.method(...) where var = ClassName(...) locally
        if isinstance(receiver, ast.Name) and receiver.id in local_types:
            return self.method_of(local_types[receiver.id], target.attr)
        # alias.func(...) / alias.sub.func(...) via the import map
        dotted = info.module.resolve_call(target)
        if dotted is None and isinstance(receiver, ast.Name):
            base = info.imports.get(receiver.id)
            if base is not None:
                dotted = f"{base}.{target.attr}"
        if dotted is not None:
            return self.function_for(dotted)
        return None

    def local_var_types(
        self, info: ModuleInfo, func: FunctionInfo
    ) -> Dict[str, ClassInfo]:
        """``var -> class`` for simple local constructor assignments."""
        out: Dict[str, ClassInfo] = {}
        for node in own_body_nodes(func.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            for candidate in _constructor_candidates(node.value):
                cls = self.class_for(info, candidate)
                if cls is not None:
                    out[target.id] = cls
                    break
        return out


def build_call_graph(
    modules: Dict[str, ModuleInfo],
) -> Dict[str, List[CallSite]]:
    """Resolved call sites per caller qualname, source order preserved."""
    resolver = Resolver(modules)
    edges: Dict[str, List[CallSite]] = {}
    for info in modules.values():
        seen_nodes: Set[int] = set()
        for func in info.functions.values():
            # methods are indexed twice (by name and Class.name); walk once
            if id(func.node) in seen_nodes:
                continue
            seen_nodes.add(id(func.node))
            local_types = resolver.local_var_types(info, func)
            sites: List[CallSite] = []
            for node in own_body_nodes(func.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = resolver.resolve_call_site(info, func, node, local_types)
                if callee is not None:
                    sites.append(CallSite(caller=func, call=node, callee=callee))
            if sites:
                sites.sort(key=lambda s: (s.call.lineno, s.call.col_offset))
                edges[func.qualname] = sites
    return edges
