"""Project indexer: symbol table, import graph and call graph.

Built once per analysis run (once per import-graph component under the
incremental cache) and handed to every
:class:`~repro.lint.core.GraphRule` and dataflow pass.  See
``symbols.py`` for the per-module symbol table and ``callgraph.py`` for
call-site resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set

from ..core import SourceModule
from .callgraph import CallSite, Resolver, build_call_graph, own_body_nodes
from .symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    build_module_info,
    module_key,
)

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "Resolver",
    "build_module_info",
    "module_key",
    "own_body_nodes",
    "resolve_import_edges",
]


def resolve_import_edges(
    imported_names: Set[str], known_keys: Set[str], own_key: str
) -> Set[str]:
    """Module keys an import list points at, by longest-prefix match."""
    edges: Set[str] = set()
    for dotted in imported_names:
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            key = ".".join(parts[:cut])
            if key in known_keys:
                if key != own_key:
                    edges.add(key)
                break
    return edges


@dataclass
class ProjectIndex:
    """Whole-program view over one set of modules."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    #: caller qualname -> resolved call sites, in source order.
    calls: Dict[str, List[CallSite]] = field(default_factory=dict)
    #: callee qualname -> call sites targeting it.
    callers: Dict[str, List[CallSite]] = field(default_factory=dict)
    #: module key -> imported module keys (within this index only).
    import_graph: Dict[str, Set[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, modules: Sequence[SourceModule]) -> "ProjectIndex":
        index = cls()
        for module in modules:
            info = build_module_info(module)
            # a path collision (same dotted name twice) keeps the first
            # deterministically; later files fall back to their path key
            if info.key in index.modules:
                info.key = str(module.path.resolve())
            index.modules[info.key] = info
        keys = set(index.modules)
        for key, info in index.modules.items():
            index.import_graph[key] = resolve_import_edges(
                info.imported_names, keys, key
            )
        index.calls = build_call_graph(index.modules)
        for sites in index.calls.values():
            for site in sites:
                index.callers.setdefault(site.callee.qualname, []).append(site)
        return index

    # -- lookups --------------------------------------------------------
    def functions(self) -> Iterator[FunctionInfo]:
        """Every indexed function, module key order, stable."""
        for key in sorted(self.modules):
            info = self.modules[key]
            seen: Set[int] = set()
            for name in sorted(info.functions):
                func = info.functions[name]
                if id(func.node) in seen:
                    continue
                seen.add(id(func.node))
                yield func

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        """Look up a FunctionInfo by qualified name, or None."""
        key, _, name = qualname.rpartition(":")
        info = self.modules.get(key)
        return info.functions.get(name) if info else None

    def module_of(self, func: FunctionInfo) -> Optional[ModuleInfo]:
        """The ModuleInfo a function was indexed under, or None."""
        key = func.qualname.rpartition(":")[0]
        return self.modules.get(key)

    def sites_from(self, qualname: str) -> List[CallSite]:
        """All resolved call sites whose caller has this qualname."""
        return self.calls.get(qualname, [])
