"""Symbol table: functions, classes and resolved imports per module.

The indexer's first layer.  For every :class:`~repro.lint.core.
SourceModule` it produces a :class:`ModuleInfo` holding

* a stable **module key** — the dotted ``repro.…`` name for files under
  a ``repro`` package directory, the resolved path otherwise — which is
  what the import graph, the call graph and the incremental cache all
  key on;
* every top-level function and class (with methods, base-class names
  and ``self.X = ClassName(...)`` attribute-type inference);
* an **alias map** covering absolute *and relative* imports, so
  ``from ..core import model`` resolves to ``repro.core.model`` and the
  call graph can follow it.

Nested closures are deliberately not indexed: calls inside a nested
``def`` execute on that closure's stack, not its enclosing function's,
and none of the interprocedural rules need them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core import SourceModule


def module_key(module: SourceModule) -> str:
    """Stable identity of one module across the project.

    Files under a ``repro`` directory get their dotted import name
    (``repro.netsim.engine``; a package ``__init__`` collapses onto the
    package itself).  Files outside any ``repro`` tree — fixtures,
    scratch scripts — use their resolved path, which keeps keys unique
    without pretending they are importable.
    """
    if module.package is None:
        return str(module.path.resolve())
    parts = [p for p in module.package if p != "__init__"]
    return ".".join(["repro", *parts]) if parts else "repro"


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    #: global identity: ``<module key>:<name>`` or ``<module key>:<Class>.<name>``.
    qualname: str
    module: SourceModule
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    is_async: bool
    #: owning class name for methods, None for module-level functions.
    cls: Optional[str] = None

    @property
    def name(self) -> str:
        """Bare function/method name (the part after the last dot)."""
        return self.node.name  # type: ignore[attr-defined]

    @property
    def display(self) -> str:
        """Human-readable name used in witness chains."""
        return f"{self.cls}.{self.name}" if self.cls else self.name

    def positional_params(self) -> List[str]:
        """Parameter names in call-position order (``self`` dropped)."""
        args = self.node.args  # type: ignore[attr-defined]
        names = [a.arg for a in [*args.posonlyargs, *args.args]]
        if self.cls and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names

    def all_params(self) -> Set[str]:
        """Every parameter name, including keyword-only and starred."""
        args = self.node.args  # type: ignore[attr-defined]
        names = {a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]}
        names.discard("self")
        names.discard("cls")
        return names


@dataclass
class ClassInfo:
    """One indexed class: methods, bases, inferred attribute types."""

    name: str
    module: SourceModule
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: base-class expressions as source text (resolved lazily by the
    #: call graph against local classes and the alias map).
    bases: List[str] = field(default_factory=list)
    #: ``self.X = ClassName(...)`` assignments: attribute -> class name
    #: as written (local name or dotted alias chain).
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Everything the whole-program passes know about one module."""

    module: SourceModule
    key: str
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: local alias -> absolute dotted name, relative imports resolved.
    imports: Dict[str, str] = field(default_factory=dict)
    #: absolute dotted names this module imports (for graph edges).
    imported_names: Set[str] = field(default_factory=set)


def _relative_base(module: SourceModule, level: int) -> Optional[List[str]]:
    """Dotted parts a ``from .``-import of ``level`` dots resolves against."""
    if module.package is None:
        return None
    # the containing package of both plain modules and __init__ files
    anchor = ["repro", *module.package[:-1]]
    if level - 1 >= len(anchor):
        return None
    return anchor[: len(anchor) - (level - 1)]


def resolve_imports(module: SourceModule) -> Tuple[Dict[str, str], Set[str]]:
    """Alias map and imported-name set, with relative imports resolved."""
    aliases: Dict[str, str] = {}
    names: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.name)
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base_parts = node.module.split(".") if node.module else None
            else:
                base_parts = _relative_base(module, node.level)
                if base_parts is None:
                    continue
                if node.module:
                    base_parts = base_parts + node.module.split(".")
            if base_parts is None:
                continue
            base = ".".join(base_parts)
            for alias in node.names:
                if alias.name == "*":
                    names.add(base)
                    continue
                dotted = f"{base}.{alias.name}"
                names.add(dotted)
                aliases[alias.asname or alias.name] = dotted
    return aliases, names


def _callee_name(expr: ast.AST) -> Optional[str]:
    """Source text of a constructor-ish callee (``Name`` or dotted chain)."""
    parts: List[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if not isinstance(expr, ast.Name):
        return None
    parts.append(expr.id)
    return ".".join(reversed(parts))


def _constructor_candidates(expr: ast.AST) -> List[str]:
    """Class names possibly constructed by ``expr``.

    Sees through the conditional idioms used for optional collaborators:
    ``X(...) if flag else None`` and ``given or X(...)``.
    """
    out: List[str] = []
    if isinstance(expr, ast.Call):
        name = _callee_name(expr.func)
        if name:
            out.append(name)
    elif isinstance(expr, ast.IfExp):
        out.extend(_constructor_candidates(expr.body))
        out.extend(_constructor_candidates(expr.orelse))
    elif isinstance(expr, ast.BoolOp):
        for value in expr.values:
            out.extend(_constructor_candidates(value))
    return out


def _index_class(info: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
    cls = ClassInfo(
        name=node.name,
        module=info.module,
        node=node,
        bases=[b for b in (_callee_name(base) for base in node.bases) if b],
    )
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func = FunctionInfo(
                qualname=f"{info.key}:{node.name}.{child.name}",
                module=info.module,
                node=child,
                is_async=isinstance(child, ast.AsyncFunctionDef),
                cls=node.name,
            )
            cls.methods[child.name] = func
    # self.X = ClassName(...) anywhere in the class body (usually __init__)
    for method in cls.methods.values():
        for sub in ast.walk(method.node):
            if not isinstance(sub, ast.Assign) or len(sub.targets) != 1:
                continue
            target = sub.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            for candidate in _constructor_candidates(sub.value):
                cls.attr_types.setdefault(target.attr, candidate)
                break
    return cls


def build_module_info(module: SourceModule) -> ModuleInfo:
    """Index one parsed module: symbols plus resolved imports."""
    info = ModuleInfo(module=module, key=module_key(module))
    info.imports, info.imported_names = resolve_imports(module)
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = FunctionInfo(
                qualname=f"{info.key}:{node.name}",
                module=module,
                node=node,
                is_async=isinstance(node, ast.AsyncFunctionDef),
            )
        elif isinstance(node, ast.ClassDef):
            cls = _index_class(info, node)
            info.classes[node.name] = cls
            for method in cls.methods.values():
                info.functions[f"{node.name}.{method.name}"] = method
    return info
