"""Rule registry: every simlint rule registers itself here by code.

Rules self-register via the :func:`rule` class decorator at import time;
:func:`all_rules` is the single source the runner, the CLI's
``--list-rules`` listing and the documentation tests enumerate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from ..errors import LintError
from .core import Rule

_REGISTRY: Dict[str, Type[Rule]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a rule under its ``code``."""
    if not cls.code or not cls.name or not cls.summary:
        raise LintError(f"rule {cls.__name__} must define code, name and summary")
    if cls.code in _REGISTRY:
        raise LintError(f"duplicate rule code {cls.code!r}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Registered rule classes, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Optional[Type[Rule]]:
    """Look one rule class up by its code (None if unknown)."""
    return _REGISTRY.get(code)
