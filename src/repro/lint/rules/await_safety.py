"""Await-safety rules for the serving layer (S7xx).

S601 bans blocking primitives written *directly* inside ``async def``;
these rules cover the two ways a coroutine stalls the loop anyway: by
calling a synchronous helper that blocks several frames down, and by
interleaving around an ``await`` while sharing unguarded mutable state.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from ..core import Finding, GraphRule, Rule, SourceModule
from ..dataflow.blocking import blocking_reachable
from ..index import ProjectIndex
from ..registry import rule


@rule
class TransitivelyBlockingCall(GraphRule):
    """S701: a coroutine calls a sync function that blocks downstream.

    The event loop stalls identically whether ``open()`` sits in the
    coroutine (S601's case) or three synchronous helpers away.  This
    rule follows the sync call graph from every ``async def`` and
    reports the chain down to the blocking primitive.  Off-loading the
    *function reference* via ``run_in_executor`` is clean by
    construction — a reference is not a call site.
    """

    code = "S701"
    name = "transitively-blocking-call"
    summary = (
        "async def reaches a blocking primitive through synchronous "
        "project functions"
    )
    packages = ("serve",)

    def check_index(self, index: ProjectIndex) -> Iterator[Finding]:
        """Report async defs whose sync callees reach a blocking primitive."""
        chains = blocking_reachable(index)
        if not chains:
            return
        seen: Set[Tuple[str, str]] = set()
        for qualname in sorted(index.calls):
            sites = index.calls[qualname]
            caller = sites[0].caller
            if not caller.is_async:
                continue
            module = caller.module
            if not self.applies_to(module):
                continue
            for site in sites:
                tail = chains.get(site.callee.qualname)
                if tail is None:
                    continue
                key = (qualname, site.callee.qualname)
                if key in seen:
                    continue
                seen.add(key)
                path = " -> ".join([caller.display, *tail])
                yield module.finding(
                    site.call,
                    self.code,
                    f"`async def {caller.name}` blocks the event loop: "
                    f"{path}. Off-load via loop.run_in_executor or make "
                    f"the chain async.",
                )


def _lockish(expr: ast.AST) -> bool:
    return "lock" in ast.unparse(expr).lower()


def _guarded_by_lock(node: ast.AST, lock_spans: List[Tuple[int, int]]) -> bool:
    line = getattr(node, "lineno", 0)
    return any(lo <= line <= hi for lo, hi in lock_spans)


def _self_attr(expr: ast.AST) -> str:
    """``X`` for a ``self.X`` attribute access, else ''."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return ""


@rule
class UnlockedCheckThenAwait(Rule):
    """S702 (warn): check ``self.X``, await, then write ``self.X``.

    The guard's answer is stale by the time the write runs — any other
    task may have interleaved at the ``await``.  Wrapping the section in
    ``async with <lock>:`` (or re-checking after the await) makes the
    sequence sound; the rule exempts accesses inside a lock's
    ``async with`` block.
    """

    code = "S702"
    name = "unlocked-check-then-await"
    summary = (
        "self attribute checked before an await and written after it "
        "without a lock"
    )
    packages = ("serve",)
    severity = "warn"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Flag guard-read / await / write interleavings outside a lock."""
        for func in ast.walk(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            lock_spans: List[Tuple[int, int]] = []
            for node in ast.walk(func):
                if isinstance(node, ast.AsyncWith) and any(
                    _lockish(item.context_expr) for item in node.items
                ):
                    lock_spans.append(
                        (node.lineno, node.end_lineno or node.lineno)
                    )
            awaits = sorted(
                node.lineno
                for node in ast.walk(func)
                if isinstance(node, ast.Await)
                and not _guarded_by_lock(node, lock_spans)
            )
            if not awaits:
                continue
            # guard reads: self.X inside an If/While/IfExp test
            guard_reads: Dict[str, int] = {}
            for node in ast.walk(func):
                if not isinstance(node, (ast.If, ast.While, ast.IfExp)):
                    continue
                if _guarded_by_lock(node, lock_spans):
                    continue
                for sub in ast.walk(node.test):
                    attr = _self_attr(sub)
                    if attr and attr not in guard_reads:
                        guard_reads[attr] = node.test.lineno
            if not guard_reads:
                continue
            # writes: self.X = ... / self.X += ... after an await
            for node in ast.walk(func):
                if _guarded_by_lock(node, lock_spans):
                    continue
                targets: List[ast.AST] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AugAssign):
                    targets = [node.target]
                for target in targets:
                    attr = _self_attr(target)
                    if not attr or attr not in guard_reads:
                        continue
                    read_line = guard_reads[attr]
                    write_line = node.lineno
                    if any(read_line < a <= write_line for a in awaits):
                        yield module.finding(
                            node,
                            self.code,
                            f"`self.{attr}` is checked on line {read_line} "
                            f"and written here with an await in between; "
                            f"another task can interleave. Hold a lock "
                            f"across check and write, or re-check after "
                            f"the await.",
                            severity=self.severity,
                        )
