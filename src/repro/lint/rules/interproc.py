"""Interprocedural determinism rules (D2xx).

The per-file D1xx rules see one module at a time, so a hard-coded seed
or a wall-clock read hidden behind a helper function escapes them.  The
D2xx rules run on the project index instead and report the *witness
chain* from the offending call site down to the primitive, so the reader
sees the path, not just the line.
"""

from __future__ import annotations

from typing import Iterator, Set, Tuple

from ..core import Finding, GraphRule
from ..dataflow.taint import literal_seed_calls, wallclock_returning
from ..index import ProjectIndex
from ..registry import rule
from .determinism import SIMULATION_PACKAGES


@rule
class HardcodedSeedThroughCall(GraphRule):
    """D201: an integer literal flows into an RNG seed parameter.

    D106 bans ``default_rng(42)`` written directly; this rule follows
    the seed *through* project functions — ``run(seed=42)`` where
    ``run`` forwards ``seed`` (possibly via more frames) into
    ``numpy.random.default_rng``.  The finding cites the full chain.
    """

    code = "D201"
    name = "hardcoded-seed-through-call"
    summary = (
        "integer literal reaches an RNG seed position through one or "
        "more project functions"
    )
    packages = SIMULATION_PACKAGES + ("opal",)

    def check_index(self, index: ProjectIndex) -> Iterator[Finding]:
        """Report literal seeds reaching an RNG constructor through calls."""
        for site, param, chain in literal_seed_calls(index):
            module = site.caller.module
            if not self.applies_to(module):
                continue
            path = " -> ".join(chain)
            yield module.finding(
                site.call,
                self.code,
                f"integer literal pinned to seed parameter `{param}` of "
                f"`{site.callee.display}`; flows {path}. Thread the "
                f"experiment's SeedSequence instead of a constant.",
            )


@rule
class WallclockThroughCall(GraphRule):
    """D202: simulation scope consumes a wall-clock value via a helper.

    D101 flags ``time.time()`` written inside simulation packages; it
    cannot see ``stamp()`` imported from a utility module outside that
    scope.  This rule flags the *call* from simulation scope to any
    function whose return value derives from a wall-clock read, with the
    chain down to the primitive.
    """

    code = "D202"
    name = "wallclock-through-call"
    summary = (
        "call from simulation scope to a function returning wall-clock "
        "time defined outside D101's scope"
    )
    packages = SIMULATION_PACKAGES

    def check_index(self, index: ProjectIndex) -> Iterator[Finding]:
        """Report call chains that pipe wall-clock reads into simulation scope."""
        chains = wallclock_returning(index)
        if not chains:
            return
        seen: Set[Tuple[str, int, int]] = set()
        for qualname in sorted(index.calls):
            for site in index.calls[qualname]:
                tail = chains.get(site.callee.qualname)
                if tail is None:
                    continue
                caller_module = site.caller.module
                if not self.applies_to(caller_module):
                    continue
                callee_module = site.callee.module
                # D101 already covers callees inside simulation scope
                # (and fixture files, which every rule visits) — this
                # rule exists for the helpers D101 cannot see.
                if callee_module.package is None:
                    continue
                if callee_module.subpackage in self.packages:
                    continue
                key = (caller_module.display, site.call.lineno, site.call.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                path = " -> ".join([site.caller.display, *tail])
                yield caller_module.finding(
                    site.call,
                    self.code,
                    f"wall-clock time enters simulation scope: {path}. "
                    f"Use the simulation clock or inject the timestamp.",
                )
